//! Property-based tests of the runtime substrate primitives the kernels
//! lean on: prefix scans, disjoint-window splitting, and binning.

use proptest::prelude::*;
use tilespgemm::runtime::{
    bin_rows_by, exclusive_scan_in_place, exclusive_scan_to, par_exclusive_scan_in_place,
    split_mut_by_offsets,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scans_agree_and_match_spec(values in proptest::collection::vec(0usize..100, 0..2000)) {
        let mut serial = values.clone();
        let total_serial = exclusive_scan_in_place(&mut serial);
        let mut parallel = values.clone();
        let total_parallel = par_exclusive_scan_in_place(&mut parallel);
        prop_assert_eq!(total_serial, total_parallel);
        prop_assert_eq!(&serial, &parallel);
        // Spec: out[i] == sum(values[..i]).
        let mut running = 0usize;
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(serial[i], running);
            running += v;
        }
        prop_assert_eq!(total_serial, running);
    }

    #[test]
    fn scan_to_matches_in_place(values in proptest::collection::vec(0usize..50, 0..500)) {
        let mut out = vec![0usize; values.len() + 1];
        let total = exclusive_scan_to(&values, &mut out);
        let mut in_place = values.clone();
        let total2 = exclusive_scan_in_place(&mut in_place);
        prop_assert_eq!(total, total2);
        prop_assert_eq!(&out[..values.len()], &in_place[..]);
        prop_assert_eq!(out[values.len()], total);
    }

    #[test]
    fn split_windows_partition_exactly(counts in proptest::collection::vec(0usize..20, 1..100)) {
        let mut offsets = vec![0usize; counts.len() + 1];
        let total = exclusive_scan_to(&counts, &mut offsets);
        let mut data: Vec<usize> = (0..total).collect();
        let windows = split_mut_by_offsets(&mut data, &offsets);
        prop_assert_eq!(windows.len(), counts.len());
        // Window lengths match the counts, contents are the right slices.
        let mut expect_start = 0usize;
        for (w, &c) in windows.iter().zip(counts.iter()) {
            prop_assert_eq!(w.len(), c);
            for (k, &v) in w.iter().enumerate() {
                prop_assert_eq!(v, expect_start + k);
            }
            expect_start += c;
        }
    }

    #[test]
    fn binning_is_a_partition(keys in proptest::collection::vec(0usize..10_000, 0..500)) {
        let bins = bin_rows_by(keys.len(), 16, |i| keys[i]);
        let mut seen: Vec<u32> = bins.rows.clone();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..keys.len() as u32).collect();
        prop_assert_eq!(seen, expect);
        // Monotone bucket keys: everything in bucket b+1 is at least as
        // large as the largest key in bucket b (power-of-two ranges).
        let mut last_max = 0usize;
        for (_, rows) in bins.iter_nonempty() {
            let lo = rows.iter().map(|&r| keys[r as usize]).min().unwrap();
            let hi = rows.iter().map(|&r| keys[r as usize]).max().unwrap();
            prop_assert!(lo >= last_max || last_max == 0 || lo == 0);
            last_max = hi;
        }
    }
}

#[test]
fn atomic_f64_parallel_sum_is_exact_for_dyadic_values() {
    use rayon::prelude::*;
    use tilespgemm::runtime::AtomicF64;
    let acc = AtomicF64::new(0.0);
    (0..4096).into_par_iter().for_each(|i| {
        acc.fetch_add(if i % 2 == 0 { 0.25 } else { 0.75 });
    });
    assert_eq!(acc.load(), 2048.0);
}
