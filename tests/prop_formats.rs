//! Property-based tests of the storage formats: round-trips and structural
//! invariants under arbitrary sparse matrices.

use proptest::prelude::*;
use tilespgemm::matrix::{Coo, CsbI, CsbM, Csc, Csr, Dense, TileMatrix, TILE_DIM};

/// Strategy: an arbitrary sparse matrix with shape up to 96x96 and up to
/// ~300 entries (duplicates allowed — conversion folds them).
fn arb_csr() -> impl Strategy<Value = Csr<f64>> {
    (1usize..96, 1usize..96).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows as u32, 0..ncols as u32, -8i32..=8);
        proptest::collection::vec(entry, 0..300).prop_map(move |entries| {
            let mut coo = Coo::new(nrows, ncols);
            for (r, c, v) in entries {
                if v != 0 {
                    coo.push(r, c, v as f64 * 0.5);
                }
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_validates(a in arb_csr()) {
        a.validate().unwrap();
    }

    #[test]
    fn tile_round_trip_is_identity(a in arb_csr()) {
        let tiled = TileMatrix::from_csr(&a);
        tiled.validate().unwrap();
        prop_assert_eq!(tiled.to_csr(), a);
    }

    #[test]
    fn tile_invariants(a in arb_csr()) {
        let tiled = TileMatrix::from_csr(&a);
        prop_assert_eq!(tiled.nnz(), a.nnz());
        let mut seen_nnz = 0usize;
        for t in 0..tiled.tile_count() {
            let tile = tiled.tile(t);
            prop_assert!(tile.nnz() >= 1, "stored tiles must be non-empty after conversion");
            prop_assert!(tile.nnz() <= 256);
            // Mask popcount equals nnz; row pointers monotone.
            let pop: u32 = tile.masks.iter().map(|m| m.count_ones()).sum();
            prop_assert_eq!(pop as usize, tile.nnz());
            for r in 0..TILE_DIM - 1 {
                prop_assert!(tile.row_ptr[r] <= tile.row_ptr[r + 1]);
            }
            seen_nnz += tile.nnz();
        }
        prop_assert_eq!(seen_nnz, a.nnz());
    }

    #[test]
    fn tile_col_index_is_consistent(a in arb_csr()) {
        let tiled = TileMatrix::from_csr(&a);
        let ci = tiled.col_index();
        // Every (tile row, tile col, id) triple from the column index must
        // agree with the row-major layout.
        let rowidx = tiled.expand_tile_rowidx();
        let mut seen = 0usize;
        for tj in 0..tiled.tile_n {
            let (rows, ids) = ci.col(tj);
            for (&ti, &id) in rows.iter().zip(ids) {
                prop_assert_eq!(tiled.tile_colidx[id as usize], tj as u32);
                prop_assert_eq!(rowidx[id as usize], ti);
                seen += 1;
            }
            // Ascending tile rows within a column.
            prop_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert_eq!(seen, tiled.tile_count());
    }

    #[test]
    fn transpose_is_involutive(a in arb_csr()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn csc_round_trip(a in arb_csr()) {
        prop_assert_eq!(Csc::from_csr(&a).to_csr(), a);
    }

    #[test]
    fn csb_round_trips(a in arb_csr()) {
        prop_assert_eq!(CsbI::from_csr(&a).to_csr(), a.clone());
        prop_assert_eq!(CsbM::from_csr(&a).to_csr(), a);
    }

    #[test]
    fn dense_round_trip(a in arb_csr()) {
        prop_assert_eq!(Dense::from_csr(&a).to_csr(), a);
    }

    #[test]
    fn matrix_market_round_trip(a in arb_csr()) {
        let mut buf = Vec::new();
        tilespgemm::matrix::io::write_matrix_market(&a, &mut buf).unwrap();
        let back = tilespgemm::matrix::io::read_matrix_market::<f64, _>(buf.as_slice())
            .unwrap()
            .to_csr();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn footprint_totals_are_sums_of_components(a in arb_csr()) {
        use tilespgemm::matrix::Footprint;
        let tiled = TileMatrix::from_csr(&a);
        let total: usize = tiled.components().iter().map(|c| c.bytes).sum();
        prop_assert_eq!(total, tiled.bytes());
        // Per-nonzero payload scales exactly with nnz.
        let by_name: std::collections::BTreeMap<_, _> =
            tiled.components().into_iter().map(|c| (c.name, c.bytes)).collect();
        prop_assert_eq!(by_name["val"], a.nnz() * 8);
        prop_assert_eq!(by_name["rowIdx"], a.nnz());
    }
}
