//! Counter-correctness tests for the observability layer: every counter a
//! [`CollectingRecorder`] aggregates is checked against ground truth the
//! pipeline computes independently (the step-1 structure, the persisted
//! pair buffer, the tracker's byte accounting), and a property test pins
//! down that recording changes nothing about the numerics.

use std::sync::Arc;

use proptest::prelude::*;
use tilespgemm::core::Scheduling;
use tilespgemm::prelude::*;

/// A representative mix: a banded FEM-like pattern, a power-law scatter,
/// and a diagonal (degenerate: every output tile accumulates one pair).
fn fixtures() -> Vec<(&'static str, TileMatrix<f64>)> {
    let fem = tilespgemm::gen::suite::GenSpec::Fem {
        nodes: 120,
        block: 5,
        couplings: 3,
        spread: 9,
        seed: 7,
    }
    .build();
    let scatter = tilespgemm::gen::random::erdos_renyi(600, 600, 4_000, 21);
    let eye = Csr::<f64>::identity(300);
    vec![
        ("fem", TileMatrix::from_csr(&fem)),
        ("scatter", TileMatrix::from_csr(&scatter)),
        ("identity", TileMatrix::from_csr(&eye)),
    ]
}

/// One profiled product; returns the recorder's snapshot alongside the
/// output so every test reads the same run.
fn profiled_square(
    ta: &TileMatrix<f64>,
    config: Config,
) -> (
    tilespgemm::core::pipeline::Output<f64>,
    Arc<CollectingRecorder>,
    SpGemm,
) {
    let recorder = Arc::new(CollectingRecorder::new());
    let ctx = SpGemm::builder()
        .config(config)
        .recorder(recorder.clone())
        .build();
    let out = ctx.multiply(ta, ta).expect("multiply");
    (out, recorder, ctx)
}

#[test]
fn tiles_visited_equals_the_step1_tile_count() {
    for (name, ta) in fixtures() {
        let (out, recorder, _ctx) = profiled_square(&ta, Config::default());
        // Step 2 visits each tile of the step-1 structure exactly once, so
        // the counter must equal the output layout's tile count.
        assert_eq!(
            recorder.snapshot().get(Counter::TilesVisited) as usize,
            out.c.tile_count(),
            "{name}: one visit per predicted output tile"
        );
    }
}

#[test]
fn matched_pairs_equal_the_persisted_pair_buffer() {
    for (name, ta) in fixtures() {
        let (out, recorder, _ctx) = profiled_square(&ta, Config::default());
        let buf = out.pair_buffer.as_ref().expect("pair_reuse defaults on");
        assert_eq!(
            recorder.snapshot().get(Counter::MatchedPairs) as usize,
            buf.pair_count(),
            "{name}: the counter totals exactly the pairs step 2 persisted"
        );
        // The degenerate diagonal makes the bound exact: one pair per tile.
        if name == "identity" {
            assert_eq!(buf.pair_count(), out.c.tile_count());
        }
    }
}

#[test]
fn accumulator_picks_partition_the_output_tiles() {
    for (name, ta) in fixtures() {
        let (out, recorder, _ctx) = profiled_square(&ta, Config::default());
        let snap = recorder.snapshot();
        // Step 3 routes every output tile through exactly one accumulator,
        // so the two pick counters partition the tile count.
        assert_eq!(
            (snap.get(Counter::SparseAccPicks) + snap.get(Counter::DenseAccPicks)) as usize,
            out.c.tile_count(),
            "{name}: sparse + dense picks cover each tile exactly once"
        );
        // Under the adaptive default the bitmap kernel's cost proxy (its
        // fixed word count) may undercut the match count, so the classic
        // probe bound is pinned on the paper-faithful kernel.
        let bsearch = Config::builder()
            .intersection(tilespgemm::core::IntersectionKind::BinarySearch)
            .build();
        let (_, recorder, _ctx) = profiled_square(&ta, bsearch);
        let snap = recorder.snapshot();
        assert!(
            snap.get(Counter::IntersectionProbes) >= snap.get(Counter::MatchedPairs),
            "{name}: every match costs at least one probe"
        );
    }
}

#[test]
fn byte_counters_reconcile_with_the_tracker() {
    for (name, ta) in fixtures() {
        let (out, recorder, ctx) = profiled_square(&ta, Config::default());
        let snap = recorder.snapshot();
        let alloc = snap.get(Counter::BytesAlloc);
        let freed = snap.get(Counter::BytesFreed);
        // The pipeline drains its device attribution, so alloc == freed and
        // the tracker sits back at zero; the cumulative alloc total must
        // dominate the high-water mark both the tracker and the output
        // report.
        assert_eq!(alloc, freed, "{name}: attribution drains to zero");
        assert_eq!(ctx.tracker().current_bytes(), 0, "{name}");
        assert_eq!(ctx.tracker().peak_bytes(), out.peak_bytes, "{name}");
        assert!(
            alloc as usize >= out.peak_bytes,
            "{name}: total bytes allocated ({alloc}) below the peak ({})",
            out.peak_bytes
        );
    }
}

#[test]
fn binned_scheduling_reports_bin_occupancy() {
    let (_, ta) = fixtures().remove(0);
    let cfg = Config::builder().scheduling(Scheduling::Binned).build();
    // A single worker resolves Binned to PerTile (the bins cannot balance
    // anything there), so pin the counter contract inside a two-worker
    // pool where the binned dispatch genuinely runs — host-independent.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("two-worker pool");
    let (out, recorder, _ctx) = pool.install(|| profiled_square(&ta, cfg));
    let snap = recorder.snapshot();
    // Steps 2 and 3 each dispatch the full tile set through the bins.
    assert_eq!(
        snap.get(Counter::BinnedTiles) as usize,
        2 * out.c.tile_count()
    );
    let occupied = snap.get(Counter::BinsOccupied);
    assert!(occupied > 0, "some work bucket is non-empty");
    assert!(
        occupied <= 2 * 20,
        "at most all 20 buckets per binned dispatch"
    );
}

#[test]
fn counters_accumulate_across_jobs() {
    let (_, ta) = fixtures().remove(0);
    let recorder = Arc::new(CollectingRecorder::new());
    let ctx = SpGemm::builder().recorder(recorder.clone()).build();
    ctx.multiply(&ta, &ta).expect("job 1");
    let after_one = recorder.snapshot();
    ctx.multiply(&ta, &ta).expect("job 2");
    let delta = recorder.snapshot().since(&after_one);
    // The same product again adds exactly the same per-job totals, and each
    // job keeps its own span tree.
    assert_eq!(
        delta, after_one,
        "second job repeats the first job's totals"
    );
    assert_eq!(recorder.jobs(), vec![1, 2]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recording must be purely observational: the same product through a
    /// `NullRecorder` context, a `CollectingRecorder` context, and the free
    /// function is bitwise-identical.
    #[test]
    fn recording_never_changes_the_product(
        n in 8usize..96,
        nnz in 0usize..400,
        seed in 0u64..500,
    ) {
        let a = tilespgemm::gen::random::erdos_renyi(n, n, nnz.min(n * n), seed);
        let ta = TileMatrix::from_csr(&a);
        let free = multiply(&ta, &ta, &Config::default(), &MemTracker::new())
            .expect("free function");
        let null_ctx = SpGemm::new().multiply(&ta, &ta).expect("null context");
        let collecting = SpGemm::builder()
            .recorder(Arc::new(CollectingRecorder::new()))
            .build()
            .multiply(&ta, &ta)
            .expect("collecting context");
        prop_assert_eq!(&free.c, &null_ctx.c);
        prop_assert_eq!(&free.c, &collecting.c);
        prop_assert_eq!(free.peak_bytes, collecting.peak_bytes);
    }
}
