//! Property-based tests of the SpGEMM kernels: every method against the
//! dense oracle, algebraic identities, and structural guarantees of the
//! tiled product.
//!
//! Value comparison goes through the shared `tsg-check` comparator
//! (canonical form + documented `ValuePolicy`), so this file holds no
//! canonicalization of its own.

use proptest::prelude::*;
use tilespgemm::baselines::{run_method, MethodKind};
use tilespgemm::matrix::{Coo, Csr, Dense, TileMatrix};
use tilespgemm::prelude::*;
use tsg_check::{compare_csr, ValuePolicy};

fn arb_square(n_max: usize, nnz_max: usize) -> impl Strategy<Value = Csr<f64>> {
    (2usize..n_max).prop_flat_map(move |n| {
        let entry = (0..n as u32, 0..n as u32, 1i32..=9);
        proptest::collection::vec(entry, 0..nnz_max).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            for (r, c, v) in entries {
                // Positive values: no accidental cancellation, so pattern
                // comparisons are exact.
                coo.push(r, c, v as f64 * 0.25);
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_method_matches_the_dense_oracle(
        a in arb_square(48, 200),
        b_seed in 0u64..1000,
    ) {
        // B: a permuted variant of A's pattern with fresh values. The dense
        // oracle is independent of the sparse reference tsg-check uses.
        let policy = ValuePolicy::default();
        let b = tilespgemm::gen::random::erdos_renyi(a.nrows, a.ncols, a.nnz().max(1), b_seed)
            .map_values(f64::abs);
        let want = Dense::from_csr(&a).matmul(&Dense::from_csr(&b)).to_csr();
        for kind in MethodKind::all() {
            let got = run_method(kind, &a, &b, &MemTracker::new()).unwrap();
            let cmp = compare_csr(&got.c, &want, &policy);
            prop_assert!(
                cmp.is_ok(),
                "{} disagrees with the dense oracle: {:?}", kind.name(), cmp.err()
            );
        }
    }

    #[test]
    fn identity_is_neutral(a in arb_square(64, 250)) {
        let policy = ValuePolicy::default();
        let i = Csr::<f64>::identity(a.nrows);
        let left = multiply_csr(&i, &a, &Config::default(), &MemTracker::new()).unwrap().to_csr();
        let right = multiply_csr(&a, &i, &Config::default(), &MemTracker::new()).unwrap().to_csr();
        prop_assert!(compare_csr(&left, &a, &policy).is_ok(), "I*A != A");
        prop_assert!(compare_csr(&right, &a, &policy).is_ok(), "A*I != A");
    }

    #[test]
    fn transpose_identity_holds(a in arb_square(40, 150), b_seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ — with positive values both sides keep the same
        // stored pattern, so the comparison is strict.
        let policy = ValuePolicy::default();
        let b = tilespgemm::gen::random::erdos_renyi(a.nrows, a.ncols, a.nnz().max(1), b_seed)
            .map_values(f64::abs);
        let cfg = Config::default();
        let t = MemTracker::new();
        let ab = multiply_csr(&a, &b, &cfg, &t).unwrap().to_csr();
        let btat = multiply_csr(&b.transpose(), &a.transpose(), &cfg, &t).unwrap().to_csr();
        let cmp = compare_csr(&ab.transpose(), &btat, &policy);
        prop_assert!(cmp.is_ok(), "(AB)^T != B^T A^T: {:?}", cmp.err());
    }

    #[test]
    fn tiled_product_structure_is_valid_and_superset(a in arb_square(48, 250)) {
        let ta = TileMatrix::from_csr(&a);
        let out = tilespgemm::core::multiply(&ta, &ta, &Config::default(), &MemTracker::new())
            .unwrap();
        out.c.validate().unwrap();
        // Step-1 tile pattern is a superset of the exact product's tiles:
        // every tile of the exact product appears in the output layout.
        let exact = TileMatrix::from_csr(
            &Dense::from_csr(&a).matmul(&Dense::from_csr(&a)).to_csr(),
        );
        for ti in 0..exact.tile_m {
            for &tc in exact.tile_row_cols(ti) {
                prop_assert!(
                    out.c.tile_row_cols(ti).contains(&tc),
                    "tile ({ti},{tc}) missing from the step-1 layout"
                );
            }
        }
        // And the nonzero count matches the oracle exactly (positive
        // values -> no cancellation).
        prop_assert_eq!(out.c.nnz(), tilespgemm::gen::spgemm_nnz(&a, &a));
    }

    #[test]
    fn pair_buffer_equals_recomputed_matched_pairs(a in arb_square(48, 250)) {
        // The compact pair buffer step 2 persists must hold, tile for tile,
        // exactly the lists a fresh intersection produces.
        let ta = TileMatrix::from_csr(&a);
        let out = tilespgemm::core::multiply(&ta, &ta, &Config::default(), &MemTracker::new())
            .unwrap();
        let buf = out.pair_buffer.expect("pair_reuse defaults to on");
        prop_assert_eq!(buf.tile_count(), out.c.tile_count());
        let b_cols = ta.col_index();
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        let mut decoded = Vec::new();
        for ti in 0..out.c.tile_m {
            for t in out.c.tile_ptr[ti]..out.c.tile_ptr[ti + 1] {
                let tj = out.c.tile_colidx[t] as usize;
                tilespgemm::core::step2::matched_pairs(
                    &ta,
                    &b_cols,
                    ti,
                    tj,
                    tilespgemm::core::IntersectionKind::BinarySearch,
                    &mut scratch,
                    &mut pairs,
                );
                let (_, b_ids) = b_cols.col(tj);
                buf.decode_tile(t, ta.tile_ptr[ti] as u32, b_ids, &mut decoded);
                prop_assert_eq!(&decoded, &pairs, "tile {}", t);
            }
        }
    }

    #[test]
    fn flop_accounting_is_exact(a in arb_square(40, 150)) {
        // spgemm_flops == 2 * Σ_i Σ_{j∈row i} nnz(row j), computed two ways.
        let brute: u64 = (0..a.nrows)
            .map(|i| {
                a.row(i).0.iter()
                    .map(|&j| a.row_nnz(j as usize) as u64)
                    .sum::<u64>()
            })
            .sum::<u64>() * 2;
        prop_assert_eq!(a.spgemm_flops(&a), brute);
    }

    #[test]
    fn scalar_distributes(a in arb_square(32, 120)) {
        // (2A)·A == 2·(A·A)
        let policy = ValuePolicy::default();
        let cfg = Config::default();
        let t = MemTracker::new();
        let doubled = a.map_values(|v| v * 2.0);
        let lhs = multiply_csr(&doubled, &a, &cfg, &t).unwrap().to_csr();
        let rhs_base = multiply_csr(&a, &a, &cfg, &t).unwrap().to_csr();
        let rhs = rhs_base.map_values(|v| v * 2.0);
        let cmp = compare_csr(&lhs, &rhs, &policy);
        prop_assert!(cmp.is_ok(), "(2A)A != 2(AA): {:?}", cmp.err());
    }
}
