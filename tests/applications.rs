//! Application-level integration tests: the workflows of the example
//! binaries, exercised through the public API with assertions (AMG Galerkin
//! products, triangle counting, Markov clustering, file I/O, tiled SpMV and
//! addition chained with SpGEMM).

use tilespgemm::matrix::ops;
use tilespgemm::prelude::*;

fn poisson(nx: usize, ny: usize) -> Csr<f64> {
    tilespgemm::gen::stencil::grid_2d_5pt(nx, ny)
}

#[test]
fn galerkin_triple_product_preserves_mass_and_symmetry() {
    let a = poisson(48, 48);
    let n = a.nrows;
    // Aggregation prolongation: 4 fine unknowns -> 1 coarse.
    let mut coo = tilespgemm::matrix::Coo::new(n, n.div_ceil(4));
    for i in 0..n {
        coo.push(i as u32, (i / 4) as u32, 1.0);
    }
    let p = coo.to_csr();
    // The triple product runs through one execution context: both products
    // share its tracker and configuration.
    let ctx = SpGemm::new();
    let ap = ctx.multiply_csr(&a, &p).unwrap().to_csr();
    let coarse = ctx.multiply_csr(&p.transpose(), &ap).unwrap().to_csr();
    assert_eq!(coarse.nrows, n.div_ceil(4));
    let fine_mass = ops::sum_all(&a);
    let coarse_mass = ops::sum_all(&coarse);
    assert!((fine_mass - coarse_mass).abs() < 1e-8);
    assert_eq!(coarse, coarse.transpose());
}

#[test]
fn triangle_count_on_complete_graph_is_n_choose_3() {
    // K_12: C(12,3) = 220 triangles.
    let n = 12usize;
    let mut coo = tilespgemm::matrix::Coo::new(n, n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                coo.push(u, v, 1.0);
            }
        }
    }
    let adj = coo.to_csr();
    let a2 = multiply_csr(&adj, &adj, &Config::default(), &MemTracker::new())
        .unwrap()
        .to_csr();
    let masked = ops::hadamard(&a2, &adj);
    let triangles = (ops::sum_all(&masked) as f64 / 6.0).round() as u64;
    assert_eq!(triangles, 220);
}

#[test]
fn triangle_count_on_cycle_is_zero() {
    let n = 30usize;
    let mut coo = tilespgemm::matrix::Coo::new(n, n);
    for u in 0..n {
        let v = (u + 1) % n;
        coo.push(u as u32, v as u32, 1.0);
        coo.push(v as u32, u as u32, 1.0);
    }
    let adj = coo.to_csr();
    let a2 = multiply_csr(&adj, &adj, &Config::default(), &MemTracker::new())
        .unwrap()
        .to_csr();
    let masked = ops::hadamard(&a2, &adj);
    assert_eq!(ops::sum_all(&masked), 0.0);
}

#[test]
fn mcl_expansion_preserves_column_stochasticity() {
    // M column-stochastic -> M² column-stochastic: SpGEMM must preserve the
    // column sums exactly up to FP error.
    let adj = tilespgemm::gen::random::erdos_renyi(200, 200, 1500, 3).map_values(f64::abs);
    let m = ops::normalize_columns(&ops::add(
        1.0,
        &adj,
        1.0,
        &Csr::identity(200), // self-loops keep columns non-empty
    ));
    let m2 = multiply_csr(&m, &m, &Config::default(), &MemTracker::new())
        .unwrap()
        .to_csr();
    let mut colsum = vec![0.0f64; 200];
    for row in 0..200 {
        let (cols, vals) = m2.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            colsum[c as usize] += v;
        }
    }
    for (j, s) in colsum.iter().enumerate() {
        assert!((s - 1.0).abs() < 1e-9, "column {j} sums to {s}");
    }
}

#[test]
fn matrix_market_file_round_trip_through_disk() {
    let a = tilespgemm::gen::fem::banded(300, 8, 4, 5);
    let path = std::env::temp_dir().join("tsg_roundtrip_test.mtx");
    {
        let file = std::fs::File::create(&path).unwrap();
        tilespgemm::matrix::io::write_matrix_market(&a, std::io::BufWriter::new(file)).unwrap();
    }
    let back = tilespgemm::matrix::io::read_matrix_market_file::<f64>(&path)
        .unwrap()
        .to_csr();
    std::fs::remove_file(&path).ok();
    assert_eq!(back, a);
}

#[test]
fn tiled_spmv_agrees_after_spgemm_chain() {
    // y = (A²)·x computed (a) by tiled SpMV on the tiled SpGEMM output and
    // (b) by two CSR SpMVs.
    let a = poisson(40, 40);
    let ta = TileMatrix::from_csr(&a);
    let a2 = tilespgemm::core::multiply(&ta, &ta, &Config::default(), &MemTracker::new())
        .unwrap()
        .c;
    let x: Vec<f64> = (0..a.ncols).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
    let direct = tilespgemm::core::spmv(&a2, &x);
    let two_step = a.spmv(&a.spmv(&x));
    for (d, t) in direct.iter().zip(&two_step) {
        assert!((d - t).abs() < 1e-9);
    }
}

#[test]
fn tiled_add_chains_with_spgemm_for_matrix_polynomials() {
    // p(A) = A² + 2A + 3I, assembled fully in tiled form.
    let a = poisson(24, 24);
    let ta = TileMatrix::from_csr(&a);
    let i = TileMatrix::from_csr(&Csr::identity(a.nrows));
    let a2 = tilespgemm::core::multiply(&ta, &ta, &Config::default(), &MemTracker::new())
        .unwrap()
        .c;
    let poly = tilespgemm::core::add(1.0, &a2, 1.0, &tilespgemm::core::add(2.0, &ta, 3.0, &i));
    poly.validate().unwrap();
    let want = ops::add(
        1.0,
        &tilespgemm::baselines::reference::reference_spgemm(&a, &a),
        1.0,
        &ops::add(2.0, &a, 3.0, &Csr::identity(a.nrows)),
    )
    .drop_numeric_zeros();
    assert!(poly
        .to_csr()
        .drop_numeric_zeros()
        .approx_eq_ignoring_zeros(&want, 1e-10));
}

#[test]
fn tsparse_f32_pipeline_matches_tilespgemm_f32() {
    // The §4.7 comparison path end to end through the public API.
    let a64 = tilespgemm::gen::fem::banded(400, 10, 5, 9);
    let a: Csr<f32> = a64.cast();
    let ta = TileMatrix::from_csr(&a);
    let ts = tilespgemm::baselines::tsparse::multiply_tiled(&ta, &ta, &MemTracker::new()).unwrap();
    let tile =
        tilespgemm::core::multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
    assert!(ts
        .c
        .to_csr()
        .drop_numeric_zeros()
        .approx_eq_ignoring_zeros(&tile.c.to_csr().drop_numeric_zeros(), 1e-3));
}
