//! Cross-method correctness: every SpGEMM implementation in the workspace
//! must produce the same product as the serial gold reference, on every
//! generator family, for both `A²` and `A·Aᵀ`.

use tilespgemm::baselines::reference::reference_spgemm;
use tilespgemm::baselines::{run_method, MethodKind};
use tilespgemm::gen::suite::GenSpec;
use tilespgemm::prelude::*;

fn family_zoo() -> Vec<(&'static str, Csr<f64>)> {
    use GenSpec::*;
    let specs: Vec<(&'static str, GenSpec)> = vec![
        (
            "fem",
            Fem {
                nodes: 120,
                block: 5,
                couplings: 4,
                spread: 8,
                seed: 1,
            },
        ),
        (
            "banded",
            Banded {
                n: 700,
                bandwidth: 12,
                per_row: 6,
                seed: 2,
            },
        ),
        ("grid5", Grid5 { nx: 23, ny: 31 }),
        ("grid9", Grid9 { nx: 17, ny: 19 }),
        ("grid-upwind", GridUpwind { nx: 21, ny: 14 }),
        (
            "grid27",
            Grid27 {
                nx: 7,
                ny: 8,
                nz: 6,
            },
        ),
        (
            "rmat",
            Rmat {
                scale: 9,
                edges: 4000,
                mild: false,
                seed: 3,
            },
        ),
        (
            "rmat-mild",
            Rmat {
                scale: 9,
                edges: 5000,
                mild: true,
                seed: 4,
            },
        ),
        (
            "scatter",
            Scatter {
                n: 600,
                per_row: 4,
                seed: 5,
            },
        ),
        (
            "arrow",
            Arrow {
                n: 300,
                border: 3,
                body_per_row: 5,
                seed: 6,
            },
        ),
        (
            "cluster",
            PowerFlow {
                clusters: 6,
                cluster_size: 18,
                links: 60,
                seed: 7,
            },
        ),
        (
            "kron",
            KronGridBlock {
                nx: 9,
                ny: 9,
                block: 3,
                seed: 8,
            },
        ),
    ];
    specs.into_iter().map(|(n, s)| (n, s.build())).collect()
}

#[test]
fn all_methods_match_reference_on_a_squared() {
    for (name, a) in family_zoo() {
        let want = reference_spgemm(&a, &a).drop_numeric_zeros();
        for kind in MethodKind::all() {
            let got = run_method(kind, &a, &a, &MemTracker::new())
                .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", kind.name()));
            assert!(
                got.c.approx_eq_ignoring_zeros(&want, 1e-9),
                "{} disagrees with reference on {name} (A^2)",
                kind.name()
            );
        }
    }
}

#[test]
fn all_methods_match_reference_on_aat() {
    for (name, a) in family_zoo() {
        let at = a.transpose();
        let want = reference_spgemm(&a, &at).drop_numeric_zeros();
        for kind in MethodKind::all() {
            let got = run_method(kind, &a, &at, &MemTracker::new())
                .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", kind.name()));
            assert!(
                got.c.approx_eq_ignoring_zeros(&want, 1e-9),
                "{} disagrees with reference on {name} (A*A^T)",
                kind.name()
            );
        }
    }
}

#[test]
fn rectangular_chain_products_agree() {
    // A (60x90) * B (90x40): only the tiled method and the reference take
    // arbitrary rectangles through the public `multiply_csr` API.
    let a = tilespgemm::gen::random::erdos_renyi(60, 90, 500, 11);
    let b = tilespgemm::gen::random::erdos_renyi(90, 40, 400, 12);
    let want = reference_spgemm(&a, &b).drop_numeric_zeros();
    let got = multiply_csr(&a, &b, &Config::default(), &MemTracker::new())
        .unwrap()
        .to_csr();
    assert!(got.approx_eq_ignoring_zeros(&want, 1e-10));
}

#[test]
fn tilespgemm_matches_reference_under_every_config() {
    use tilespgemm::core::{AccumulatorKind, IntersectionKind};
    let a = tilespgemm::gen::fem::fem_blocks(40, 6, 4, 6, 9);
    let want = reference_spgemm(&a, &a).drop_numeric_zeros();
    for intersection in [IntersectionKind::BinarySearch, IntersectionKind::Merge] {
        for accumulator in [
            AccumulatorKind::Adaptive,
            AccumulatorKind::AlwaysSparse,
            AccumulatorKind::AlwaysDense,
        ] {
            let cfg = Config::builder()
                .tnnz_threshold(192)
                .intersection(intersection)
                .accumulator(accumulator)
                .build();
            let got = multiply_csr(&a, &a, &cfg, &MemTracker::new())
                .unwrap()
                .to_csr();
            assert!(
                got.approx_eq_ignoring_zeros(&want, 1e-9),
                "config {cfg:?} disagrees"
            );
        }
    }
}

#[test]
fn chained_products_stay_in_tiled_form() {
    // (A*A)*A == A*(A*A) — exercises reusing a TileSpGEMM output matrix as
    // an operand without round-tripping through CSR.
    let a_csr = tilespgemm::gen::stencil::grid_2d_5pt(40, 40);
    let a = TileMatrix::from_csr(&a_csr);
    let cfg = Config::default();
    let t = MemTracker::new();
    let a2 = tilespgemm::core::multiply(&a, &a, &cfg, &t).unwrap().c;
    let left = tilespgemm::core::multiply(&a2, &a, &cfg, &t).unwrap().c;
    let right_in = tilespgemm::core::multiply(&a, &a2, &cfg, &t).unwrap().c;
    let l = left.to_csr().drop_numeric_zeros();
    let r = right_in.to_csr().drop_numeric_zeros();
    assert!(l.approx_eq_ignoring_zeros(&r, 1e-9));
    // And equals the reference A^3.
    let want = reference_spgemm(&reference_spgemm(&a_csr, &a_csr), &a_csr).drop_numeric_zeros();
    assert!(l.approx_eq_ignoring_zeros(&want, 1e-9));
}
