//! Cross-method correctness: every SpGEMM implementation in the workspace
//! must produce the same product as the serial gold reference, on every
//! generator family, for both `A²` and `A·Aᵀ`.
//!
//! Comparison runs through the shared `tsg-check` oracle (DESIGN.md §10):
//! canonical form and the documented value policy live there, not here.

use tilespgemm::baselines::reference::reference_spgemm;
use tilespgemm::gen::suite::GenSpec;
use tilespgemm::prelude::*;
use tsg_check::{check_configs, check_methods, check_pair, compare_csr, ValuePolicy};

fn family_zoo() -> Vec<(&'static str, Csr<f64>)> {
    use GenSpec::*;
    let specs: Vec<(&'static str, GenSpec)> = vec![
        (
            "fem",
            Fem {
                nodes: 120,
                block: 5,
                couplings: 4,
                spread: 8,
                seed: 1,
            },
        ),
        (
            "banded",
            Banded {
                n: 700,
                bandwidth: 12,
                per_row: 6,
                seed: 2,
            },
        ),
        ("grid5", Grid5 { nx: 23, ny: 31 }),
        ("grid9", Grid9 { nx: 17, ny: 19 }),
        ("grid-upwind", GridUpwind { nx: 21, ny: 14 }),
        (
            "grid27",
            Grid27 {
                nx: 7,
                ny: 8,
                nz: 6,
            },
        ),
        (
            "rmat",
            Rmat {
                scale: 9,
                edges: 4000,
                mild: false,
                seed: 3,
            },
        ),
        (
            "rmat-mild",
            Rmat {
                scale: 9,
                edges: 5000,
                mild: true,
                seed: 4,
            },
        ),
        (
            "scatter",
            Scatter {
                n: 600,
                per_row: 4,
                seed: 5,
            },
        ),
        (
            "arrow",
            Arrow {
                n: 300,
                border: 3,
                body_per_row: 5,
                seed: 6,
            },
        ),
        (
            "cluster",
            PowerFlow {
                clusters: 6,
                cluster_size: 18,
                links: 60,
                seed: 7,
            },
        ),
        (
            "kron",
            KronGridBlock {
                nx: 9,
                ny: 9,
                block: 3,
                seed: 8,
            },
        ),
    ];
    specs.into_iter().map(|(n, s)| (n, s.build())).collect()
}

#[test]
fn all_methods_match_reference_on_a_squared() {
    let policy = ValuePolicy::default();
    for (name, a) in family_zoo() {
        let checked =
            check_methods(&a, &a, &policy).unwrap_or_else(|f| panic!("{name} (A^2): {f}"));
        assert_eq!(checked, 5, "{name}: all five methods checked");
    }
}

#[test]
fn all_methods_match_reference_on_aat() {
    let policy = ValuePolicy::default();
    for (name, a) in family_zoo() {
        let at = a.transpose();
        check_methods(&a, &at, &policy).unwrap_or_else(|f| panic!("{name} (A*A^T): {f}"));
    }
}

#[test]
fn rectangular_chain_products_agree() {
    // A (60x90) * B (90x40): the full oracle — every pipeline config plus
    // every baseline — on an arbitrary rectangular chain.
    let a = tilespgemm::gen::random::erdos_renyi(60, 90, 500, 11);
    let b = tilespgemm::gen::random::erdos_renyi(90, 40, 400, 12);
    let report = check_pair(&a, &b, &ValuePolicy::default()).unwrap();
    assert!(report.gold_nnz > 0);
}

#[test]
fn tilespgemm_matches_reference_under_every_config() {
    // The shared oracle's config sweep covers intersection × accumulator ×
    // scheduling × pair-reuse × threshold; 46 pipeline variants in all
    // (1 pivot + 32 bitwise + 1 recorder + 12 value-tier).
    let a = tilespgemm::gen::fem::fem_blocks(40, 6, 4, 6, 9);
    let checked = check_configs(&a, &a, &ValuePolicy::default())
        .unwrap_or_else(|f| panic!("config sweep: {f}"));
    assert_eq!(checked, 46);
}

#[test]
fn chained_products_stay_in_tiled_form() {
    // (A*A)*A == A*(A*A) — exercises reusing a TileSpGEMM output matrix as
    // an operand without round-tripping through CSR.
    let policy = ValuePolicy::default();
    let a_csr = tilespgemm::gen::stencil::grid_2d_5pt(40, 40);
    let a = TileMatrix::from_csr(&a_csr);
    let cfg = Config::default();
    let t = MemTracker::new();
    let a2 = tilespgemm::core::multiply(&a, &a, &cfg, &t).unwrap().c;
    let left = tilespgemm::core::multiply(&a2, &a, &cfg, &t).unwrap().c;
    let right_in = tilespgemm::core::multiply(&a, &a2, &cfg, &t).unwrap().c;
    compare_csr(&left.to_csr(), &right_in.to_csr(), &policy).expect("associativity");
    // And equals the reference A^3.
    let want = reference_spgemm(&reference_spgemm(&a_csr, &a_csr), &a_csr);
    compare_csr(&left.to_csr(), &want, &policy).expect("matches reference A^3");
}
