//! Integration tests of the memory-budget / device substrate as the
//! figure harness uses it: OOM classification, tracker consistency across
//! whole runs, and device pools.

use tilespgemm::baselines::{run_method, MethodKind};
use tilespgemm::gen::suite::GenSpec;
use tilespgemm::prelude::*;
use tilespgemm::runtime::{run_on, Device};

/// A flop-heavy dense-cluster matrix (small n, enormous intermediate count)
/// — the `gupta3` regime.
fn flop_heavy() -> tilespgemm::matrix::Csr<f64> {
    GenSpec::PowerFlow {
        clusters: 6,
        cluster_size: 60,
        links: 100,
        seed: 3,
    }
    .build()
}

#[test]
fn row_row_methods_oom_on_tight_budgets_but_tilespgemm_survives() {
    let a = flop_heavy();
    // products ~ 360 * 3600 = 1.3M -> row-row work buffers ~15 MB.
    let budget = 4 << 20;
    for kind in [
        MethodKind::CuSparseLike,
        MethodKind::BhSparseLike,
        MethodKind::NSparseLike,
    ] {
        let tracker = MemTracker::with_budget(budget);
        let err = run_method(kind, &a, &a, &tracker).unwrap_err();
        assert!(
            matches!(err, SpGemmError::OutOfMemory(_)),
            "{} should OOM under {budget} bytes",
            kind.name()
        );
    }
    // TileSpGEMM's working set is the tiled operands + output only.
    let tracker = MemTracker::with_budget(budget);
    let out = run_method(MethodKind::TileSpGemm, &a, &a, &tracker).unwrap();
    assert!(out.peak_bytes <= budget);
}

#[test]
fn tracker_balances_to_output_only_after_each_method() {
    let a = GenSpec::Banded {
        n: 400,
        bandwidth: 10,
        per_row: 5,
        seed: 1,
    }
    .build();
    for kind in MethodKind::all() {
        let tracker = MemTracker::new();
        let _ = run_method(kind, &a, &a, &tracker).unwrap();
        // Temporaries and inputs must be credited back; what remains
        // attributed is at most the output's allocation.
        let leftover = tracker.current_bytes();
        assert!(
            leftover <= tracker.peak_bytes(),
            "{}: leftover {} exceeds peak {}",
            kind.name(),
            leftover,
            tracker.peak_bytes()
        );
        assert!(tracker.peak_bytes() > 0, "{} tracked nothing", kind.name());
    }
}

#[test]
fn timeline_is_monotone_in_time_and_bounded_by_peak() {
    let a = flop_heavy();
    let tracker = MemTracker::with_timeline(usize::MAX);
    let _ = run_method(MethodKind::BhSparseLike, &a, &a, &tracker).unwrap();
    let tl = tracker.timeline();
    assert!(!tl.is_empty());
    assert!(tl.windows(2).all(|w| w[0].at <= w[1].at));
    let max_current = tl.iter().map(|p| p.current_bytes).max().unwrap();
    assert_eq!(max_current, tracker.peak_bytes());
}

#[test]
fn device_budgets_split_the_failure_frontier() {
    // A matrix whose row-row work buffer fits the 3090-sim budget but not
    // the 3060-sim's half budget: 3090 completes, 3060 fails — the paper's
    // per-device completion difference in Figure 6.
    let a = GenSpec::PowerFlow {
        clusters: 40,
        cluster_size: 110,
        links: 500,
        seed: 9,
    }
    .build();
    // products ≈ 4400 * 110² = 53M -> cuSPARSE-like buffer ≈ 640 MB,
    // between the 3060-sim (512 MiB) and 3090-sim (1 GiB) budgets.
    let d3090 = Device::rtx3090_sim();
    let d3060 = Device::rtx3060_sim();
    let ok = run_on(&d3090, || {
        run_method(
            MethodKind::CuSparseLike,
            &a,
            &a,
            &MemTracker::with_budget(d3090.mem_budget),
        )
    });
    assert!(ok.is_ok(), "3090-sim should complete");
    let err = run_on(&d3060, || {
        run_method(
            MethodKind::CuSparseLike,
            &a,
            &a,
            &MemTracker::with_budget(d3060.mem_budget),
        )
    });
    assert!(
        matches!(err, Err(SpGemmError::OutOfMemory(_))),
        "3060-sim should fail"
    );
}

#[test]
fn oom_failures_leave_no_partial_output() {
    let a = flop_heavy();
    let tracker = MemTracker::with_budget(1 << 20);
    let before = tracker.current_bytes();
    let _ = run_method(MethodKind::BhSparseLike, &a, &a, &tracker).unwrap_err();
    // The budget-exceeding allocation must have been rolled back.
    assert!(tracker.current_bytes() >= before);
    assert!(tracker.current_bytes() <= tracker.budget());
}

#[test]
fn serial_and_parallel_devices_agree_bitwise_for_tilespgemm() {
    // One task owns each tile, so TileSpGEMM's accumulation order is
    // deterministic regardless of the worker count.
    let a = GenSpec::Fem {
        nodes: 60,
        block: 6,
        couplings: 4,
        spread: 6,
        seed: 4,
    }
    .build();
    let run = |device: &Device| {
        run_on(device, || {
            run_method(MethodKind::TileSpGemm, &a, &a, &MemTracker::new())
                .unwrap()
                .c
        })
    };
    let serial = run(&Device::serial());
    let parallel = run(&Device::new("four", 4, usize::MAX));
    assert_eq!(serial.rowptr, parallel.rowptr);
    assert_eq!(serial.colidx, parallel.colidx);
    assert_eq!(serial.vals, parallel.vals, "bitwise determinism violated");
}

#[test]
fn tilespgemm_peak_is_bounded_by_operands_plus_output() {
    // The paper's central memory claim: no global intermediate-product
    // buffer, so the peak is operands + output structure + O(tiles), never
    // O(intermediate products). The flop-heavy cluster matrix has ~30x more
    // products than output nonzeros, so an intermediate buffer would blow
    // this bound immediately.
    use tilespgemm::matrix::Footprint;
    let a = flop_heavy();
    let ta = TileMatrix::from_csr(&a);
    let tracker = MemTracker::new();
    let out = tilespgemm::core::multiply(&ta, &ta, &Config::default(), &tracker).unwrap();
    let operands = 2 * ta.bytes();
    let output = out.c.bytes();
    let slack = 64 * out.c.tile_count() + (1 << 20);
    assert!(
        out.peak_bytes <= operands + output + slack,
        "peak {} exceeds operands {} + output {} + slack {}",
        out.peak_bytes,
        operands,
        output,
        slack
    );
    // Sanity that the bound is meaningfully tight: the intermediate-product
    // volume is far larger.
    let products_bytes = (a.spgemm_flops(&a) / 2) as usize * 12;
    assert!(products_bytes > 2 * (operands + output + slack));
}
