//! Dataset-fidelity tests: the synthetic registry must reproduce the
//! qualitative properties Table 2 and §2.3 attribute to the matrices it
//! stands in for — compression-rate ordering, power-law skew, tile density
//! regimes — because the evaluation's shape claims hinge on them.

use tilespgemm::gen::suite::by_name;
use tilespgemm::gen::{matrix_stats, MatrixStats};
use tilespgemm::prelude::*;

fn stats_of(name: &str) -> MatrixStats {
    let a = by_name(name).expect(name).build();
    matrix_stats(&a, &a)
}

#[test]
fn compression_rates_order_like_table_2() {
    // Table 2's extremes: SiO2 (136) and gupta3 (113) high; mac_econ (1.13),
    // mc2depi (1.60), scircuit (1.66) near one. The synthetic stand-ins must
    // keep that ordering with a wide margin.
    let high = [stats_of("SiO2-like"), stats_of("gupta3-like")];
    let low = [
        stats_of("mac_econ_fwd500-like"),
        stats_of("mc2depi-like"),
        stats_of("scircuit-like"),
    ];
    for h in &high {
        assert!(
            h.compression_rate > 25.0,
            "high-rate entry at {}",
            h.compression_rate
        );
    }
    for l in &low {
        assert!(
            l.compression_rate < 3.0,
            "low-rate entry at {}",
            l.compression_rate
        );
    }
}

#[test]
fn webbase_like_shows_the_section_2_3_imbalance() {
    // §2.3: on webbase-1M a handful of rows dominate the flop count while
    // the overwhelming majority are tiny.
    let a = by_name("webbase-1M-like").unwrap().build();
    let ubs = a.row_upper_bounds(&a);
    let total: usize = ubs.iter().sum();
    let mut sorted = ubs.clone();
    sorted.sort_unstable_by(|x, y| y.cmp(x));
    let top_1pct: usize = sorted.iter().take(a.nrows / 100).sum();
    // Uniform work would put 1% here; the R-MAT stand-in puts >25% (the
    // real webbase-1M concentrates even harder).
    assert!(
        top_1pct as f64 > 0.25 * total as f64,
        "top 1% of rows only carry {:.0}% of the work",
        100.0 * top_1pct as f64 / total as f64
    );
    // Heavy-tailed distribution: the typical row sits far below the mean.
    let mean = total / a.nrows;
    let below_mean = ubs.iter().filter(|&&u| u < mean).count();
    assert!(
        below_mean as f64 > 0.7 * a.nrows as f64,
        "only {below_mean}/{} rows below the mean bound",
        a.nrows
    );
}

#[test]
fn fem_entries_have_dense_tiles_and_hypersparse_entries_do_not() {
    let fem = by_name("pdb1HYS-like").unwrap().build();
    let fem_tiled = TileMatrix::from_csr(&fem);
    let fem_density = fem_tiled.nnz() as f64 / fem_tiled.tile_count() as f64;
    assert!(fem_density > 25.0, "FEM tiles average {fem_density:.1} nnz");

    let scatter = by_name("cop20k_A-like").unwrap().build();
    let scatter_tiled = TileMatrix::from_csr(&scatter);
    let scatter_density = scatter_tiled.nnz() as f64 / scatter_tiled.tile_count() as f64;
    assert!(
        scatter_density < 2.0,
        "hypersparse tiles average {scatter_density:.1} nnz"
    );
}

#[test]
fn flop_heavy_entries_dwarf_their_size() {
    // TSOPF/gupta3-style: small order, enormous flops — the matrices whose
    // intermediate products exhaust row-row memory in Figure 7.
    for name in ["TSOPF_FS_b300_c2-like", "gupta3-like"] {
        let s = stats_of(name);
        let flops_per_nnz = s.flops as f64 / s.nnz_a as f64;
        assert!(
            flops_per_nnz > 100.0,
            "{name}: only {flops_per_nnz:.0} flops per nonzero"
        );
    }
}

#[test]
fn dataset_is_reproducible_across_builds() {
    let first = by_name("scircuit-like").unwrap().build();
    let second = by_name("scircuit-like").unwrap().build();
    assert_eq!(first, second);
}

#[test]
fn mc2depi_like_is_asymmetric_as_figure_8_requires() {
    let a = by_name("mc2depi-like").unwrap().build();
    let t = a.transpose();
    assert!(a.rowptr != t.rowptr || a.colidx != t.colidx);
}
