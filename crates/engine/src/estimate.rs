//! Per-job cost prediction for admission control.
//!
//! The engine predicts, before running a job, roughly how many flops the
//! product costs and how many device bytes it will touch, in the same spirit
//! as spECK's lightweight pre-analysis (and the per-tile work estimate the
//! pipeline's `Scheduling::Binned` mode bins by): cheap to compute, accurate
//! enough to steer scheduling, and explicitly *not* an upper bound. Jobs
//! whose prediction already exceeds the device budget are rejected up front;
//! jobs the prediction lets through can still trip the [`MemTracker`] budget
//! mid-flight (the estimate ignores most step-2 temporaries and assumes a
//! modest output compression factor), which surfaces as an `out_of_memory`
//! job failure — the engine analogue of the paper's Figure-7 "0.00" bars.
//! Two step-2/3 terms large enough to matter are modelled explicitly: the
//! delta-packed matched-pair buffer (~2 bytes per surviving pair) and the
//! per-worker scratch arenas the pipeline reserves.
//!
//! When both operand structures are on hand the engine now prefers the
//! *sampled* estimators ([`estimate_job_sampled`], [`estimate_tiled_sampled`])
//! built on [`tilespgemm_core::sample`]: instead of assuming a fixed
//! compression constant they measure the exact symbolic product on a seeded
//! subset of A's tile rows and admit against the upper edge of the resulting
//! confidence band. The constant-factor model below remains the fallback for
//! shape-only estimates and for the `engine.estimate_sample` failpoint path.
//!
//! [`MemTracker`]: tsg_runtime::MemTracker

use tilespgemm_core::sample::{sample_csr, sample_tiled, SampleStats};
use tsg_matrix::{Csr, Footprint, TileMatrix, TILE_AREA, TILE_DIM};
use tsg_runtime::Scratch;

/// Assumed ratio of intermediate products to output nonzeros. Sparse-sparse
/// products on the paper's dataset typically compact by 1–4×; predicting 4×
/// keeps admission permissive (under-admitting wastes the device, and the
/// tracker still backstops over-admission). Only the fallback paths use this
/// constant now — sampled estimates measure the compression instead.
pub const ASSUMED_COMPRESSION: u64 = 4;

/// How a sampled estimate was obtained — the integer-only band summary kept
/// on [`JobEstimate`] (integers so the estimate stays `Eq` and the sampler's
/// cross-thread bit-reproducibility carries through to the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleInfo {
    /// Tile rows of `A` actually measured.
    pub sampled_tile_rows: u32,
    /// Tile rows of `A` in total (the sampling population).
    pub total_tile_rows: u32,
    /// Lower edge of the 95% band on nnz(C).
    pub nnz_lo: usize,
    /// Upper edge of the 95% band on nnz(C) — what admission charges for.
    pub nnz_hi: usize,
    /// Estimated surviving `(A_ik, B_kj)` tile pairs (pair-buffer sizing).
    pub est_pairs: usize,
    /// Estimated non-empty output tiles.
    pub est_tiles_c: usize,
    /// The whole population was measured; the band has zero width.
    pub exact: bool,
}

/// Predicted cost of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEstimate {
    /// Flop count. Exact (2 × intermediate products) when both CSR forms
    /// are on hand; a structural heuristic otherwise (chain intermediates,
    /// resident products whose CSR was never derived).
    pub flops: u64,
    /// Predicted output nonzeros after compaction (the band's point
    /// estimate when [`Self::sample`] is present).
    pub est_nnz_c: usize,
    /// Predicted peak device bytes: tiled operands plus the output. Sampled
    /// estimates charge the band-upper nonzero count here, so admission is
    /// conservative within the measured band rather than within a guessed
    /// constant.
    pub est_bytes: usize,
    /// Present when the estimate came from a sampled symbolic pass.
    pub sample: Option<SampleInfo>,
}

/// The shape summary an estimate needs from an operand — available from the
/// registry without materializing either matrix form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandShape {
    /// Row count.
    pub nrows: usize,
    /// Column count.
    pub ncols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
}

impl OperandShape {
    /// Shape of a CSR operand.
    pub fn of_csr(c: &Csr<f64>) -> Self {
        OperandShape {
            nrows: c.nrows,
            ncols: c.ncols,
            nnz: c.nnz(),
        }
    }

    /// Shape of a tiled operand.
    pub fn of_tiled(t: &TileMatrix<f64>) -> Self {
        OperandShape {
            nrows: t.nrows,
            ncols: t.ncols,
            nnz: t.nnz(),
        }
    }
}

/// Bytes of a tiled matrix without building it: per-nonzero locals
/// (`rowIdx`+`colIdx`+`val`), per-tile overhead (`rowPtr`+`mask` plus the
/// `tileColIdx`/`tileNnz` slots), and the tile-row pointer array. The tile
/// count is unknown before conversion, so it is bounded by nnz (every
/// nonzero in its own tile) and by the grid size.
pub fn est_tiled_bytes(nrows: usize, ncols: usize, nnz: usize) -> usize {
    let tile_m = nrows.div_ceil(TILE_DIM);
    let tile_n = ncols.div_ceil(TILE_DIM);
    let est_tiles = nnz.min(tile_m.saturating_mul(tile_n)).max(1);
    let per_tile = TILE_DIM // rowPtr: u8 per tile row
        + TILE_DIM * 2 // mask: u16 per tile row
        + 4 // tileColIdx
        + 8; // tileNnz slot
             // `tile_nnz` is an offset array of length tiles + 1, hence the extra slot.
    nnz * (1 + 1 + 8) + est_tiles * per_tile + 8 + (tile_m + 1) * 8
}

/// Predicts the cost of `a · b`. When a tiled form is already cached its
/// exact byte count replaces the structural estimate.
pub fn estimate_job(
    a: &Csr<f64>,
    a_tiled: Option<&TileMatrix<f64>>,
    b: &Csr<f64>,
    b_tiled: Option<&TileMatrix<f64>>,
) -> JobEstimate {
    let flops = a.spgemm_flops(b);
    let a_bytes = a_tiled
        .map(Footprint::bytes)
        .unwrap_or_else(|| est_tiled_bytes(a.nrows, a.ncols, a.nnz()));
    let b_bytes = b_tiled
        .map(Footprint::bytes)
        .unwrap_or_else(|| est_tiled_bytes(b.nrows, b.ncols, b.nnz()));
    assemble_product(flops, a.nrows, b.ncols, a_bytes, b_bytes)
}

/// Predicts the cost of a product from operand *shapes* alone — the path
/// for operands whose CSR form does not exist (resident tiled products,
/// chain intermediates that are still hypothetical at admission time).
/// Flops use the uniform-row heuristic `2 · nnz(A) · nnz(B)/nrows(B)`
/// instead of the exact row-by-row count; everything downstream of the flop
/// count is the same model as [`estimate_job`].
pub fn estimate_product(a: OperandShape, b: OperandShape) -> JobEstimate {
    let avg_b_row = if b.nrows == 0 {
        0.0
    } else {
        b.nnz as f64 / b.nrows as f64
    };
    let flops = (2.0 * a.nnz as f64 * avg_b_row).round() as u64;
    assemble_product(
        flops,
        a.nrows,
        b.ncols,
        est_tiled_bytes(a.nrows, a.ncols, a.nnz),
        est_tiled_bytes(b.nrows, b.ncols, b.nnz),
    )
}

/// Shared byte model downstream of the flop count.
fn assemble_product(
    flops: u64,
    out_rows: usize,
    out_cols: usize,
    a_bytes: usize,
    b_bytes: usize,
) -> JobEstimate {
    let products = flops / 2;
    let est_nnz_c = (products / ASSUMED_COMPRESSION)
        .min((out_rows as u64).saturating_mul(out_cols as u64)) as usize;
    // Output: locals + values per nonzero, plus tile bookkeeping folded into
    // the same per-nonzero constant (outputs are at least as clustered as
    // the estimate assumes).
    //
    // Pair buffer (pair reuse is the default): each matched tile pair packs
    // to ~one u16 delta word, and a matched pair covers on the order of
    // TILE_AREA intermediate products on clustered inputs; the offsets array
    // adds 4 bytes per output tile (bounded by output nonzeros / TILE_DIM).
    let est_pairs = (products as usize / TILE_AREA).max(1);
    let est_tiles_c = est_nnz_c.div_ceil(TILE_DIM).max(1);
    let pair_bytes = est_pairs * 2 + (est_tiles_c + 1) * 4;
    // Scratch arenas: the pipeline reserves 4 per worker up front.
    let arena_bytes = rayon::current_num_threads().max(1) * 4 * Scratch::BASE_BYTES;
    let est_bytes = a_bytes + b_bytes + est_nnz_c * (1 + 1 + 8) + pair_bytes + arena_bytes;
    JobEstimate {
        flops,
        est_nnz_c,
        est_bytes,
        sample: None,
    }
}

/// Calibrated per-quantity byte weights for the sampled peak model. Unlike
/// the fallback model (which guesses a *total device footprint* including
/// untracked operand residency), the sampled model predicts the quantity
/// admission actually compares against the budget: the **tracked pipeline
/// peak** — what [`tsg_runtime::MemTracker`] observes while the multiply
/// runs. Calibrated against measured peaks over the bench workloads
/// (fem/scatter/grid squares and mixes), each lands the estimate 5–25%
/// above the true peak:
///
/// * per output nonzero (16 B): tiled-output locals (`rowIdx`+`colIdx`+
///   `val` ≈ 10 B) plus step-3 staging buffers;
/// * per output tile (72 B): the tiled form's per-tile overhead (~60 B of
///   `rowPtr`/`mask`/`tileColIdx`/`tileNnz`) plus step-2 mask scratch and
///   the per-tile count arrays;
/// * per surviving pair (10 B): the delta-packed pair buffer plus the
///   step-1 tile-pair lists.
const SAMPLED_NNZ_BYTES: usize = 16;
const SAMPLED_TILE_BYTES: usize = 72;
const SAMPLED_PAIR_BYTES: usize = 10;

/// Predicts the cost of `a · b` from a sampled symbolic pass over the CSR
/// operands — the admission path when both CSR forms are on hand and
/// sampling is enabled. The flop count is exact (the sampler's first pass
/// counts every intermediate product); nonzeros, pairs, and tiles come from
/// the scaled sample, and the byte term charges the band-*upper* nonzero
/// count so a job is only admitted when even the pessimistic edge of the
/// measured band fits.
pub fn estimate_job_sampled(a: &Csr<f64>, b: &Csr<f64>, rate: f64, seed: u64) -> JobEstimate {
    assemble_sampled(&sample_csr(a, b, rate, seed))
}

/// Sampled estimate from tiled operands — the path for resident products
/// whose CSR form was never materialized. The flop count is itself sampled
/// here (`products_exact` is false below full rate), but the byte model is
/// identical to [`estimate_job_sampled`].
pub fn estimate_tiled_sampled(
    a: &TileMatrix<f64>,
    b: &TileMatrix<f64>,
    rate: f64,
    seed: u64,
) -> JobEstimate {
    assemble_sampled(&sample_tiled(a, b, rate, seed))
}

/// Byte model for a sampled estimate: the calibrated tracked-peak weights
/// applied to measured quantities — the band-upper nonzero count, the
/// scaled pair count, and the scaled output-tile count — instead of
/// `ASSUMED_COMPRESSION`-derived guesses over an operand-byte guess.
fn assemble_sampled(stats: &SampleStats) -> JobEstimate {
    let nnz_hi = stats.nnz_hi as usize;
    let est_pairs = (stats.est_pairs as usize).max(1);
    let est_tiles_c = (stats.est_tiles_c as usize).max(1);
    let arena_bytes = rayon::current_num_threads().max(1) * 4 * Scratch::BASE_BYTES;
    let est_bytes = nnz_hi * SAMPLED_NNZ_BYTES
        + est_tiles_c * SAMPLED_TILE_BYTES
        + est_pairs * SAMPLED_PAIR_BYTES
        + arena_bytes;
    JobEstimate {
        flops: stats.products.saturating_mul(2),
        est_nnz_c: stats.est_nnz_c as usize,
        est_bytes,
        sample: Some(SampleInfo {
            sampled_tile_rows: stats.sampled_tile_rows,
            total_tile_rows: stats.total_tile_rows,
            nnz_lo: stats.nnz_lo as usize,
            nnz_hi,
            est_pairs,
            est_tiles_c,
            exact: stats.exact,
        }),
    }
}

/// Output-side byte terms attributable to `est_nnz_c` output nonzeros (the
/// per-nonzero locals plus the pair-offset array) — what mask pruning can
/// reclaim from a product estimate.
fn output_terms(est_nnz_c: usize) -> usize {
    est_nnz_c * (1 + 1 + 8) + (est_nnz_c.div_ceil(TILE_DIM).max(1) + 1) * 4
}

/// Prunes a product estimate by a mask: the output cannot exceed the mask's
/// pattern (`C⟨M⟩ = A·B` keeps only positions stored in `M`), so the output
/// nonzeros are capped at `mask.nnz`, flops are scaled by the surviving
/// fraction (mask pushdown skips step-2 work for unmasked tiles), and the
/// mask's own tiled input bytes join the operand term (fallback estimates
/// only — sampled estimates model the tracked pipeline peak, which never
/// includes input residency). On a sampled estimate the whole band is
/// capped, and the byte term is rebuilt from the pruned band-upper edge
/// (the basis admission charged for) at the sampled per-nonzero weight.
pub fn mask_pruned(est: JobEstimate, mask: OperandShape) -> JobEstimate {
    let pruned = est.est_nnz_c.min(mask.nnz);
    let survival = if est.est_nnz_c == 0 {
        1.0
    } else {
        pruned as f64 / est.est_nnz_c as f64
    };
    let flops = ((est.flops as f64 * survival).round() as u64).min(est.flops);
    let byte_basis = est.sample.map_or(est.est_nnz_c, |s| s.nnz_hi);
    let pruned_basis = byte_basis.min(mask.nnz);
    let (removed, added) = if est.sample.is_some() {
        (
            byte_basis * SAMPLED_NNZ_BYTES,
            pruned_basis * SAMPLED_NNZ_BYTES,
        )
    } else {
        let mask_bytes = est_tiled_bytes(mask.nrows, mask.ncols, mask.nnz);
        (
            output_terms(byte_basis),
            output_terms(pruned_basis) + mask_bytes,
        )
    };
    JobEstimate {
        flops,
        est_nnz_c: pruned,
        est_bytes: est.est_bytes - removed + added,
        sample: est.sample.map(|s| SampleInfo {
            nnz_lo: s.nnz_lo.min(mask.nnz),
            nnz_hi: s.nnz_hi.min(mask.nnz),
            ..s
        }),
    }
}

/// Predicts the cost of `alpha·A + beta·B`: one scale-and-merge pass, so
/// flops are `nnz(A) + nnz(B)`, the output is at most the structural union,
/// and the byte term is both tiled operands plus the worst-case output.
pub fn estimate_add(a: OperandShape, b: OperandShape) -> JobEstimate {
    let union = (a.nnz + b.nnz).min(a.nrows.saturating_mul(a.ncols).max(1));
    JobEstimate {
        flops: (a.nnz + b.nnz) as u64,
        est_nnz_c: union,
        est_bytes: est_tiled_bytes(a.nrows, a.ncols, a.nnz)
            + est_tiled_bytes(b.nrows, b.ncols, b.nnz)
            + union * (1 + 1 + 8),
        sample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_gen::suite::GenSpec;
    use tsg_matrix::TileMatrix;

    #[test]
    fn estimate_scales_with_the_input() {
        let small = GenSpec::Scatter {
            n: 64,
            per_row: 3,
            seed: 1,
        }
        .build();
        let big = GenSpec::Scatter {
            n: 512,
            per_row: 8,
            seed: 1,
        }
        .build();
        let e_small = estimate_job(&small, None, &small, None);
        let e_big = estimate_job(&big, None, &big, None);
        assert!(e_small.flops > 0);
        assert!(e_big.flops > e_small.flops);
        assert!(e_big.est_bytes > e_small.est_bytes);
    }

    #[test]
    fn cached_tiled_form_tightens_the_input_term() {
        let a = GenSpec::Scatter {
            n: 256,
            per_row: 5,
            seed: 3,
        }
        .build();
        let ta = TileMatrix::from_csr(&a);
        let structural = estimate_job(&a, None, &a, None);
        let exact = estimate_job(&a, Some(&ta), &a, Some(&ta));
        assert_eq!(structural.flops, exact.flops);
        // The structural tile-count bound (nnz tiles) over-estimates the
        // input term relative to the real conversion.
        assert!(exact.est_bytes <= structural.est_bytes);
    }

    #[test]
    fn structural_estimate_tracks_the_exact_one() {
        let a = GenSpec::Scatter {
            n: 256,
            per_row: 5,
            seed: 3,
        }
        .build();
        let exact = estimate_job(&a, None, &a, None);
        let shaped = estimate_product(OperandShape::of_csr(&a), OperandShape::of_csr(&a));
        // Uniform rows: the heuristic flop count is within 2× of the exact
        // row-by-row count, and the byte model is the same downstream.
        assert!(shaped.flops >= exact.flops / 2 && shaped.flops <= exact.flops * 2);
        assert!(shaped.est_bytes > 0);
    }

    #[test]
    fn mask_prunes_the_estimate() {
        let a = GenSpec::Scatter {
            n: 512,
            per_row: 8,
            seed: 1,
        }
        .build();
        let base = estimate_job(&a, None, &a, None);
        let sparse_mask = OperandShape {
            nrows: a.nrows,
            ncols: a.ncols,
            nnz: 10,
        };
        let pruned = mask_pruned(base, sparse_mask);
        assert_eq!(pruned.est_nnz_c, 10);
        assert!(pruned.flops < base.flops);
        // A mask as dense as the predicted output prunes nothing but still
        // adds its own input bytes.
        let loose_mask = OperandShape {
            nrows: a.nrows,
            ncols: a.ncols,
            nnz: base.est_nnz_c,
        };
        let unpruned = mask_pruned(base, loose_mask);
        assert_eq!(unpruned.est_nnz_c, base.est_nnz_c);
        assert_eq!(unpruned.flops, base.flops);
        assert!(unpruned.est_bytes > base.est_bytes);
    }

    #[test]
    fn add_estimate_is_linear_in_the_operands() {
        let s = OperandShape {
            nrows: 1000,
            ncols: 1000,
            nnz: 5000,
        };
        let e = estimate_add(s, s);
        assert_eq!(e.flops, 10_000);
        assert_eq!(e.est_nnz_c, 10_000);
        assert!(e.est_bytes > 0);
    }

    #[test]
    fn identity_product_estimate_is_tiny() {
        let i = tsg_matrix::Csr::<f64>::identity(64);
        let e = estimate_job(&i, None, &i, None);
        assert_eq!(e.flops, 128); // 64 products × 2
                                  // Beyond the fixed scratch-arena floor, the variable part is small.
        let arena_floor = rayon::current_num_threads().max(1) * 4 * Scratch::BASE_BYTES;
        assert!(e.est_bytes < arena_floor + 10_000);
    }
}
