//! Per-job cost prediction for admission control.
//!
//! The engine predicts, before running a job, roughly how many flops the
//! product costs and how many device bytes it will touch, in the same spirit
//! as spECK's lightweight pre-analysis (and the per-tile work estimate the
//! pipeline's `Scheduling::Binned` mode bins by): cheap to compute, accurate
//! enough to steer scheduling, and explicitly *not* an upper bound. Jobs
//! whose prediction already exceeds the device budget are rejected up front;
//! jobs the prediction lets through can still trip the [`MemTracker`] budget
//! mid-flight (the estimate ignores most step-2 temporaries and assumes a
//! modest output compression factor), which surfaces as an `out_of_memory`
//! job failure — the engine analogue of the paper's Figure-7 "0.00" bars.
//! Two step-2/3 terms large enough to matter are modelled explicitly: the
//! delta-packed matched-pair buffer (~2 bytes per surviving pair) and the
//! per-worker scratch arenas the pipeline reserves.
//!
//! [`MemTracker`]: tsg_runtime::MemTracker

use tsg_matrix::{Csr, Footprint, TileMatrix, TILE_AREA, TILE_DIM};
use tsg_runtime::Scratch;

/// Assumed ratio of intermediate products to output nonzeros. Sparse-sparse
/// products on the paper's dataset typically compact by 1–4×; predicting 4×
/// keeps admission permissive (under-admitting wastes the device, and the
/// tracker still backstops over-admission).
pub const ASSUMED_COMPRESSION: u64 = 4;

/// Predicted cost of one multiply job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEstimate {
    /// Flop count of the product (2 × intermediate products), exact.
    pub flops: u64,
    /// Predicted output nonzeros after compaction.
    pub est_nnz_c: usize,
    /// Predicted peak device bytes: both tiled operands plus the output.
    pub est_bytes: usize,
}

/// Bytes of a tiled matrix without building it: per-nonzero locals
/// (`rowIdx`+`colIdx`+`val`), per-tile overhead (`rowPtr`+`mask` plus the
/// `tileColIdx`/`tileNnz` slots), and the tile-row pointer array. The tile
/// count is unknown before conversion, so it is bounded by nnz (every
/// nonzero in its own tile) and by the grid size.
pub fn est_tiled_bytes(nrows: usize, ncols: usize, nnz: usize) -> usize {
    let tile_m = nrows.div_ceil(TILE_DIM);
    let tile_n = ncols.div_ceil(TILE_DIM);
    let est_tiles = nnz.min(tile_m.saturating_mul(tile_n)).max(1);
    let per_tile = TILE_DIM // rowPtr: u8 per tile row
        + TILE_DIM * 2 // mask: u16 per tile row
        + 4 // tileColIdx
        + 8; // tileNnz slot
             // `tile_nnz` is an offset array of length tiles + 1, hence the extra slot.
    nnz * (1 + 1 + 8) + est_tiles * per_tile + 8 + (tile_m + 1) * 8
}

/// Predicts the cost of `a · b`. When a tiled form is already cached its
/// exact byte count replaces the structural estimate.
pub fn estimate_job(
    a: &Csr<f64>,
    a_tiled: Option<&TileMatrix<f64>>,
    b: &Csr<f64>,
    b_tiled: Option<&TileMatrix<f64>>,
) -> JobEstimate {
    let flops = a.spgemm_flops(b);
    let products = flops / 2;
    let est_nnz_c = (products / ASSUMED_COMPRESSION)
        .min((a.nrows as u64).saturating_mul(b.ncols as u64)) as usize;
    let a_bytes = a_tiled
        .map(Footprint::bytes)
        .unwrap_or_else(|| est_tiled_bytes(a.nrows, a.ncols, a.nnz()));
    let b_bytes = b_tiled
        .map(Footprint::bytes)
        .unwrap_or_else(|| est_tiled_bytes(b.nrows, b.ncols, b.nnz()));
    // Output: locals + values per nonzero, plus tile bookkeeping folded into
    // the same per-nonzero constant (outputs are at least as clustered as
    // the estimate assumes).
    //
    // Pair buffer (pair reuse is the default): each matched tile pair packs
    // to ~one u16 delta word, and a matched pair covers on the order of
    // TILE_AREA intermediate products on clustered inputs; the offsets array
    // adds 4 bytes per output tile (bounded by output nonzeros / TILE_DIM).
    let est_pairs = (products as usize / TILE_AREA).max(1);
    let est_tiles_c = est_nnz_c.div_ceil(TILE_DIM).max(1);
    let pair_bytes = est_pairs * 2 + (est_tiles_c + 1) * 4;
    // Scratch arenas: the pipeline reserves 4 per worker up front.
    let arena_bytes = rayon::current_num_threads().max(1) * 4 * Scratch::BASE_BYTES;
    let est_bytes = a_bytes + b_bytes + est_nnz_c * (1 + 1 + 8) + pair_bytes + arena_bytes;
    JobEstimate {
        flops,
        est_nnz_c,
        est_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_gen::suite::GenSpec;
    use tsg_matrix::TileMatrix;

    #[test]
    fn estimate_scales_with_the_input() {
        let small = GenSpec::Scatter {
            n: 64,
            per_row: 3,
            seed: 1,
        }
        .build();
        let big = GenSpec::Scatter {
            n: 512,
            per_row: 8,
            seed: 1,
        }
        .build();
        let e_small = estimate_job(&small, None, &small, None);
        let e_big = estimate_job(&big, None, &big, None);
        assert!(e_small.flops > 0);
        assert!(e_big.flops > e_small.flops);
        assert!(e_big.est_bytes > e_small.est_bytes);
    }

    #[test]
    fn cached_tiled_form_tightens_the_input_term() {
        let a = GenSpec::Scatter {
            n: 256,
            per_row: 5,
            seed: 3,
        }
        .build();
        let ta = TileMatrix::from_csr(&a);
        let structural = estimate_job(&a, None, &a, None);
        let exact = estimate_job(&a, Some(&ta), &a, Some(&ta));
        assert_eq!(structural.flops, exact.flops);
        // The structural tile-count bound (nnz tiles) over-estimates the
        // input term relative to the real conversion.
        assert!(exact.est_bytes <= structural.est_bytes);
    }

    #[test]
    fn identity_product_estimate_is_tiny() {
        let i = tsg_matrix::Csr::<f64>::identity(64);
        let e = estimate_job(&i, None, &i, None);
        assert_eq!(e.flops, 128); // 64 products × 2
                                  // Beyond the fixed scratch-arena floor, the variable part is small.
        let arena_floor = rayon::current_num_threads().max(1) * 4 * Scratch::BASE_BYTES;
        assert!(e.est_bytes < arena_floor + 10_000);
    }
}
