//! The resident engine: admission-controlled job queue + worker executor.
//!
//! One [`Engine`] owns a simulated [`Device`], a shared [`MemTracker`]
//! enforcing the device budget across *all* in-flight products (PR 1's
//! tracker only ever guarded one), a [`Registry`] of loaded matrices with
//! cached tiled conversions, and a pool of worker threads executing multiply
//! jobs on the memoized per-device Rayon pool
//! ([`tsg_runtime::device::pool_for`]).
//!
//! Job lifecycle:
//!
//! 1. [`Engine::submit`] — admission control. Unknown operands, a cost
//!    prediction ([`crate::estimate`]) exceeding the device budget, or a
//!    full queue reject the job *synchronously* with a typed error, so
//!    callers get explicit backpressure instead of unbounded queueing.
//! 2. A worker pops the job (FIFO), checks cancellation and the queue-wait
//!    deadline, resolves both operands through the registry (cache hit or
//!    conversion), and runs the tiled pipeline on the device pool under the
//!    shared tracker.
//! 3. The result — a [`JobReport`] or an [`EngineError`] — is published on
//!    the job's [`JobTicket`]; [`JobTicket::wait`] blocks until then.
//!
//! Timeouts bound *queue wait*, not execution: a job popped after its
//! deadline completes as `timed_out` without running. A running multiply is
//! not interruptible (matching the kernels it models); cancellation is
//! therefore only honoured while a job is still queued.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tilespgemm_core::{multiply_masked, multiply_with_pool, Config, SpGemmError};
use tsg_matrix::{Footprint, TileMatrix};
use tsg_runtime::observe::{
    est_error_bucket, null_recorder, CollectingRecorder, Counter, MetricsSnapshot, Recorder,
};
use tsg_runtime::{device::pool_for, Breakdown, Device, MemTracker, ScratchPool, Step};

use crate::estimate::{
    estimate_add, estimate_job, estimate_job_sampled, estimate_product, estimate_tiled_sampled,
    mask_pruned, JobEstimate, OperandShape,
};
use crate::registry::{MatrixId, Registry, RegistryStats, TiledLookup};
use crate::EngineError;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The simulated device jobs execute on; its `mem_budget` is the shared
    /// in-flight budget.
    pub device: Device,
    /// Worker threads executing jobs (each installs the device pool).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions are shed.
    pub queue_depth: usize,
    /// Byte budget for cached tiled conversions in the registry.
    pub cache_bytes: usize,
    /// Deadline applied to jobs that do not carry their own timeout.
    pub default_timeout: Option<Duration>,
    /// Pipeline configuration jobs run with unless they override it.
    pub base_config: Config,
    /// Record per-job span trees and counters into a
    /// [`CollectingRecorder`], retrievable through [`Engine::collector`] and
    /// the JSON protocol's `stats`/`profile` verbs. Off by default, which
    /// runs every job on the [`tsg_runtime::NullRecorder`] fast path.
    pub profile: bool,
    /// Fraction of A's tile rows the admission estimator samples when both
    /// operand structures are materialized. `0.0` disables sampling and
    /// falls back to the `ASSUMED_COMPRESSION` upper-bound model; `1.0`
    /// measures every tile row (exact symbolic, zero-width band). The
    /// default ([`tilespgemm_core::sample::DEFAULT_SAMPLE_RATE`]) trades
    /// ~6% of the symbolic work for a measured nnz(C) band.
    pub sample_rate: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let device = Device::rtx3090_sim();
        EngineConfig {
            cache_bytes: device.mem_budget / 2,
            device,
            workers: 1,
            queue_depth: 32,
            default_timeout: None,
            base_config: Config::default(),
            profile: false,
            sample_rate: tilespgemm_core::sample::DEFAULT_SAMPLE_RATE,
        }
    }
}

/// The operation a job evaluates, over registry handles.
///
/// This is the expression layer of the engine: GraphBLAS-style workloads —
/// triangle counting `C⟨A⟩ = A·A`, Galerkin triple products `R·A·P`, Markov
/// clustering's `A^k` — are sequences of products, and an `OpSpec` lets one
/// job carry the whole sequence so intermediates stay in the tiled format
/// instead of round-tripping through CSR between submissions.
///
/// `#[non_exhaustive]`: build specs through the [`JobSpec`] constructors
/// (`JobSpec::multiply(a, b).mask(m)` and friends) and match with a wildcard
/// arm, so new op kinds are not semver breaks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OpSpec {
    /// `C = A·B` — the classic single product.
    Multiply {
        /// Left operand.
        a: MatrixId,
        /// Right operand.
        b: MatrixId,
    },
    /// `C⟨M⟩ = A·B` — the product computed only where the mask `M` has
    /// stored entries. The mask is pushed into step 2 (the per-tile
    /// symbolic phase inherits `M`'s tile structure), so masked-out tiles
    /// are never computed, not computed-then-filtered.
    MaskedMultiply {
        /// Left operand.
        a: MatrixId,
        /// Right operand.
        b: MatrixId,
        /// Mask; shape must be `(a.nrows, b.ncols)`.
        mask: MatrixId,
    },
    /// `C = alpha·A + beta·B` — elementwise linear combination of two
    /// same-shaped operands (structural union; exact zeros are kept).
    Add {
        /// Scale on `a`.
        alpha: f64,
        /// Left operand.
        a: MatrixId,
        /// Scale on `b`.
        beta: f64,
        /// Right operand.
        b: MatrixId,
    },
    /// `C = M₁·M₂·…·Mₙ` — a left-associated chain of products. Each
    /// intermediate stays tiled and feeds the next link directly; it is
    /// also registered as a resident product handle (unless registration
    /// degrades gracefully under memory pressure), reported in
    /// [`JobReport::intermediates`]. An optional mask applies to the final
    /// link only.
    Chain {
        /// The operands, in multiplication order (at least two).
        operands: Vec<MatrixId>,
        /// Mask for the final link; shape must match the chain's output.
        mask: Option<MatrixId>,
    },
    /// `C = A^k` — matrix power, `k ≥ 2`. Sugar for a chain of `k` copies
    /// of `a`; executes through the same chain path.
    Power {
        /// The (square) operand.
        a: MatrixId,
        /// The exponent (at least 2).
        k: u32,
        /// Mask for the final link.
        mask: Option<MatrixId>,
    },
}

impl OpSpec {
    /// Every registry handle the op references (operands, then mask).
    pub fn operands(&self) -> Vec<MatrixId> {
        match self {
            OpSpec::Multiply { a, b } => vec![*a, *b],
            OpSpec::MaskedMultiply { a, b, mask } => vec![*a, *b, *mask],
            OpSpec::Add { a, b, .. } => vec![*a, *b],
            OpSpec::Chain { operands, mask } => {
                let mut v = operands.clone();
                v.extend(mask.iter().copied());
                v
            }
            OpSpec::Power { a, k, mask } => {
                let mut v = vec![*a; (*k).max(1) as usize];
                v.extend(mask.iter().copied());
                v
            }
        }
    }

    /// Stable kind name (used in protocol responses and bench rows).
    pub fn kind(&self) -> &'static str {
        match self {
            OpSpec::Multiply { .. } => "multiply",
            OpSpec::MaskedMultiply { .. } => "masked_multiply",
            OpSpec::Add { .. } => "add",
            OpSpec::Chain { .. } => "chain",
            OpSpec::Power { .. } => "power",
        }
    }
}

/// One job request: an [`OpSpec`] expression plus scheduling knobs.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The operation to evaluate.
    pub op: OpSpec,
    /// Pipeline configuration override; `None` uses the engine's base.
    pub config: Option<Config>,
    /// Queue-wait deadline override; `None` uses the engine default.
    pub timeout: Option<Duration>,
    /// Skip the synchronous estimate-vs-budget rejection. Set by schedulers
    /// that run their own admission (deferred admission dispatches a parked
    /// job solo once resident memory frees, accepting that the mid-flight
    /// tracker is the backstop if the estimate was still too optimistic).
    pub admit_over_budget: bool,
}

impl JobSpec {
    /// A job multiplying `a · b` with engine defaults.
    ///
    /// Kept as a thin compatibility wrapper over [`JobSpec::multiply`]; the
    /// protocol-v2 `multiply` verb and all pre-expression callers build
    /// their specs here and behave exactly as before the op redesign.
    pub fn new(a: MatrixId, b: MatrixId) -> Self {
        Self::multiply(a, b)
    }

    /// A job running an arbitrary op expression with engine defaults.
    pub fn of(op: OpSpec) -> Self {
        JobSpec {
            op,
            config: None,
            timeout: None,
            admit_over_budget: false,
        }
    }

    /// `C = A·B`.
    pub fn multiply(a: MatrixId, b: MatrixId) -> Self {
        Self::of(OpSpec::Multiply { a, b })
    }

    /// `C = alpha·A + beta·B`.
    pub fn add(alpha: f64, a: MatrixId, beta: f64, b: MatrixId) -> Self {
        Self::of(OpSpec::Add { alpha, a, beta, b })
    }

    /// A left-associated chain `C = M₁·M₂·…·Mₙ`.
    pub fn chain(operands: impl Into<Vec<MatrixId>>) -> Self {
        Self::of(OpSpec::Chain {
            operands: operands.into(),
            mask: None,
        })
    }

    /// `C = A^k`.
    pub fn power(a: MatrixId, k: u32) -> Self {
        Self::of(OpSpec::Power { a, k, mask: None })
    }

    /// Applies a mask: a plain multiply becomes a [`OpSpec::MaskedMultiply`];
    /// on a chain or power the mask attaches to the final link; on an
    /// already-masked multiply it replaces the mask. `Add` has no product
    /// to mask — the spec is returned unchanged.
    pub fn mask(mut self, m: MatrixId) -> Self {
        self.op = match self.op {
            OpSpec::Multiply { a, b } => OpSpec::MaskedMultiply { a, b, mask: m },
            OpSpec::MaskedMultiply { a, b, .. } => OpSpec::MaskedMultiply { a, b, mask: m },
            OpSpec::Chain { operands, .. } => OpSpec::Chain {
                operands,
                mask: Some(m),
            },
            OpSpec::Power { a, k, .. } => OpSpec::Power {
                a,
                k,
                mask: Some(m),
            },
            other @ OpSpec::Add { .. } => other,
        };
        self
    }

    /// Overrides the pipeline configuration.
    pub fn config(mut self, config: Config) -> Self {
        self.config = Some(config);
        self
    }

    /// Overrides the queue-wait deadline.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Completion record of a successful job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Engine-assigned job id.
    pub job: u64,
    /// The product, in tiled form.
    pub c: Arc<TileMatrix<f64>>,
    /// Output nonzeros (structural, as the pipeline reports them).
    pub nnz_c: usize,
    /// Output tile count.
    pub tiles_c: usize,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Execution wall time (operand resolution + multiply).
    pub exec: Duration,
    /// Peak tracked device bytes during the multiply.
    pub peak_bytes: usize,
    /// Operand tiled forms served from the registry cache (0..=2).
    pub cache_hits: u32,
    /// CSR→tiled conversions this job had to perform (0..=2).
    pub conversions: u32,
    /// The cost prediction admission control admitted the job under.
    pub estimate: JobEstimate,
    /// Per-step wall times of the multiply (Figure 10's slices); chains
    /// accumulate every link's slices.
    pub breakdown: Breakdown,
    /// Multiply links executed: 1 for a (masked) multiply, 0 for an add,
    /// `n − 1` for a chain of `n` operands.
    pub links: u32,
    /// Resident handles of chain intermediates registered along the way
    /// (empty for non-chain ops, or when registration degraded under
    /// memory pressure). Each can be used as an operand of a later job
    /// without any CSR round-trip; release with `Engine::unregister`.
    pub intermediates: Vec<MatrixId>,
}

/// Terminal state of a job.
pub type JobResult = Result<JobReport, EngineError>;

struct TicketInner {
    result: Mutex<Option<JobResult>>,
    cv: Condvar,
    canceled: AtomicBool,
}

/// Handle to a submitted job; `wait` blocks for the result.
#[derive(Clone)]
pub struct JobTicket {
    /// Engine-assigned job id.
    pub job: u64,
    inner: Arc<TicketInner>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("job", &self.job)
            .field("done", &self.try_result().is_some())
            .finish()
    }
}

impl JobTicket {
    /// Blocks until the job completes, returning its result.
    pub fn wait(&self) -> JobResult {
        let mut guard = self
            .inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = guard.as_ref() {
                return r.clone();
            }
            guard = self
                .inner
                .cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll.
    pub fn try_result(&self) -> Option<JobResult> {
        self.inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Requests cancellation. Only honoured while the job is still queued;
    /// a job already running completes normally.
    pub fn cancel(&self) {
        self.inner.canceled.store(true, Ordering::Relaxed);
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    estimate: JobEstimate,
    enqueued: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketInner>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    canceled: AtomicU64,
    timed_out: AtomicU64,
    queue_wait_micros: AtomicU64,
    exec_micros: AtomicU64,
}

/// Snapshot of engine-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Every submission that arrived, whether or not it was admitted —
    /// rejected, shed, and shut-down arrivals all count, so the shed rate
    /// is `(submitted - admitted) / submitted` from stats alone.
    pub submitted: u64,
    /// Submissions accepted into the queue.
    pub admitted: u64,
    /// Jobs that finished with a product.
    pub completed: u64,
    /// Jobs that ran and failed (OOM, shape mismatch).
    pub failed: u64,
    /// Submissions rejected by admission control (estimate over budget).
    pub rejected: u64,
    /// Submissions shed because the queue was full.
    pub shed: u64,
    /// Jobs canceled while queued.
    pub canceled: u64,
    /// Jobs whose queue wait exceeded their deadline.
    pub timed_out: u64,
    /// Sum of queue waits over completed/failed/timed-out jobs.
    pub queue_wait_total: Duration,
    /// Sum of execution times over completed/failed jobs.
    pub exec_total: Duration,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Registry counters (conversions, hits, evictions).
    pub registry: RegistryStats,
    /// Bytes currently cached by the registry.
    pub cached_bytes: usize,
    /// Bytes held by resident (tiled-primary) product entries, outside the
    /// conversion cache's budget.
    pub resident_bytes: usize,
    /// Bytes currently tracked in-flight against the device budget.
    pub device_bytes_in_use: usize,
    /// High-water footprint of the shared scratch-arena pool (bytes); the
    /// arenas stay warm across jobs, so this is the engine-lifetime peak.
    pub arena_high_water: usize,
}

struct Shared {
    cfg: EngineConfig,
    device_tracker: MemTracker,
    registry: Mutex<Registry>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    next_job: AtomicU64,
    recorder: Arc<dyn Recorder>,
    collector: Option<Arc<CollectingRecorder>>,
    /// Reusable scratch arenas shared by every job the workers run; after
    /// the first few jobs the step-2/3 hot path allocates nothing.
    arena: ScratchPool,
}

/// The resident SpGEMM service engine. See the module docs for the job
/// lifecycle; construction spawns the worker threads, drop joins them.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Builds an engine and starts its workers.
    pub fn new(cfg: EngineConfig) -> Self {
        let collector = cfg.profile.then(|| Arc::new(CollectingRecorder::new()));
        let recorder: Arc<dyn Recorder> = match &collector {
            Some(c) => Arc::clone(c) as Arc<dyn Recorder>,
            None => null_recorder(),
        };
        let device_tracker = MemTracker::with_budget(cfg.device.mem_budget);
        // The tracker and registry drop the attachment again when the
        // recorder is disabled, so the non-profiling path stays free.
        device_tracker.set_recorder(Some(Arc::clone(&recorder)));
        let registry = Registry::new(cfg.cache_bytes);
        registry.set_recorder(Arc::clone(&recorder));
        let shared = Arc::new(Shared {
            device_tracker,
            registry: Mutex::new(registry),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            next_job: AtomicU64::new(1),
            recorder,
            collector,
            arena: ScratchPool::new(),
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tsg-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning engine worker")
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// An engine with default configuration on the given device.
    pub fn on_device(device: Device) -> Self {
        Self::new(EngineConfig {
            cache_bytes: device.mem_budget / 2,
            device,
            ..EngineConfig::default()
        })
    }

    /// Registers a matrix, returning `(id, deduped)`.
    pub fn register(&self, csr: tsg_matrix::Csr<f64>) -> (MatrixId, bool) {
        self.lock_registry().insert(csr)
    }

    /// Forces (or looks up) the tiled conversion of `id`; returns the tile
    /// count, cached byte size, and whether it was a cache hit.
    pub fn convert(&self, id: MatrixId) -> Result<(usize, usize, bool), EngineError> {
        use tsg_matrix::Footprint;
        let (t, hit) = self.resolve_tiled(id)?;
        Ok((t.tile_count(), t.bytes(), hit))
    }

    /// The tiled form of `id`, converting on a cache miss *outside* the
    /// registry lock. The boolean is `true` on a cache hit. This is what
    /// workers use to resolve operands, and what a conversion-prefetch
    /// thread calls to warm job N+1's operands while job N computes: the
    /// registry mutex is only held for the lookup and the install, so a
    /// running conversion never blocks concurrent resolves.
    pub fn resolve_tiled(&self, id: MatrixId) -> Result<(Arc<TileMatrix<f64>>, bool), EngineError> {
        resolve_tiled(&self.shared, id)
    }

    /// Registers a pipeline product as an operand: derives its CSR form,
    /// inserts it under its content id, and pre-seeds the tiled cache with
    /// the product itself so a dependent multiply skips the conversion.
    /// Returns `(id, deduped)` like [`Engine::register`].
    ///
    /// This is the *materializing* path (protocol `materialize: true`): the
    /// CSR derivation costs about a product runtime. Chained workloads that
    /// only feed the product back into later multiplies should use
    /// [`Engine::register_tiled`] instead, which derives nothing.
    pub fn register_product(&self, tiled: Arc<TileMatrix<f64>>) -> (MatrixId, bool) {
        // Derive the CSR outside the registry lock — same discipline as
        // resolve_tiled, the derivation can cost a product runtime.
        let csr = tiled.to_csr();
        self.lock_registry().insert_with_tiled(csr, tiled)
    }

    /// Registers a pipeline product straight from its tiled form, with no
    /// CSR derivation — the handle-in/handle-out path chained jobs use. The
    /// entry is resident (exempt from cache eviction, see
    /// [`Registry::insert_tiled`]); a CSR is derived lazily only if a
    /// client later asks for one.
    ///
    /// The product is compacted first ([`TileMatrix::compact`]): phantom
    /// tiles out of step 1's structural prediction would otherwise tax
    /// every job that takes the handle as an operand, and would make the
    /// content hash depend on which pipeline produced the value.
    pub fn register_tiled(&self, tiled: Arc<TileMatrix<f64>>) -> (MatrixId, bool) {
        let compact = if (0..tiled.tile_count()).any(|t| tiled.tile_nnz_of(t) == 0) {
            Arc::new(tiled.compact())
        } else {
            tiled
        };
        self.lock_registry().insert_tiled(compact)
    }

    /// The registered CSR form of `id`. For resident tiled products this
    /// materializes (and caches) the CSR — the opt-in conversion the
    /// expression API otherwise avoids.
    pub fn csr(&self, id: MatrixId) -> Result<Arc<tsg_matrix::Csr<f64>>, EngineError> {
        self.lock_registry().csr(id)
    }

    /// Drops cached tiled forms: one matrix, or all when `id` is `None`.
    /// Returns how many cached conversions were dropped.
    pub fn evict(&self, id: Option<MatrixId>) -> Result<usize, EngineError> {
        let mut reg = self.lock_registry();
        match id {
            Some(id) => Ok(usize::from(reg.evict(id)?)),
            None => Ok(reg.evict_all()),
        }
    }

    /// Unregisters a matrix entirely (CSR and cached conversion); later
    /// references fail with `unknown_matrix`. Jobs already holding `Arc`s
    /// are unaffected.
    pub fn unregister(&self, id: MatrixId) -> Result<(), EngineError> {
        self.lock_registry().remove(id)
    }

    /// Predicts the cost of `a · b` without running it.
    pub fn estimate(&self, a: MatrixId, b: MatrixId) -> Result<JobEstimate, EngineError> {
        self.estimate_op(&OpSpec::Multiply { a, b })
    }

    /// Predicts the cost of an op expression without running it. Shape
    /// errors (incompatible operands, a mask that does not match the
    /// output) surface here exactly as they would at submit. Estimation
    /// never materializes a CSR: operands whose CSR form is absent are
    /// estimated structurally from their registered shape.
    pub fn estimate_op(&self, op: &OpSpec) -> Result<JobEstimate, EngineError> {
        estimate_spec(&self.lock_registry(), op, self.shared.cfg.sample_rate)
    }

    /// Submits a job. Admission control runs synchronously: unknown
    /// operands, over-budget estimates, a full queue, and a shut-down
    /// engine all fail here with a typed error.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, EngineError> {
        // Every arrival counts, including the ones admission turns away;
        // `admitted` below is the accepted subset.
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(EngineError::ShuttingDown);
        }
        let estimate = estimate_spec(&self.lock_registry(), &spec.op, self.shared.cfg.sample_rate)?;
        let budget = self.shared.cfg.device.mem_budget;
        if !spec.admit_over_budget && estimate.est_bytes > budget {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::EstimateExceedsBudget {
                est_bytes: estimate.est_bytes,
                budget,
            });
        }
        let id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        let ticket_inner = Arc::new(TicketInner {
            result: Mutex::new(None),
            cv: Condvar::new(),
            canceled: AtomicBool::new(false),
        });
        let now = Instant::now();
        let timeout = spec.timeout.or(self.shared.cfg.default_timeout);
        let job = QueuedJob {
            id,
            spec,
            estimate,
            enqueued: now,
            deadline: timeout.map(|t| now + t),
            ticket: Arc::clone(&ticket_inner),
        };
        // Failpoint `engine.queue_full`: sheds this submission as if the
        // queue were at capacity, letting backpressure tests run without
        // actually saturating workers.
        #[cfg(feature = "failpoints")]
        if tsg_runtime::failpoint::should_fail("engine.queue_full") {
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::QueueFull {
                depth: self.shared.cfg.queue_depth,
            });
        }
        {
            let mut q = self.lock_queue();
            if q.len() >= self.shared.cfg.queue_depth {
                self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::QueueFull {
                    depth: self.shared.cfg.queue_depth,
                });
            }
            q.push_back(job);
        }
        self.shared
            .counters
            .admitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.queue_cv.notify_one();
        Ok(JobTicket {
            job: id,
            inner: ticket_inner,
        })
    }

    /// Submit-and-wait convenience.
    pub fn multiply_now(&self, spec: JobSpec) -> JobResult {
        self.submit(spec)?.wait()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        let c = &self.shared.counters;
        let (registry, cached_bytes, resident_bytes) = {
            let reg = self.lock_registry();
            (reg.stats(), reg.cached_bytes(), reg.resident_bytes())
        };
        EngineStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            canceled: c.canceled.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            queue_wait_total: Duration::from_micros(c.queue_wait_micros.load(Ordering::Relaxed)),
            exec_total: Duration::from_micros(c.exec_micros.load(Ordering::Relaxed)),
            queue_depth: self.lock_queue().len(),
            registry,
            cached_bytes,
            resident_bytes,
            device_bytes_in_use: self.shared.device_tracker.current_bytes(),
            arena_high_water: self.shared.arena.high_water_bytes(),
        }
    }

    /// The engine's device.
    pub fn device(&self) -> &Device {
        &self.shared.cfg.device
    }

    /// The engine's construction parameters.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// The shared device-budget tracker (in-flight bytes across all jobs).
    pub fn device_tracker(&self) -> &MemTracker {
        &self.shared.device_tracker
    }

    /// The recorder jobs report into — a [`CollectingRecorder`] when the
    /// engine was built with [`EngineConfig::profile`], the null fast path
    /// otherwise.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.shared.recorder
    }

    /// The collecting recorder, when profiling is on. This is where per-job
    /// span trees live ([`CollectingRecorder::span_tree`]).
    pub fn collector(&self) -> Option<&Arc<CollectingRecorder>> {
        self.shared.collector.as_ref()
    }

    /// Aggregated observability counters across all jobs so far. All zeros
    /// unless the engine is profiling.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.recorder.snapshot()
    }

    /// Stops accepting jobs, drains the queue, and joins the workers.
    /// Queued jobs still execute; call this for a graceful stop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue_cv.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.shared
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<QueuedJob>> {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn complete(ticket: &TicketInner, result: JobResult) {
    *ticket.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
    ticket.cv.notify_all();
}

/// Two-phase operand resolution: lock for the lookup, convert unlocked,
/// lock again to install. See [`Engine::resolve_tiled`].
fn resolve_tiled(
    shared: &Shared,
    id: MatrixId,
) -> Result<(Arc<TileMatrix<f64>>, bool), EngineError> {
    let lookup = shared
        .registry
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .begin_tiled(id)?;
    match lookup {
        TiledLookup::Cached(t) => Ok((t, true)),
        TiledLookup::Convert(csr) => {
            let tiled = Arc::new(TileMatrix::from_csr(&csr));
            shared
                .registry
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .install_tiled(id, Arc::clone(&tiled), true);
            Ok((tiled, false))
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                q = shared
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(shared, job);
    }
}

/// Shape-mismatch error from two shape summaries.
fn shape_err(a: OperandShape, b: OperandShape) -> EngineError {
    EngineError::SpGemm(SpGemmError::ShapeMismatch {
        a: (a.nrows, a.ncols),
        b: (b.nrows, b.ncols),
    })
}

/// Cost prediction for an op expression, from registry shape summaries.
///
/// Uses the exact row-by-row flop count when both operands' CSR forms are
/// already materialized, and the structural heuristic otherwise — the
/// estimate never forces the CSR materialization the expression API exists
/// to avoid. Shape validation happens here too, so incompatible operands
/// are rejected at submit, before a worker ever runs.
fn estimate_spec(
    reg: &Registry,
    op: &OpSpec,
    sample_rate: f64,
) -> Result<JobEstimate, EngineError> {
    let shape_of = |id: MatrixId| -> Result<OperandShape, EngineError> {
        let (nrows, ncols, nnz) = reg.shape(id)?;
        Ok(OperandShape { nrows, ncols, nnz })
    };
    // Failpoint `engine.estimate_sample`: the sampled symbolic pass "fails"
    // and estimation falls back to the constant-compression upper bound —
    // the degraded mode a job must survive (admitted or deferred, never
    // wrongly rejected for lack of a sample).
    #[cfg(feature = "failpoints")]
    let sample_rate = if tsg_runtime::failpoint::should_fail("engine.estimate_sample") {
        0.0
    } else {
        sample_rate
    };
    let product = |a: MatrixId, b: MatrixId| -> Result<JobEstimate, EngineError> {
        let sa = shape_of(a)?;
        let sb = shape_of(b)?;
        if sa.ncols != sb.nrows {
            return Err(shape_err(sa, sb));
        }
        // Seeded per operand pair so repeated estimates of the same product
        // are bit-identical while distinct products decorrelate.
        let seed = a.0.rotate_left(32) ^ b.0 ^ 0x7153_7047_454d_4d01;
        if sample_rate > 0.0 {
            if let (Some(ca), Some(cb)) = (reg.csr_if_present(a)?, reg.csr_if_present(b)?) {
                return Ok(estimate_job_sampled(&ca, &cb, sample_rate, seed));
            }
            if let (Some(ta), Some(tb)) = (reg.tiled_if_present(a)?, reg.tiled_if_present(b)?) {
                return Ok(estimate_tiled_sampled(&ta, &tb, sample_rate, seed));
            }
        }
        match (reg.csr_if_present(a)?, reg.csr_if_present(b)?) {
            (Some(ca), Some(cb)) => Ok(estimate_job(&ca, None, &cb, None)),
            _ => Ok(estimate_product(sa, sb)),
        }
    };
    let chain = |operands: &[MatrixId], mask: Option<MatrixId>| {
        if operands.len() < 2 {
            return Err(EngineError::InvalidOp(
                "a chain needs at least two operands",
            ));
        }
        // Fold left: each link's output shape (with the estimated nnz)
        // becomes the next link's left operand. Flops sum over links; the
        // byte prediction is the widest single link, since intermediates
        // are held one at a time.
        let mut links: Vec<JobEstimate> = Vec::with_capacity(operands.len() - 1);
        let mut cur = shape_of(operands[0])?;
        for (i, &bid) in operands[1..].iter().enumerate() {
            let sb = shape_of(bid)?;
            if cur.ncols != sb.nrows {
                return Err(shape_err(cur, sb));
            }
            let e = if i == 0 {
                product(operands[0], bid)?
            } else {
                estimate_product(cur, sb)
            };
            cur = OperandShape {
                nrows: cur.nrows,
                ncols: sb.ncols,
                nnz: e.est_nnz_c,
            };
            links.push(e);
        }
        if let Some(m) = mask {
            let sm = shape_of(m)?;
            if (sm.nrows, sm.ncols) != (cur.nrows, cur.ncols) {
                return Err(shape_err(
                    sm,
                    OperandShape {
                        nrows: cur.nrows,
                        ncols: cur.ncols,
                        nnz: 0,
                    },
                ));
            }
            let last = links.pop().expect("at least one link");
            links.push(mask_pruned(last, sm));
        }
        let last = links.last().expect("at least one link");
        Ok(JobEstimate {
            flops: links.iter().map(|e| e.flops).sum(),
            est_nnz_c: last.est_nnz_c,
            est_bytes: links.iter().map(|e| e.est_bytes).max().unwrap_or(0),
            // A chain's first link may carry a sample, but the chain total
            // mixes it with heuristic links — a band over the mix would
            // overstate what was measured.
            sample: None,
        })
    };
    match op {
        OpSpec::Multiply { a, b } => product(*a, *b),
        OpSpec::MaskedMultiply { a, b, mask } => {
            let base = product(*a, *b)?;
            let sa = shape_of(*a)?;
            let sb = shape_of(*b)?;
            let sm = shape_of(*mask)?;
            if (sm.nrows, sm.ncols) != (sa.nrows, sb.ncols) {
                return Err(shape_err(
                    sm,
                    OperandShape {
                        nrows: sa.nrows,
                        ncols: sb.ncols,
                        nnz: 0,
                    },
                ));
            }
            Ok(mask_pruned(base, sm))
        }
        OpSpec::Add { a, b, .. } => {
            let sa = shape_of(*a)?;
            let sb = shape_of(*b)?;
            if (sa.nrows, sa.ncols) != (sb.nrows, sb.ncols) {
                return Err(shape_err(sa, sb));
            }
            Ok(estimate_add(sa, sb))
        }
        OpSpec::Chain { operands, mask } => chain(operands, *mask),
        OpSpec::Power { a, k, mask } => {
            if *k < 2 {
                return Err(EngineError::InvalidOp("a power needs k >= 2"));
            }
            chain(&vec![*a; *k as usize], *mask)
        }
    }
}

fn run_job(shared: &Shared, job: QueuedJob) {
    let queue_wait = job.enqueued.elapsed();
    shared
        .counters
        .queue_wait_micros
        .fetch_add(queue_wait.as_micros() as u64, Ordering::Relaxed);
    if job.ticket.canceled.load(Ordering::Relaxed) {
        shared.counters.canceled.fetch_add(1, Ordering::Relaxed);
        complete(&job.ticket, Err(EngineError::Canceled));
        return;
    }
    if job.deadline.is_some_and(|d| Instant::now() > d) {
        shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
        complete(&job.ticket, Err(EngineError::TimedOut));
        return;
    }

    let exec_start = Instant::now();
    let recorder = &*shared.recorder;
    // Operand resolution gets its own span per operand (a sibling of the
    // multiply's "job" root), so a profile shows conversion stalls next to
    // the pipeline phases.
    let resolve = |id| {
        // Failpoint `engine.resolve`: the operand disappears between
        // admission (which saw it) and execution — the unregister/eviction
        // race. The job must fail with the stable `unknown_matrix` code and
        // leave the worker loop alive.
        #[cfg(feature = "failpoints")]
        if tsg_runtime::failpoint::should_fail("engine.resolve") {
            return Err(EngineError::UnknownMatrix(id));
        }
        let span = recorder.span_enter(job.id, "resolve");
        let out = resolve_tiled(shared, id);
        recorder.span_exit(span);
        out
    };
    let mut config = job.spec.config.unwrap_or(shared.cfg.base_config);
    // Thread the sampled admission estimate down as allocation hints, so
    // the pipeline pre-sizes its pair staging and scratch arenas to the
    // measured product. Explicit job configs keep their own hints if set.
    if config.est_hints.is_none() {
        if let Some(s) = job.estimate.sample {
            config.est_hints = Some(tilespgemm_core::EstHints {
                nnz_c: s.nnz_hi,
                pairs: s.est_pairs,
                tiles_c: s.est_tiles_c,
            });
        }
    }
    let result = match &job.spec.op {
        OpSpec::Multiply { a, b } => resolve(*a).and_then(|(ta, hit_a)| {
            let (tb, hit_b) = resolve(*b)?;
            let out = pool_for(&shared.cfg.device)
                .install(|| {
                    multiply_with_pool(
                        &ta,
                        &tb,
                        &config,
                        &shared.device_tracker,
                        recorder,
                        job.id,
                        &shared.arena,
                    )
                })
                .map_err(EngineError::SpGemm)?;
            let exec = exec_start.elapsed();
            Ok(JobReport {
                job: job.id,
                nnz_c: out.c.nnz(),
                tiles_c: out.c.tile_count(),
                c: Arc::new(out.c),
                queue_wait,
                exec,
                peak_bytes: out.peak_bytes,
                cache_hits: u32::from(hit_a) + u32::from(hit_b),
                conversions: u32::from(!hit_a) + u32::from(!hit_b),
                estimate: job.estimate,
                breakdown: out.breakdown,
                links: 1,
                intermediates: Vec::new(),
            })
        }),
        OpSpec::MaskedMultiply { a, b, mask } => resolve(*a).and_then(|(ta, hit_a)| {
            let (tb, hit_b) = resolve(*b)?;
            let (tm, hit_m) = resolve(*mask)?;
            let span = recorder.span_enter(job.id, "job");
            let out = pool_for(&shared.cfg.device)
                .install(|| multiply_masked(&ta, &tb, &tm, &config, &shared.device_tracker));
            recorder.span_exit(span);
            let out = out.map_err(EngineError::SpGemm)?;
            let exec = exec_start.elapsed();
            Ok(JobReport {
                job: job.id,
                nnz_c: out.c.nnz(),
                tiles_c: out.c.tile_count(),
                c: Arc::new(out.c),
                queue_wait,
                exec,
                peak_bytes: out.peak_bytes,
                cache_hits: u32::from(hit_a) + u32::from(hit_b) + u32::from(hit_m),
                conversions: u32::from(!hit_a) + u32::from(!hit_b) + u32::from(!hit_m),
                estimate: job.estimate,
                breakdown: out.breakdown,
                links: 1,
                intermediates: Vec::new(),
            })
        }),
        OpSpec::Add { alpha, a, beta, b } => resolve(*a).and_then(|(ta, hit_a)| {
            let (tb, hit_b) = resolve(*b)?;
            if (ta.nrows, ta.ncols) != (tb.nrows, tb.ncols) {
                // `core::add` asserts on shape; surface the typed error
                // instead (submit already validated against the registry,
                // but operands can be swapped under us between admission
                // and execution).
                return Err(EngineError::SpGemm(SpGemmError::ShapeMismatch {
                    a: (ta.nrows, ta.ncols),
                    b: (tb.nrows, tb.ncols),
                }));
            }
            // The add kernel has no tracker of its own; account its
            // operands and output against the device budget here so an add
            // respects the same admission backstop as the multiplies.
            let input_bytes = ta.bytes() + tb.bytes();
            shared
                .device_tracker
                .on_alloc(input_bytes)
                .map_err(|e| EngineError::SpGemm(e.into()))?;
            let mut breakdown = Breakdown::default();
            let span = recorder.span_enter(job.id, "job");
            let c = pool_for(&shared.cfg.device).install(|| {
                breakdown.timed(Step::Step3, || {
                    tilespgemm_core::add(*alpha, &ta, *beta, &tb)
                })
            });
            recorder.span_exit(span);
            let c_bytes = c.bytes();
            let out_alloc = shared.device_tracker.on_alloc(c_bytes);
            shared.device_tracker.on_free(input_bytes);
            match out_alloc {
                Ok(()) => shared.device_tracker.on_free(c_bytes),
                Err(e) => return Err(EngineError::SpGemm(e.into())),
            }
            let exec = exec_start.elapsed();
            Ok(JobReport {
                job: job.id,
                nnz_c: c.nnz(),
                tiles_c: c.tile_count(),
                c: Arc::new(c),
                queue_wait,
                exec,
                peak_bytes: input_bytes + c_bytes,
                cache_hits: u32::from(hit_a) + u32::from(hit_b),
                conversions: u32::from(!hit_a) + u32::from(!hit_b),
                estimate: job.estimate,
                breakdown,
                links: 0,
                intermediates: Vec::new(),
            })
        }),
        OpSpec::Chain { operands, mask } => run_chain(
            shared, &job, &resolve, operands, *mask, &config, exec_start, queue_wait,
        ),
        OpSpec::Power { a, k, mask } => {
            let ops = vec![*a; (*k).max(1) as usize];
            run_chain(
                shared, &job, &resolve, &ops, *mask, &config, exec_start, queue_wait,
            )
        }
    };
    shared
        .counters
        .exec_micros
        .fetch_add(exec_start.elapsed().as_micros() as u64, Ordering::Relaxed);
    match &result {
        Ok(report) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            // Pin the estimator's accuracy per completed job: which log2
            // band did actual peak bytes land in relative to the admission
            // estimate?
            //
            // Multiply-shaped jobs tick: plain multiplies run on the
            // sampled/exact-flops model, and masked multiplies now prune
            // that same model through the mask (`mask_pruned`), so both are
            // like-for-like with the histogram. Add and chain jobs still
            // run on unrelated heuristic baselines and skip the tick.
            if matches!(
                job.spec.op,
                OpSpec::Multiply { .. } | OpSpec::MaskedMultiply { .. }
            ) {
                recorder.add(
                    est_error_bucket(report.estimate.est_bytes, report.peak_bytes),
                    1,
                );
            }
            // Sampled-estimator provenance: how many completed jobs carried
            // a sampled band, how many tile rows those samples measured,
            // how often the "sample" was in fact the full population, and
            // how many multiply-shaped jobs fell back to the constant model
            // (sampling disabled, failpoint, or shape-only operands).
            match job.estimate.sample {
                Some(s) => {
                    recorder.add(Counter::EstSampleJobs, 1);
                    recorder.add(Counter::EstSampleRows, u64::from(s.sampled_tile_rows));
                    if s.exact {
                        recorder.add(Counter::EstSampleExact, 1);
                    }
                }
                None => {
                    if matches!(
                        job.spec.op,
                        OpSpec::Multiply { .. } | OpSpec::MaskedMultiply { .. }
                    ) {
                        recorder.add(Counter::EstSampleFallback, 1);
                    }
                }
            }
            if matches!(job.spec.op, OpSpec::Chain { .. } | OpSpec::Power { .. }) {
                recorder.add(Counter::ChainLinks, u64::from(report.links));
            }
            if matches!(
                job.spec.op,
                OpSpec::MaskedMultiply { .. }
                    | OpSpec::Chain { mask: Some(_), .. }
                    | OpSpec::Power { mask: Some(_), .. }
            ) {
                recorder.add(Counter::MaskedJobs, 1);
            }
        }
        Err(_) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
        }
    };
    complete(&job.ticket, result);
}

/// A resolved operand: its tiled form plus whether the conversion cache hit.
type TiledHit = (Arc<TileMatrix<f64>>, bool);

/// Executes a left-associated chain of multiplies, keeping every
/// intermediate in the tiled format: link `i`'s product feeds link `i+1`
/// directly as an `Arc`, and is also registered as a resident product
/// handle (no CSR is derived — see [`Registry::insert_tiled`]). The mask,
/// if any, applies to the final link via the masked kernel.
///
/// All named operands are pinned in the registry for the duration, so
/// concurrent cache pressure cannot evict a tiled form between links.
#[allow(clippy::too_many_arguments)]
fn run_chain(
    shared: &Shared,
    job: &QueuedJob,
    resolve: &dyn Fn(MatrixId) -> Result<TiledHit, EngineError>,
    ops: &[MatrixId],
    mask: Option<MatrixId>,
    config: &Config,
    exec_start: Instant,
    queue_wait: Duration,
) -> JobResult {
    let recorder = &*shared.recorder;
    let pinned: Vec<MatrixId> = ops.iter().copied().chain(mask).collect();
    {
        let mut reg = shared
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for &id in &pinned {
            reg.pin(id);
        }
    }
    let result = (|| {
        let (first, hit0) = resolve(ops[0])?;
        let mut cur = first;
        let mut cache_hits = u32::from(hit0);
        let mut conversions = u32::from(!hit0);
        let tm = match mask {
            Some(m) => {
                let (t, hit) = resolve(m)?;
                cache_hits += u32::from(hit);
                conversions += u32::from(!hit);
                Some(t)
            }
            None => None,
        };
        let mut breakdown = Breakdown::default();
        let mut peak = 0usize;
        let mut intermediates = Vec::new();
        let last = ops.len() - 2;
        for (i, &bid) in ops[1..].iter().enumerate() {
            let (tb, hit) = resolve(bid)?;
            cache_hits += u32::from(hit);
            conversions += u32::from(!hit);
            let out = match (i == last, &tm) {
                (true, Some(tm)) => {
                    let span = recorder.span_enter(job.id, "job");
                    let out = pool_for(&shared.cfg.device)
                        .install(|| multiply_masked(&cur, &tb, tm, config, &shared.device_tracker));
                    recorder.span_exit(span);
                    out.map_err(EngineError::SpGemm)?
                }
                _ => pool_for(&shared.cfg.device)
                    .install(|| {
                        multiply_with_pool(
                            &cur,
                            &tb,
                            config,
                            &shared.device_tracker,
                            recorder,
                            job.id,
                            &shared.arena,
                        )
                    })
                    .map_err(EngineError::SpGemm)?,
            };
            breakdown.step1 += out.breakdown.step1;
            breakdown.step2 += out.breakdown.step2;
            breakdown.step3 += out.breakdown.step3;
            breakdown.alloc += out.breakdown.alloc;
            peak = peak.max(out.peak_bytes);
            // Step 1 predicts the product's tile set structurally, so the
            // raw output can carry phantom (zero-entry) tiles. The next
            // link's step 1 walks every operand tile, so compact before
            // feeding the product back — a pure metadata rewrite, far
            // cheaper than the CSR round-trip it replaces.
            let c = Arc::new(out.c.compact());
            if i != last {
                // Failpoint `engine.chain_register`: the resident
                // registration is refused (the registry cannot take the
                // allocation). Graceful degradation: the intermediate
                // lives on as this job's local `Arc`, the chain continues,
                // only the handle is missing from the report.
                #[cfg(feature = "failpoints")]
                let skip = tsg_runtime::failpoint::should_fail("engine.chain_register");
                #[cfg(not(feature = "failpoints"))]
                let skip = false;
                if !skip {
                    let (mid, _) = shared
                        .registry
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert_tiled(Arc::clone(&c));
                    intermediates.push(mid);
                }
            }
            cur = c;
        }
        let exec = exec_start.elapsed();
        Ok(JobReport {
            job: job.id,
            nnz_c: cur.nnz(),
            tiles_c: cur.tile_count(),
            c: cur,
            queue_wait,
            exec,
            peak_bytes: peak,
            cache_hits,
            conversions,
            estimate: job.estimate,
            breakdown,
            links: (ops.len() - 1) as u32,
            intermediates,
        })
    })();
    let mut reg = shared
        .registry
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    for &id in &pinned {
        reg.unpin(id);
    }
    result
}
