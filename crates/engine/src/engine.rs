//! The resident engine: admission-controlled job queue + worker executor.
//!
//! One [`Engine`] owns a simulated [`Device`], a shared [`MemTracker`]
//! enforcing the device budget across *all* in-flight products (PR 1's
//! tracker only ever guarded one), a [`Registry`] of loaded matrices with
//! cached tiled conversions, and a pool of worker threads executing multiply
//! jobs on the memoized per-device Rayon pool
//! ([`tsg_runtime::device::pool_for`]).
//!
//! Job lifecycle:
//!
//! 1. [`Engine::submit`] — admission control. Unknown operands, a cost
//!    prediction ([`crate::estimate`]) exceeding the device budget, or a
//!    full queue reject the job *synchronously* with a typed error, so
//!    callers get explicit backpressure instead of unbounded queueing.
//! 2. A worker pops the job (FIFO), checks cancellation and the queue-wait
//!    deadline, resolves both operands through the registry (cache hit or
//!    conversion), and runs the tiled pipeline on the device pool under the
//!    shared tracker.
//! 3. The result — a [`JobReport`] or an [`EngineError`] — is published on
//!    the job's [`JobTicket`]; [`JobTicket::wait`] blocks until then.
//!
//! Timeouts bound *queue wait*, not execution: a job popped after its
//! deadline completes as `timed_out` without running. A running multiply is
//! not interruptible (matching the kernels it models); cancellation is
//! therefore only honoured while a job is still queued.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tilespgemm_core::{multiply_with_pool, Config};
use tsg_matrix::TileMatrix;
use tsg_runtime::observe::{
    est_error_bucket, null_recorder, CollectingRecorder, MetricsSnapshot, Recorder,
};
use tsg_runtime::{device::pool_for, Breakdown, Device, MemTracker, ScratchPool};

use crate::estimate::{estimate_job, JobEstimate};
use crate::registry::{MatrixId, Registry, RegistryStats, TiledLookup};
use crate::EngineError;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The simulated device jobs execute on; its `mem_budget` is the shared
    /// in-flight budget.
    pub device: Device,
    /// Worker threads executing jobs (each installs the device pool).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions are shed.
    pub queue_depth: usize,
    /// Byte budget for cached tiled conversions in the registry.
    pub cache_bytes: usize,
    /// Deadline applied to jobs that do not carry their own timeout.
    pub default_timeout: Option<Duration>,
    /// Pipeline configuration jobs run with unless they override it.
    pub base_config: Config,
    /// Record per-job span trees and counters into a
    /// [`CollectingRecorder`], retrievable through [`Engine::collector`] and
    /// the JSON protocol's `stats`/`profile` verbs. Off by default, which
    /// runs every job on the [`tsg_runtime::NullRecorder`] fast path.
    pub profile: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let device = Device::rtx3090_sim();
        EngineConfig {
            cache_bytes: device.mem_budget / 2,
            device,
            workers: 1,
            queue_depth: 32,
            default_timeout: None,
            base_config: Config::default(),
            profile: false,
        }
    }
}

/// One multiply request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Left operand (must be registered).
    pub a: MatrixId,
    /// Right operand (must be registered).
    pub b: MatrixId,
    /// Pipeline configuration override; `None` uses the engine's base.
    pub config: Option<Config>,
    /// Queue-wait deadline override; `None` uses the engine default.
    pub timeout: Option<Duration>,
    /// Skip the synchronous estimate-vs-budget rejection. Set by schedulers
    /// that run their own admission (deferred admission dispatches a parked
    /// job solo once resident memory frees, accepting that the mid-flight
    /// tracker is the backstop if the estimate was still too optimistic).
    pub admit_over_budget: bool,
}

impl JobSpec {
    /// A job multiplying `a · b` with engine defaults.
    pub fn new(a: MatrixId, b: MatrixId) -> Self {
        JobSpec {
            a,
            b,
            config: None,
            timeout: None,
            admit_over_budget: false,
        }
    }
}

/// Completion record of a successful job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Engine-assigned job id.
    pub job: u64,
    /// The product, in tiled form.
    pub c: Arc<TileMatrix<f64>>,
    /// Output nonzeros (structural, as the pipeline reports them).
    pub nnz_c: usize,
    /// Output tile count.
    pub tiles_c: usize,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Execution wall time (operand resolution + multiply).
    pub exec: Duration,
    /// Peak tracked device bytes during the multiply.
    pub peak_bytes: usize,
    /// Operand tiled forms served from the registry cache (0..=2).
    pub cache_hits: u32,
    /// CSR→tiled conversions this job had to perform (0..=2).
    pub conversions: u32,
    /// The cost prediction admission control admitted the job under.
    pub estimate: JobEstimate,
    /// Per-step wall times of the multiply (Figure 10's slices).
    pub breakdown: Breakdown,
}

/// Terminal state of a job.
pub type JobResult = Result<JobReport, EngineError>;

struct TicketInner {
    result: Mutex<Option<JobResult>>,
    cv: Condvar,
    canceled: AtomicBool,
}

/// Handle to a submitted job; `wait` blocks for the result.
#[derive(Clone)]
pub struct JobTicket {
    /// Engine-assigned job id.
    pub job: u64,
    inner: Arc<TicketInner>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("job", &self.job)
            .field("done", &self.try_result().is_some())
            .finish()
    }
}

impl JobTicket {
    /// Blocks until the job completes, returning its result.
    pub fn wait(&self) -> JobResult {
        let mut guard = self
            .inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = guard.as_ref() {
                return r.clone();
            }
            guard = self
                .inner
                .cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll.
    pub fn try_result(&self) -> Option<JobResult> {
        self.inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Requests cancellation. Only honoured while the job is still queued;
    /// a job already running completes normally.
    pub fn cancel(&self) {
        self.inner.canceled.store(true, Ordering::Relaxed);
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    estimate: JobEstimate,
    enqueued: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketInner>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    canceled: AtomicU64,
    timed_out: AtomicU64,
    queue_wait_micros: AtomicU64,
    exec_micros: AtomicU64,
}

/// Snapshot of engine-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Every submission that arrived, whether or not it was admitted —
    /// rejected, shed, and shut-down arrivals all count, so the shed rate
    /// is `(submitted - admitted) / submitted` from stats alone.
    pub submitted: u64,
    /// Submissions accepted into the queue.
    pub admitted: u64,
    /// Jobs that finished with a product.
    pub completed: u64,
    /// Jobs that ran and failed (OOM, shape mismatch).
    pub failed: u64,
    /// Submissions rejected by admission control (estimate over budget).
    pub rejected: u64,
    /// Submissions shed because the queue was full.
    pub shed: u64,
    /// Jobs canceled while queued.
    pub canceled: u64,
    /// Jobs whose queue wait exceeded their deadline.
    pub timed_out: u64,
    /// Sum of queue waits over completed/failed/timed-out jobs.
    pub queue_wait_total: Duration,
    /// Sum of execution times over completed/failed jobs.
    pub exec_total: Duration,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Registry counters (conversions, hits, evictions).
    pub registry: RegistryStats,
    /// Bytes currently cached by the registry.
    pub cached_bytes: usize,
    /// Bytes currently tracked in-flight against the device budget.
    pub device_bytes_in_use: usize,
    /// High-water footprint of the shared scratch-arena pool (bytes); the
    /// arenas stay warm across jobs, so this is the engine-lifetime peak.
    pub arena_high_water: usize,
}

struct Shared {
    cfg: EngineConfig,
    device_tracker: MemTracker,
    registry: Mutex<Registry>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    next_job: AtomicU64,
    recorder: Arc<dyn Recorder>,
    collector: Option<Arc<CollectingRecorder>>,
    /// Reusable scratch arenas shared by every job the workers run; after
    /// the first few jobs the step-2/3 hot path allocates nothing.
    arena: ScratchPool,
}

/// The resident SpGEMM service engine. See the module docs for the job
/// lifecycle; construction spawns the worker threads, drop joins them.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Builds an engine and starts its workers.
    pub fn new(cfg: EngineConfig) -> Self {
        let collector = cfg.profile.then(|| Arc::new(CollectingRecorder::new()));
        let recorder: Arc<dyn Recorder> = match &collector {
            Some(c) => Arc::clone(c) as Arc<dyn Recorder>,
            None => null_recorder(),
        };
        let device_tracker = MemTracker::with_budget(cfg.device.mem_budget);
        // The tracker and registry drop the attachment again when the
        // recorder is disabled, so the non-profiling path stays free.
        device_tracker.set_recorder(Some(Arc::clone(&recorder)));
        let registry = Registry::new(cfg.cache_bytes);
        registry.set_recorder(Arc::clone(&recorder));
        let shared = Arc::new(Shared {
            device_tracker,
            registry: Mutex::new(registry),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            next_job: AtomicU64::new(1),
            recorder,
            collector,
            arena: ScratchPool::new(),
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tsg-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning engine worker")
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// An engine with default configuration on the given device.
    pub fn on_device(device: Device) -> Self {
        Self::new(EngineConfig {
            cache_bytes: device.mem_budget / 2,
            device,
            ..EngineConfig::default()
        })
    }

    /// Registers a matrix, returning `(id, deduped)`.
    pub fn register(&self, csr: tsg_matrix::Csr<f64>) -> (MatrixId, bool) {
        self.lock_registry().insert(csr)
    }

    /// Forces (or looks up) the tiled conversion of `id`; returns the tile
    /// count, cached byte size, and whether it was a cache hit.
    pub fn convert(&self, id: MatrixId) -> Result<(usize, usize, bool), EngineError> {
        use tsg_matrix::Footprint;
        let (t, hit) = self.resolve_tiled(id)?;
        Ok((t.tile_count(), t.bytes(), hit))
    }

    /// The tiled form of `id`, converting on a cache miss *outside* the
    /// registry lock. The boolean is `true` on a cache hit. This is what
    /// workers use to resolve operands, and what a conversion-prefetch
    /// thread calls to warm job N+1's operands while job N computes: the
    /// registry mutex is only held for the lookup and the install, so a
    /// running conversion never blocks concurrent resolves.
    pub fn resolve_tiled(&self, id: MatrixId) -> Result<(Arc<TileMatrix<f64>>, bool), EngineError> {
        resolve_tiled(&self.shared, id)
    }

    /// Registers a pipeline product as an operand: derives its CSR form,
    /// inserts it under its content id, and pre-seeds the tiled cache with
    /// the product itself so a dependent multiply skips the conversion.
    /// Returns `(id, deduped)` like [`Engine::register`].
    pub fn register_product(&self, tiled: Arc<TileMatrix<f64>>) -> (MatrixId, bool) {
        // Derive the CSR outside the registry lock — same discipline as
        // resolve_tiled, the derivation can cost a product runtime.
        let csr = tiled.to_csr();
        self.lock_registry().insert_with_tiled(csr, tiled)
    }

    /// The registered CSR form of `id`.
    pub fn csr(&self, id: MatrixId) -> Result<Arc<tsg_matrix::Csr<f64>>, EngineError> {
        self.lock_registry().csr(id)
    }

    /// Drops cached tiled forms: one matrix, or all when `id` is `None`.
    /// Returns how many cached conversions were dropped.
    pub fn evict(&self, id: Option<MatrixId>) -> Result<usize, EngineError> {
        let mut reg = self.lock_registry();
        match id {
            Some(id) => Ok(usize::from(reg.evict(id)?)),
            None => Ok(reg.evict_all()),
        }
    }

    /// Unregisters a matrix entirely (CSR and cached conversion); later
    /// references fail with `unknown_matrix`. Jobs already holding `Arc`s
    /// are unaffected.
    pub fn unregister(&self, id: MatrixId) -> Result<(), EngineError> {
        self.lock_registry().remove(id)
    }

    /// Predicts the cost of `a · b` without running it.
    pub fn estimate(&self, a: MatrixId, b: MatrixId) -> Result<JobEstimate, EngineError> {
        let reg = self.lock_registry();
        let ca = reg.csr(a)?;
        let cb = reg.csr(b)?;
        if ca.ncols != cb.nrows {
            return Err(EngineError::SpGemm(
                tilespgemm_core::SpGemmError::ShapeMismatch {
                    a: (ca.nrows, ca.ncols),
                    b: (cb.nrows, cb.ncols),
                },
            ));
        }
        // Cached tiled forms tighten the prediction, but reading them here
        // would need &mut (LRU touch); the structural estimate is fine for
        // admission.
        Ok(estimate_job(&ca, None, &cb, None))
    }

    /// Submits a job. Admission control runs synchronously: unknown
    /// operands, over-budget estimates, a full queue, and a shut-down
    /// engine all fail here with a typed error.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, EngineError> {
        // Every arrival counts, including the ones admission turns away;
        // `admitted` below is the accepted subset.
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(EngineError::ShuttingDown);
        }
        let estimate = {
            let reg = self.lock_registry();
            let ca = reg.csr(spec.a)?;
            let cb = reg.csr(spec.b)?;
            if ca.ncols != cb.nrows {
                return Err(EngineError::SpGemm(
                    tilespgemm_core::SpGemmError::ShapeMismatch {
                        a: (ca.nrows, ca.ncols),
                        b: (cb.nrows, cb.ncols),
                    },
                ));
            }
            estimate_job(&ca, None, &cb, None)
        };
        let budget = self.shared.cfg.device.mem_budget;
        if !spec.admit_over_budget && estimate.est_bytes > budget {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::EstimateExceedsBudget {
                est_bytes: estimate.est_bytes,
                budget,
            });
        }
        let id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        let ticket_inner = Arc::new(TicketInner {
            result: Mutex::new(None),
            cv: Condvar::new(),
            canceled: AtomicBool::new(false),
        });
        let now = Instant::now();
        let timeout = spec.timeout.or(self.shared.cfg.default_timeout);
        let job = QueuedJob {
            id,
            spec,
            estimate,
            enqueued: now,
            deadline: timeout.map(|t| now + t),
            ticket: Arc::clone(&ticket_inner),
        };
        // Failpoint `engine.queue_full`: sheds this submission as if the
        // queue were at capacity, letting backpressure tests run without
        // actually saturating workers.
        #[cfg(feature = "failpoints")]
        if tsg_runtime::failpoint::should_fail("engine.queue_full") {
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::QueueFull {
                depth: self.shared.cfg.queue_depth,
            });
        }
        {
            let mut q = self.lock_queue();
            if q.len() >= self.shared.cfg.queue_depth {
                self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::QueueFull {
                    depth: self.shared.cfg.queue_depth,
                });
            }
            q.push_back(job);
        }
        self.shared
            .counters
            .admitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.queue_cv.notify_one();
        Ok(JobTicket {
            job: id,
            inner: ticket_inner,
        })
    }

    /// Submit-and-wait convenience.
    pub fn multiply_now(&self, spec: JobSpec) -> JobResult {
        self.submit(spec)?.wait()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        let c = &self.shared.counters;
        let (registry, cached_bytes) = {
            let reg = self.lock_registry();
            (reg.stats(), reg.cached_bytes())
        };
        EngineStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            canceled: c.canceled.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            queue_wait_total: Duration::from_micros(c.queue_wait_micros.load(Ordering::Relaxed)),
            exec_total: Duration::from_micros(c.exec_micros.load(Ordering::Relaxed)),
            queue_depth: self.lock_queue().len(),
            registry,
            cached_bytes,
            device_bytes_in_use: self.shared.device_tracker.current_bytes(),
            arena_high_water: self.shared.arena.high_water_bytes(),
        }
    }

    /// The engine's device.
    pub fn device(&self) -> &Device {
        &self.shared.cfg.device
    }

    /// The engine's construction parameters.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// The shared device-budget tracker (in-flight bytes across all jobs).
    pub fn device_tracker(&self) -> &MemTracker {
        &self.shared.device_tracker
    }

    /// The recorder jobs report into — a [`CollectingRecorder`] when the
    /// engine was built with [`EngineConfig::profile`], the null fast path
    /// otherwise.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.shared.recorder
    }

    /// The collecting recorder, when profiling is on. This is where per-job
    /// span trees live ([`CollectingRecorder::span_tree`]).
    pub fn collector(&self) -> Option<&Arc<CollectingRecorder>> {
        self.shared.collector.as_ref()
    }

    /// Aggregated observability counters across all jobs so far. All zeros
    /// unless the engine is profiling.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.recorder.snapshot()
    }

    /// Stops accepting jobs, drains the queue, and joins the workers.
    /// Queued jobs still execute; call this for a graceful stop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue_cv.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.shared
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<QueuedJob>> {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn complete(ticket: &TicketInner, result: JobResult) {
    *ticket.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
    ticket.cv.notify_all();
}

/// Two-phase operand resolution: lock for the lookup, convert unlocked,
/// lock again to install. See [`Engine::resolve_tiled`].
fn resolve_tiled(
    shared: &Shared,
    id: MatrixId,
) -> Result<(Arc<TileMatrix<f64>>, bool), EngineError> {
    let lookup = shared
        .registry
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .begin_tiled(id)?;
    match lookup {
        TiledLookup::Cached(t) => Ok((t, true)),
        TiledLookup::Convert(csr) => {
            let tiled = Arc::new(TileMatrix::from_csr(&csr));
            shared
                .registry
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .install_tiled(id, Arc::clone(&tiled), true);
            Ok((tiled, false))
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                q = shared
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(shared, job);
    }
}

fn run_job(shared: &Shared, job: QueuedJob) {
    let queue_wait = job.enqueued.elapsed();
    shared
        .counters
        .queue_wait_micros
        .fetch_add(queue_wait.as_micros() as u64, Ordering::Relaxed);
    if job.ticket.canceled.load(Ordering::Relaxed) {
        shared.counters.canceled.fetch_add(1, Ordering::Relaxed);
        complete(&job.ticket, Err(EngineError::Canceled));
        return;
    }
    if job.deadline.is_some_and(|d| Instant::now() > d) {
        shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
        complete(&job.ticket, Err(EngineError::TimedOut));
        return;
    }

    let exec_start = Instant::now();
    let recorder = &*shared.recorder;
    // Operand resolution gets its own span per operand (a sibling of the
    // multiply's "job" root), so a profile shows conversion stalls next to
    // the pipeline phases.
    let resolve = |id| {
        // Failpoint `engine.resolve`: the operand disappears between
        // admission (which saw it) and execution — the unregister/eviction
        // race. The job must fail with the stable `unknown_matrix` code and
        // leave the worker loop alive.
        #[cfg(feature = "failpoints")]
        if tsg_runtime::failpoint::should_fail("engine.resolve") {
            return Err(EngineError::UnknownMatrix(id));
        }
        let span = recorder.span_enter(job.id, "resolve");
        let out = resolve_tiled(shared, id);
        recorder.span_exit(span);
        out
    };
    let result = resolve(job.spec.a).and_then(|(ta, hit_a)| {
        let (tb, hit_b) = resolve(job.spec.b)?;
        let config = job.spec.config.unwrap_or(shared.cfg.base_config);
        let out = pool_for(&shared.cfg.device)
            .install(|| {
                multiply_with_pool(
                    &ta,
                    &tb,
                    &config,
                    &shared.device_tracker,
                    recorder,
                    job.id,
                    &shared.arena,
                )
            })
            .map_err(EngineError::SpGemm)?;
        let exec = exec_start.elapsed();
        Ok(JobReport {
            job: job.id,
            nnz_c: out.c.nnz(),
            tiles_c: out.c.tile_count(),
            c: Arc::new(out.c),
            queue_wait,
            exec,
            peak_bytes: out.peak_bytes,
            cache_hits: u32::from(hit_a) + u32::from(hit_b),
            conversions: u32::from(!hit_a) + u32::from(!hit_b),
            estimate: job.estimate,
            breakdown: out.breakdown,
        })
    });
    shared
        .counters
        .exec_micros
        .fetch_add(exec_start.elapsed().as_micros() as u64, Ordering::Relaxed);
    match &result {
        Ok(report) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            // Pin the estimator's accuracy per completed job: which log2
            // band did actual peak bytes land in relative to the admission
            // estimate? The OCEAN-style estimator work reads this baseline.
            recorder.add(
                est_error_bucket(report.estimate.est_bytes, report.peak_bytes),
                1,
            );
        }
        Err(_) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
        }
    };
    complete(&job.ticket, result);
}
