//! Content-addressed matrix registry with a cached, LRU-evicted tiled form.
//!
//! The TileSpGEMM paper (and Ocean after it) points out that the CSR→tiled
//! conversion costs several single-product runtimes and only pays off when
//! amortized across repeated multiplies. The registry is where that
//! amortization lives: matrices are stored once (keyed by
//! [`Csr::content_hash`], so re-loading the same operand dedupes), and the
//! tiled conversion is built lazily on first use, cached, and evicted
//! least-recently-used when the cache's byte budget — accounted through the
//! same [`MemTracker`] machinery the multiply pipeline uses — fills up.
//!
//! Entries come in two flavours since the op-expression redesign:
//!
//! * **CSR-primary** ([`Registry::insert`]) — the classic form: the CSR is
//!   authoritative, the tiled form is a cache line that LRU eviction may
//!   drop and a later lookup rebuilds.
//! * **Tiled-primary / resident** ([`Registry::insert_tiled`]) — pipeline
//!   products registered straight from their tiled form, keyed by
//!   [`TileMatrix::content_hash`]. The tiled form *is* the data, so it is
//!   never LRU-evicted and its bytes live outside the cache budget
//!   ([`Registry::resident_bytes`]); the CSR form is derived lazily only if
//!   a client asks for it ([`RegistryStats::csr_derivations`] counts those —
//!   a chained multiply that stays tiled keeps the counter at zero).
//!
//! In-flight chains [`Registry::pin`] their operands so concurrent cache
//! pressure cannot evict a tiled form between two links of the same job.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tsg_matrix::{Csr, Footprint, TileMatrix};
use tsg_runtime::{MemTracker, Recorder};

use crate::EngineError;

/// Content-derived identifier of a registered matrix.
///
/// Displays as `m` + 16 hex digits (e.g. `m00c0ffee00c0ffee`), which is also
/// the wire form the JSON protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixId(pub u64);

impl fmt::Display for MatrixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{:016x}", self.0)
    }
}

impl std::str::FromStr for MatrixId {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, ()> {
        let hex = s.strip_prefix('m').ok_or(())?;
        u64::from_str_radix(hex, 16).map(MatrixId).map_err(|_| ())
    }
}

/// Counters describing registry behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// CSR→tiled conversions performed (cached or not).
    pub conversions: u64,
    /// Tiled lookups served from the cache.
    pub cache_hits: u64,
    /// Tiled lookups that had to convert.
    pub cache_misses: u64,
    /// Cached tiled forms dropped to make room.
    pub evictions: u64,
    /// Conversions whose result could not be cached even after evicting
    /// everything (matrix larger than the whole cache budget).
    pub uncached_conversions: u64,
    /// Tiled→CSR derivations performed for resident (tiled-primary)
    /// entries. A chain that stays in the tiled format end to end leaves
    /// this at zero; every increment is a materialization a client opted
    /// into.
    pub csr_derivations: u64,
}

struct Entry {
    /// CSR form. Always present for CSR-primary entries; for resident
    /// (tiled-primary) entries it starts empty and is derived lazily on the
    /// first explicit CSR request.
    csr: Option<Arc<Csr<f64>>>,
    tiled: Option<Arc<TileMatrix<f64>>>,
    tiled_bytes: usize,
    /// `(nrows, ncols, nnz)`, recorded at insert so admission estimates
    /// never need to materialize a CSR.
    shape: (usize, usize, usize),
    /// Tiled-primary entry: the tiled form is authoritative, never
    /// LRU-evicted, and accounted outside the cache budget.
    resident: bool,
    /// In-flight pin count; pinned entries are skipped by LRU eviction.
    pins: u32,
    last_used: u64,
}

/// Outcome of the first half of a two-phase tiled lookup
/// ([`Registry::begin_tiled`]).
pub enum TiledLookup {
    /// The tiled form was cached; nothing left to do.
    Cached(Arc<TileMatrix<f64>>),
    /// Cache miss: convert this CSR *outside* the registry lock, then hand
    /// the result back through [`Registry::install_tiled`].
    Convert(Arc<Csr<f64>>),
}

/// The registry: content-hashed CSR store + tiled-conversion cache.
pub struct Registry {
    entries: HashMap<u64, Entry>,
    cache_tracker: MemTracker,
    clock: u64,
    stats: RegistryStats,
    resident_bytes: usize,
}

impl Registry {
    /// A registry whose cached tiled forms may occupy up to `cache_bytes`.
    pub fn new(cache_bytes: usize) -> Self {
        Registry {
            entries: HashMap::new(),
            cache_tracker: MemTracker::with_budget(cache_bytes),
            clock: 0,
            stats: RegistryStats::default(),
            resident_bytes: 0,
        }
    }

    /// Routes the cache's byte accounting into `recorder`'s
    /// `bytes_alloc`/`bytes_freed` counters, so a profile sees cached
    /// conversions and evictions alongside the pipelines' device traffic.
    /// A disabled recorder (the null fast path) is dropped, not stored.
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        self.cache_tracker.set_recorder(Some(recorder));
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Registers a matrix, returning its content id. Re-registering the same
    /// content is a no-op returning the existing id (`true` in the second
    /// tuple slot marks a dedupe).
    pub fn insert(&mut self, csr: Csr<f64>) -> (MatrixId, bool) {
        let id = MatrixId(csr.content_hash());
        let now = self.tick();
        let dedup = self.entries.contains_key(&id.0);
        if !dedup {
            let shape = (csr.nrows, csr.ncols, csr.nnz());
            self.entries.insert(
                id.0,
                Entry {
                    csr: Some(Arc::new(csr)),
                    tiled: None,
                    tiled_bytes: 0,
                    shape,
                    resident: false,
                    pins: 0,
                    last_used: now,
                },
            );
        }
        (id, dedup)
    }

    /// Registers a pipeline product straight from its tiled form — no CSR is
    /// built. The id is [`TileMatrix::content_hash`], so re-registering the
    /// bitwise-same product dedupes exactly like [`Registry::insert`] does
    /// for CSRs. The entry is *resident*: the tiled form is authoritative,
    /// exempt from LRU eviction, and accounted under
    /// [`Registry::resident_bytes`] rather than the cache budget. It stays
    /// until an explicit [`Registry::remove`] (the protocol's `unload`).
    pub fn insert_tiled(&mut self, tiled: Arc<TileMatrix<f64>>) -> (MatrixId, bool) {
        let id = MatrixId(tiled.content_hash());
        let now = self.tick();
        let dedup = self.entries.contains_key(&id.0);
        if !dedup {
            let bytes = tiled.bytes();
            let shape = (tiled.nrows, tiled.ncols, tiled.nnz());
            self.resident_bytes += bytes;
            self.entries.insert(
                id.0,
                Entry {
                    csr: None,
                    tiled: Some(tiled),
                    tiled_bytes: bytes,
                    shape,
                    resident: true,
                    pins: 0,
                    last_used: now,
                },
            );
        }
        (id, dedup)
    }

    /// The registered CSR form.
    ///
    /// For a resident (tiled-primary) entry this *derives* the CSR from the
    /// tiled form on first request, caches it on the entry, and counts the
    /// materialization in [`RegistryStats::csr_derivations`] — the cost a
    /// chained workload avoids by keeping intermediates tiled.
    pub fn csr(&mut self, id: MatrixId) -> Result<Arc<Csr<f64>>, EngineError> {
        let e = self
            .entries
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownMatrix(id))?;
        if let Some(csr) = &e.csr {
            return Ok(Arc::clone(csr));
        }
        let tiled = e.tiled.as_ref().expect("resident entry keeps its tiled");
        let csr = Arc::new(tiled.to_csr());
        e.csr = Some(Arc::clone(&csr));
        self.stats.csr_derivations += 1;
        Ok(csr)
    }

    /// The CSR form if it is already materialized; `None` for a resident
    /// entry whose CSR was never derived. Admission estimation uses this so
    /// an estimate never forces the materialization it is trying to avoid.
    pub fn csr_if_present(&self, id: MatrixId) -> Result<Option<Arc<Csr<f64>>>, EngineError> {
        self.entries
            .get(&id.0)
            .map(|e| e.csr.as_ref().map(Arc::clone))
            .ok_or(EngineError::UnknownMatrix(id))
    }

    /// The tiled form if it is already materialized (cached or resident) —
    /// like [`Registry::csr_if_present`], this never converts and never
    /// touches the LRU clock, so estimation can peek without disturbing
    /// eviction order.
    pub fn tiled_if_present(
        &self,
        id: MatrixId,
    ) -> Result<Option<Arc<TileMatrix<f64>>>, EngineError> {
        self.entries
            .get(&id.0)
            .map(|e| e.tiled.as_ref().map(Arc::clone))
            .ok_or(EngineError::UnknownMatrix(id))
    }

    /// `(nrows, ncols, nnz)` of a registered matrix — available without
    /// materializing anything, whichever form is primary.
    pub fn shape(&self, id: MatrixId) -> Result<(usize, usize, usize), EngineError> {
        self.entries
            .get(&id.0)
            .map(|e| e.shape)
            .ok_or(EngineError::UnknownMatrix(id))
    }

    /// Pins `id`: while the pin count is non-zero, LRU eviction skips the
    /// entry's tiled form. The engine pins every operand of a chain for the
    /// duration of the job, so cache pressure from concurrent jobs cannot
    /// force a re-conversion between links. Unknown ids are ignored (the
    /// operand check happens at submit).
    pub fn pin(&mut self, id: MatrixId) {
        if let Some(e) = self.entries.get_mut(&id.0) {
            e.pins += 1;
        }
    }

    /// Releases one pin on `id` (saturating; unknown ids are ignored).
    pub fn unpin(&mut self, id: MatrixId) {
        if let Some(e) = self.entries.get_mut(&id.0) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Whether `id`'s tiled form is currently cached.
    pub fn is_cached(&self, id: MatrixId) -> bool {
        self.entries.get(&id.0).is_some_and(|e| e.tiled.is_some())
    }

    /// The tiled form of `id`, converting (and caching, budget permitting)
    /// on first use. The boolean is `true` when served from the cache.
    ///
    /// This runs the conversion while the caller holds the registry —
    /// convenient for single-threaded use. Concurrent resolvers (the engine
    /// workers, the serve crate's conversion prefetcher) use the two-phase
    /// [`Registry::begin_tiled`] / [`Registry::install_tiled`] pair instead
    /// so a multi-second conversion never runs under the registry mutex.
    pub fn tiled(&mut self, id: MatrixId) -> Result<(Arc<TileMatrix<f64>>, bool), EngineError> {
        match self.begin_tiled(id)? {
            TiledLookup::Cached(t) => Ok((t, true)),
            TiledLookup::Convert(csr) => {
                let tiled = Arc::new(TileMatrix::from_csr(&csr));
                self.install_tiled(id, Arc::clone(&tiled), true);
                Ok((tiled, false))
            }
        }
    }

    /// First half of a two-phase tiled lookup: touches the LRU clock and
    /// either returns the cached tiled form or hands back the CSR for the
    /// caller to convert outside the registry lock. A miss is counted here;
    /// the matching conversion is counted by [`Registry::install_tiled`].
    ///
    /// Two callers racing on the same uncached `id` both get `Convert` and
    /// duplicate the work; the conversion is deterministic, so whichever
    /// install lands first wins and the other is a no-op.
    pub fn begin_tiled(&mut self, id: MatrixId) -> Result<TiledLookup, EngineError> {
        // Failpoint `registry.evict_all`: every cached conversion vanishes
        // right before this lookup, simulating an eviction racing the
        // resolve. The lookup must fall through to a fresh conversion.
        #[cfg(feature = "failpoints")]
        if tsg_runtime::failpoint::should_fail("registry.evict_all") {
            self.evict_all();
        }
        let now = self.tick();
        let e = self
            .entries
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownMatrix(id))?;
        e.last_used = now;
        if let Some(t) = &e.tiled {
            self.stats.cache_hits += 1;
            return Ok(TiledLookup::Cached(Arc::clone(t)));
        }
        self.stats.cache_misses += 1;
        // Only CSR-primary entries can miss: a resident entry's tiled form
        // is its primary storage and is returned above.
        let csr = e.csr.as_ref().expect("csr-primary entry keeps its csr");
        Ok(TiledLookup::Convert(Arc::clone(csr)))
    }

    /// Second half of a two-phase lookup: caches `tiled` under `id`, budget
    /// permitting (evicting LRU entries to make room). `from_conversion`
    /// marks the caller as having just converted (counted in the stats);
    /// pre-seeding a pipeline product passes `false`. Returns whether the
    /// form ended up cached — a lost install race, an unregistered `id`, or
    /// an over-budget matrix all leave the caller's `Arc` as the only copy.
    pub fn install_tiled(
        &mut self,
        id: MatrixId,
        tiled: Arc<TileMatrix<f64>>,
        from_conversion: bool,
    ) -> bool {
        if from_conversion {
            self.stats.conversions += 1;
        }
        let Some(e) = self.entries.get_mut(&id.0) else {
            return false; // unregistered while converting
        };
        if e.tiled.is_some() {
            return false; // lost the install race; existing copy stays
        }
        let bytes = tiled.bytes();
        // Failpoint `registry.cache_alloc`: the cache refuses to account the
        // conversion, exercising the serve-uncached fallback on any budget.
        #[cfg(feature = "failpoints")]
        if tsg_runtime::failpoint::should_fail("registry.cache_alloc") {
            self.stats.uncached_conversions += 1;
            return false;
        }
        while self.cache_tracker.on_alloc(bytes).is_err() {
            if !self.evict_lru() {
                // Nothing left to evict: serve the conversion uncached.
                // In-flight users keep their Arc; the cache simply never
                // holds this matrix.
                if from_conversion {
                    self.stats.uncached_conversions += 1;
                }
                return false;
            }
        }
        let e = self.entries.get_mut(&id.0).expect("entry exists");
        e.tiled = Some(tiled);
        e.tiled_bytes = bytes;
        true
    }

    /// Registers a matrix together with its already-built tiled form (a
    /// pipeline product being kept as an operand), pre-seeding the cache so
    /// the next multiply touching it skips the conversion entirely.
    pub fn insert_with_tiled(
        &mut self,
        csr: Csr<f64>,
        tiled: Arc<TileMatrix<f64>>,
    ) -> (MatrixId, bool) {
        let (id, dedup) = self.insert(csr);
        if !self.is_cached(id) {
            self.install_tiled(id, tiled, false);
        }
        (id, dedup)
    }

    /// Evicts the least-recently-used cached tiled form. Returns `false`
    /// when nothing was evictable. Resident entries (tiled-primary — the
    /// tiled form is the data) and pinned entries (an in-flight chain holds
    /// them) are never victims.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.tiled.is_some() && !e.resident && e.pins == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&k, _)| k);
        match victim {
            Some(k) => {
                let e = self.entries.get_mut(&k).expect("victim exists");
                self.cache_tracker.on_free(e.tiled_bytes);
                e.tiled = None;
                e.tiled_bytes = 0;
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Drops `id`'s cached tiled form (the CSR stays registered). Returns
    /// whether a cached form existed. A resident entry's tiled form is its
    /// primary storage and cannot be evicted (use [`Registry::remove`] to
    /// drop the whole entry); evicting it reports `false`.
    pub fn evict(&mut self, id: MatrixId) -> Result<bool, EngineError> {
        let e = self
            .entries
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownMatrix(id))?;
        if e.resident {
            return Ok(false);
        }
        if e.tiled.take().is_some() {
            self.cache_tracker.on_free(e.tiled_bytes);
            e.tiled_bytes = 0;
            self.stats.evictions += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Unregisters `id` entirely: the cached tiled form (if any) is evicted,
    /// resident storage is released, and the entry is dropped, so later
    /// lookups fail with `unknown_matrix`. In-flight users holding `Arc`s
    /// keep their data.
    pub fn remove(&mut self, id: MatrixId) -> Result<(), EngineError> {
        self.evict(id)?;
        if let Some(e) = self.entries.remove(&id.0) {
            if e.resident {
                self.resident_bytes = self.resident_bytes.saturating_sub(e.tiled_bytes);
            }
        }
        Ok(())
    }

    /// Drops every cached tiled form, returning how many were cached.
    pub fn evict_all(&mut self) -> usize {
        let mut n = 0;
        while self.evict_lru() {
            n += 1;
        }
        n
    }

    /// Number of registered matrices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently held by cached tiled forms.
    pub fn cached_bytes(&self) -> usize {
        self.cache_tracker.current_bytes()
    }

    /// Bytes held by resident (tiled-primary) entries — products kept in
    /// their tiled form. Outside the cache budget; released by
    /// [`Registry::remove`].
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The cache's byte budget.
    pub fn cache_budget(&self) -> usize {
        self.cache_tracker.budget()
    }

    /// Behaviour counters since construction.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_gen::suite::GenSpec;

    fn small(seed: u64) -> Csr<f64> {
        GenSpec::Scatter {
            n: 96,
            per_row: 4,
            seed,
        }
        .build()
    }

    #[test]
    fn insert_dedupes_identical_content() {
        let mut r = Registry::new(usize::MAX);
        let (id1, dedup1) = r.insert(small(1));
        let (id2, dedup2) = r.insert(small(1));
        let (id3, _) = r.insert(small(2));
        assert_eq!(id1, id2);
        assert!(!dedup1);
        assert!(dedup2);
        assert_ne!(id1, id3);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn tiled_converts_once_then_hits() {
        let mut r = Registry::new(usize::MAX);
        let (id, _) = r.insert(small(7));
        let (t1, hit1) = r.tiled(id).unwrap();
        let (t2, hit2) = r.tiled(id).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&t1, &t2));
        let s = r.stats();
        assert_eq!(s.conversions, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(r.cached_bytes(), t1.bytes());
    }

    #[test]
    fn lru_eviction_under_tight_budget() {
        let mut r = Registry::new(usize::MAX);
        let (a, _) = r.insert(small(1));
        let (b, _) = r.insert(small(2));
        let (ta, _) = r.tiled(a).unwrap();
        // Shrink the budget to exactly one cached matrix.
        let mut r2 = Registry::new(ta.bytes() + 8);
        let (a, _) = r2.insert(small(1));
        let (b2, _) = r2.insert(small(2));
        assert_eq!(b, b2);
        r2.tiled(a).unwrap();
        assert!(r2.is_cached(a));
        // Caching b must evict a (the LRU entry).
        r2.tiled(b).unwrap();
        assert!(!r2.is_cached(a));
        assert!(r2.is_cached(b));
        assert_eq!(r2.stats().evictions, 1);
        // Re-requesting a reconverts, bitwise identically.
        let (ta2, hit) = r2.tiled(a).unwrap();
        assert!(!hit);
        assert_eq!(*ta, *ta2);
        assert_eq!(r2.stats().conversions, 3);
    }

    #[test]
    fn oversized_matrix_is_served_uncached() {
        let mut r = Registry::new(16); // smaller than any tiled form
        let (id, _) = r.insert(small(3));
        let (t, hit) = r.tiled(id).unwrap();
        assert!(!hit);
        assert!(t.nnz() > 0);
        assert!(!r.is_cached(id));
        assert_eq!(r.stats().uncached_conversions, 1);
        assert_eq!(r.cached_bytes(), 0);
    }

    #[test]
    fn explicit_evict_frees_cache_bytes() {
        let mut r = Registry::new(usize::MAX);
        let (id, _) = r.insert(small(4));
        r.tiled(id).unwrap();
        assert!(r.cached_bytes() > 0);
        assert!(r.evict(id).unwrap());
        assert_eq!(r.cached_bytes(), 0);
        assert!(!r.evict(id).unwrap());
        assert!(r.evict(MatrixId(0xdead)).is_err());
    }

    #[test]
    fn resident_entries_dedupe_and_derive_csr_lazily() {
        let mut r = Registry::new(usize::MAX);
        let csr = small(11);
        let tiled = Arc::new(TileMatrix::from_csr(&csr));
        let (id, dedup1) = r.insert_tiled(Arc::clone(&tiled));
        let (id2, dedup2) = r.insert_tiled(Arc::clone(&tiled));
        assert_eq!(id, id2);
        assert!(!dedup1);
        assert!(dedup2);
        assert_eq!(r.resident_bytes(), tiled.bytes());
        assert_eq!(r.shape(id).unwrap(), (csr.nrows, csr.ncols, csr.nnz()));
        // Tiled lookups hit without a conversion; the cache budget is
        // untouched.
        let (t, hit) = r.tiled(id).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&t, &tiled));
        assert_eq!(r.cached_bytes(), 0);
        assert_eq!(r.stats().conversions, 0);
        // The CSR only exists once explicitly requested, and the
        // derivation is counted.
        assert!(r.csr_if_present(id).unwrap().is_none());
        assert_eq!(r.stats().csr_derivations, 0);
        let derived = r.csr(id).unwrap();
        assert_eq!(*derived, csr);
        assert_eq!(r.stats().csr_derivations, 1);
        let again = r.csr(id).unwrap();
        assert!(Arc::ptr_eq(&derived, &again));
        assert_eq!(r.stats().csr_derivations, 1);
        // Residents resist eviction but are fully released by remove.
        assert!(!r.evict(id).unwrap());
        assert_eq!(r.evict_all(), 0);
        assert!(r.tiled(id).is_ok());
        r.remove(id).unwrap();
        assert_eq!(r.resident_bytes(), 0);
        assert!(r.tiled(id).is_err());
    }

    #[test]
    fn pinned_entries_survive_lru_pressure() {
        let mut probe = Registry::new(usize::MAX);
        let (pa, _) = probe.insert(small(1));
        let (ta, _) = probe.tiled(pa).unwrap();
        // Budget fits exactly one cached tiled form.
        let mut r = Registry::new(ta.bytes() + 8);
        let (a, _) = r.insert(small(1));
        let (b, _) = r.insert(small(2));
        r.tiled(a).unwrap();
        r.pin(a);
        // b cannot displace the pinned a: it is served uncached instead.
        let (_, hit) = r.tiled(b).unwrap();
        assert!(!hit);
        assert!(r.is_cached(a));
        assert!(!r.is_cached(b));
        assert_eq!(r.stats().uncached_conversions, 1);
        // Unpinning restores normal LRU behaviour.
        r.unpin(a);
        r.tiled(b).unwrap();
        assert!(!r.is_cached(a));
        assert!(r.is_cached(b));
    }

    #[test]
    fn matrix_id_round_trips_through_display() {
        let id = MatrixId(0x00c0_ffee_1234_5678);
        let s = id.to_string();
        assert_eq!(s.parse::<MatrixId>().unwrap(), id);
        assert!("x123".parse::<MatrixId>().is_err());
    }
}
