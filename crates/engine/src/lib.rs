#![warn(missing_docs)]

//! # tsg-engine — resident SpGEMM service engine
//!
//! Everything below `tsg-engine` runs one product and exits; this crate is
//! the layer that serves *many*. An [`Engine`] holds loaded matrices in a
//! content-addressed [`registry::Registry`] (so the expensive CSR→tiled
//! conversion — several single-product runtimes, per the paper's Figure 12 —
//! is paid once and amortized, Ocean-style, across repeated products),
//! admission-controls multiply jobs against the device memory budget using a
//! spECK-style cost prediction ([`estimate`]), executes them on worker
//! threads over the memoized per-device Rayon pool, and reports
//! service-level statistics (queue wait, cache hit rate, evictions, shed
//! jobs).
//!
//! The [`protocol`] module exposes the engine as a JSON-lines request/
//! response protocol; the `tsg-serve` binary serves it over stdin/stdout or
//! TCP, and the `tile_spgemm client` subcommand drives it from scripts.
//!
//! ```
//! use tsg_engine::{Engine, EngineConfig, JobSpec};
//!
//! let engine = Engine::new(EngineConfig::default());
//! let (id, _) = engine.register(tsg_matrix::Csr::<f64>::identity(64));
//! let report = engine.multiply_now(JobSpec::new(id, id)).unwrap();
//! assert_eq!(report.nnz_c, 64);
//! // The second product of the same operands reuses the cached conversion.
//! let again = engine.multiply_now(JobSpec::new(id, id)).unwrap();
//! assert_eq!(again.cache_hits, 2);
//! ```

pub mod engine;
pub mod estimate;
pub mod json;
pub mod protocol;
pub mod registry;

pub use engine::{
    Engine, EngineConfig, EngineStats, JobReport, JobResult, JobSpec, JobTicket, OpSpec,
};
pub use estimate::{estimate_job, JobEstimate};
pub use protocol::{MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use registry::{MatrixId, Registry, RegistryStats, TiledLookup};

use tilespgemm_core::SpGemmError;

/// Errors surfaced by the engine layer.
///
/// `#[non_exhaustive]`: front ends must keep a wildcard arm, so new
/// admission or execution failures are not semver breaks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The referenced matrix id is not registered.
    UnknownMatrix(MatrixId),
    /// The multiply pipeline failed (out of memory, shape mismatch).
    SpGemm(SpGemmError),
    /// Admission control predicted the job cannot fit the device budget.
    EstimateExceedsBudget {
        /// Predicted peak bytes for the job.
        est_bytes: usize,
        /// The device budget it exceeds.
        budget: usize,
    },
    /// The job queue is at its configured depth; retry later (backpressure).
    QueueFull {
        /// The configured queue depth.
        depth: usize,
    },
    /// The job's queue wait exceeded its deadline; it was never run.
    TimedOut,
    /// The job was canceled while queued.
    Canceled,
    /// The engine is shutting down and no longer accepts jobs.
    ShuttingDown,
    /// A batch job's dependency (an earlier entry it referenced) failed, so
    /// this job can never have its operands.
    DependencyFailed {
        /// Serve-level id of the failed dependency job.
        dep: u64,
    },
    /// The op expression is malformed (a chain with fewer than two
    /// operands, a power with `k < 2`), independent of any operand's state.
    InvalidOp(&'static str),
}

impl EngineError {
    /// Stable machine-readable code, used verbatim by the JSON protocol.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::UnknownMatrix(_) => "unknown_matrix",
            EngineError::SpGemm(e) => e.code(),
            EngineError::EstimateExceedsBudget { .. } => "estimate_exceeds_budget",
            EngineError::QueueFull { .. } => "queue_full",
            EngineError::TimedOut => "timed_out",
            EngineError::Canceled => "canceled",
            EngineError::ShuttingDown => "shutting_down",
            EngineError::DependencyFailed { .. } => "dependency_failed",
            EngineError::InvalidOp(_) => "invalid_op",
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownMatrix(id) => write!(f, "matrix {id} is not registered"),
            EngineError::SpGemm(_) => write!(f, "multiply failed"),
            EngineError::EstimateExceedsBudget { est_bytes, budget } => write!(
                f,
                "estimated footprint {est_bytes} B exceeds device budget {budget} B"
            ),
            EngineError::QueueFull { depth } => {
                write!(f, "job queue full (depth {depth}); retry later")
            }
            EngineError::TimedOut => write!(f, "queue-wait deadline exceeded before execution"),
            EngineError::Canceled => write!(f, "job canceled while queued"),
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::DependencyFailed { dep } => {
                write!(f, "dependency job {dep} failed; operands unavailable")
            }
            EngineError::InvalidOp(why) => write!(f, "invalid op expression: {why}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::SpGemm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpGemmError> for EngineError {
    fn from(e: SpGemmError) -> Self {
        EngineError::SpGemm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_stable_and_sources_chain() {
        use std::error::Error;
        let e = EngineError::QueueFull { depth: 8 };
        assert_eq!(e.code(), "queue_full");
        assert!(e.source().is_none());

        let inner = SpGemmError::ShapeMismatch {
            a: (1, 2),
            b: (3, 4),
        };
        let e = EngineError::SpGemm(inner.clone());
        assert_eq!(e.code(), "shape_mismatch");
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
    }
}
