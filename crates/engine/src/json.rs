//! Minimal JSON values for the engine's line protocol.
//!
//! The workspace builds offline (no serde), so the wire format is handled by
//! this self-contained parser/printer. It covers the full JSON grammar —
//! objects, arrays, strings with escapes (including `\uXXXX` surrogate
//! pairs), numbers, booleans, null — which is all a line protocol needs.
//! Objects preserve insertion order so responses serialize deterministically.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, printed as an integer when exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exactly one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

/// Builds an object value from key/value pairs.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset where parsing failed.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut out = 0u16;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            out = out << 4 | v as u16;
            self.pos += 1;
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected \\u for low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00)
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged; the
                    // input is a &str, so they are already valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; the protocol never produces them,
                    // but degrade to null rather than emit invalid output.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let src = r#"{"op":"multiply","a":"m01","n":3,"x":[1,2.5,-4e2],"flag":true,"none":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("multiply"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let arr = v.get("x").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-400.0));
        // Printing and re-parsing is the identity.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(5.0).to_string(), "5");
        assert_eq!(Value::Num(5.25).to_string(), "5.25");
        assert_eq!(Value::Num(-0.0).to_string(), "0");
    }

    #[test]
    fn obj_builder_and_get() {
        let v = obj([("ok", Value::Bool(true)), ("n", 7usize.into())]);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.to_string(), r#"{"ok":true,"n":7}"#);
    }
}
