//! JSON-lines protocol over an [`Engine`].
//!
//! One request per line, one response per line, always an object with an
//! `"ok"` boolean and a `"v"` protocol-version number
//! ([`PROTOCOL_VERSION`]). Requests may carry `"v"` too; the server accepts
//! any generation in [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and
//! rejects others with the stable `protocol_mismatch` error code, so
//! clients can fail fast by sending `{"op":"hello","v":N}` first.
//! Errors carry a stable `code` (from
//! [`EngineError::code`]/`SpGemmError::code`), a human `message`, and the
//! `std::error::Error::source` chain serialized as a `cause` array — no
//! debug-formatted strings on the wire.
//!
//! Verbs:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"hello","v":1}` | `{"ok":true,"v":1,"server":"tsg-serve","profile":false}` |
//! | `{"op":"load","gen":"fem-00"}` | `{"ok":true,"id":"m…","rows":..,"cols":..,"nnz":..,"dedup":false}` |
//! | `{"op":"load","path":"x.mtx"}` | as above |
//! | `{"op":"load","rows":2,"cols":2,"triplets":[[0,0,1.0],[1,1,2.0]]}` | as above |
//! | `{"op":"convert","id":"m…"}` | `{"ok":true,"id":"m…","tiles":..,"tiled_bytes":..,"cache_hit":false}` |
//! | `{"op":"estimate","a":"m…","b":"m…"}` | `{"ok":true,"flops":..,"est_nnz_c":..,"est_bytes":..}` |
//! | `{"op":"multiply","a":"m…","b":"m…"}` | `{"ok":true,"job":1,"nnz_c":..,"queue_wait_ms":..,"exec_ms":..,"step1_ms":..,…}` |
//! | `{"op":"multiply",…,"mask":"m…"}` | as above, computed as `(A·B) ∘ mask` with the mask pushed into step 2 (v3) |
//! | `{"op":"multiply",…,"async":true}` | `{"ok":true,"job":1,"queued":true}` then `{"op":"wait","job":1}` |
//! | `{"op":"add","a":"m…","b":"m…","alpha":1,"beta":-1}` | multiply-shaped reply for `alpha·A + beta·B` (v3) |
//! | `{"op":"chain","ids":["m…","m…","m…"]}` | multiply-shaped reply plus `"links"` and `"intermediates":["m…"]` (v3) |
//! | `{"op":"power","a":"m…","k":3}` | as `chain` with `k` copies of `a` (v3) |
//! | `{"op":"cancel","job":1}` | `{"ok":true,"job":1,"canceled":true}` |
//! | `{"op":"stats"}` | `{"ok":true,"submitted":..,"cache_hit_rate":..,"counters":{…},…}` |
//! | `{"op":"profile"}` | `{"ok":true,"profile":true,"counters":{…},"jobs":[{"job":1,"spans":[…]}]}` |
//! | `{"op":"evict"}` / `{"op":"evict","id":"m…"}` | `{"ok":true,"evicted":n}` |
//! | `{"op":"unload","id":"m…"}` | `{"ok":true,"id":"m…","unloaded":true}` — drops the CSR too; later references are `unknown_matrix` |
//! | `{"op":"shutdown"}` | `{"ok":true,"bye":true}` and the session ends |
//!
//! Requests longer than [`MAX_FRAME_BYTES`] are refused with the stable
//! `frame_too_large` error code without being parsed; the session keeps
//! serving subsequent lines.
//!
//! `multiply` accepts optional `"scheduling"` (`"per-tile"`, `"per-tile-row"`,
//! `"binned"`), `"pair_reuse"` (bool), and `"timeout_ms"` overrides, plus
//! `"keep":true` (v2) to register the product as an operand: the reply then
//! carries its handle as `"c":"m…"`. Handles are content hashes, so equal
//! `"c"` values prove bitwise-identical products.
//!
//! v3 adds the op-expression verbs (`mask` on `multiply`, `add`, `chain`,
//! `power` — DESIGN.md §13) and the `"materialize"` flag on any of them:
//! with `"keep":true,"materialize":false` the kept product registers from
//! its *tiled* form (a resident handle; the CSR is derived only if a later
//! `load`-style consumer actually needs it). `multiply` defaults to
//! `materialize:true` so a v2 client's kept handles are unchanged;
//! `add`/`chain`/`power` default to `false` — handle-in/handle-out with no
//! CSR round-trips. A chain's intermediates always register tiled; their
//! handles come back as `"intermediates"`. The v2 *session* verbs —
//! `open_session`, `multiply_many`, weighted-fair scheduling, backpressure
//! hints — live one layer up, in the `tsg-serve` crate wrapping this
//! session (DESIGN.md §12).
//!
//! When the engine profiles ([`crate::EngineConfig::profile`], the serve
//! binary's `--profile`), `multiply`/`wait` replies additionally carry the
//! job's span tree as `"spans"` (nested `{"name","ms","children"}` nodes),
//! `stats.counters` reports live observability totals, and `profile` dumps
//! every recorded job. Without profiling the counters are all zero and
//! `"spans"` is omitted. The full wire format is documented in DESIGN.md §9.

use std::collections::HashMap;
use std::error::Error as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use tilespgemm_core::{Config, Scheduling};
use tsg_matrix::Coo;
use tsg_runtime::{CollectingRecorder, SpanNode};

use crate::engine::{Engine, JobReport, JobSpec, JobTicket, OpSpec};
use crate::json::{obj, parse, Value};
use crate::registry::MatrixId;
use crate::EngineError;

/// The protocol generation this build speaks. Bumped on wire changes; every
/// response echoes it as `"v"`. Requests may name any version down to
/// [`MIN_PROTOCOL_VERSION`] (each generation is a strict superset of the
/// previous — new verbs and new response members only, so v1/v2 requests
/// are answered bit-for-bit as before); anything else is rejected with the
/// `protocol_mismatch` error code.
pub const PROTOCOL_VERSION: u64 = 3;

/// Oldest protocol generation still accepted in a request's `"v"`.
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// Largest request line the session will parse. A 16 MiB line comfortably
/// holds the triplet loads the protocol is meant for; anything longer is
/// refused with the stable `frame_too_large` code before the parser touches
/// it, bounding per-request memory on hostile input.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// A protocol session: parses request lines, drives the shared engine, and
/// renders response lines. Tickets of `"async"` multiplies are held per
/// session for later `wait`/`cancel`.
pub struct Session {
    engine: Arc<Engine>,
    /// Pending `"async"` jobs: ticket plus the request's `"keep"` and
    /// `"materialize"` flags, honoured when `wait` collects the result.
    tickets: Mutex<HashMap<u64, (JobTicket, KeepMode)>>,
}

/// How a request asked to retain its product.
#[derive(Debug, Clone, Copy)]
struct KeepMode {
    keep: bool,
    materialize: bool,
}

/// What the transport should do after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// The client asked to shut down; stop after sending the response.
    Shutdown,
}

impl Session {
    /// A session over `engine`.
    pub fn new(engine: Arc<Engine>) -> Self {
        Session {
            engine,
            tickets: Mutex::new(HashMap::new()),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Handles one request line, returning the response line (no trailing
    /// newline) and whether the transport should stop. Every response object
    /// carries the `"v"` protocol version.
    pub fn handle_line(&self, line: &str) -> (String, Control) {
        // Failpoint `protocol.truncate_request`: the tail of the frame is
        // lost in transit. The remainder must fail as a plain `bad_request`
        // and leave the session serving.
        #[cfg(feature = "failpoints")]
        let line = if tsg_runtime::failpoint::should_fail("protocol.truncate_request") {
            let mut cut = line.len() / 2;
            while !line.is_char_boundary(cut) {
                cut -= 1;
            }
            &line[..cut]
        } else {
            line
        };
        let oversized = line.len() > MAX_FRAME_BYTES;
        // Failpoint `protocol.oversized_request`: treat this frame as if it
        // blew the limit, so the refusal path is testable without shipping a
        // 16 MiB line through the harness.
        #[cfg(feature = "failpoints")]
        let oversized =
            oversized || tsg_runtime::failpoint::should_fail("protocol.oversized_request");
        if oversized {
            let msg = format!(
                "request of {} bytes exceeds the {MAX_FRAME_BYTES}-byte frame limit",
                line.len()
            );
            return (
                versioned(error_response("frame_too_large", &msg, &[])).to_string(),
                Control::Continue,
            );
        }
        let (value, control) = match parse(line) {
            Ok(req) => self.dispatch(&req),
            Err(e) => (
                error_response("bad_request", &e.to_string(), &[]),
                Control::Continue,
            ),
        };
        (versioned(value).to_string(), control)
    }

    fn dispatch(&self, req: &Value) -> (Value, Control) {
        // Version gate first: a client that names a generation we don't
        // speak gets the stable mismatch code for *any* verb.
        if let Some(v) = req.get("v") {
            if !v
                .as_u64()
                .is_some_and(|v| (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v))
            {
                let msg = format!(
                    "server speaks protocol versions \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION} only"
                );
                return (
                    error_response("protocol_mismatch", &msg, &[]),
                    Control::Continue,
                );
            }
        }
        let op = match req.get("op").and_then(Value::as_str) {
            Some(op) => op,
            None => {
                return (
                    error_response("bad_request", "missing \"op\" member", &[]),
                    Control::Continue,
                )
            }
        };
        let out = match op {
            "hello" => Ok(self.hello()),
            "load" => self.load(req),
            "convert" => self.convert(req),
            "estimate" => self.estimate(req),
            "multiply" => self.multiply(req),
            "add" => self.add(req),
            "chain" => self.chain(req),
            "power" => self.power(req),
            "wait" => self.wait(req),
            "cancel" => self.cancel(req),
            "stats" => Ok(self.stats()),
            "profile" => Ok(self.profile()),
            "evict" => self.evict(req),
            "unload" => self.unload(req),
            "shutdown" => {
                return (
                    obj([("ok", true.into()), ("bye", true.into())]),
                    Control::Shutdown,
                )
            }
            _ => Err(ProtocolError::bad("unknown op")),
        };
        (out.unwrap_or_else(|e| e.into_response()), Control::Continue)
    }

    fn hello(&self) -> Value {
        obj([
            ("ok", true.into()),
            ("server", "tsg-serve".into()),
            ("profile", self.engine.collector().is_some().into()),
        ])
    }

    fn load(&self, req: &Value) -> Result<Value, ProtocolError> {
        let csr = if let Some(name) = req.get("gen").and_then(Value::as_str) {
            tsg_gen::suite::by_name(name)
                .ok_or_else(|| ProtocolError::bad("unknown generator dataset name"))?
                .build()
        } else if let Some(path) = req.get("path").and_then(Value::as_str) {
            tsg_matrix::io::read_matrix_market_file::<f64>(path)
                .map_err(|e| {
                    ProtocolError::with_cause(
                        "io_error",
                        "failed to read matrix file",
                        &e.to_string(),
                    )
                })?
                .to_csr()
        } else if let Some(triplets) = req.get("triplets").and_then(Value::as_arr) {
            let rows = req
                .get("rows")
                .and_then(Value::as_u64)
                .ok_or_else(|| ProtocolError::bad("triplet load needs \"rows\""))?;
            let cols = req
                .get("cols")
                .and_then(Value::as_u64)
                .ok_or_else(|| ProtocolError::bad("triplet load needs \"cols\""))?;
            let mut coo = Coo::new(rows as usize, cols as usize);
            for t in triplets {
                let t = t
                    .as_arr()
                    .filter(|t| t.len() == 3)
                    .ok_or_else(|| ProtocolError::bad("each triplet must be [row, col, value]"))?;
                let r = t[0]
                    .as_u64()
                    .filter(|&r| r < rows)
                    .ok_or_else(|| ProtocolError::bad("triplet row out of range"))?;
                let c = t[1]
                    .as_u64()
                    .filter(|&c| c < cols)
                    .ok_or_else(|| ProtocolError::bad("triplet col out of range"))?;
                let v = t[2]
                    .as_f64()
                    .ok_or_else(|| ProtocolError::bad("triplet value must be a number"))?;
                coo.push(r as u32, c as u32, v);
            }
            coo.to_csr()
        } else {
            return Err(ProtocolError::bad(
                "load needs one of \"gen\", \"path\", or \"triplets\"",
            ));
        };
        let rows = csr.nrows;
        let cols = csr.ncols;
        let nnz = csr.nnz();
        let (id, dedup) = self.engine.register(csr);
        Ok(obj([
            ("ok", true.into()),
            ("id", id.to_string().into()),
            ("rows", rows.into()),
            ("cols", cols.into()),
            ("nnz", nnz.into()),
            ("dedup", dedup.into()),
        ]))
    }

    fn matrix_id(req: &Value, key: &str) -> Result<MatrixId, ProtocolError> {
        req.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| ProtocolError::bad("missing matrix id member"))?
            .parse::<MatrixId>()
            .map_err(|()| ProtocolError::bad("malformed matrix id (want m + 16 hex digits)"))
    }

    fn convert(&self, req: &Value) -> Result<Value, ProtocolError> {
        let id = Self::matrix_id(req, "id")?;
        let (tiles, tiled_bytes, cache_hit) = self.engine.convert(id)?;
        Ok(obj([
            ("ok", true.into()),
            ("id", id.to_string().into()),
            ("tiles", tiles.into()),
            ("tiled_bytes", tiled_bytes.into()),
            ("cache_hit", cache_hit.into()),
        ]))
    }

    fn estimate(&self, req: &Value) -> Result<Value, ProtocolError> {
        // v3: estimate speaks the full op grammar — optional `"mask"`, or a
        // chain via `"ids"` — but a plain `{a, b}` request is answered by
        // the exact v2 model, bit for bit.
        let op = if req.get("ids").is_some() {
            Self::chain_op(req)?
        } else {
            let a = Self::matrix_id(req, "a")?;
            let b = Self::matrix_id(req, "b")?;
            match Self::opt_matrix_id(req, "mask")? {
                Some(mask) => OpSpec::MaskedMultiply { a, b, mask },
                None => OpSpec::Multiply { a, b },
            }
        };
        let e = self.engine.estimate_op(&op)?;
        let mut fields = vec![
            ("ok", true.into()),
            ("flops", e.flops.into()),
            ("est_nnz_c", e.est_nnz_c.into()),
            ("est_bytes", e.est_bytes.into()),
        ];
        // v3-compatible extension: sampled estimates additionally report
        // how much was measured and the nnz(C) band. Clients that predate
        // the sampler ignore the extra keys; the original three fields keep
        // their exact meaning.
        if let Some(s) = e.sample {
            fields.push(("sampled_tile_rows", u64::from(s.sampled_tile_rows).into()));
            fields.push(("total_tile_rows", u64::from(s.total_tile_rows).into()));
            fields.push(("nnz_lo", s.nnz_lo.into()));
            fields.push(("nnz_hi", s.nnz_hi.into()));
            fields.push(("sample_exact", s.exact.into()));
        }
        Ok(obj(fields))
    }

    fn opt_matrix_id(req: &Value, key: &str) -> Result<Option<MatrixId>, ProtocolError> {
        match req.get(key) {
            Some(_) => Ok(Some(Self::matrix_id(req, key)?)),
            None => Ok(None),
        }
    }

    /// Parses the `chain` verb's op: `"ids"` plus an optional `"mask"`.
    fn chain_op(req: &Value) -> Result<OpSpec, ProtocolError> {
        let ids = req
            .get("ids")
            .and_then(Value::as_arr)
            .ok_or_else(|| ProtocolError::bad("chain needs an \"ids\" array"))?;
        let operands = ids
            .iter()
            .map(|v| {
                v.as_str()
                    .and_then(|s| s.parse::<MatrixId>().ok())
                    .ok_or_else(|| {
                        ProtocolError::bad("each chain id must be a matrix handle string")
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(OpSpec::Chain {
            operands,
            mask: Self::opt_matrix_id(req, "mask")?,
        })
    }

    fn job_spec(&self, req: &Value, op: OpSpec) -> Result<JobSpec, ProtocolError> {
        let mut spec = JobSpec::of(op);
        let mut config: Option<Config> = None;
        if let Some(s) = req.get("scheduling").and_then(Value::as_str) {
            let scheduling = match s {
                "per-tile" => Scheduling::PerTile,
                "per-tile-row" => Scheduling::PerTileRow,
                "binned" => Scheduling::Binned,
                _ => return Err(ProtocolError::bad("unknown scheduling")),
            };
            config.get_or_insert_with(Config::default).scheduling = scheduling;
        }
        if let Some(p) = req.get("pair_reuse").and_then(Value::as_bool) {
            config.get_or_insert_with(Config::default).pair_reuse = p;
        }
        spec.config = config;
        if let Some(ms) = req.get("timeout_ms").and_then(Value::as_u64) {
            spec.timeout = Some(Duration::from_millis(ms));
        }
        Ok(spec)
    }

    /// Submits an op-expression job and renders/queues the reply — the
    /// shared tail of `multiply`, `add`, `chain`, and `power`. Each verb
    /// picks its own `materialize` default: `true` for `multiply` (v2-kept
    /// handles are CSR-backed, unchanged) and `false` for the v3 verbs
    /// (kept products stay tiled).
    fn submit_op(
        &self,
        req: &Value,
        op: OpSpec,
        default_materialize: bool,
    ) -> Result<Value, ProtocolError> {
        let spec = self.job_spec(req, op)?;
        let mode = KeepMode {
            keep: req.get("keep").and_then(Value::as_bool) == Some(true),
            materialize: req
                .get("materialize")
                .and_then(Value::as_bool)
                .unwrap_or(default_materialize),
        };
        let ticket = self.engine.submit(spec)?;
        if req.get("async").and_then(Value::as_bool) == Some(true) {
            let job = ticket.job;
            self.lock_tickets().insert(job, (ticket, mode));
            return Ok(obj([
                ("ok", true.into()),
                ("job", job.into()),
                ("queued", true.into()),
            ]));
        }
        let report = ticket.wait()?;
        Ok(self.finish(&report, mode))
    }

    fn multiply(&self, req: &Value) -> Result<Value, ProtocolError> {
        let a = Self::matrix_id(req, "a")?;
        let b = Self::matrix_id(req, "b")?;
        let op = match Self::opt_matrix_id(req, "mask")? {
            Some(mask) => OpSpec::MaskedMultiply { a, b, mask },
            None => OpSpec::Multiply { a, b },
        };
        self.submit_op(req, op, true)
    }

    fn add(&self, req: &Value) -> Result<Value, ProtocolError> {
        let op = OpSpec::Add {
            alpha: req.get("alpha").and_then(Value::as_f64).unwrap_or(1.0),
            a: Self::matrix_id(req, "a")?,
            beta: req.get("beta").and_then(Value::as_f64).unwrap_or(1.0),
            b: Self::matrix_id(req, "b")?,
        };
        self.submit_op(req, op, false)
    }

    fn chain(&self, req: &Value) -> Result<Value, ProtocolError> {
        let op = Self::chain_op(req)?;
        self.submit_op(req, op, false)
    }

    fn power(&self, req: &Value) -> Result<Value, ProtocolError> {
        let k = req
            .get("k")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProtocolError::bad("power needs a numeric \"k\""))?;
        let op = OpSpec::Power {
            a: Self::matrix_id(req, "a")?,
            k: u32::try_from(k).map_err(|_| ProtocolError::bad("\"k\" out of range"))?,
            mask: Self::opt_matrix_id(req, "mask")?,
        };
        self.submit_op(req, op, false)
    }

    fn wait(&self, req: &Value) -> Result<Value, ProtocolError> {
        let job = req
            .get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProtocolError::bad("wait needs a numeric \"job\""))?;
        let (ticket, mode) = self
            .lock_tickets()
            .remove(&job)
            .ok_or_else(|| ProtocolError::bad("unknown job id for this session"))?;
        let report = ticket.wait()?;
        Ok(self.finish(&report, mode))
    }

    /// Renders a completed job, registering the product first when the
    /// request asked to `keep` it — as a CSR-backed entry when it asked to
    /// materialize, as a resident tiled entry otherwise.
    fn finish(&self, report: &JobReport, mode: KeepMode) -> Value {
        let kept = mode.keep.then(|| {
            if mode.materialize {
                self.engine.register_product(Arc::clone(&report.c)).0
            } else {
                self.engine.register_tiled(Arc::clone(&report.c)).0
            }
        });
        report_response(report, self.collector(), kept)
    }

    fn cancel(&self, req: &Value) -> Result<Value, ProtocolError> {
        let job = req
            .get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProtocolError::bad("cancel needs a numeric \"job\""))?;
        let tickets = self.lock_tickets();
        let (ticket, _) = tickets
            .get(&job)
            .ok_or_else(|| ProtocolError::bad("unknown job id for this session"))?;
        ticket.cancel();
        Ok(obj([
            ("ok", true.into()),
            ("job", job.into()),
            ("canceled", true.into()),
        ]))
    }

    fn stats(&self) -> Value {
        stats_response(&self.engine)
    }

    /// Live observability dump: aggregated counters plus (when profiling)
    /// the span tree of every job recorded so far.
    fn profile(&self) -> Value {
        let mut members = vec![
            ("ok", Value::Bool(true)),
            ("profile", self.engine.collector().is_some().into()),
            (
                "arena_high_water",
                self.engine.stats().arena_high_water.into(),
            ),
            ("counters", counters_json(self.engine())),
        ];
        if let Some(collector) = self.collector() {
            let jobs = collector
                .jobs()
                .into_iter()
                .map(|job| {
                    obj([
                        ("job", job.into()),
                        ("spans", spans_json(&collector.span_tree(job))),
                    ])
                })
                .collect();
            members.push(("jobs", Value::Arr(jobs)));
        }
        obj(members)
    }

    fn collector(&self) -> Option<&CollectingRecorder> {
        self.engine.collector().map(Arc::as_ref)
    }

    fn evict(&self, req: &Value) -> Result<Value, ProtocolError> {
        let id = match req.get("id") {
            Some(_) => Some(Self::matrix_id(req, "id")?),
            None => None,
        };
        let evicted = self.engine.evict(id)?;
        Ok(obj([("ok", true.into()), ("evicted", evicted.into())]))
    }

    fn unload(&self, req: &Value) -> Result<Value, ProtocolError> {
        let id = Self::matrix_id(req, "id")?;
        self.engine.unregister(id)?;
        Ok(obj([
            ("ok", true.into()),
            ("id", id.to_string().into()),
            ("unloaded", true.into()),
        ]))
    }

    fn lock_tickets(&self) -> std::sync::MutexGuard<'_, HashMap<u64, (JobTicket, KeepMode)>> {
        self.tickets.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Stamps the `"v"` protocol version into a response object (error
/// responses included); non-objects pass through untouched.
pub fn versioned(value: Value) -> Value {
    match value {
        Value::Obj(mut members) => {
            members.insert(
                members.len().min(1),
                ("v".to_string(), PROTOCOL_VERSION.into()),
            );
            Value::Obj(members)
        }
        other => other,
    }
}

fn ms(d: Duration) -> Value {
    Value::Num(d.as_secs_f64() * 1e3)
}

/// Renders the engine's statistics snapshot as the `stats` verb's response
/// object. Public so front ends layered over the engine (the `tsg-serve`
/// scheduler) can extend the same object with their own members.
pub fn stats_response(engine: &Engine) -> Value {
    let s = engine.stats();
    let tiled_lookups = s.registry.cache_hits + s.registry.cache_misses;
    let hit_rate = if tiled_lookups > 0 {
        s.registry.cache_hits as f64 / tiled_lookups as f64
    } else {
        0.0
    };
    obj([
        ("ok", true.into()),
        ("submitted", s.submitted.into()),
        ("admitted", s.admitted.into()),
        ("completed", s.completed.into()),
        ("failed", s.failed.into()),
        ("rejected", s.rejected.into()),
        ("shed", s.shed.into()),
        ("canceled", s.canceled.into()),
        ("timed_out", s.timed_out.into()),
        ("queue_depth", s.queue_depth.into()),
        (
            "queue_wait_ms_total",
            Value::Num(s.queue_wait_total.as_secs_f64() * 1e3),
        ),
        (
            "exec_ms_total",
            Value::Num(s.exec_total.as_secs_f64() * 1e3),
        ),
        ("conversions", s.registry.conversions.into()),
        ("cache_hits", s.registry.cache_hits.into()),
        ("cache_misses", s.registry.cache_misses.into()),
        ("cache_hit_rate", Value::Num(hit_rate)),
        ("evictions", s.registry.evictions.into()),
        ("csr_derivations", s.registry.csr_derivations.into()),
        ("cached_bytes", s.cached_bytes.into()),
        ("resident_bytes", s.resident_bytes.into()),
        ("device_bytes_in_use", s.device_bytes_in_use.into()),
        ("arena_high_water", s.arena_high_water.into()),
        ("profile", engine.collector().is_some().into()),
        ("counters", counters_json(engine)),
    ])
}

/// Renders an [`EngineError`] as the standard error response — stable code,
/// human message, `source` chain as `cause`. Public for front ends layered
/// over the engine.
pub fn engine_error_response(e: &EngineError) -> Value {
    ProtocolError::from(e.clone()).into_response()
}

/// The engine's aggregated counter totals as a JSON object, keyed by the
/// counters' stable snake_case names. All zeros without profiling. Public
/// for front ends layered over the engine.
pub fn counters_json(engine: &Engine) -> Value {
    Value::Obj(
        engine
            .metrics()
            .iter()
            .map(|(_, name, total)| (name.to_string(), total.into()))
            .collect(),
    )
}

/// A span tree as nested `{"name","ms","children"}` objects.
fn spans_json(nodes: &[SpanNode]) -> Value {
    Value::Arr(
        nodes
            .iter()
            .map(|n| {
                Value::Obj(vec![
                    ("name".to_string(), n.name.into()),
                    ("ms".to_string(), ms(n.elapsed)),
                    ("children".to_string(), spans_json(&n.children)),
                ])
            })
            .collect(),
    )
}

/// Renders a completed [`JobReport`] as the wire response, with the job's
/// span tree when a collector is profiling and the registered product
/// handle when the request kept it. Public so front ends layered over the
/// engine (the `tsg-serve` scheduler) render identical replies.
pub fn report_response(
    r: &JobReport,
    collector: Option<&CollectingRecorder>,
    kept: Option<MatrixId>,
) -> Value {
    let mut members = vec![
        ("ok", Value::Bool(true)),
        ("job", r.job.into()),
        ("nnz_c", r.nnz_c.into()),
        ("tiles_c", r.tiles_c.into()),
        ("queue_wait_ms", ms(r.queue_wait)),
        ("exec_ms", ms(r.exec)),
        ("step1_ms", ms(r.breakdown.step1)),
        ("step2_ms", ms(r.breakdown.step2)),
        ("step3_ms", ms(r.breakdown.step3)),
        ("alloc_ms", ms(r.breakdown.alloc)),
        ("peak_bytes", r.peak_bytes.into()),
        ("cache_hits", u64::from(r.cache_hits).into()),
        ("conversions", u64::from(r.conversions).into()),
        ("est_bytes", r.estimate.est_bytes.into()),
        ("flops", r.estimate.flops.into()),
    ];
    // v3 members appear only on multi-link (chain/power) replies, so a v2
    // client's multiply responses carry exactly the members they always did.
    if r.links > 1 {
        members.push(("links", u64::from(r.links).into()));
    }
    if !r.intermediates.is_empty() {
        members.push((
            "intermediates",
            Value::Arr(
                r.intermediates
                    .iter()
                    .map(|id| id.to_string().into())
                    .collect(),
            ),
        ));
    }
    if let Some(id) = kept {
        members.push(("c", id.to_string().into()));
    }
    if let Some(collector) = collector {
        members.push(("spans", spans_json(&collector.span_tree(r.job))));
    }
    obj(members)
}

/// Internal protocol failure carrying the response to render.
struct ProtocolError {
    code: &'static str,
    message: String,
    cause: Vec<String>,
}

impl ProtocolError {
    fn bad(message: &str) -> Self {
        ProtocolError {
            code: "bad_request",
            message: message.to_string(),
            cause: Vec::new(),
        }
    }

    fn with_cause(code: &'static str, message: &str, cause: &str) -> Self {
        ProtocolError {
            code,
            message: message.to_string(),
            cause: vec![cause.to_string()],
        }
    }

    fn into_response(self) -> Value {
        error_response(self.code, &self.message, &self.cause)
    }
}

impl From<EngineError> for ProtocolError {
    fn from(e: EngineError) -> Self {
        // Serialize the std error source chain instead of debug-formatting.
        let mut cause = Vec::new();
        let mut src = e.source();
        while let Some(s) = src {
            cause.push(s.to_string());
            src = s.source();
        }
        ProtocolError {
            code: e.code(),
            message: e.to_string(),
            cause,
        }
    }
}

/// Renders the protocol's standard error shape: `{"ok":false,"error":
/// {"code","message"[,"cause"]}}`. Public for front ends layered over the
/// engine.
pub fn error_response(code: &str, message: &str, cause: &[String]) -> Value {
    let mut members = vec![
        ("code".to_string(), Value::Str(code.to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ];
    if !cause.is_empty() {
        members.push((
            "cause".to_string(),
            Value::Arr(cause.iter().map(|c| Value::Str(c.clone())).collect()),
        ));
    }
    Value::Obj(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Obj(members)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn session() -> Session {
        Session::new(Arc::new(Engine::new(EngineConfig::default())))
    }

    fn ok(s: &Session, line: &str) -> Value {
        let (resp, control) = s.handle_line(line);
        assert_eq!(control, Control::Continue, "{line}");
        let v = parse(&resp).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{resp}");
        v
    }

    #[test]
    fn load_multiply_stats_flow() {
        let s = session();
        let loaded = ok(
            &s,
            r#"{"op":"load","rows":4,"cols":4,"triplets":[[0,0,1],[1,1,2],[2,2,3],[3,3,4]]}"#,
        );
        let id = loaded
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(loaded.get("nnz").and_then(Value::as_u64), Some(4));
        let m = ok(&s, &format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
        assert_eq!(m.get("nnz_c").and_then(Value::as_u64), Some(4));
        assert_eq!(m.get("conversions").and_then(Value::as_u64), Some(1));
        let st = ok(&s, r#"{"op":"stats"}"#);
        assert_eq!(st.get("completed").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn errors_carry_code_and_cause_chain() {
        let s = session();
        let (resp, _) =
            s.handle_line(r#"{"op":"multiply","a":"m0000000000000000","b":"m0000000000000000"}"#);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let err = v.get("error").unwrap();
        assert_eq!(
            err.get("code").and_then(Value::as_str),
            Some("unknown_matrix")
        );
        assert!(err.get("message").and_then(Value::as_str).is_some());
    }

    #[test]
    fn malformed_lines_are_bad_requests() {
        let s = session();
        for line in ["not json", "{}", r#"{"op":"frobnicate"}"#] {
            let (resp, control) = s.handle_line(line);
            assert_eq!(control, Control::Continue);
            let v = parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{line}");
        }
    }

    #[test]
    fn shutdown_signals_the_transport() {
        let s = session();
        let (resp, control) = s.handle_line(r#"{"op":"shutdown"}"#);
        assert_eq!(control, Control::Shutdown);
        assert!(resp.contains("bye"));
    }

    #[test]
    fn responses_carry_the_protocol_version() {
        let s = session();
        let h = ok(&s, r#"{"op":"hello","v":1}"#);
        assert_eq!(h.get("v").and_then(Value::as_u64), Some(PROTOCOL_VERSION));
        assert_eq!(h.get("server").and_then(Value::as_str), Some("tsg-serve"));
        assert_eq!(h.get("profile").and_then(Value::as_bool), Some(false));
        // Errors are versioned too.
        let (resp, _) = s.handle_line("not json");
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("v").and_then(Value::as_u64), Some(PROTOCOL_VERSION));
    }

    #[test]
    fn version_mismatch_is_rejected_with_stable_code() {
        let s = session();
        for line in [r#"{"op":"stats","v":999}"#, r#"{"op":"hello","v":"x"}"#] {
            let (resp, control) = s.handle_line(line);
            assert_eq!(control, Control::Continue);
            let v = parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{line}");
            assert_eq!(
                v.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str),
                Some("protocol_mismatch")
            );
        }
    }

    #[test]
    fn stats_carry_counters_object_even_without_profiling() {
        let s = session();
        let st = ok(&s, r#"{"op":"stats"}"#);
        assert_eq!(st.get("profile").and_then(Value::as_bool), Some(false));
        let counters = st.get("counters").expect("counters object");
        assert_eq!(
            counters.get("tiles_visited").and_then(Value::as_u64),
            Some(0)
        );
    }

    #[test]
    fn profiling_session_reports_spans_and_counters() {
        let engine = Engine::new(EngineConfig {
            profile: true,
            ..EngineConfig::default()
        });
        let s = Session::new(Arc::new(engine));
        let loaded = ok(&s, r#"{"op":"load","gen":"fem-00"}"#);
        let id = loaded
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let m = ok(&s, &format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
        // The reply carries the per-step breakdown and the job's span tree,
        // whose "job" root nests the pipeline phases.
        assert!(m.get("step3_ms").and_then(Value::as_f64).is_some());
        let spans = m.get("spans").and_then(Value::as_arr).expect("spans");
        let job_root = spans
            .iter()
            .find(|n| n.get("name").and_then(Value::as_str) == Some("job"))
            .expect("job root span");
        let children = job_root.get("children").and_then(Value::as_arr).unwrap();
        for phase in ["step1", "step2", "step3", "alloc"] {
            assert!(
                children
                    .iter()
                    .any(|c| c.get("name").and_then(Value::as_str) == Some(phase)),
                "missing {phase} span"
            );
        }
        let st = ok(&s, r#"{"op":"stats"}"#);
        assert_eq!(st.get("profile").and_then(Value::as_bool), Some(true));
        let counters = st.get("counters").unwrap();
        assert!(
            counters
                .get("tiles_visited")
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );
        let p = ok(&s, r#"{"op":"profile"}"#);
        let jobs = p.get("jobs").and_then(Value::as_arr).unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].get("spans").and_then(Value::as_arr).is_some());
    }

    #[test]
    fn chain_runs_handle_to_handle_without_csr_round_trips() {
        let s = session();
        let loaded = ok(&s, r#"{"op":"load","gen":"fem-00"}"#);
        let id = loaded
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        // Gold path: materialize each step (the v2 idiom the chain replaces).
        let m1 = ok(
            &s,
            &format!(r#"{{"op":"multiply","a":"{id}","b":"{id}","keep":true}}"#),
        );
        let c1 = m1.get("c").and_then(Value::as_str).unwrap().to_string();
        // A plain multiply reply has no v3 members.
        assert!(m1.get("links").is_none());
        assert!(m1.get("intermediates").is_none());
        let m2 = ok(&s, &format!(r#"{{"op":"multiply","a":"{c1}","b":"{id}"}}"#));
        let gold_nnz = m2.get("nnz_c").and_then(Value::as_u64).unwrap();
        let derivations_before = ok(&s, r#"{"op":"stats"}"#)
            .get("csr_derivations")
            .and_then(Value::as_u64)
            .unwrap();

        // Chain path: one request, intermediate stays tiled.
        let ch = ok(
            &s,
            &format!(r#"{{"op":"chain","ids":["{id}","{id}","{id}"],"keep":true}}"#),
        );
        assert_eq!(ch.get("links").and_then(Value::as_u64), Some(2));
        assert_eq!(ch.get("nnz_c").and_then(Value::as_u64), Some(gold_nnz));
        let inter = ch.get("intermediates").and_then(Value::as_arr).unwrap();
        assert_eq!(inter.len(), 1);
        let kept = ch.get("c").and_then(Value::as_str).unwrap().to_string();

        let st = ok(&s, r#"{"op":"stats"}"#);
        // Nothing in the chain touched a CSR: the intermediate and the kept
        // product both registered from their tiled forms.
        assert_eq!(
            st.get("csr_derivations").and_then(Value::as_u64),
            Some(derivations_before)
        );
        assert!(st.get("resident_bytes").and_then(Value::as_u64).unwrap() > 0);

        // The kept tiled handle is a first-class operand: square it.
        let sq = ok(
            &s,
            &format!(r#"{{"op":"multiply","a":"{kept}","b":"{kept}"}}"#),
        );
        assert!(sq.get("nnz_c").and_then(Value::as_u64).unwrap() > 0);
        // …and still no CSR was derived for it.
        let st = ok(&s, r#"{"op":"stats"}"#);
        assert_eq!(
            st.get("csr_derivations").and_then(Value::as_u64),
            Some(derivations_before)
        );
    }

    #[test]
    fn masked_multiply_and_add_verbs() {
        let s = session();
        let loaded = ok(
            &s,
            r#"{"op":"load","rows":3,"cols":3,"triplets":[[0,0,1],[0,1,2],[1,1,3],[2,2,4]]}"#,
        );
        let id = loaded
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        // Masking A·A by A keeps only the product entries on A's pattern.
        let full = ok(&s, &format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
        let masked = ok(
            &s,
            &format!(r#"{{"op":"multiply","a":"{id}","b":"{id}","mask":"{id}"}}"#),
        );
        let full_nnz = full.get("nnz_c").and_then(Value::as_u64).unwrap();
        let masked_nnz = masked.get("nnz_c").and_then(Value::as_u64).unwrap();
        assert!(masked_nnz <= full_nnz);
        assert!(masked_nnz <= 4);

        // Addition is a structural union (cancellations stay as explicit
        // zeros, like the SpGEMM kernels), so both A − A and A + A keep
        // exactly A's pattern.
        let zero = ok(
            &s,
            &format!(r#"{{"op":"add","a":"{id}","b":"{id}","alpha":1,"beta":-1}}"#),
        );
        assert_eq!(zero.get("nnz_c").and_then(Value::as_u64), Some(4));
        let double = ok(&s, &format!(r#"{{"op":"add","a":"{id}","b":"{id}"}}"#));
        assert_eq!(double.get("nnz_c").and_then(Value::as_u64), Some(4));

        // The power verb is a chain of k copies.
        let cubed = ok(&s, &format!(r#"{{"op":"power","a":"{id}","k":3}}"#));
        assert_eq!(cubed.get("links").and_then(Value::as_u64), Some(2));

        // Malformed expressions fail with the stable code.
        let (resp, _) = s.handle_line(&format!(r#"{{"op":"power","a":"{id}","k":1}}"#));
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("invalid_op")
        );
    }

    #[test]
    fn async_multiply_then_wait() {
        let s = session();
        let loaded = ok(&s, r#"{"op":"load","gen":"fem-00"}"#);
        let id = loaded
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let queued = ok(
            &s,
            &format!(r#"{{"op":"multiply","a":"{id}","b":"{id}","async":true}}"#),
        );
        let job = queued.get("job").and_then(Value::as_u64).unwrap();
        assert_eq!(queued.get("queued").and_then(Value::as_bool), Some(true));
        let done = ok(&s, &format!(r#"{{"op":"wait","job":{job}}}"#));
        assert!(done.get("nnz_c").and_then(Value::as_u64).unwrap() > 0);
    }
}
