//! `tsg-serve` — the resident SpGEMM engine behind a JSON-lines front end.
//!
//! By default requests are read from stdin and responses written to stdout,
//! one JSON object per line (see `tsg_engine::protocol` for the verbs). With
//! `--tcp ADDR` the same protocol is served over TCP, one session per
//! connection, all connections sharing one engine (and therefore one matrix
//! registry, job queue, and device budget).
//!
//! ```text
//! tsg-serve [--device 0|1] [--workers N] [--queue-depth N]
//!           [--cache-mb N] [--budget-mb N] [--timeout-ms N] [--profile]
//!           [--tcp ADDR]
//! ```
//!
//! `--profile` attaches a collecting recorder to the engine: job replies
//! then carry span trees, and the `stats`/`profile` verbs report live
//! observability counters.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tsg_engine::protocol::{Control, Session};
use tsg_engine::{Engine, EngineConfig};
use tsg_runtime::Device;

fn die(msg: &str) -> ! {
    eprintln!("tsg-serve: {msg}");
    eprintln!(
        "usage: tsg-serve [--device 0|1] [--workers N] [--queue-depth N] \
         [--cache-mb N] [--budget-mb N] [--timeout-ms N] [--profile] [--tcp ADDR]"
    );
    std::process::exit(2);
}

fn parse_args() -> (EngineConfig, Option<String>) {
    let mut cfg = EngineConfig::default();
    let mut tcp = None;
    let mut cache_mb: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--device" => {
                cfg.device = match value("--device").as_str() {
                    "0" => Device::rtx3090_sim(),
                    "1" => Device::rtx3060_sim(),
                    other => die(&format!("unknown device index {other}")),
                };
            }
            "--workers" => {
                cfg.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers wants an integer"));
            }
            "--queue-depth" => {
                cfg.queue_depth = value("--queue-depth")
                    .parse()
                    .unwrap_or_else(|_| die("--queue-depth wants an integer"));
            }
            "--cache-mb" => {
                let mb: usize = value("--cache-mb")
                    .parse()
                    .unwrap_or_else(|_| die("--cache-mb wants an integer"));
                cache_mb = Some(mb << 20);
            }
            "--budget-mb" => {
                let mb: usize = value("--budget-mb")
                    .parse()
                    .unwrap_or_else(|_| die("--budget-mb wants an integer"));
                cfg.device.mem_budget = mb << 20;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--timeout-ms wants an integer"));
                cfg.default_timeout = Some(Duration::from_millis(ms));
            }
            "--profile" => cfg.profile = true,
            "--tcp" => tcp = Some(value("--tcp")),
            "--help" | "-h" => die("serve the tiled SpGEMM engine over JSON lines"),
            other => die(&format!("unknown argument {other}")),
        }
    }
    // The cache defaults to half the (possibly overridden) device budget.
    cfg.cache_bytes = cache_mb.unwrap_or(cfg.device.mem_budget / 2);
    (cfg, tcp)
}

fn serve_stream(session: &Session, input: impl BufRead, mut output: impl Write) -> Control {
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client hung up
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, control) = session.handle_line(&line);
        if writeln!(output, "{resp}")
            .and_then(|()| output.flush())
            .is_err()
        {
            break;
        }
        if control == Control::Shutdown {
            return Control::Shutdown;
        }
    }
    Control::Continue
}

fn main() -> ExitCode {
    let (cfg, tcp) = parse_args();
    eprintln!(
        "tsg-serve: device {} ({} threads, {} MiB budget), {} workers, queue depth {}, cache {} MiB{}",
        cfg.device.name,
        cfg.device.threads,
        cfg.device.mem_budget >> 20,
        cfg.workers,
        cfg.queue_depth,
        cfg.cache_bytes >> 20,
        if cfg.profile { ", profiling" } else { "" },
    );
    let engine = Arc::new(Engine::new(cfg));

    match tcp {
        None => {
            let session = Session::new(Arc::clone(&engine));
            let stdin = std::io::stdin();
            serve_stream(&session, stdin.lock(), std::io::stdout().lock());
        }
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("tsg-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let local = listener.local_addr().ok();
            eprintln!(
                "tsg-serve: listening on {}",
                local.map_or(addr, |a| a.to_string())
            );
            // A shutdown request from any connection flips the flag, then
            // self-connects so the blocking accept loop observes it.
            let stop = Arc::new(AtomicBool::new(false));
            for stream in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let session = Session::new(engine);
                    let reader = match stream.try_clone() {
                        Ok(s) => BufReader::new(s),
                        Err(_) => return,
                    };
                    if serve_stream(&session, reader, stream) == Control::Shutdown {
                        stop.store(true, Ordering::Relaxed);
                        if let Some(addr) = local {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                });
            }
        }
    }
    engine.shutdown();
    ExitCode::SUCCESS
}
