//! Engine-level behaviour: admission control (up-front rejection and
//! mid-flight budget trips), registry caching across jobs, backpressure,
//! cancellation, and timeouts.

use std::time::Duration;

use tilespgemm_core::{multiply, Config, SpGemmError};
use tsg_engine::{Engine, EngineConfig, EngineError, JobSpec};
use tsg_gen::suite::GenSpec;
use tsg_matrix::{Csr, TileMatrix};
use tsg_runtime::{Device, MemTracker};

fn device_with_budget(budget: usize) -> Device {
    let mut d = Device::rtx3090_sim();
    d.mem_budget = budget;
    d
}

fn engine_with_budget(budget: usize) -> Engine {
    Engine::new(EngineConfig {
        device: device_with_budget(budget),
        ..EngineConfig::default()
    })
}

fn scatter(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
    GenSpec::Scatter { n, per_row, seed }.build()
}

#[test]
fn over_budget_estimate_is_rejected_up_front() {
    // A budget far below any real product's estimate.
    let engine = engine_with_budget(1 << 10);
    let (id, _) = engine.register(scatter(512, 8, 1));
    let est = engine.estimate(id, id).unwrap();
    assert!(est.est_bytes > engine.device().mem_budget);

    let err = engine.submit(JobSpec::new(id, id)).unwrap_err();
    match err {
        EngineError::EstimateExceedsBudget { est_bytes, budget } => {
            assert_eq!(est_bytes, est.est_bytes);
            assert_eq!(budget, 1 << 10);
        }
        other => panic!("expected EstimateExceedsBudget, got {other:?}"),
    }
    let s = engine.stats();
    assert_eq!(s.rejected, 1);
    // The arrival still counts — shed rate is (submitted - admitted) /
    // submitted from stats alone — but nothing was admitted.
    assert_eq!(s.submitted, 1);
    assert_eq!(s.admitted, 0);
    // Nothing ran, so nothing was ever charged to the device.
    assert_eq!(s.device_bytes_in_use, 0);

    // An over-budget spec can still be force-admitted by a scheduler doing
    // its own deferred admission; the mid-flight tracker stays the backstop.
    let mut solo = JobSpec::new(id, id);
    solo.admit_over_budget = true;
    let err = engine.multiply_now(solo).unwrap_err();
    assert_eq!(err.code(), "out_of_memory");
    assert_eq!(engine.device_tracker().current_bytes(), 0);
    let s = engine.stats();
    assert_eq!(s.submitted, 2);
    assert_eq!(s.admitted, 1);
}

#[test]
fn mid_flight_budget_trip_fails_the_job_and_frees_back_to_zero() {
    // Random scatter products barely compact, so the real output is ~4x the
    // ASSUMED_COMPRESSION prediction: the admission estimate under-predicts
    // the true peak by design, leaving a gap where a job is admitted but
    // trips the tracker mid-flight. Sampling is disabled so the estimate
    // comes from the constant-compression fallback — the calibrated sampled
    // model upper-bounds the tracked peak on this input, which would close
    // the very gap this test exists to pin.
    let engine_with_budget = |budget: usize| {
        Engine::new(EngineConfig {
            device: device_with_budget(budget),
            sample_rate: 0.0,
            ..EngineConfig::default()
        })
    };
    let a = scatter(2048, 8, 42);

    // Learn the true tracked peak from an unconstrained run.
    let unconstrained = engine_with_budget(usize::MAX);
    let (id, _) = unconstrained.register(a.clone());
    let est = unconstrained.estimate(id, id).unwrap();
    let peak = unconstrained
        .multiply_now(JobSpec::new(id, id))
        .unwrap()
        .peak_bytes;
    assert!(
        est.est_bytes < peak,
        "estimate {} should under-predict peak {peak}",
        est.est_bytes
    );

    // A budget the estimate clears but the real peak cannot.
    let budget = est.est_bytes + (peak - est.est_bytes) / 4;
    let engine = engine_with_budget(budget);
    let (id, _) = engine.register(a);
    let err = engine.multiply_now(JobSpec::new(id, id)).unwrap_err();
    match &err {
        EngineError::SpGemm(SpGemmError::OutOfMemory(trip)) => {
            assert_eq!(err.code(), "out_of_memory");
            assert!(trip.in_use + trip.requested > budget);
        }
        other => panic!("expected a mid-flight OutOfMemory, got {other:?}"),
    }
    let s = engine.stats();
    assert_eq!(s.failed, 1);
    assert_eq!(s.completed, 0);
    // The tracker must drain back to zero on the error path, or the engine
    // would leak budget across jobs.
    assert_eq!(engine.device_tracker().current_bytes(), 0);

    // The engine stays serviceable: a small product still completes.
    let (tiny, _) = engine.register(Csr::<f64>::identity(64));
    assert_eq!(
        engine.multiply_now(JobSpec::new(tiny, tiny)).unwrap().nnz_c,
        64
    );
}

#[test]
fn repeated_multiplies_convert_once_and_match_direct_multiply() {
    let a = scatter(768, 6, 7);
    let b = scatter(768, 5, 9);
    let engine = Engine::new(EngineConfig::default());
    let (ia, _) = engine.register(a.clone());
    let (ib, _) = engine.register(b.clone());

    let first = engine.multiply_now(JobSpec::new(ia, ib)).unwrap();
    let second = engine.multiply_now(JobSpec::new(ia, ib)).unwrap();
    let third = engine.multiply_now(JobSpec::new(ia, ib)).unwrap();

    // Exactly one conversion per operand, all on the first job.
    assert_eq!(first.conversions, 2);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(second.conversions, 0);
    assert_eq!(second.cache_hits, 2);
    assert_eq!(third.cache_hits, 2);
    let s = engine.stats();
    assert_eq!(s.registry.conversions, 2);
    assert_eq!(s.registry.cache_hits, 4);

    // Engine results are bitwise identical to a direct pipeline call.
    let direct = multiply(
        &TileMatrix::from_csr(&a),
        &TileMatrix::from_csr(&b),
        &Config::default(),
        &MemTracker::new(),
    )
    .unwrap();
    assert_eq!(direct.c, *first.c);
    assert_eq!(*first.c, *second.c);
    assert_eq!(*second.c, *third.c);
}

#[test]
fn kept_products_register_with_preseeded_conversion() {
    let engine = Engine::new(EngineConfig::default());
    let (ia, _) = engine.register(scatter(256, 4, 2));
    let r = engine.multiply_now(JobSpec::new(ia, ia)).unwrap();

    let (ic, dedup) = engine.register_product(std::sync::Arc::clone(&r.c));
    assert!(!dedup);
    // The cache was pre-seeded with the product itself, so using it as an
    // operand costs no conversion (ia is already cached from the first job).
    let r2 = engine.multiply_now(JobSpec::new(ic, ia)).unwrap();
    assert_eq!(r2.conversions, 0);
    assert_eq!(r2.cache_hits, 2);
    // Content-addressed: re-registering the product — through either path —
    // dedupes onto the same id.
    let (ic2, dedup2) = engine.register_product(std::sync::Arc::clone(&r.c));
    assert_eq!(ic2, ic);
    assert!(dedup2);
    let (ic3, dedup3) = engine.register(r.c.to_csr());
    assert_eq!(ic3, ic);
    assert!(dedup3);
}

#[test]
fn completed_jobs_populate_the_estimator_error_counters() {
    let engine = Engine::new(EngineConfig {
        profile: true,
        ..EngineConfig::default()
    });
    let (id, _) = engine.register(scatter(512, 8, 21));
    let report = engine.multiply_now(JobSpec::new(id, id)).unwrap();

    // Exactly one completed job → exactly one est-error observation, in the
    // bucket the report's own numbers map to.
    let m = engine.metrics();
    let populated: Vec<_> = tsg_runtime::observe::EST_ERR_BUCKETS
        .iter()
        .filter(|&&c| m.get(c) > 0)
        .collect();
    assert_eq!(populated.len(), 1);
    let expected = tsg_runtime::est_error_bucket(report.estimate.est_bytes, report.peak_bytes);
    assert_eq!(m.get(expected), 1);
}

/// Multiply-*shaped* jobs tick the est_err histogram: a plain multiply and
/// a masked multiply (whose estimate is mask-pruned from the same model)
/// each land one observation; an add — which runs on an unrelated heuristic
/// baseline — contributes none. The sampled-estimator provenance counters
/// tick alongside: both multiply-shaped jobs carried a sampled band here,
/// and none fell back to the constant model.
#[test]
fn masked_multiplies_tick_est_err_and_sample_counters() {
    use tsg_engine::OpSpec;
    let engine = Engine::new(EngineConfig {
        profile: true,
        ..EngineConfig::default()
    });
    let (id, _) = engine.register(scatter(512, 8, 21));
    let (mask, _) = engine.register(scatter(512, 2, 4));

    let plain = engine.multiply_now(JobSpec::new(id, id)).unwrap();
    let masked = engine
        .multiply_now(JobSpec::of(OpSpec::MaskedMultiply { a: id, b: id, mask }))
        .unwrap();
    engine
        .multiply_now(JobSpec::of(OpSpec::Add {
            a: id,
            b: id,
            alpha: 1.0,
            beta: 1.0,
        }))
        .unwrap();

    let m = engine.metrics();
    let est_err_total: u64 = tsg_runtime::observe::EST_ERR_BUCKETS
        .iter()
        .map(|&c| m.get(c))
        .sum();
    assert_eq!(
        est_err_total, 2,
        "multiply + masked multiply tick, the add does not"
    );
    // Both ticks landed in the bucket their own report maps to.
    for r in [&plain, &masked] {
        let bucket = tsg_runtime::est_error_bucket(r.estimate.est_bytes, r.peak_bytes);
        assert!(m.get(bucket) >= 1);
    }
    // Sampled-estimator provenance: both multiply-shaped estimates carried
    // a band (the default config samples), measuring at least the sampling
    // floor of tile rows each; nothing fell back.
    assert!(plain.estimate.sample.is_some());
    assert!(masked.estimate.sample.is_some());
    assert_eq!(m.get(tsg_runtime::Counter::EstSampleJobs), 2);
    assert!(m.get(tsg_runtime::Counter::EstSampleRows) >= 32);
    assert_eq!(m.get(tsg_runtime::Counter::EstSampleFallback), 0);
}

#[test]
fn full_queue_sheds_with_backpressure() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 2,
        ..EngineConfig::default()
    });
    // A product slow enough to hold the single worker while the queue fills.
    let (big, _) = engine.register(scatter(4096, 12, 3));
    let (tiny, _) = engine.register(Csr::<f64>::identity(64));

    let mut tickets = vec![engine.submit(JobSpec::new(big, big)).unwrap()];
    let mut shed = 0;
    // Keep submitting until backpressure appears; the queue holds 2, so at
    // most 3 submissions can be in flight before one is shed.
    for _ in 0..16 {
        match engine.submit(JobSpec::new(tiny, tiny)) {
            Ok(t) => tickets.push(t),
            Err(EngineError::QueueFull { depth }) => {
                assert_eq!(depth, 2);
                shed += 1;
                break;
            }
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    assert_eq!(shed, 1, "a depth-2 queue must shed a fast burst");
    assert_eq!(engine.stats().shed, 1);
    // Everything admitted still completes; nothing deadlocks.
    for t in tickets {
        t.wait().unwrap();
    }
}

#[test]
fn queued_jobs_can_be_canceled_but_not_running_ones() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let (big, _) = engine.register(scatter(4096, 12, 5));
    let (tiny, _) = engine.register(Csr::<f64>::identity(64));

    // The worker picks this up immediately; cancel arrives too late.
    let running = engine.submit(JobSpec::new(big, big)).unwrap();
    // This one waits behind it; cancel lands while it is still queued.
    let queued = engine.submit(JobSpec::new(tiny, tiny)).unwrap();
    queued.cancel();

    assert_eq!(queued.wait().unwrap_err(), EngineError::Canceled);
    // A cancel after completion is a no-op; the result stands.
    running.cancel();
    assert!(running.wait().is_ok());
    let s = engine.stats();
    assert_eq!(s.canceled, 1);
    assert_eq!(s.completed, 1);
}

#[test]
fn queue_wait_deadline_times_out_stale_jobs() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let (big, _) = engine.register(scatter(4096, 12, 6));
    let (tiny, _) = engine.register(Csr::<f64>::identity(64));

    let running = engine.submit(JobSpec::new(big, big)).unwrap();
    let mut stale = JobSpec::new(tiny, tiny);
    stale.timeout = Some(Duration::ZERO); // expires the instant it queues
    let stale = engine.submit(stale).unwrap();

    assert_eq!(stale.wait().unwrap_err(), EngineError::TimedOut);
    assert!(running.wait().is_ok());
    assert_eq!(engine.stats().timed_out, 1);
}

#[test]
fn shutdown_drains_queued_jobs_then_refuses_new_ones() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let (id, _) = engine.register(scatter(512, 4, 8));
    let tickets: Vec<_> = (0..6)
        .map(|_| engine.submit(JobSpec::new(id, id)).unwrap())
        .collect();
    engine.shutdown();
    // Graceful: everything admitted before shutdown still completed.
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(
        engine.submit(JobSpec::new(id, id)).unwrap_err(),
        EngineError::ShuttingDown
    );
}
