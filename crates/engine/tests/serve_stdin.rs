//! End-to-end test of the `tsg-serve` binary over its stdin/stdout
//! JSON-lines transport: load, convert, multiply, stats, evict, shutdown.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use tsg_engine::json::{parse, Value};

struct Serve {
    child: Child,
    responses: BufReader<std::process::ChildStdout>,
}

impl Serve {
    fn spawn(args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tsg-serve"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning tsg-serve");
        let responses = BufReader::new(child.stdout.take().expect("piped stdout"));
        Serve { child, responses }
    }

    /// Sends one request line; returns the parsed response object.
    fn request(&mut self, line: &str) -> Value {
        let stdin = self.child.stdin.as_mut().expect("piped stdin");
        writeln!(stdin, "{line}").expect("request written");
        stdin.flush().expect("request flushed");
        let mut resp = String::new();
        let n = self.responses.read_line(&mut resp).expect("response read");
        assert!(n > 0, "server closed stdout before responding to {line}");
        parse(&resp).unwrap_or_else(|e| panic!("malformed response {resp:?}: {e}"))
    }

    fn request_ok(&mut self, line: &str) -> Value {
        let v = self.request(line);
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "expected ok response to {line}, got {v}"
        );
        v
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn load_convert_multiply_stats_over_stdin() {
    let mut serve = Serve::spawn(&["--workers", "2", "--queue-depth", "8"]);

    let loaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    let id = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    assert_eq!(loaded.get("rows").and_then(Value::as_u64), Some(7500));
    assert!(loaded.get("nnz").and_then(Value::as_u64).unwrap() > 0);

    // Re-loading identical content dedupes to the same id.
    let again = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    assert_eq!(again.get("id").and_then(Value::as_str), Some(id.as_str()));
    assert_eq!(again.get("dedup").and_then(Value::as_bool), Some(true));

    let converted = serve.request_ok(&format!(r#"{{"op":"convert","id":"{id}"}}"#));
    assert_eq!(
        converted.get("cache_hit").and_then(Value::as_bool),
        Some(false)
    );
    assert!(converted.get("tiles").and_then(Value::as_u64).unwrap() > 0);

    // The multiply sees both operands already cached by the convert.
    let product = serve.request_ok(&format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
    assert!(product.get("nnz_c").and_then(Value::as_u64).unwrap() > 0);
    assert_eq!(product.get("cache_hits").and_then(Value::as_u64), Some(2));
    assert_eq!(product.get("conversions").and_then(Value::as_u64), Some(0));

    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("conversions").and_then(Value::as_u64), Some(1));
    assert!(stats.get("cached_bytes").and_then(Value::as_u64).unwrap() > 0);

    let evicted = serve.request_ok(r#"{"op":"evict"}"#);
    assert_eq!(evicted.get("evicted").and_then(Value::as_u64), Some(1));

    // Errors stay on-protocol: unknown ids produce a typed error object.
    let err = serve.request(r#"{"op":"multiply","a":"mffffffffffffffff","b":"mffffffffffffffff"}"#);
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("unknown_matrix")
    );

    let bye = serve.request(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    let status = serve.child.wait().expect("server exits after shutdown");
    assert!(status.success());
}

#[test]
fn budget_flag_feeds_admission_control() {
    // 1 MiB budget: fem-00's square cannot be admitted.
    let mut serve = Serve::spawn(&["--budget-mb", "1"]);
    let loaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    let id = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let err = serve.request(&format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("estimate_exceeds_budget")
    );
    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("rejected").and_then(Value::as_u64), Some(1));
}
