//! FEM-like structural matrices.
//!
//! The first twelve Table-2 matrices (`pdb1HYS`, `consph`, `cant`, `pwtk`,
//! `shipsec1`, …) come from finite-element discretisations: nodes carry
//! small dense blocks (3–8 DoF), coupled to a bounded set of geometric
//! neighbours near the diagonal. The resulting tiles are dense (tens to
//! hundreds of nonzeros), which is why these matrices have compression rates
//! of 15–30 and favour the dense accumulator path.

use crate::rng;
use rand::Rng;
use tsg_matrix::{Coo, Csr};

/// Block-structured FEM analogue: `nodes` nodes of `block` DoF each
/// (`n = nodes * block`), each node coupled to itself and `couplings`
/// neighbours within `spread` nodes of the diagonal; every coupling is a
/// dense `block × block` sub-matrix. Symmetric by construction.
pub fn fem_blocks(
    nodes: usize,
    block: usize,
    couplings: usize,
    spread: usize,
    seed: u64,
) -> Csr<f64> {
    let mut r = rng(seed);
    let n = nodes * block;
    let mut coo = Coo::new(n, n);
    for node in 0..nodes {
        let mut partners = vec![node];
        for _ in 0..couplings {
            let lo = node.saturating_sub(spread);
            let hi = (node + spread).min(nodes - 1);
            let p = r.gen_range(lo..=hi);
            if p > node {
                // keep (node, p) with p > node; mirrored below
                partners.push(p);
            }
        }
        partners.dedup();
        for &p in &partners {
            for i in 0..block {
                for j in 0..block {
                    let v = r.gen_range(0.1..1.0) * if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
                    let (row, col) = ((node * block + i) as u32, (p * block + j) as u32);
                    coo.push(row, col, v);
                    if p != node {
                        coo.push(col, row, v);
                    }
                }
            }
        }
    }
    coo.to_csr()
}

/// Banded random matrix: each row has `per_row` entries within `bandwidth`
/// of the diagonal (plus the diagonal itself). The `rma10`-ish regime.
pub fn banded(n: usize, bandwidth: usize, per_row: usize, seed: u64) -> Csr<f64> {
    let mut r = rng(seed);
    let mut coo = Coo::new(n, n);
    for row in 0..n {
        coo.push(row as u32, row as u32, r.gen_range(1.0..2.0));
        for _ in 0..per_row {
            let lo = row.saturating_sub(bandwidth);
            let hi = (row + bandwidth).min(n - 1);
            let col = r.gen_range(lo..=hi);
            coo.push(row as u32, col as u32, crate::random::nonzero_value(&mut r));
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::TileMatrix;

    #[test]
    fn fem_blocks_is_symmetric_in_pattern() {
        let a = fem_blocks(50, 4, 3, 5, 11);
        a.validate().unwrap();
        let t = a.transpose();
        assert_eq!(a.rowptr, t.rowptr);
        assert_eq!(a.colidx, t.colidx);
    }

    #[test]
    fn fem_blocks_produces_dense_tiles() {
        let a = fem_blocks(128, 8, 4, 6, 3);
        let tiled = TileMatrix::from_csr(&a);
        let avg_tile_nnz = tiled.nnz() as f64 / tiled.tile_count() as f64;
        assert!(
            avg_tile_nnz > 20.0,
            "expected dense tiles, got avg {avg_tile_nnz:.1} nnz/tile"
        );
    }

    #[test]
    fn banded_entries_stay_in_band() {
        let a = banded(300, 10, 5, 17);
        for row in 0..300usize {
            let (cols, _) = a.row(row);
            for &c in cols {
                assert!((c as i64 - row as i64).unsigned_abs() <= 10);
            }
        }
    }

    #[test]
    fn banded_has_full_diagonal() {
        let a = banded(100, 5, 2, 23);
        for i in 0..100 {
            assert!(a.get(i, i as u32).is_some());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(fem_blocks(30, 3, 2, 4, 5), fem_blocks(30, 3, 2, 4, 5));
        assert_eq!(banded(50, 4, 3, 5), banded(50, 4, 3, 5));
    }
}
