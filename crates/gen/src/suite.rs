//! Dataset registries: the synthetic stand-ins for the paper's evaluation
//! sets.
//!
//! * [`representative_18`] mirrors Table 2's 18 representative matrices:
//!   each entry names the SuiteSparse matrix it stands in for and is built
//!   by the generator family reproducing that matrix's structural regime.
//! * [`tsparse_16`] mirrors the 16-matrix set of the tSparse paper used in
//!   §4.7 / Figures 13–14.
//! * [`fig6_sweep`] is the large scatter-plot population for Figure 6: every
//!   structure class at several sizes and seeds (~60 matrices).
//!
//! Sizes are scaled to laptop budgets (flops ~10⁶–10⁸ instead of the paper's
//! 10⁹–10¹¹); DESIGN.md documents the substitution. Everything is
//! deterministic from fixed seeds.

use crate::{fem, random, rmat, special, stencil};
use tsg_matrix::Csr;

/// The structural regime a dataset entry exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureClass {
    /// FEM-style dense node blocks near the diagonal.
    Fem,
    /// Regular grid stencil.
    Stencil,
    /// Power-law / scale-free graph.
    PowerLaw,
    /// Uniform hypersparse scatter (≈1 nnz per occupied tile).
    Hypersparse,
    /// Banded random.
    Banded,
    /// Dense-bordered arrow matrix.
    DenseBorder,
    /// Dense diagonal clusters (power-flow style).
    PowerFlow,
    /// Kronecker-structured.
    Kronecker,
}

/// How to build an entry (kept as data so reports can describe the matrix).
///
/// Field names mirror the generator signatures documented on each variant.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum GenSpec {
    /// `fem::fem_blocks(nodes, block, couplings, spread, seed)`.
    Fem {
        nodes: usize,
        block: usize,
        couplings: usize,
        spread: usize,
        seed: u64,
    },
    /// `fem::banded(n, bandwidth, per_row, seed)`.
    Banded {
        n: usize,
        bandwidth: usize,
        per_row: usize,
        seed: u64,
    },
    /// `stencil::grid_2d_5pt(nx, ny)`.
    Grid5 { nx: usize, ny: usize },
    /// `stencil::grid_2d_9pt(nx, ny)`.
    Grid9 { nx: usize, ny: usize },
    /// `stencil::grid_2d_upwind(nx, ny)` — asymmetric pattern.
    GridUpwind { nx: usize, ny: usize },
    /// `stencil::grid_3d_27pt(nx, ny, nz)`.
    Grid27 { nx: usize, ny: usize, nz: usize },
    /// `rmat::rmat(scale, edges, params, seed)`.
    Rmat {
        scale: u32,
        edges: usize,
        mild: bool,
        seed: u64,
    },
    /// `random::scatter_uniform(n, per_row, seed)`.
    Scatter { n: usize, per_row: usize, seed: u64 },
    /// `special::arrow(n, border, body_per_row, seed)`.
    Arrow {
        n: usize,
        border: usize,
        body_per_row: usize,
        seed: u64,
    },
    /// `special::power_flow(clusters, cluster_size, links, seed)`.
    PowerFlow {
        clusters: usize,
        cluster_size: usize,
        links: usize,
        seed: u64,
    },
    /// Kronecker of an upwind (asymmetric) grid with a dense block — the
    /// QCD-lattice regime (`conf5_4-8x8-05`: sites carrying small dense
    /// blocks over a regular, directionally-coupled grid).
    KronGridBlock {
        nx: usize,
        ny: usize,
        block: usize,
        seed: u64,
    },
}

impl GenSpec {
    /// Builds the matrix.
    pub fn build(&self) -> Csr<f64> {
        match *self {
            GenSpec::Fem {
                nodes,
                block,
                couplings,
                spread,
                seed,
            } => fem::fem_blocks(nodes, block, couplings, spread, seed),
            GenSpec::Banded {
                n,
                bandwidth,
                per_row,
                seed,
            } => fem::banded(n, bandwidth, per_row, seed),
            GenSpec::Grid5 { nx, ny } => stencil::grid_2d_5pt(nx, ny),
            GenSpec::Grid9 { nx, ny } => stencil::grid_2d_9pt(nx, ny),
            GenSpec::GridUpwind { nx, ny } => stencil::grid_2d_upwind(nx, ny),
            GenSpec::Grid27 { nx, ny, nz } => stencil::grid_3d_27pt(nx, ny, nz),
            GenSpec::Rmat {
                scale,
                edges,
                mild,
                seed,
            } => {
                let p = if mild {
                    rmat::RmatParams::MILD
                } else {
                    rmat::RmatParams::GRAPH500
                };
                rmat::rmat(scale, edges, p, seed)
            }
            GenSpec::Scatter { n, per_row, seed } => random::scatter_uniform(n, per_row, seed),
            GenSpec::Arrow {
                n,
                border,
                body_per_row,
                seed,
            } => special::arrow(n, border, body_per_row, seed),
            GenSpec::PowerFlow {
                clusters,
                cluster_size,
                links,
                seed,
            } => special::power_flow(clusters, cluster_size, links, seed),
            GenSpec::KronGridBlock {
                nx,
                ny,
                block,
                seed,
            } => {
                let grid = stencil::grid_2d_upwind(nx, ny);
                let dense = random::small_random(block, block, 1.0, seed);
                special::kronecker(&grid, &dense)
            }
        }
    }
}

/// One dataset entry: a named, reproducible matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetEntry {
    /// Our name (`<paper-name>-like` for registry entries).
    pub name: String,
    /// The SuiteSparse matrix this stands in for, if any.
    pub paper_name: Option<&'static str>,
    /// Structure class.
    pub class: StructureClass,
    /// Whether the pattern is symmetric (Figure 8 uses the asymmetric ones).
    pub symmetric: bool,
    /// Build recipe.
    pub spec: GenSpec,
}

impl DatasetEntry {
    fn new(
        name: &str,
        paper_name: Option<&'static str>,
        class: StructureClass,
        symmetric: bool,
        spec: GenSpec,
    ) -> Self {
        Self {
            name: name.to_string(),
            paper_name,
            class,
            symmetric,
            spec,
        }
    }

    /// Builds the matrix.
    pub fn build(&self) -> Csr<f64> {
        self.spec.build()
    }
}

/// The 18 representative matrices of Table 2, by structural analogy.
pub fn representative_18() -> Vec<DatasetEntry> {
    use GenSpec::*;
    use StructureClass as C;
    vec![
        DatasetEntry::new(
            "pdb1HYS-like",
            Some("pdb1HYS"),
            C::Fem,
            true,
            Fem {
                nodes: 1800,
                block: 8,
                couplings: 6,
                spread: 40,
                seed: 101,
            },
        ),
        DatasetEntry::new(
            "consph-like",
            Some("consph"),
            C::Fem,
            true,
            Fem {
                nodes: 5000,
                block: 6,
                couplings: 4,
                spread: 60,
                seed: 102,
            },
        ),
        DatasetEntry::new(
            "cant-like",
            Some("cant"),
            C::Fem,
            true,
            Fem {
                nodes: 4000,
                block: 6,
                couplings: 4,
                spread: 30,
                seed: 103,
            },
        ),
        DatasetEntry::new(
            "pwtk-like",
            Some("pwtk"),
            C::Fem,
            true,
            Fem {
                nodes: 9000,
                block: 6,
                couplings: 4,
                spread: 50,
                seed: 104,
            },
        ),
        DatasetEntry::new(
            "rma10-like",
            Some("rma10"),
            C::Banded,
            false,
            Banded {
                n: 30_000,
                bandwidth: 60,
                per_row: 25,
                seed: 105,
            },
        ),
        DatasetEntry::new(
            "conf5_4-8x8-05-like",
            Some("conf5_4-8x8-05"),
            C::Kronecker,
            false,
            KronGridBlock {
                nx: 56,
                ny: 56,
                block: 4,
                seed: 106,
            },
        ),
        DatasetEntry::new(
            "shipsec1-like",
            Some("shipsec1"),
            C::Fem,
            true,
            Fem {
                nodes: 7000,
                block: 6,
                couplings: 5,
                spread: 45,
                seed: 107,
            },
        ),
        DatasetEntry::new(
            "mac_econ_fwd500-like",
            Some("mac_econ_fwd500"),
            C::Banded,
            false,
            Banded {
                n: 40_000,
                bandwidth: 300,
                per_row: 5,
                seed: 108,
            },
        ),
        DatasetEntry::new(
            "mc2depi-like",
            Some("mc2depi"),
            C::Stencil,
            false,
            GridUpwind { nx: 250, ny: 250 },
        ),
        DatasetEntry::new(
            "cop20k_A-like",
            Some("cop20k_A"),
            C::Hypersparse,
            false,
            Scatter {
                n: 12_000,
                per_row: 4,
                seed: 110,
            },
        ),
        DatasetEntry::new(
            "scircuit-like",
            Some("scircuit"),
            C::PowerLaw,
            false,
            Rmat {
                scale: 14,
                edges: 90_000,
                mild: true,
                seed: 111,
            },
        ),
        DatasetEntry::new(
            "webbase-1M-like",
            Some("webbase-1M"),
            C::PowerLaw,
            false,
            Rmat {
                scale: 16,
                edges: 200_000,
                mild: false,
                seed: 112,
            },
        ),
        DatasetEntry::new(
            "af_shell10-like",
            Some("af_shell10"),
            C::Stencil,
            true,
            Grid27 {
                nx: 40,
                ny: 40,
                nz: 24,
            },
        ),
        DatasetEntry::new(
            "pkustk12-like",
            Some("pkustk12"),
            C::Fem,
            true,
            Fem {
                nodes: 700,
                block: 12,
                couplings: 10,
                spread: 20,
                seed: 114,
            },
        ),
        DatasetEntry::new(
            "SiO2-like",
            Some("SiO2"),
            C::PowerFlow,
            true,
            PowerFlow {
                clusters: 40,
                cluster_size: 135,
                links: 2000,
                seed: 115,
            },
        ),
        DatasetEntry::new(
            "case39-like",
            Some("case39"),
            C::DenseBorder,
            false,
            Arrow {
                n: 4800,
                border: 4,
                body_per_row: 8,
                seed: 116,
            },
        ),
        DatasetEntry::new(
            "TSOPF_FS_b300_c2-like",
            Some("TSOPF_FS_b300_c2"),
            C::PowerFlow,
            true,
            PowerFlow {
                clusters: 60,
                cluster_size: 135,
                links: 1000,
                seed: 117,
            },
        ),
        DatasetEntry::new(
            "gupta3-like",
            Some("gupta3"),
            C::PowerFlow,
            true,
            PowerFlow {
                clusters: 25,
                cluster_size: 160,
                links: 2000,
                seed: 118,
            },
        ),
    ]
}

/// The six asymmetric matrices the paper's Figure 8 evaluates with `AAᵀ`:
/// `rma10`, `conf5_4-8x8-05`, `mac_econ_fwd500`, `mc2depi`, `scircuit`, and
/// `webbase-1M` — selected here by their stand-in names.
pub fn asymmetric_6() -> Vec<DatasetEntry> {
    const FIG8: [&str; 6] = [
        "rma10",
        "conf5_4-8x8-05",
        "mac_econ_fwd500",
        "mc2depi",
        "scircuit",
        "webbase-1M",
    ];
    representative_18()
        .into_iter()
        .filter(|e| e.paper_name.is_some_and(|p| FIG8.contains(&p)))
        .collect()
}

/// The 16-matrix tSparse comparison set (§4.7), by structural analogy,
/// scaled for the half-precision (`f32`) comparison.
pub fn tsparse_16() -> Vec<DatasetEntry> {
    use GenSpec::*;
    use StructureClass as C;
    vec![
        DatasetEntry::new(
            "mc2depi-t",
            Some("mc2depi"),
            C::Stencil,
            true,
            Grid5 { nx: 200, ny: 200 },
        ),
        DatasetEntry::new(
            "webbase-1M-t",
            Some("webbase-1M"),
            C::PowerLaw,
            false,
            Rmat {
                scale: 15,
                edges: 160_000,
                mild: false,
                seed: 201,
            },
        ),
        DatasetEntry::new(
            "cage12-t",
            Some("cage12"),
            C::Hypersparse,
            false,
            Scatter {
                n: 25_000,
                per_row: 8,
                seed: 202,
            },
        ),
        DatasetEntry::new(
            "dawson5-t",
            Some("dawson5"),
            C::Banded,
            true,
            Banded {
                n: 20_000,
                bandwidth: 40,
                per_row: 15,
                seed: 203,
            },
        ),
        DatasetEntry::new(
            "lock1074-t",
            Some("lock1074"),
            C::Fem,
            true,
            Fem {
                nodes: 300,
                block: 4,
                couplings: 8,
                spread: 20,
                seed: 204,
            },
        ),
        DatasetEntry::new(
            "patents_main-t",
            Some("patents_main"),
            C::PowerLaw,
            false,
            Rmat {
                scale: 15,
                edges: 120_000,
                mild: true,
                seed: 205,
            },
        ),
        DatasetEntry::new(
            "struct3-t",
            Some("struct3"),
            C::Stencil,
            true,
            Grid9 { nx: 160, ny: 160 },
        ),
        DatasetEntry::new(
            "wiki-Vote-t",
            Some("wiki-Vote"),
            C::PowerLaw,
            false,
            Rmat {
                scale: 13,
                edges: 100_000,
                mild: false,
                seed: 207,
            },
        ),
        DatasetEntry::new(
            "bcsstk30-t",
            Some("bcsstk30"),
            C::Fem,
            true,
            Fem {
                nodes: 2500,
                block: 6,
                couplings: 6,
                spread: 30,
                seed: 208,
            },
        ),
        DatasetEntry::new(
            "nemeth21-t",
            Some("nemeth21"),
            C::Banded,
            true,
            Banded {
                n: 9_500,
                bandwidth: 90,
                per_row: 70,
                seed: 209,
            },
        ),
        DatasetEntry::new(
            "pcrystk03-t",
            Some("pcrystk03"),
            C::Fem,
            true,
            Fem {
                nodes: 4000,
                block: 6,
                couplings: 4,
                spread: 35,
                seed: 210,
            },
        ),
        DatasetEntry::new(
            "pct20stif-t",
            Some("pct20stif"),
            C::Fem,
            true,
            Fem {
                nodes: 4500,
                block: 6,
                couplings: 5,
                spread: 40,
                seed: 211,
            },
        ),
        DatasetEntry::new(
            "pkustk06-t",
            Some("pkustk06"),
            C::Fem,
            true,
            Fem {
                nodes: 3500,
                block: 8,
                couplings: 5,
                spread: 30,
                seed: 212,
            },
        ),
        DatasetEntry::new(
            "pli-t",
            Some("pli"),
            C::Fem,
            true,
            Fem {
                nodes: 3700,
                block: 6,
                couplings: 6,
                spread: 50,
                seed: 213,
            },
        ),
        DatasetEntry::new(
            "net50-t",
            Some("net50"),
            C::PowerLaw,
            false,
            Rmat {
                scale: 14,
                edges: 250_000,
                mild: true,
                seed: 214,
            },
        ),
        DatasetEntry::new(
            "web-NotreDame-t",
            Some("web-NotreDame"),
            C::PowerLaw,
            false,
            Rmat {
                scale: 15,
                edges: 200_000,
                mild: false,
                seed: 215,
            },
        ),
    ]
}

/// The Figure-6 scatter population: every class at three sizes × two seeds.
/// ~54 matrices spanning compression rates from ~1 (scatter, permutations)
/// to >100 (dense clusters), the x-axis range of the paper's plots.
pub fn fig6_sweep() -> Vec<DatasetEntry> {
    use GenSpec::*;
    use StructureClass as C;
    let mut out = Vec::new();
    let mut push = |name: String, class, symmetric, spec| {
        out.push(DatasetEntry::new(&name, None, class, symmetric, spec));
    };
    for (si, &size) in [0.5f64, 1.0, 2.0].iter().enumerate() {
        for seed_off in 0..2u64 {
            let s = |base: u64| 1000 + base * 10 + si as u64 * 2 + seed_off;
            let sc = |x: usize| ((x as f64 * size) as usize).max(8);
            push(
                format!("fem-{si}{seed_off}"),
                C::Fem,
                true,
                Fem {
                    nodes: sc(2500),
                    block: 6,
                    couplings: 5,
                    spread: 40,
                    seed: s(1),
                },
            );
            push(
                format!("banded-{si}{seed_off}"),
                C::Banded,
                false,
                Banded {
                    n: sc(20_000),
                    bandwidth: 50,
                    per_row: 18,
                    seed: s(2),
                },
            );
            push(
                format!("grid5-{si}{seed_off}"),
                C::Stencil,
                true,
                Grid5 {
                    nx: sc(180) + seed_off as usize,
                    ny: sc(180),
                },
            );
            push(
                format!("grid27-{si}{seed_off}"),
                C::Stencil,
                true,
                Grid27 {
                    nx: sc(26) + seed_off as usize,
                    ny: sc(26),
                    nz: 20,
                },
            );
            push(
                format!("rmat-{si}{seed_off}"),
                C::PowerLaw,
                false,
                Rmat {
                    scale: 14 + si as u32,
                    edges: sc(100_000),
                    mild: false,
                    seed: s(3),
                },
            );
            push(
                format!("rmat-mild-{si}{seed_off}"),
                C::PowerLaw,
                false,
                Rmat {
                    scale: 14 + si as u32,
                    edges: sc(130_000),
                    mild: true,
                    seed: s(4),
                },
            );
            push(
                format!("scatter-{si}{seed_off}"),
                C::Hypersparse,
                false,
                Scatter {
                    n: sc(9_000),
                    per_row: 4,
                    seed: s(5),
                },
            );
            push(
                format!("cluster-{si}{seed_off}"),
                C::PowerFlow,
                true,
                PowerFlow {
                    clusters: sc(30),
                    cluster_size: 70,
                    links: sc(1000),
                    seed: s(6),
                },
            );
            push(
                format!("arrow-{si}{seed_off}"),
                C::DenseBorder,
                false,
                Arrow {
                    n: sc(4000),
                    border: 4,
                    body_per_row: 8,
                    seed: s(7),
                },
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn representative_set_has_18_unique_names() {
        let set = representative_18();
        assert_eq!(set.len(), 18);
        let names: HashSet<_> = set.iter().map(|e| e.name.clone()).collect();
        assert_eq!(names.len(), 18);
        assert!(set.iter().all(|e| e.paper_name.is_some()));
    }

    #[test]
    fn asymmetric_subset_has_6_entries_like_figure_8() {
        let asym = asymmetric_6();
        assert_eq!(asym.len(), 6);
        assert!(asym.iter().all(|e| !e.symmetric));
    }

    #[test]
    fn tsparse_set_has_16_entries() {
        assert_eq!(tsparse_16().len(), 16);
    }

    #[test]
    fn sweep_covers_every_class() {
        let sweep = fig6_sweep();
        assert!(sweep.len() >= 50, "sweep has {}", sweep.len());
        let classes: HashSet<_> = sweep.iter().map(|e| e.class).collect();
        for c in [
            StructureClass::Fem,
            StructureClass::Banded,
            StructureClass::Stencil,
            StructureClass::PowerLaw,
            StructureClass::Hypersparse,
            StructureClass::PowerFlow,
            StructureClass::DenseBorder,
        ] {
            assert!(classes.contains(&c), "missing class {c:?}");
        }
    }

    #[test]
    fn symmetric_flags_are_accurate_on_representatives() {
        for entry in representative_18() {
            let a = entry.build();
            let is_sym = {
                let t = a.transpose();
                a.rowptr == t.rowptr && a.colidx == t.colidx
            };
            assert_eq!(
                is_sym, entry.symmetric,
                "entry {} declares symmetric={} but pattern says {}",
                entry.name, entry.symmetric, is_sym
            );
        }
    }

    #[test]
    fn small_entries_build_and_validate() {
        // Keep unit tests fast: only build the cheapest entries here. Full
        // builds are integration-tested and exercised by the harness.
        let set = tsparse_16();
        let lock = set.iter().find(|e| e.name == "lock1074-t").unwrap();
        let a = lock.build();
        a.validate().unwrap();
        assert!(a.nnz() > 1000);
    }
}

/// Every named dataset entry across the three registries (representatives,
/// tSparse set, Figure-6 sweep).
pub fn all_entries() -> Vec<DatasetEntry> {
    let mut v = representative_18();
    v.extend(tsparse_16());
    v.extend(fig6_sweep());
    v
}

/// Looks a dataset entry up by its name (e.g. `"webbase-1M-like"`).
pub fn by_name(name: &str) -> Option<DatasetEntry> {
    all_entries().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod lookup_tests {
    use super::*;

    #[test]
    fn by_name_finds_each_registry() {
        assert!(by_name("gupta3-like").is_some());
        assert!(by_name("cage12-t").is_some());
        assert!(by_name("fem-00").is_some());
        assert!(by_name("no-such-matrix").is_none());
    }

    #[test]
    fn all_entries_have_unique_names() {
        let entries = all_entries();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate dataset names");
    }
}
