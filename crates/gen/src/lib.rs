#![warn(missing_docs)]

//! # tsg-gen — synthetic sparse matrix generators
//!
//! The paper evaluates on 142 SuiteSparse matrices (≥1 Gflop for `A²`/`AAᵀ`),
//! an 18-matrix representative subset (Table 2), and tSparse's 16-matrix
//! set. Those downloads are gated behind the SuiteSparse website, so per the
//! reproduction's substitution rule this crate builds synthetic analogues
//! that reproduce the *structural properties* the paper's analysis hinges on:
//!
//! * **FEM/structural matrices** (`pdb1HYS`, `cant`, `pwtk`, …): clustered
//!   dense blocks around a banded diagonal → high compression rate, dense
//!   tiles ([`fem::fem_blocks`]).
//! * **Stencil grids** (`mc2depi`, `af_shell10`-like): regular short rows →
//!   low compression rate, regular tiles ([`stencil`]).
//! * **Power-law graphs** (`webbase-1M`, `wiki-Vote`-like): a few enormous
//!   rows → the load-imbalance regime motivating §2.3 ([`rmat::rmat`]).
//! * **Hypersparse scatter** (`cop20k_A`, `scircuit`-like): nonzeros spread
//!   so nearly every tile holds ~1 entry → the tiled method's worst case,
//!   which the paper honestly reports ([`random::scatter_uniform`]).
//! * **Dense-bordered/arrow matrices** (`gupta3`, `TSOPF`-like): small n,
//!   huge flops, the matrices that OOM half the baselines
//!   ([`special::arrow`], [`special::power_flow`]).
//!
//! [`suite`] assembles the named registries; [`stats`] computes the Table-2
//! columns (nnz, flops, nnz(C), compression rate) from first principles.

pub mod fem;
pub mod random;
pub mod rmat;
pub mod special;
pub mod stats;
pub mod stencil;
pub mod suite;

pub use stats::{matrix_stats, spgemm_nnz, MatrixStats};
pub use suite::{fig6_sweep, representative_18, tsparse_16, DatasetEntry, StructureClass};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded RNG used by every generator, so the whole dataset is reproducible
/// from the seed recorded in EXPERIMENTS.md.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let mut a = super::rng(7);
        let mut b = super::rng(7);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_eq!(xa, xb);
    }
}
