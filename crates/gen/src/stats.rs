//! Matrix statistics — the Table-2 columns.
//!
//! For each dataset entry the paper reports `n`, `nnz(A)`, `#flops` of
//! `C = A²`, `nnz(C)`, and the *compression rate*: the ratio of intermediate
//! products (half the flops) to `nnz(C)`. Figure 6 plots performance against
//! this rate, so the harness needs it computed exactly; `spgemm_nnz` here is
//! an independent sort-based symbolic kernel (deliberately not sharing code
//! with any measured method, so it can serve as their oracle for output
//! size).

use rayon::prelude::*;
use tsg_matrix::{Csr, Scalar};

/// The statistics row the paper's Table 2 reports.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Matrix order (rows).
    pub n: usize,
    /// Columns (== n for the square evaluation set).
    pub ncols: usize,
    /// Nonzeros of `A`.
    pub nnz_a: usize,
    /// Floating point operations of `C = A·B` (2 per intermediate product).
    pub flops: u64,
    /// Nonzeros of the product.
    pub nnz_c: usize,
    /// Compression rate: `(flops / 2) / nnz_c`.
    pub compression_rate: f64,
}

/// Exact `nnz(A·B)` via a per-row "sort + dedup" symbolic pass.
pub fn spgemm_nnz<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> usize {
    assert_eq!(a.ncols, b.nrows, "inner dimensions must agree");
    (0..a.nrows)
        .into_par_iter()
        .map(|i| {
            let (cols, _) = a.row(i);
            let mut gathered: Vec<u32> = Vec::new();
            for &j in cols {
                gathered.extend_from_slice(b.row(j as usize).0);
            }
            gathered.sort_unstable();
            gathered.dedup();
            gathered.len()
        })
        .sum()
}

/// Computes the full statistics row for `C = A·B`.
pub fn matrix_stats<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> MatrixStats {
    let flops = a.spgemm_flops(b);
    let nnz_c = spgemm_nnz(a, b);
    MatrixStats {
        n: a.nrows,
        ncols: a.ncols,
        nnz_a: a.nnz(),
        flops,
        nnz_c,
        compression_rate: if nnz_c == 0 {
            0.0
        } else {
            (flops as f64 / 2.0) / nnz_c as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::Dense;

    #[test]
    fn nnz_matches_dense_oracle() {
        let a = crate::random::small_random(20, 20, 0.2, 1);
        let b = crate::random::small_random(20, 20, 0.2, 2);
        let dense = Dense::from_csr(&a).matmul(&Dense::from_csr(&b));
        // The dense product may have exact numeric cancellations that the
        // symbolic count keeps; random values make that probability zero.
        assert_eq!(spgemm_nnz(&a, &b), dense.to_csr().nnz());
    }

    #[test]
    fn identity_stats() {
        let i = Csr::<f64>::identity(10);
        let s = matrix_stats(&i, &i);
        assert_eq!(s.nnz_c, 10);
        assert_eq!(s.flops, 20);
        assert_eq!(s.compression_rate, 1.0);
    }

    #[test]
    fn compression_rate_grows_with_overlap() {
        // A dense column block means many products collapse onto few outputs.
        let dense_block = crate::special::power_flow(2, 16, 0, 3);
        let s = matrix_stats(&dense_block, &dense_block);
        assert!(s.compression_rate > 10.0, "rate {}", s.compression_rate);
        // A permutation matrix has rate exactly 1.
        let p = Csr::<f64>::identity(32);
        assert_eq!(matrix_stats(&p, &p).compression_rate, 1.0);
    }

    #[test]
    fn empty_product_has_zero_rate() {
        let z = Csr::<f64>::zero(5, 5);
        let s = matrix_stats(&z, &z);
        assert_eq!(s.nnz_c, 0);
        assert_eq!(s.compression_rate, 0.0);
    }
}
