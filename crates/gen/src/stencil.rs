//! Structured-grid stencil matrices.
//!
//! `mc2depi` (2-D epidemiology grid) and `af_shell10` (shell elements)
//! belong to this family: perfectly regular short rows, low compression
//! rates, near-diagonal tiles.

use tsg_matrix::{Coo, Csr};

/// 5-point Laplacian stencil on an `nx × ny` grid.
pub fn grid_2d_5pt(nx: usize, ny: usize) -> Csr<f64> {
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            let c = id(x, y);
            coo.push(c, c, 4.0);
            if x > 0 {
                coo.push(c, id(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                coo.push(c, id(x + 1, y), -1.0);
            }
            if y > 0 {
                coo.push(c, id(x, y - 1), -1.0);
            }
            if y + 1 < ny {
                coo.push(c, id(x, y + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// Upwind (directed) 4-point stencil: diagonal, east, west, and north — no
/// south neighbour, so the *pattern* is asymmetric. This models transition
/// matrices like `mc2depi` (a 2-D epidemiological Markov model), which the
/// paper's Figure 8 counts among its six asymmetric matrices.
pub fn grid_2d_upwind(nx: usize, ny: usize) -> Csr<f64> {
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            let c = id(x, y);
            coo.push(c, c, 3.0);
            if x > 0 {
                coo.push(c, id(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                coo.push(c, id(x + 1, y), -0.5);
            }
            if y > 0 {
                coo.push(c, id(x, y - 1), -1.5);
            }
        }
    }
    coo.to_csr()
}

/// 9-point stencil on an `nx × ny` grid (adds the diagonal neighbours).
pub fn grid_2d_9pt(nx: usize, ny: usize) -> Csr<f64> {
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            let c = id(x, y);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    let v = if dx == 0 && dy == 0 { 8.0 } else { -1.0 };
                    coo.push(c, id(xx as usize, yy as usize), v);
                }
            }
        }
    }
    coo.to_csr()
}

/// 27-point stencil on an `nx × ny × nz` grid — the `af_shell`-style heavy
/// regular matrix.
pub fn grid_3d_27pt(nx: usize, ny: usize, nz: usize) -> Csr<f64> {
    let n = nx * ny * nz;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize, z: usize| (z * ny * nx + y * nx + x) as u32;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let c = id(x, y, z);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            let v = if dx == 0 && dy == 0 && dz == 0 {
                                26.0
                            } else {
                                -1.0
                            };
                            coo.push(c, id(xx as usize, yy as usize, zz as usize), v);
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_point_interior_rows_have_five_entries() {
        let a = grid_2d_5pt(10, 10);
        assert_eq!(a.nrows, 100);
        // Interior node (5,5) = row 55.
        assert_eq!(a.row_nnz(55), 5);
        // Corner has 3.
        assert_eq!(a.row_nnz(0), 3);
        a.validate().unwrap();
    }

    #[test]
    fn five_point_rows_sum_to_laplacian_defect() {
        let a = grid_2d_5pt(8, 8);
        // Interior rows sum to zero (4 - 1 - 1 - 1 - 1).
        let interior = 3 * 8 + 3;
        let (_, vals) = a.row(interior);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn nine_point_interior_rows_have_nine_entries() {
        let a = grid_2d_9pt(6, 6);
        let interior = 2 * 6 + 2;
        assert_eq!(a.row_nnz(interior), 9);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn upwind_pattern_is_asymmetric() {
        let a = grid_2d_upwind(10, 10);
        let t = a.transpose();
        assert!(a.rowptr != t.rowptr || a.colidx != t.colidx);
        // Node (3, 3) -> north (3, 2) exists, but (3, 2) -> (3, 3) does not.
        assert!(a.get(3 * 10 + 3, (2 * 10 + 3) as u32).is_some());
        assert!(a.get(2 * 10 + 3, (3 * 10 + 3) as u32).is_none());
    }

    #[test]
    fn stencils_are_symmetric() {
        let a = grid_2d_5pt(12, 7);
        assert_eq!(a, a.transpose());
        let b = grid_3d_27pt(4, 5, 3);
        assert_eq!(b, b.transpose());
    }

    #[test]
    fn grid_3d_interior_has_27_entries() {
        let a = grid_3d_27pt(5, 5, 5);
        let interior = 2 * 25 + 2 * 5 + 2;
        assert_eq!(a.row_nnz(interior), 27);
        assert_eq!(a.nrows, 125);
    }
}
