//! Special structures from the representative set.
//!
//! * [`arrow`] — dense-bordered "arrow" matrices like `gupta3`
//!   (17k rows, 9.3M nnz, 61 Gflop): small order, enormous flop counts, the
//!   matrices that exhaust the intermediate-product buffers of row-row
//!   methods (paper Figure 7's `0.00` bars).
//! * [`power_flow`] — electrical-network-style matrices like `case39` and
//!   `TSOPF_FS_b300_c2`: block-dense clusters with huge `A²` fill.
//! * [`kronecker`] — Kronecker products used to grow structured graphs
//!   (`struct3`/`nemeth21`-like repetitive patterns).

use crate::{random::nonzero_value, rng};
use rand::Rng;
use tsg_matrix::{Coo, Csr};

/// Arrow matrix: a sparse banded body plus `border` fully dense rows *and*
/// columns. The dense border rows multiply against the dense border columns,
/// generating `O(border · n²)`-ish intermediate products — the `gupta3`
/// failure mode for methods that materialise intermediates.
pub fn arrow(n: usize, border: usize, body_per_row: usize, seed: u64) -> Csr<f64> {
    assert!(border < n);
    let mut r = rng(seed);
    let mut coo = Coo::new(n, n);
    // Dense border rows/cols at the front.
    for b in 0..border as u32 {
        for j in 0..n as u32 {
            coo.push(b, j, nonzero_value(&mut r));
            if j >= border as u32 {
                coo.push(j, b, nonzero_value(&mut r));
            }
        }
    }
    // Sparse banded body.
    for row in border..n {
        coo.push(row as u32, row as u32, r.gen_range(1.0..2.0));
        for _ in 0..body_per_row {
            let lo = row.saturating_sub(30).max(border);
            let hi = (row + 30).min(n - 1);
            coo.push(
                row as u32,
                r.gen_range(lo..=hi) as u32,
                nonzero_value(&mut r),
            );
        }
    }
    coo.to_csr()
}

/// Power-flow-style matrix: `clusters` dense clusters of size `cluster_size`
/// on the diagonal, randomly cross-linked. Mimics `case39` /
/// `TSOPF_FS_b300_c2`: modest order, very high `A²` flop counts because the
/// dense clusters square into themselves.
pub fn power_flow(clusters: usize, cluster_size: usize, links: usize, seed: u64) -> Csr<f64> {
    let mut r = rng(seed);
    let n = clusters * cluster_size;
    let mut coo = Coo::new(n, n);
    for k in 0..clusters {
        let base = (k * cluster_size) as u32;
        for i in 0..cluster_size as u32 {
            for j in 0..cluster_size as u32 {
                coo.push(base + i, base + j, nonzero_value(&mut r));
            }
        }
    }
    for _ in 0..links {
        let a = r.gen_range(0..n) as u32;
        let b = r.gen_range(0..n) as u32;
        let v = nonzero_value(&mut r);
        coo.push(a, b, v);
        coo.push(b, a, v);
    }
    coo.to_csr()
}

/// Kronecker product `A ⊗ B` (dense in neither factor's pattern).
pub fn kronecker(a: &Csr<f64>, b: &Csr<f64>) -> Csr<f64> {
    let nrows = a.nrows * b.nrows;
    let ncols = a.ncols * b.ncols;
    let mut coo = Coo::new(nrows, ncols);
    coo.entries.reserve(a.nnz() * b.nnz());
    for ra in 0..a.nrows {
        let (ca, va) = a.row(ra);
        for (&ja, &xa) in ca.iter().zip(va) {
            for rb in 0..b.nrows {
                let (cb, vb) = b.row(rb);
                for (&jb, &xb) in cb.iter().zip(vb) {
                    coo.push(
                        (ra * b.nrows + rb) as u32,
                        (ja as usize * b.ncols + jb as usize) as u32,
                        xa * xb,
                    );
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::Dense;

    #[test]
    fn arrow_has_dense_border() {
        let a = arrow(200, 3, 4, 7);
        a.validate().unwrap();
        for b in 0..3 {
            assert_eq!(a.row_nnz(b), 200, "border row {b} must be dense");
        }
        // Border columns dense too: transpose rows 0..3 are full.
        let t = a.transpose();
        for b in 0..3 {
            assert_eq!(t.row_nnz(b), 200);
        }
        // Body rows stay sparse.
        assert!(a.row_nnz(100) < 40);
    }

    #[test]
    fn arrow_flop_count_is_dominated_by_border() {
        let sparse = crate::fem::banded(200, 30, 5, 7);
        let a = arrow(200, 3, 5, 7);
        assert!(a.spgemm_flops(&a) > 10 * sparse.spgemm_flops(&sparse));
    }

    #[test]
    fn power_flow_clusters_are_dense() {
        let a = power_flow(10, 12, 30, 5);
        assert_eq!(a.nrows, 120);
        // First cluster block fully dense.
        for i in 0..12 {
            let (cols, _) = a.row(i);
            let in_cluster = cols.iter().filter(|&&c| c < 12).count();
            assert_eq!(in_cluster, 12);
        }
    }

    #[test]
    fn kronecker_matches_dense_oracle() {
        let a = crate::random::small_random(4, 3, 0.6, 1);
        let b = crate::random::small_random(3, 5, 0.6, 2);
        let k = kronecker(&a, &b);
        assert_eq!(k.nrows, 12);
        assert_eq!(k.ncols, 15);
        let da = Dense::from_csr(&a);
        let db = Dense::from_csr(&b);
        let dk = Dense::from_csr(&k);
        for i in 0..12 {
            for j in 0..15 {
                let expect = da.get(i / 3, j / 5) * db.get(i % 3, j % 5);
                assert!((dk.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn kronecker_nnz_is_product_of_nnz() {
        let a = crate::random::small_random(6, 6, 0.3, 3);
        let b = crate::random::small_random(5, 5, 0.3, 4);
        let k = kronecker(&a, &b);
        assert_eq!(k.nnz(), a.nnz() * b.nnz());
    }
}
