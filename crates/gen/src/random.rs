//! Uniform random generators.

use crate::rng;
use rand::Rng;
use tsg_matrix::{Coo, Csr};

/// Erdős–Rényi-style matrix: `nnz_target` entries drawn uniformly (before
/// duplicate folding), values in `(-1, 1) \ {0}`.
pub fn erdos_renyi(nrows: usize, ncols: usize, nnz_target: usize, seed: u64) -> Csr<f64> {
    let mut r = rng(seed);
    let mut coo = Coo::new(nrows, ncols);
    coo.entries.reserve(nnz_target);
    for _ in 0..nnz_target {
        let row = r.gen_range(0..nrows) as u32;
        let col = r.gen_range(0..ncols) as u32;
        coo.push(row, col, nonzero_value(&mut r));
    }
    coo.to_csr()
}

/// Uniform scatter with exactly `per_row` nonzeros per row (duplicates
/// folded, so some rows may end slightly shorter). The `cop20k_A`-like
/// hypersparse regime: with `per_row` small relative to `ncols / 16`, nearly
/// every nonzero lands in its own tile.
pub fn scatter_uniform(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
    let mut r = rng(seed);
    let mut coo = Coo::new(n, n);
    coo.entries.reserve(n * per_row);
    for row in 0..n as u32 {
        for _ in 0..per_row {
            coo.push(row, r.gen_range(0..n) as u32, nonzero_value(&mut r));
        }
    }
    coo.to_csr()
}

/// A value uniform in `[0.1, 1.0]` with random sign — bounded away from zero
/// so products never underflow to exact zero in tests.
pub fn nonzero_value<R: Rng>(r: &mut R) -> f64 {
    let mag = r.gen_range(0.1..=1.0);
    if r.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

/// Small dense-ish random matrix for oracle tests: every entry present with
/// probability `density`.
pub fn small_random(nrows: usize, ncols: usize, density: f64, seed: u64) -> Csr<f64> {
    let mut r = rng(seed);
    let mut coo = Coo::new(nrows, ncols);
    for row in 0..nrows as u32 {
        for col in 0..ncols as u32 {
            if r.gen_bool(density) {
                coo.push(row, col, nonzero_value(&mut r));
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_is_deterministic_and_in_bounds() {
        let a = erdos_renyi(100, 80, 500, 3);
        let b = erdos_renyi(100, 80, 500, 3);
        assert_eq!(a, b);
        assert!(a.nnz() <= 500 && a.nnz() > 400);
        a.validate().unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(100, 100, 300, 1);
        let b = erdos_renyi(100, 100, 300, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn scatter_has_bounded_row_lengths() {
        let a = scatter_uniform(200, 4, 9);
        for row in 0..200 {
            assert!(a.row_nnz(row) <= 4);
            assert!(a.row_nnz(row) >= 1);
        }
    }

    #[test]
    fn small_random_density_is_plausible() {
        let a = small_random(50, 50, 0.5, 11);
        let density = a.nnz() as f64 / 2500.0;
        assert!((0.4..0.6).contains(&density), "density {density}");
    }

    #[test]
    fn values_are_nonzero_after_duplicate_folding() {
        // Duplicate coordinates get summed during CSR conversion, so single
        // draws in ±[0.1, 1] can grow to ±2 or shrink toward zero — but
        // exact zeros are always dropped.
        let a = erdos_renyi(50, 50, 400, 5);
        assert!(a.vals.iter().all(|&v| v != 0.0 && v.abs() <= 2.0));
    }
}
