//! R-MAT (recursive matrix) power-law generator.
//!
//! Produces the skewed row-length distributions of web/social graphs — the
//! `webbase-1M` regime the paper's §2.3 uses to motivate tiling: on that
//! matrix 3 rows need >100k flops, 190 need >10k, while 999,812 rows need
//! <100. R-MAT with the classic `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`
//! reproduces that shape at any scale.

use crate::{random::nonzero_value, rng};
use rand::Rng;
use tsg_matrix::{Coo, Csr};

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The classic Graph500-ish skew.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// Mildly skewed variant.
    pub const MILD: RmatParams = RmatParams {
        a: 0.45,
        b: 0.22,
        c: 0.22,
    };

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a `2^scale × 2^scale` R-MAT matrix with `edges` draws
/// (duplicates folded, so the final nnz is somewhat lower at high skew).
pub fn rmat(scale: u32, edges: usize, params: RmatParams, seed: u64) -> Csr<f64> {
    assert!(params.d() >= 0.0, "quadrant probabilities exceed one");
    let n = 1usize << scale;
    let mut r = rng(seed);
    let mut coo = Coo::new(n, n);
    coo.entries.reserve(edges);
    for _ in 0..edges {
        let (mut row, mut col) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            // Perturb the quadrant probabilities slightly per level, the
            // standard trick to avoid exact self-similarity artefacts.
            let noise = 0.9 + 0.2 * r.gen::<f64>();
            let a = params.a * noise;
            let b = params.b * noise;
            let c = params.c * noise;
            let total = a + b + c + params.d() * noise;
            let x = r.gen::<f64>() * total;
            if x < a {
                // top-left: nothing to add
            } else if x < a + b {
                col += half;
            } else if x < a + b + c {
                row += half;
            } else {
                row += half;
                col += half;
            }
            half >>= 1;
        }
        coo.push(row as u32, col as u32, nonzero_value(&mut r));
    }
    coo.to_csr()
}

/// Maximum row nnz over the matrix — the imbalance witness used by tests.
pub fn max_row_nnz(a: &Csr<f64>) -> usize {
    (0..a.nrows).map(|i| a.row_nnz(i)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 2000, RmatParams::GRAPH500, 5);
        let b = rmat(8, 2000, RmatParams::GRAPH500, 5);
        assert_eq!(a, b);
        a.validate().unwrap();
    }

    #[test]
    fn rmat_is_skewed_relative_to_uniform() {
        let n_scale = 10;
        let edges = 8 * (1 << n_scale);
        let skewed = rmat(n_scale, edges, RmatParams::GRAPH500, 42);
        let uniform = crate::random::erdos_renyi(1 << n_scale, 1 << n_scale, edges, 42);
        // The heaviest R-MAT row dwarfs the heaviest uniform row.
        assert!(
            max_row_nnz(&skewed) > 3 * max_row_nnz(&uniform),
            "rmat max row {} vs uniform {}",
            max_row_nnz(&skewed),
            max_row_nnz(&uniform)
        );
    }

    #[test]
    fn webbase_like_row_distribution_shape() {
        // §2.3's motivation: the overwhelming majority of rows are tiny
        // while a handful dominate.
        let a = rmat(12, 40_000, RmatParams::GRAPH500, 7);
        let rows = a.nrows;
        let avg = a.nnz() / rows;
        let small = (0..rows).filter(|&i| a.row_nnz(i) <= 2 * avg).count();
        assert!(
            small as f64 > 0.8 * rows as f64,
            "only {small}/{rows} rows are near-average"
        );
        assert!(
            max_row_nnz(&a) > 20 * avg,
            "heaviest row {} should dwarf the {avg} average",
            max_row_nnz(&a)
        );
    }

    #[test]
    #[should_panic(expected = "exceed one")]
    fn invalid_params_panic() {
        rmat(
            4,
            10,
            RmatParams {
                a: 0.6,
                b: 0.3,
                c: 0.3,
            },
            1,
        );
    }
}
