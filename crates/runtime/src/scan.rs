//! Exclusive prefix sums.
//!
//! TileSpGEMM turns per-tile mask popcounts into per-tile row pointers, and
//! per-tile nnz counts into the `tileNnz` offset array, with prefix-sum scans
//! (paper §3.3, step 2). The row-row baselines use the same primitive to turn
//! per-row nnz counts into CSR row pointers. Both a serial and a two-pass
//! parallel variant are provided; the parallel variant is used automatically
//! above a length threshold.

use rayon::prelude::*;

/// Below this length the parallel scan falls back to the serial one; the
/// two-pass overhead dominates for short arrays.
const PAR_THRESHOLD: usize = 1 << 15;

/// In-place exclusive scan: `values[i]` becomes the sum of the original
/// `values[..i]`. Returns the total sum of the original array.
pub fn exclusive_scan_in_place(values: &mut [usize]) -> usize {
    let mut running = 0usize;
    for v in values.iter_mut() {
        let next = running + *v;
        *v = running;
        running = next;
    }
    running
}

/// Exclusive scan of `counts` into `out`, where `out.len() == counts.len() + 1`
/// and `out[counts.len()]` receives the total. This is the common
/// "counts → CSR row pointer" shape. Returns the total.
pub fn exclusive_scan_to(counts: &[usize], out: &mut [usize]) -> usize {
    assert_eq!(
        out.len(),
        counts.len() + 1,
        "output of exclusive_scan_to must have one extra slot"
    );
    let mut running = 0usize;
    for (o, &c) in out.iter_mut().zip(counts.iter()) {
        *o = running;
        running += c;
    }
    out[counts.len()] = running;
    running
}

/// Parallel exclusive scan of `counts` into `out` (two-pass, chunked).
/// Semantics match [`exclusive_scan_to`]: `out.len() == counts.len() + 1`
/// and `out[counts.len()]` receives the total. Returns the total.
pub fn par_exclusive_scan_to(counts: &[usize], out: &mut [usize]) -> usize {
    assert_eq!(
        out.len(),
        counts.len() + 1,
        "output of exclusive_scan_to must have one extra slot"
    );
    let n = counts.len();
    if n < PAR_THRESHOLD {
        return exclusive_scan_to(counts, out);
    }
    let chunk = n.div_ceil(rayon::current_num_threads().max(1) * 4).max(1);
    // Pass 1: per-chunk sums.
    let mut chunk_sums: Vec<usize> = counts
        .par_chunks(chunk)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    let total = exclusive_scan_in_place(&mut chunk_sums);
    out[n] = total;
    // Pass 2: scan each chunk with its offset.
    out[..n]
        .par_chunks_mut(chunk)
        .zip(counts.par_chunks(chunk))
        .zip(chunk_sums.par_iter())
        .for_each(|((o, c), &offset)| {
            let mut running = offset;
            for (slot, &count) in o.iter_mut().zip(c.iter()) {
                *slot = running;
                running += count;
            }
        });
    total
}

/// Parallel in-place exclusive scan (two-pass, chunked). Semantics match
/// [`exclusive_scan_in_place`]. Returns the total.
pub fn par_exclusive_scan_in_place(values: &mut [usize]) -> usize {
    let n = values.len();
    if n < PAR_THRESHOLD {
        return exclusive_scan_in_place(values);
    }
    let chunk = n.div_ceil(rayon::current_num_threads().max(1) * 4).max(1);
    // Pass 1: per-chunk sums.
    let mut chunk_sums: Vec<usize> = values
        .par_chunks(chunk)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    let total = exclusive_scan_in_place(&mut chunk_sums);
    // Pass 2: scan each chunk with its offset.
    values
        .par_chunks_mut(chunk)
        .zip(chunk_sums.par_iter())
        .for_each(|(c, &offset)| {
            let mut running = offset;
            for v in c.iter_mut() {
                let next = running + *v;
                *v = running;
                running = next;
            }
        });
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scan_basic() {
        let mut v = vec![3, 0, 2, 5];
        let total = exclusive_scan_in_place(&mut v);
        assert_eq!(v, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
    }

    #[test]
    fn scan_to_produces_row_pointer_shape() {
        let counts = [2usize, 0, 4, 1];
        let mut out = [0usize; 5];
        let total = exclusive_scan_to(&counts, &mut out);
        assert_eq!(out, [0, 2, 2, 6, 7]);
        assert_eq!(total, 7);
    }

    #[test]
    fn scan_of_empty_is_zero() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_scan_in_place(&mut v), 0);
        let mut out = [0usize; 1];
        assert_eq!(exclusive_scan_to(&[], &mut out), 0);
        assert_eq!(out, [0]);
    }

    #[test]
    fn parallel_scan_matches_serial_on_large_input() {
        let original: Vec<usize> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let mut serial = original.clone();
        let mut parallel = original.clone();
        let ts = exclusive_scan_in_place(&mut serial);
        let tp = par_exclusive_scan_in_place(&mut parallel);
        assert_eq!(ts, tp);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_scan_to_matches_serial_on_large_input() {
        let counts: Vec<usize> = (0..100_000).map(|i| (i * 13 + 5) % 17).collect();
        let mut serial = vec![0usize; counts.len() + 1];
        let mut parallel = vec![0usize; counts.len() + 1];
        let ts = exclusive_scan_to(&counts, &mut serial);
        let tp = par_exclusive_scan_to(&counts, &mut parallel);
        assert_eq!(ts, tp);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_scan_to_small_input_falls_back() {
        let counts = [2usize, 0, 4, 1];
        let mut out = [0usize; 5];
        assert_eq!(par_exclusive_scan_to(&counts, &mut out), 7);
        assert_eq!(out, [0, 2, 2, 6, 7]);
    }

    #[test]
    fn parallel_scan_small_input_falls_back() {
        let mut v = vec![1usize; 8];
        assert_eq!(par_exclusive_scan_in_place(&mut v), 8);
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "one extra slot")]
    fn scan_to_rejects_wrong_output_length() {
        let mut out = [0usize; 3];
        exclusive_scan_to(&[1, 2, 3], &mut out);
    }
}
