//! Deterministic fault injection for tests (`--features failpoints`).
//!
//! A *failpoint* is a named site in production code that tests can arm to
//! force a failure that is otherwise hard to reach deterministically: an
//! allocation failing exactly mid-step-3, a cache eviction racing a lookup,
//! a truncated protocol frame. The registry is zero-dependency (std mutex +
//! map) and the whole module only exists under `cfg(feature =
//! "failpoints")`, so release and tier-1 builds carry no trace of it.
//!
//! Sites call [`should_fail`] with their stable name; tests call [`arm`] to
//! schedule failures and [`exclusive`] to serialize themselves against other
//! failpoint tests (the registry is process-global, and `cargo test` runs
//! tests on multiple threads).
//!
//! The failpoint catalog — every name compiled into the workspace — is
//! documented in DESIGN.md §10.3.
//!
//! ```
//! use tsg_runtime::failpoint;
//!
//! let _guard = failpoint::exclusive();       // clears the registry on drop
//! failpoint::arm("tracker.alloc", 2, 1);     // skip 2 hits, then fail once
//! assert!(!failpoint::should_fail("tracker.alloc"));
//! assert!(!failpoint::should_fail("tracker.alloc"));
//! assert!(failpoint::should_fail("tracker.alloc"));
//! assert!(!failpoint::should_fail("tracker.alloc")); // budget spent
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// One armed site: fail the hits in `(skip, skip + times]`.
#[derive(Debug, Clone, Copy)]
struct Armed {
    /// Hits to let through before failing.
    skip: u64,
    /// Failures to inject after the skips (0 = unlimited).
    times: u64,
    /// Hits observed since arming.
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of currently armed sites; lets [`should_fail`] stay a single
/// relaxed atomic load on the (overwhelmingly common) nothing-armed path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn lock() -> MutexGuard<'static, HashMap<String, Armed>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `name`: the next `skip` hits pass, then the following `times` hits
/// fail (`times == 0` fails every hit after the skips). Re-arming replaces
/// any previous schedule and resets the hit count.
pub fn arm(name: &str, skip: u64, times: u64) {
    let mut map = lock();
    if map
        .insert(
            name.to_string(),
            Armed {
                skip,
                times,
                hits: 0,
            },
        )
        .is_none()
    {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms `name` (a no-op when it was not armed).
pub fn clear(name: &str) {
    if lock().remove(name).is_some() {
        ARMED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disarms every site.
pub fn clear_all() {
    let mut map = lock();
    ARMED.fetch_sub(map.len(), Ordering::Relaxed);
    map.clear();
}

/// Hits observed at `name` since it was armed (0 when not armed). Lets a
/// test assert a site was actually reached, not silently skipped.
pub fn hits(name: &str) -> u64 {
    lock().get(name).map_or(0, |a| a.hits)
}

/// Called by instrumented production code: records a hit at `name` and
/// reports whether the site should fail now. Always `false` when nothing is
/// armed there.
pub fn should_fail(name: &str) -> bool {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    let mut map = lock();
    let Some(armed) = map.get_mut(name) else {
        return false;
    };
    armed.hits += 1;
    let past_skip = armed.hits > armed.skip;
    past_skip && (armed.times == 0 || armed.hits <= armed.skip + armed.times)
}

/// Guard serializing failpoint tests. Holding it gives the test exclusive
/// use of the process-global registry; acquiring and dropping both clear
/// every armed site, so tests cannot leak schedules into each other.
pub struct FailpointGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FailpointGuard {
    fn drop(&mut self) {
        clear_all();
    }
}

/// Takes the global failpoint lock (blocking on other holders), clears the
/// registry, and returns a guard that clears it again on drop.
pub fn exclusive() -> FailpointGuard {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    let guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    clear_all();
    FailpointGuard { _lock: guard }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_skip_then_fail_then_exhaust() {
        let _x = exclusive();
        arm("unit.site", 1, 2);
        assert!(!should_fail("unit.site"));
        assert!(should_fail("unit.site"));
        assert!(should_fail("unit.site"));
        assert!(!should_fail("unit.site"));
        assert_eq!(hits("unit.site"), 4);
    }

    #[test]
    fn unarmed_sites_never_fail_and_count_nothing() {
        let _x = exclusive();
        assert!(!should_fail("unit.other"));
        assert_eq!(hits("unit.other"), 0);
        arm("unit.a", 0, 0);
        // A different armed site does not bleed over.
        assert!(!should_fail("unit.other"));
        assert!(should_fail("unit.a"));
        assert!(should_fail("unit.a"));
        clear("unit.a");
        assert!(!should_fail("unit.a"));
    }

    #[test]
    fn exclusive_clears_on_acquire_and_drop() {
        {
            let _x = exclusive();
            arm("unit.leak", 0, 0);
            assert!(should_fail("unit.leak"));
        }
        let _x = exclusive();
        assert!(!should_fail("unit.leak"));
    }
}
