//! Simulated device models.
//!
//! The paper evaluates on two NVIDIA Ampere GPUs: an RTX 3060 (3,584 CUDA
//! cores, 12 GB, 360 GB/s) and an RTX 3090 (10,496 CUDA cores, 24 GB,
//! 936 GB/s) — roughly a 3x gap in both compute and bandwidth, which is the
//! ratio the paper's scalability study (Figure 6, bottom row) measures
//! against.
//!
//! We have no GPU; per the reproduction's substitution rule a *device* here is
//! a named Rayon thread-pool configuration plus a memory budget:
//!
//! * `rtx3090-sim` uses every available logical core and the full memory
//!   budget;
//! * `rtx3060-sim` uses one third of the cores (rounded up) and half of the
//!   memory budget, mirroring the paper's 3x compute and 2x capacity gaps.
//!
//! The memory budget does not limit the host allocator; it is enforced by the
//! [`crate::tracker::MemTracker`], so that methods which would exceed device
//! memory in the paper (e.g. bhSPARSE's intermediate-product buffer on
//! `gupta3`) fail in the same place here, producing the paper's "0.00" bars
//! in Figure 7.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, OnceLock};

/// A simulated execution device: a thread count and a device-memory budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Human-readable device name, used in reports (e.g. `rtx3090-sim`).
    pub name: String,
    /// Number of worker threads in this device's pool.
    pub threads: usize,
    /// Device memory budget in bytes, enforced by the memory tracker.
    pub mem_budget: usize,
}

/// Default full-device memory budget used by the simulated RTX 3090.
///
/// The paper's dataset peaks around a few GB on a 24 GB card; our synthetic
/// dataset is roughly two orders of magnitude smaller, so the budget scales
/// down accordingly. 1 GiB (3090-sim) / 512 MiB (3060-sim) keeps the same
/// methods failing on the same matrix classes.
pub const FULL_MEM_BUDGET: usize = 1 << 30;

fn logical_cores() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Device {
    /// A device with an explicit thread count and memory budget.
    pub fn new(name: impl Into<String>, threads: usize, mem_budget: usize) -> Self {
        Self {
            name: name.into(),
            threads: threads.max(1),
            mem_budget,
        }
    }

    /// The simulated RTX 3090: all logical cores, full memory budget.
    pub fn rtx3090_sim() -> Self {
        Self::new("rtx3090-sim", logical_cores(), FULL_MEM_BUDGET)
    }

    /// The simulated RTX 3060: one third of the cores, half the memory.
    pub fn rtx3060_sim() -> Self {
        let threads = logical_cores().div_ceil(3);
        Self::new("rtx3060-sim", threads, FULL_MEM_BUDGET / 2)
    }

    /// A single-threaded device, useful for deterministic debugging.
    pub fn serial() -> Self {
        Self::new("serial", 1, usize::MAX)
    }

    /// A device using the ambient Rayon pool (however it is configured).
    pub fn ambient() -> Self {
        Self::new("ambient", logical_cores(), usize::MAX)
    }
}

/// Process-wide cache of Rayon pools, keyed by thread count.
///
/// Two devices with the same thread count are computationally identical, so
/// they share one pool; the `Device` keeps its own name and memory budget.
fn pool_cache() -> &'static Mutex<HashMap<usize, Arc<rayon::ThreadPool>>> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    POOLS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The memoized Rayon pool for `device`.
///
/// Built on first use and kept for the life of the process, so repeated
/// [`run_on`] calls (the engine's per-job execution path) stop paying a
/// pool construction per invocation.
pub fn pool_for(device: &Device) -> Arc<rayon::ThreadPool> {
    let mut cache = pool_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(cache.entry(device.threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(device.threads)
                .thread_name(|i| format!("tsg-worker-{i}"))
                .build()
                .expect("building rayon pool for simulated device"),
        )
    }))
}

/// Runs `f` inside the memoized Rayon pool sized for `device`.
///
/// Every figure harness runs each measurement through this function so that
/// the `rtx3090-sim` / `rtx3060-sim` scalability comparison uses controlled
/// pools rather than the ambient global pool.
pub fn run_on<R: Send>(device: &Device, f: impl FnOnce() -> R + Send) -> R {
    pool_for(device).install(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn device_thread_counts_are_positive_and_ordered() {
        let big = Device::rtx3090_sim();
        let small = Device::rtx3060_sim();
        assert!(big.threads >= 1);
        assert!(small.threads >= 1);
        assert!(small.threads <= big.threads);
        assert!(small.mem_budget < big.mem_budget);
    }

    #[test]
    fn run_on_uses_requested_thread_count() {
        let device = Device::new("two-threads", 2, usize::MAX);
        let observed = run_on(&device, rayon::current_num_threads);
        assert_eq!(observed, 2);
    }

    #[test]
    fn run_on_serial_still_executes_parallel_iterators() {
        let device = Device::serial();
        let sum: u64 = run_on(&device, || (0u64..1000).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn run_on_returns_closure_value() {
        let device = Device::new("x", 3, 0);
        assert_eq!(run_on(&device, || 42), 42);
    }

    #[test]
    fn pools_are_memoized_per_thread_count() {
        let a = Device::new("a", 2, usize::MAX);
        let b = Device::new("b", 2, 123); // same threads, different budget
        let c = Device::new("c", 3, usize::MAX);
        assert!(Arc::ptr_eq(&pool_for(&a), &pool_for(&a)));
        assert!(Arc::ptr_eq(&pool_for(&a), &pool_for(&b)));
        assert!(!Arc::ptr_eq(&pool_for(&a), &pool_for(&c)));
    }

    #[test]
    fn nested_run_on_pools_are_independent() {
        let outer = Device::new("outer", 2, usize::MAX);
        let inner = Device::new("inner", 1, usize::MAX);
        let (o, i) = run_on(&outer, || {
            let o = rayon::current_num_threads();
            let i = run_on(&inner, rayon::current_num_threads);
            (o, i)
        });
        assert_eq!(o, 2);
        assert_eq!(i, 1);
    }
}
