//! Per-step runtime breakdown.
//!
//! The paper reports a four-way breakdown for TileSpGEMM (Figure 10): step 1
//! (tile-structure SpGEMM, <5% on average), step 2 (per-tile symbolic, ~15%),
//! step 3 (per-tile numeric, ~70%), and CPU & GPU memory allocation (~20% in
//! some cases). Figure 14 reports the same breakdown for tSparse. The row-row
//! baselines map their symbolic phase to step 2 and their numeric phase to
//! step 3 so all methods share one report format.

use std::time::{Duration, Instant};

/// Which breakdown slice a timed region belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Tile-structure (or row-structure) symbolic SpGEMM.
    Step1,
    /// Per-tile (or per-row) symbolic phase: nnz counting, masks, pointers.
    Step2,
    /// Numeric phase: computing values.
    Step3,
    /// Memory allocation on "CPU & GPU".
    Alloc,
}

/// Accumulated wall time for each breakdown slice.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown {
    /// Step-1 time (tile/row structure symbolic multiply).
    pub step1: Duration,
    /// Step-2 time (per-tile symbolic / per-row nnz counting).
    pub step2: Duration,
    /// Step-3 time (numeric accumulation).
    pub step3: Duration,
    /// Memory-allocation time.
    pub alloc: Duration,
}

impl Breakdown {
    /// Sum of all slices.
    pub fn total(&self) -> Duration {
        self.step1 + self.step2 + self.step3 + self.alloc
    }

    /// Adds `d` to the slice identified by `step`.
    pub fn add(&mut self, step: Step, d: Duration) {
        match step {
            Step::Step1 => self.step1 += d,
            Step::Step2 => self.step2 += d,
            Step::Step3 => self.step3 += d,
            Step::Alloc => self.alloc += d,
        }
    }

    /// Runs `f`, charging its wall time to `step`.
    pub fn timed<T>(&mut self, step: Step, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(step, start.elapsed());
        out
    }

    /// Fractions of the total per slice, in step order
    /// `[step1, step2, step3, alloc]`. Returns zeros for an empty breakdown.
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            self.step1.as_secs_f64() / total,
            self.step2.as_secs_f64() / total,
            self.step3.as_secs_f64() / total,
            self.alloc.as_secs_f64() / total,
        ]
    }

    /// Element-wise sum, used to average breakdowns over repetitions.
    pub fn merge(&self, other: &Breakdown) -> Breakdown {
        Breakdown {
            step1: self.step1 + other.step1,
            step2: self.step2 + other.step2,
            step3: self.step3 + other.step3,
            alloc: self.alloc + other.alloc,
        }
    }

    /// Divides every slice by `n`, used to average over repetitions.
    pub fn scale_down(&self, n: u32) -> Breakdown {
        Breakdown {
            step1: self.step1 / n,
            step2: self.step2 / n,
            step3: self.step3 / n,
            alloc: self.alloc / n,
        }
    }
}

/// Times a closure, returning its result and the elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_charges_the_right_slice() {
        let mut b = Breakdown::default();
        let v = b.timed(Step::Step2, || {
            std::thread::sleep(Duration::from_millis(1));
            7
        });
        assert_eq!(v, 7);
        assert!(b.step2 >= Duration::from_millis(1));
        assert_eq!(b.step1, Duration::ZERO);
        assert_eq!(b.step3, Duration::ZERO);
        assert_eq!(b.alloc, Duration::ZERO);
    }

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let mut b = Breakdown::default();
        b.add(Step::Step1, Duration::from_millis(10));
        b.add(Step::Step2, Duration::from_millis(30));
        b.add(Step::Step3, Duration::from_millis(50));
        b.add(Step::Alloc, Duration::from_millis(10));
        let f = b.fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((f[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractions_of_empty_breakdown_are_zero() {
        assert_eq!(Breakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn merge_and_scale_down_round_trip() {
        let mut a = Breakdown::default();
        a.add(Step::Step3, Duration::from_millis(40));
        let doubled = a.merge(&a);
        assert_eq!(doubled.step3, Duration::from_millis(80));
        assert_eq!(doubled.scale_down(2).step3, Duration::from_millis(40));
    }

    #[test]
    fn time_returns_value_and_duration() {
        let (v, d) = time(|| 5usize);
        assert_eq!(v, 5);
        assert!(d < Duration::from_secs(1));
    }
}
