//! Row binning by work estimate.
//!
//! Every row-row SpGEMM method the paper compares against groups rows by a
//! cheap upper bound on their work before choosing a kernel per group:
//! bhSPARSE uses 38 bins, NSPARSE bins twice (symbolic and numeric rounds),
//! and spECK's "lightweight analysis" is a coarse binning. This module
//! provides the shared primitive: partition `0..n` row ids into power-of-two
//! buckets of a per-row key, in parallel.

use rayon::prelude::*;

/// Rows grouped into power-of-two buckets of their key.
///
/// Bucket `b` holds rows whose key `k` satisfies:
/// * `b == 0`: `k == 0`;
/// * otherwise: `2^(b-1) <= k < 2^b`, with the last bucket also absorbing
///   everything at or above its lower bound.
#[derive(Debug, Clone)]
pub struct Bins {
    /// Row ids, grouped bucket by bucket.
    pub rows: Vec<u32>,
    /// Bucket boundaries into `rows`; bucket `b` is
    /// `rows[bounds[b]..bounds[b + 1]]`. Length `bucket_count + 1`.
    pub bounds: Vec<usize>,
}

impl Bins {
    /// The row ids in bucket `b`.
    pub fn bucket(&self, b: usize) -> &[u32] {
        &self.rows[self.bounds[b]..self.bounds[b + 1]]
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Iterates `(bucket_index, rows)` over non-empty buckets.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (usize, &[u32])> {
        (0..self.bucket_count())
            .map(move |b| (b, self.bucket(b)))
            .filter(|(_, rows)| !rows.is_empty())
    }

    /// Number of buckets holding at least one row (the occupancy the
    /// observability layer reports per binned dispatch).
    pub fn occupied_buckets(&self) -> usize {
        self.iter_nonempty().count()
    }
}

/// Which bucket a key belongs to, clamped to `bucket_count` buckets.
pub fn bucket_of(key: usize, bucket_count: usize) -> usize {
    debug_assert!(bucket_count >= 2);
    if key == 0 {
        0
    } else {
        let b = (usize::BITS - key.leading_zeros()) as usize; // floor(log2(key)) + 1
        b.min(bucket_count - 1)
    }
}

/// Bins rows `0..n` into `bucket_count` power-of-two buckets of `key(row)`.
///
/// Runs the key evaluation in parallel; the grouping itself is a counting
/// sort, so the relative order of rows inside a bucket is ascending by row id
/// (deterministic output).
pub fn bin_rows_by(n: usize, bucket_count: usize, key: impl Fn(usize) -> usize + Sync) -> Bins {
    assert!(bucket_count >= 2, "need at least buckets for 0 and >0");
    let buckets: Vec<u8> = (0..n)
        .into_par_iter()
        .map(|row| bucket_of(key(row), bucket_count) as u8)
        .collect();
    let mut counts = vec![0usize; bucket_count];
    for &b in &buckets {
        counts[b as usize] += 1;
    }
    let mut bounds = vec![0usize; bucket_count + 1];
    crate::scan::exclusive_scan_to(&counts, &mut bounds);
    let mut cursor = bounds[..bucket_count].to_vec();
    let mut rows = vec![0u32; n];
    for (row, &b) in buckets.iter().enumerate() {
        rows[cursor[b as usize]] = row as u32;
        cursor[b as usize] += 1;
    }
    Bins { rows, bounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_power_of_two_ranges() {
        assert_eq!(bucket_of(0, 8), 0);
        assert_eq!(bucket_of(1, 8), 1);
        assert_eq!(bucket_of(2, 8), 2);
        assert_eq!(bucket_of(3, 8), 2);
        assert_eq!(bucket_of(4, 8), 3);
        assert_eq!(bucket_of(7, 8), 3);
        assert_eq!(bucket_of(8, 8), 4);
        // Clamped to the last bucket.
        assert_eq!(bucket_of(usize::MAX, 8), 7);
    }

    #[test]
    fn binning_partitions_all_rows_exactly_once() {
        let keys = [0usize, 1, 5, 5, 16, 2, 0, 1000];
        let bins = bin_rows_by(keys.len(), 6, |r| keys[r]);
        let mut seen: Vec<u32> = bins.rows.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..keys.len() as u32).collect::<Vec<_>>());
        assert_eq!(bins.bucket(0), &[0, 6]); // keys == 0
        assert_eq!(bins.bucket(1), &[1]); // key == 1
        assert_eq!(bins.bucket(2), &[5]); // key == 2
        assert_eq!(bins.bucket(3), &[2, 3]); // keys 4..8
        assert_eq!(bins.bucket(5), &[4, 7]); // keys >= 16 (clamped)
    }

    #[test]
    fn bucket_membership_matches_bucket_of() {
        let keys: Vec<usize> = (0..500).map(|i| (i * 37) % 97).collect();
        let bins = bin_rows_by(keys.len(), 10, |r| keys[r]);
        for (b, rows) in bins.iter_nonempty() {
            for &r in rows {
                assert_eq!(bucket_of(keys[r as usize], 10), b);
            }
        }
    }

    #[test]
    fn rows_within_bucket_are_ascending() {
        let keys: Vec<usize> = (0..200).map(|i| i % 3).collect();
        let bins = bin_rows_by(keys.len(), 4, |r| keys[r]);
        for (_, rows) in bins.iter_nonempty() {
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_input_produces_empty_bins() {
        let bins = bin_rows_by(0, 4, |_| 0);
        assert!(bins.rows.is_empty());
        assert_eq!(bins.bucket_count(), 4);
        assert!(bins.iter_nonempty().next().is_none());
    }
}
