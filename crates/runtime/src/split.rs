//! Disjoint mutable windows over one output buffer.
//!
//! On the GPU each warp writes its tile's nonzeros into a disjoint range of
//! the global `val`/`idx` arrays, computed from the `tileNnz` offsets. The
//! safe Rust analogue is to split the output slice into per-tile mutable
//! windows up front and hand each window to one Rayon task.

/// Splits `data` into `offsets.len() - 1` disjoint mutable windows, where
/// window `i` is `data[offsets[i]..offsets[i + 1]]`.
///
/// `offsets` must be non-decreasing, start at 0, and end at `data.len()` —
/// exactly the shape of a CSR-style pointer array.
///
/// # Panics
/// Panics if the offsets are malformed.
pub fn split_mut_by_offsets<'a, T>(data: &'a mut [T], offsets: &[usize]) -> Vec<&'a mut [T]> {
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    assert_eq!(offsets[0], 0, "offsets must start at zero");
    assert_eq!(
        *offsets.last().unwrap(),
        data.len(),
        "offsets must end at data.len()"
    );
    let mut windows = Vec::with_capacity(offsets.len() - 1);
    let mut rest = data;
    let mut consumed = 0usize;
    for w in offsets.windows(2) {
        let (start, end) = (w[0], w[1]);
        assert!(start <= end, "offsets must be non-decreasing");
        let (head, tail) = rest.split_at_mut(end - consumed);
        windows.push(&mut head[start - consumed..]);
        // `head[..start - consumed]` is dropped: those elements were already
        // covered by the previous window's end.
        rest = tail;
        consumed = end;
    }
    windows
}

/// Splits `data` into `parts` near-equal mutable windows (the last may be
/// shorter). Useful for chunked parallel fills where no offset array exists.
pub fn split_mut_uniform<T>(data: &mut [T], parts: usize) -> Vec<&mut [T]> {
    assert!(parts > 0, "parts must be positive");
    let chunk = data.len().div_ceil(parts).max(1);
    data.chunks_mut(chunk).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn windows_cover_the_buffer_disjointly() {
        let mut data = vec![0u32; 10];
        let offsets = [0usize, 3, 3, 7, 10];
        {
            let windows = split_mut_by_offsets(&mut data, &offsets);
            assert_eq!(windows.len(), 4);
            assert_eq!(
                windows.iter().map(|w| w.len()).collect::<Vec<_>>(),
                [3, 0, 4, 3]
            );
            windows
                .into_par_iter()
                .enumerate()
                .for_each(|(i, w)| w.fill(i as u32 + 1));
        }
        assert_eq!(data, vec![1, 1, 1, 3, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn single_window_spans_everything() {
        let mut data = vec![7u8; 5];
        let windows = split_mut_by_offsets(&mut data, &[0, 5]);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].len(), 5);
    }

    #[test]
    fn empty_data_empty_windows() {
        let mut data: Vec<u8> = vec![];
        let windows = split_mut_by_offsets(&mut data, &[0]);
        assert!(windows.is_empty());
    }

    #[test]
    #[should_panic(expected = "end at data.len()")]
    fn rejects_short_offsets() {
        let mut data = vec![0u8; 4];
        split_mut_by_offsets(&mut data, &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "start at zero")]
    fn rejects_nonzero_start() {
        let mut data = vec![0u8; 4];
        split_mut_by_offsets(&mut data, &[1, 4]);
    }

    #[test]
    fn uniform_split_covers_everything() {
        let mut data: Vec<usize> = (0..17).collect();
        let total: usize = split_mut_uniform(&mut data, 4)
            .into_iter()
            .map(|w| w.len())
            .sum();
        assert_eq!(total, 17);
    }
}
