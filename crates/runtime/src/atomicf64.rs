//! Atomic floating-point adds.
//!
//! The paper's numeric phase (Algorithm 3) uses CUDA `atomicAdd` to let the 32
//! threads of a warp accumulate intermediate products into one tile. On the
//! CPU side one Rayon task owns a tile, so most accumulation is plain; the
//! atomic variants are needed where baselines share an accumulation buffer
//! across tasks (e.g. the ESC expansion counters and AAᵀ transpose scatter).
//! Implemented as the classic compare-exchange loop over the bit pattern.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

macro_rules! atomic_float {
    ($name:ident, $float:ty, $bits:ty, $atomic:ty) => {
        /// Atomic floating-point cell supporting relaxed add/load/store.
        #[derive(Debug, Default)]
        pub struct $name {
            bits: $atomic,
        }

        impl $name {
            /// A new cell holding `value`.
            pub fn new(value: $float) -> Self {
                Self {
                    bits: <$atomic>::new(value.to_bits()),
                }
            }

            /// Relaxed load.
            pub fn load(&self) -> $float {
                <$float>::from_bits(self.bits.load(Ordering::Relaxed))
            }

            /// Relaxed store.
            pub fn store(&self, value: $float) {
                self.bits.store(value.to_bits(), Ordering::Relaxed);
            }

            /// Atomically adds `rhs`, returning the previous value.
            pub fn fetch_add(&self, rhs: $float) -> $float {
                let mut current = self.bits.load(Ordering::Relaxed);
                loop {
                    let next = (<$float>::from_bits(current) + rhs).to_bits();
                    match self.bits.compare_exchange_weak(
                        current,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return <$float>::from_bits(current),
                        Err(observed) => current = observed,
                    }
                }
            }

            /// Reinterprets a mutable float slice as atomic cells.
            ///
            /// Safe because the atomic type has the same size and alignment
            /// as the float's bit representation and lives only as long as
            /// the exclusive borrow.
            pub fn from_mut_slice(slice: &mut [$float]) -> &[$name] {
                const _: () = assert!(
                    std::mem::size_of::<$float>() == std::mem::size_of::<$name>()
                        && std::mem::align_of::<$float>() <= std::mem::align_of::<$name>()
                );
                // SAFETY: $name is repr-compatible with $bits which is the
                // bit representation of $float; exclusivity of the borrow
                // guarantees no non-atomic aliasing for the lifetime.
                unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<$name>(), slice.len()) }
            }
        }
    };
}

atomic_float!(AtomicF64, f64, u64, AtomicU64);
atomic_float!(AtomicF32, f32, u32, AtomicU32);

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.fetch_add(2.5), 1.5);
        assert_eq!(a.load(), 4.0);
    }

    #[test]
    fn store_and_load_round_trip() {
        let a = AtomicF32::new(0.0);
        a.store(-7.25);
        assert_eq!(a.load(), -7.25);
    }

    #[test]
    fn concurrent_adds_sum_exactly_for_representable_values() {
        let a = AtomicF64::new(0.0);
        // 0.5 sums are exact in binary floating point, so the result is
        // deterministic regardless of interleaving.
        (0..10_000).into_par_iter().for_each(|_| {
            a.fetch_add(0.5);
        });
        assert_eq!(a.load(), 5_000.0);
    }

    #[test]
    fn from_mut_slice_lets_parallel_tasks_scatter() {
        let mut values = vec![0.0f64; 64];
        {
            let cells = AtomicF64::from_mut_slice(&mut values);
            (0..640).into_par_iter().for_each(|i| {
                cells[i % 64].fetch_add(1.0);
            });
        }
        assert!(values.iter().all(|&v| v == 10.0));
    }

    #[test]
    fn f32_concurrent_adds() {
        let a = AtomicF32::new(0.0);
        (0..1024).into_par_iter().for_each(|_| {
            a.fetch_add(0.25);
        });
        assert_eq!(a.load(), 256.0);
    }
}
