#![warn(missing_docs)]

//! # tsg-runtime — parallel runtime substrate for the TileSpGEMM reproduction
//!
//! The TileSpGEMM paper (PPoPP '22) evaluates GPU kernels: one warp per sparse
//! tile, scratchpad-resident accumulators, `cudaMalloc` cost accounting, and a
//! two-GPU scalability study (RTX 3060 vs RTX 3090). This crate provides the
//! CPU-side stand-ins for all of those concerns so that the algorithm crates
//! can be written against a uniform interface:
//!
//! * [`device`] — simulated device models: named thread-pool configurations
//!   with a memory budget, mirroring the paper's two test GPUs.
//! * [`tracker`] — a memory tracker recording current/peak "device" bytes and
//!   an allocation-time account, reproducing the paper's Figure 9 (peak space
//!   over time) and the "memory allocation" slice of Figures 10/14.
//! * [`timer`] — the per-step runtime breakdown record used by every SpGEMM
//!   implementation in this workspace.
//! * [`scan`] — serial and parallel exclusive prefix sums (the paper uses a
//!   prefix-sum scan to turn per-tile-row mask popcounts into row pointers).
//! * [`atomicf64`] — a CAS-loop atomic `f64`/`f32` add, the CPU analogue of
//!   CUDA `atomicAdd` used by the paper's numeric phase.
//! * [`split`] — safe splitting of one output buffer into disjoint mutable
//!   per-tile windows, the CPU analogue of warps writing disjoint global
//!   memory ranges.
//! * [`binning`] — row binning by work estimate, used by the row-row baseline
//!   methods (bhSPARSE's 38 bins, NSPARSE's two-round binning, spECK's
//!   lightweight analysis).
//! * `failpoint` (behind `--features failpoints`) — a deterministic fault
//!   injection registry for tests: named sites in the tracker, the engine's
//!   registry/queue, and the protocol front end that tests can arm to force
//!   OOM, eviction races, and truncated frames. Compiled out otherwise.
//! * [`observe`] — structured observability: the [`Recorder`] trait (spans
//!   nested under a job id, monotonic counters), a disabled-fast-path
//!   [`NullRecorder`], and a [`CollectingRecorder`] with lock-free sharded
//!   counters aggregated into a [`MetricsSnapshot`].
//! * [`arena`] — per-worker reusable [`Scratch`] arenas (the CPU analogue of
//!   the paper's shared-memory tile state) so the step-2/3 hot path runs
//!   allocation-free in steady state, with footprint accounting that feeds
//!   the tracker.

pub mod arena;
pub mod atomicf64;
pub mod binning;
pub mod device;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod observe;
pub mod scan;
pub mod split;
pub mod timer;
pub mod tracker;

pub use arena::{Scratch, ScratchGuard, ScratchPool};
pub use atomicf64::{AtomicF32, AtomicF64};
pub use binning::{bin_rows_by, Bins};
pub use device::{pool_for, run_on, Device};
pub use observe::{
    est_error_bucket, null_recorder, CollectingRecorder, Counter, MetricsSnapshot, NullRecorder,
    QueueGauge, Recorder, SpanId, SpanNode, WaitGauge,
};
pub use scan::{
    exclusive_scan_in_place, exclusive_scan_to, par_exclusive_scan_in_place, par_exclusive_scan_to,
};
pub use split::{split_mut_by_offsets, split_mut_uniform};
pub use timer::{time, Breakdown, Step};
pub use tracker::{MemTracker, TrackedBuf};
