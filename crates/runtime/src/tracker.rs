//! Device-memory tracking.
//!
//! Figure 9 of the paper plots, for each SpGEMM method, the *peak runtime
//! space cost* against completion time; Figures 10 and 14 attribute a
//! "CPU & GPU memory allocation" slice of the runtime breakdown. Both require
//! the algorithms to route their significant buffer allocations through a
//! common accounting layer, which this module provides.
//!
//! A [`MemTracker`] records:
//! * `current` — bytes currently attributed to the device,
//! * `peak` — the high-water mark of `current`,
//! * an optional *timeline* of `(elapsed, current)` points (Figure 9's x/y
//!   series),
//! * an *allocation time* account: wall time spent inside
//!   [`MemTracker::timed_alloc`] closures (the breakdown's allocation slice),
//! * a *budget*: exceeding it makes allocation attempts fail, emulating GPU
//!   out-of-memory, which is how the paper's "0.00" bars arise in Figure 7.
//!
//! Temporary buffers use [`TrackedBuf`], an owning wrapper that credits the
//! tracker on drop; long-lived outputs use [`MemTracker::on_alloc`] directly
//! and stay accounted until [`MemTracker::reset`].

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::observe::{Counter, Recorder};

/// Error returned when a tracked allocation would exceed the device budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes the failed allocation requested.
    pub requested: usize,
    /// Bytes already attributed when the request was made.
    pub in_use: usize,
    /// The configured budget.
    pub budget: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device memory budget exceeded: requested {} B with {} B in use (budget {} B)",
            self.requested, self.in_use, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// One sample of the Figure-9 memory timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Time since the tracker was created or last reset.
    pub at: Duration,
    /// Bytes attributed to the device at that moment.
    pub current_bytes: usize,
}

/// Thread-safe device-memory accountant.
#[derive(Debug)]
pub struct MemTracker {
    current: AtomicUsize,
    peak: AtomicUsize,
    alloc_nanos: AtomicU64,
    budget: AtomicUsize,
    epoch: Mutex<Instant>,
    timeline: Mutex<Vec<TimelinePoint>>,
    record_timeline: bool,
    recorder: Mutex<Option<Arc<dyn Recorder>>>,
}

impl Default for MemTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTracker {
    /// A tracker with an unlimited budget and no timeline recording.
    pub fn new() -> Self {
        Self::with_budget(usize::MAX)
    }

    /// A tracker enforcing `budget` bytes, without timeline recording.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            alloc_nanos: AtomicU64::new(0),
            budget: AtomicUsize::new(budget),
            epoch: Mutex::new(Instant::now()),
            timeline: Mutex::new(Vec::new()),
            record_timeline: false,
            recorder: Mutex::new(None),
        }
    }

    /// A tracker that also records the Figure-9 timeline on every event.
    pub fn with_timeline(budget: usize) -> Self {
        Self {
            record_timeline: true,
            ..Self::with_budget(budget)
        }
    }

    /// Clears all counters and restarts the timeline epoch. The budget is
    /// preserved.
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
        self.alloc_nanos.store(0, Ordering::Relaxed);
        *self.epoch.lock() = Instant::now();
        self.timeline.lock().clear();
    }

    /// Replaces the budget (bytes).
    pub fn set_budget(&self, budget: usize) {
        self.budget.store(budget, Ordering::Relaxed);
    }

    /// Attaches a recorder; every subsequent successful [`Self::on_alloc`]
    /// reports [`Counter::BytesAlloc`] and every [`Self::on_free`] reports
    /// [`Counter::BytesFreed`]. Pass `None` to detach.
    ///
    /// Tracker events are per-buffer (a handful per multiply), not per-tile,
    /// so the mutex guarding the attachment is off any hot path.
    pub fn set_recorder(&self, recorder: Option<Arc<dyn Recorder>>) {
        *self.recorder.lock() = recorder.filter(|r| r.is_enabled());
    }

    fn report(&self, counter: Counter, bytes: usize) {
        if let Some(r) = self.recorder.lock().as_ref() {
            r.add(counter, bytes as u64);
        }
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Bytes currently attributed to the device.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of attributed bytes since the last reset.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Wall time spent inside [`Self::timed_alloc`] closures.
    pub fn alloc_time(&self) -> Duration {
        Duration::from_nanos(self.alloc_nanos.load(Ordering::Relaxed))
    }

    /// Attributes `bytes` to the device, failing if the budget would be
    /// exceeded.
    pub fn on_alloc(&self, bytes: usize) -> Result<(), BudgetExceeded> {
        // Failpoint `tracker.alloc`: behaves exactly like hitting the budget
        // — the request is refused before any accounting happens, so the
        // tracker stays balanced. Lets tests force OOM at a chosen
        // allocation (e.g. the step-3 output buffers) on any budget.
        #[cfg(feature = "failpoints")]
        if crate::failpoint::should_fail("tracker.alloc") {
            return Err(BudgetExceeded {
                requested: bytes,
                in_use: self.current_bytes(),
                budget: self.budget(),
            });
        }
        let budget = self.budget();
        let prev = self.current.fetch_add(bytes, Ordering::Relaxed);
        let now = prev.saturating_add(bytes);
        if now > budget {
            self.current.fetch_sub(bytes, Ordering::Relaxed);
            return Err(BudgetExceeded {
                requested: bytes,
                in_use: prev,
                budget,
            });
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        self.sample(now);
        self.report(Counter::BytesAlloc, bytes);
        Ok(())
    }

    /// Credits `bytes` back to the device.
    pub fn on_free(&self, bytes: usize) {
        let prev = self.current.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "memory tracker freed more than allocated");
        self.sample(prev.saturating_sub(bytes));
        self.report(Counter::BytesFreed, bytes);
    }

    fn sample(&self, current: usize) {
        if self.record_timeline {
            let at = self.epoch.lock().elapsed();
            self.timeline.lock().push(TimelinePoint {
                at,
                current_bytes: current,
            });
        }
    }

    /// A copy of the recorded timeline (empty unless created with
    /// [`Self::with_timeline`]).
    pub fn timeline(&self) -> Vec<TimelinePoint> {
        self.timeline.lock().clone()
    }

    /// Runs `f`, adding its wall time to the allocation-time account.
    ///
    /// Algorithms wrap their buffer constructions (`vec![0; n]`, …) in this so
    /// the breakdown figures can attribute allocation cost, mirroring the
    /// `cudaMalloc` slice the paper reports (≈20% of runtime on average,
    /// echoing Gelado & Garland's observation the paper cites).
    pub fn timed_alloc<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.alloc_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Allocates a zero-initialised tracked buffer of `len` elements.
    pub fn tracked_zeroed<T: Default + Clone>(
        &self,
        len: usize,
    ) -> Result<TrackedBuf<'_, T>, BudgetExceeded> {
        let bytes = len * std::mem::size_of::<T>();
        self.on_alloc(bytes)?;
        let data = self.timed_alloc(|| vec![T::default(); len]);
        Ok(TrackedBuf {
            data,
            bytes,
            tracker: self,
        })
    }

    /// Wraps an existing vector as a tracked buffer.
    pub fn track_vec<T>(&self, data: Vec<T>) -> Result<TrackedBuf<'_, T>, BudgetExceeded> {
        let bytes = data.capacity() * std::mem::size_of::<T>();
        self.on_alloc(bytes)?;
        Ok(TrackedBuf {
            data,
            bytes,
            tracker: self,
        })
    }
}

/// An owning buffer whose bytes are attributed to a [`MemTracker`] for its
/// lifetime. Dropping the buffer credits the tracker.
#[derive(Debug)]
pub struct TrackedBuf<'t, T> {
    data: Vec<T>,
    bytes: usize,
    tracker: &'t MemTracker,
}

impl<'t, T> TrackedBuf<'t, T> {
    /// Consumes the wrapper, credits the tracker, and returns the vector.
    ///
    /// Use this for buffers that become part of the (separately accounted)
    /// output matrix.
    pub fn into_inner(self) -> Vec<T> {
        // Drop impl handles the credit; move the data out first.
        let mut this = std::mem::ManuallyDrop::new(self);
        this.tracker.on_free(this.bytes);
        std::mem::take(&mut this.data)
    }

    /// Bytes attributed to the tracker by this buffer.
    pub fn tracked_bytes(&self) -> usize {
        self.bytes
    }
}

impl<T> std::ops::Deref for TrackedBuf<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.data
    }
}

impl<T> std::ops::DerefMut for TrackedBuf<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

impl<T> Drop for TrackedBuf<'_, T> {
    fn drop(&mut self) {
        self.tracker.on_free(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = MemTracker::new();
        t.on_alloc(100).unwrap();
        t.on_alloc(50).unwrap();
        t.on_free(120);
        t.on_alloc(10).unwrap();
        assert_eq!(t.current_bytes(), 40);
        assert_eq!(t.peak_bytes(), 150);
    }

    #[test]
    fn budget_is_enforced_and_rolls_back() {
        let t = MemTracker::with_budget(128);
        t.on_alloc(100).unwrap();
        let err = t.on_alloc(64).unwrap_err();
        assert_eq!(err.requested, 64);
        assert_eq!(err.in_use, 100);
        assert_eq!(err.budget, 128);
        // Failed allocation must not leak into the accounting.
        assert_eq!(t.current_bytes(), 100);
        t.on_alloc(28).unwrap();
        assert_eq!(t.current_bytes(), 128);
    }

    #[test]
    fn tracked_buf_frees_on_drop() {
        let t = MemTracker::new();
        {
            let buf = t.tracked_zeroed::<u64>(16).unwrap();
            assert_eq!(buf.tracked_bytes(), 128);
            assert_eq!(t.current_bytes(), 128);
        }
        assert_eq!(t.current_bytes(), 0);
        assert_eq!(t.peak_bytes(), 128);
    }

    #[test]
    fn tracked_buf_into_inner_credits_tracker() {
        let t = MemTracker::new();
        let buf = t.track_vec(vec![1u8, 2, 3]).unwrap();
        let v = buf.into_inner();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn timeline_records_every_event() {
        let t = MemTracker::with_timeline(usize::MAX);
        t.on_alloc(10).unwrap();
        t.on_alloc(20).unwrap();
        t.on_free(30);
        let tl = t.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].current_bytes, 10);
        assert_eq!(tl[1].current_bytes, 30);
        assert_eq!(tl[2].current_bytes, 0);
        assert!(tl.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn reset_clears_counters_but_keeps_budget() {
        let t = MemTracker::with_budget(1000);
        t.on_alloc(500).unwrap();
        t.reset();
        assert_eq!(t.current_bytes(), 0);
        assert_eq!(t.peak_bytes(), 0);
        assert_eq!(t.budget(), 1000);
    }

    #[test]
    fn timed_alloc_accumulates() {
        let t = MemTracker::new();
        let v = t.timed_alloc(|| vec![0u8; 1 << 16]);
        assert_eq!(v.len(), 1 << 16);
        // The measured duration is nonzero at nanosecond resolution in
        // practice, but all we require is monotonic accumulation.
        let first = t.alloc_time();
        t.timed_alloc(|| std::thread::sleep(Duration::from_millis(2)));
        assert!(t.alloc_time() >= first + Duration::from_millis(2));
    }

    #[test]
    fn attached_recorder_sees_alloc_and_free_bytes() {
        use crate::observe::CollectingRecorder;
        let r = Arc::new(CollectingRecorder::new());
        let t = MemTracker::with_budget(128);
        t.set_recorder(Some(r.clone()));
        t.on_alloc(100).unwrap();
        // Rejected allocations report nothing.
        t.on_alloc(64).unwrap_err();
        t.on_free(40);
        let snap = r.snapshot();
        assert_eq!(snap.get(Counter::BytesAlloc), 100);
        assert_eq!(snap.get(Counter::BytesFreed), 40);
        // The counters reconcile with the tracker's own accounting.
        assert_eq!(
            (snap.get(Counter::BytesAlloc) - snap.get(Counter::BytesFreed)) as usize,
            t.current_bytes()
        );
        // Detached trackers stop reporting.
        t.set_recorder(None);
        t.on_free(60);
        assert_eq!(r.snapshot().get(Counter::BytesFreed), 40);
    }

    #[test]
    fn concurrent_accounting_is_consistent() {
        use rayon::prelude::*;
        let t = MemTracker::new();
        (0..1000usize).into_par_iter().for_each(|_| {
            t.on_alloc(8).unwrap();
            t.on_free(8);
        });
        assert_eq!(t.current_bytes(), 0);
        assert!(t.peak_bytes() >= 8);
    }
}
