//! Per-worker reusable scratch arenas for the step-2/step-3 hot path.
//!
//! On the GPU the paper's kernels keep all per-tile working state — matched
//! pair lists, 16 row bitmasks, a 256-slot accumulator — in registers and
//! shared memory; nothing is allocated per tile. The CPU port originally
//! re-created that state with fresh `Vec`s inside each parallel task, which
//! shows up as ~75 allocation sites on the hot path. A [`ScratchPool`] is
//! the CPU analogue of shared memory: each worker checks out a [`Scratch`]
//! once per task chunk, the buffers grow to their high-water size during the
//! first few tiles, and from then on steady-state execution performs zero
//! heap allocations.
//!
//! Accounting: [`ScratchPool::reserve`] pre-grows the pool and charges the
//! expected footprint to a [`MemTracker`] (with an `arena.grow` failpoint so
//! tests can force the charge to fail); [`ScratchPool::bytes`] and
//! [`ScratchPool::high_water_bytes`] let the caller reconcile any growth
//! beyond the reservation. The pool never frees scratch between multiplies —
//! reuse is the whole point — so the owner credits the tracker when the
//! operation that charged it completes.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::tracker::{BudgetExceeded, MemTracker};

/// Number of scalar slots in a dense per-tile accumulator (16 × 16).
pub const DENSE_SLOTS: usize = 256;
/// Rows per tile, and therefore mask words per tile.
pub const MASK_ROWS: usize = 16;

/// Reusable per-worker working state for one in-flight tile task.
///
/// The vectors keep their capacity across [`Scratch::reset`], so a warmed
/// scratch serves any later tile without touching the allocator. The
/// fixed-size arrays mirror the paper's shared-memory tile state.
#[derive(Debug)]
pub struct Scratch {
    /// Matched `(pos_a, pos_b)` list-position pairs (step 2 intersection).
    pub pos_pairs: Vec<(u32, u32)>,
    /// Matched `(tile_a, tile_b)` flat tile-id pairs (step 3 input).
    pub id_pairs: Vec<(u32, u32)>,
    /// Packed `u16` words (pair-buffer encoding scratch).
    pub words: Vec<u16>,
    /// General index scratch (ranks, offsets).
    pub idx: Vec<u32>,
    /// Per-row column bitmasks of the tile under construction.
    pub masks: [u16; MASK_ROWS],
    /// Dense accumulator slots (values are re-zeroed by the numeric kernel).
    pub dense: [f64; DENSE_SLOTS],
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            pos_pairs: Vec::new(),
            id_pairs: Vec::new(),
            words: Vec::new(),
            idx: Vec::new(),
            masks: [0; MASK_ROWS],
            dense: [0.0; DENSE_SLOTS],
        }
    }
}

impl Scratch {
    /// Clears lengths (not capacities) and zeroes the masks.
    pub fn reset(&mut self) {
        self.pos_pairs.clear();
        self.id_pairs.clear();
        self.words.clear();
        self.idx.clear();
        self.masks = [0; MASK_ROWS];
    }

    /// Heap bytes held by the growable buffers (the fixed arrays are inline).
    pub fn heap_bytes(&self) -> usize {
        self.pos_pairs.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.id_pairs.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.words.capacity() * std::mem::size_of::<u16>()
            + self.idx.capacity() * std::mem::size_of::<u32>()
    }

    /// Bytes one `Scratch` occupies regardless of list growth: the struct
    /// itself (inline masks + dense accumulator) boxed on the heap.
    pub const BASE_BYTES: usize = std::mem::size_of::<Scratch>();
}

/// A pool of [`Scratch`] arenas shared by the workers of one (or many
/// successive) multiplies.
///
/// Workers call [`ScratchPool::checkout`] at task-chunk start; the returned
/// guard hands the scratch back on drop. The pool tracks its total footprint
/// (`BASE_BYTES` + heap bytes per arena) and a high-water mark so callers
/// can fold scratch memory into `peak_bytes` reporting.
#[derive(Debug, Default)]
pub struct ScratchPool {
    // Boxed so checkout/checkin move a pointer, not the ~2 KB struct, and
    // the guard hands out a stable address while the free list reallocates.
    #[allow(clippy::vec_box)]
    free: Mutex<Vec<Box<Scratch>>>,
    /// Arenas ever created (free + checked out).
    created: AtomicUsize,
    /// Current total footprint of all arenas, updated at checkout/checkin
    /// boundaries (a checked-out arena's growth is folded in at checkin).
    bytes: AtomicUsize,
    /// High-water mark of [`Self::bytes`].
    high_water: AtomicUsize,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arenas ever created by this pool.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Current total footprint (struct + heap bytes of every arena), as of
    /// the last checkin of each arena.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::bytes`] over the pool's lifetime.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    fn add_bytes(&self, delta: usize) {
        let now = self.bytes.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Ensures at least `count` arenas exist, charging the pool's *total*
    /// current footprint to `tracker` and returning the charged byte count
    /// (the caller credits it back when the tracked operation completes).
    ///
    /// Growth is fallible: the `arena.grow` failpoint (and the tracker's own
    /// budget) can refuse it, in which case nothing is charged and the pool
    /// keeps whatever arenas it already had — warmed scratch is never torn
    /// down by a failed reservation.
    pub fn reserve(&self, count: usize, tracker: &MemTracker) -> Result<usize, BudgetExceeded> {
        let missing = count.saturating_sub(self.created());
        if missing > 0 {
            // Failpoint `arena.grow`: refuse pool growth before any arena is
            // built or charged, mirroring `tracker.alloc` semantics.
            #[cfg(feature = "failpoints")]
            if crate::failpoint::should_fail("arena.grow") {
                return Err(BudgetExceeded {
                    requested: missing * Scratch::BASE_BYTES,
                    in_use: tracker.current_bytes(),
                    budget: tracker.budget(),
                });
            }
        }
        let charge = self.bytes() + missing * Scratch::BASE_BYTES;
        tracker.on_alloc(charge)?;
        if missing > 0 {
            let mut free = self.free.lock();
            for _ in 0..missing {
                free.push(Box::default());
            }
            self.created.fetch_add(missing, Ordering::Relaxed);
            self.add_bytes(missing * Scratch::BASE_BYTES);
        }
        Ok(charge)
    }

    /// Checks out an arena (creating one if the pool is empty), reset and
    /// ready for use. The guard returns it on drop and folds any buffer
    /// growth into the pool's footprint accounting.
    pub fn checkout(&self) -> ScratchGuard<'_> {
        let scratch = self.free.lock().pop().unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            self.add_bytes(Scratch::BASE_BYTES);
            Box::default()
        });
        let mut guard = ScratchGuard {
            bytes_at_checkout: scratch.heap_bytes(),
            scratch: Some(scratch),
            pool: self,
        };
        guard.reset();
        guard
    }
}

/// RAII checkout of a [`Scratch`] from a [`ScratchPool`].
#[derive(Debug)]
pub struct ScratchGuard<'p> {
    scratch: Option<Box<Scratch>>,
    bytes_at_checkout: usize,
    pool: &'p ScratchPool,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        let scratch = self.scratch.take().expect("scratch present until drop");
        let grown = scratch.heap_bytes().saturating_sub(self.bytes_at_checkout);
        if grown > 0 {
            self.pool.add_bytes(grown);
        }
        self.pool.free.lock().push(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_warmed_arenas() {
        let pool = ScratchPool::new();
        {
            let mut s = pool.checkout();
            s.pos_pairs.reserve(1024);
            s.masks[3] = 0xffff;
        }
        assert_eq!(pool.created(), 1);
        let s = pool.checkout();
        // Same arena back: capacity survives, state is reset.
        assert!(s.pos_pairs.capacity() >= 1024);
        assert!(s.pos_pairs.is_empty());
        assert_eq!(s.masks, [0; MASK_ROWS]);
        drop(s);
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn footprint_tracks_growth_and_high_water() {
        let pool = ScratchPool::new();
        assert_eq!(pool.bytes(), 0);
        {
            let mut s = pool.checkout();
            s.idx.reserve_exact(256);
        }
        let after_growth = pool.bytes();
        assert!(after_growth >= Scratch::BASE_BYTES + 256 * 4);
        assert_eq!(pool.high_water_bytes(), after_growth);
        // A second checkout of the same arena adds nothing.
        drop(pool.checkout());
        assert_eq!(pool.bytes(), after_growth);
    }

    #[test]
    fn reserve_creates_and_charges() {
        let tracker = MemTracker::new();
        let pool = ScratchPool::new();
        let charged = pool.reserve(3, &tracker).unwrap();
        assert_eq!(pool.created(), 3);
        assert_eq!(charged, 3 * Scratch::BASE_BYTES);
        assert_eq!(tracker.current_bytes(), charged);
        // A later reserve charges the (possibly grown) total again.
        tracker.on_free(charged);
        {
            let mut s = pool.checkout();
            s.words.reserve_exact(100);
        }
        let charged2 = pool.reserve(3, &tracker).unwrap();
        assert_eq!(pool.created(), 3);
        assert_eq!(charged2, pool.bytes());
        assert!(charged2 > charged);
        tracker.on_free(charged2);
        assert_eq!(tracker.current_bytes(), 0);
    }

    #[test]
    fn reserve_over_budget_fails_cleanly() {
        let tracker = MemTracker::with_budget(1);
        let pool = ScratchPool::new();
        let err = pool.reserve(2, &tracker).unwrap_err();
        assert_eq!(err.budget, 1);
        assert_eq!(tracker.current_bytes(), 0);
        assert_eq!(pool.created(), 0);
        assert_eq!(pool.bytes(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_arenas() {
        use rayon::prelude::*;
        let pool = ScratchPool::new();
        (0..64usize).into_par_iter().for_each(|i| {
            let mut s = pool.checkout();
            s.idx.push(i as u32);
            assert_eq!(s.idx.len(), 1);
        });
        assert!(pool.created() >= 1);
        // All checked back in.
        assert_eq!(pool.free.lock().len(), pool.created());
    }
}
