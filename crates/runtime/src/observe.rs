//! Structured observability: spans, counters, and recorders.
//!
//! The paper's whole evaluation is measurement — per-step breakdowns
//! (Figure 10), peak device memory (Figures 7/9), accumulator and
//! intersection ablations — and a serving stack needs the same numbers *per
//! job, while running*. This module is the zero-dependency substrate both
//! layers share:
//!
//! * [`Recorder`] — the trait the pipeline reports into: named **spans**
//!   nested under a job id (enter/exit) and monotonic **counters**
//!   ([`Counter`]).
//! * [`NullRecorder`] — the disabled fast path. [`Recorder::is_enabled`]
//!   returns `false`, so instrumented hot loops skip their bookkeeping
//!   entirely; the measured overhead against the uninstrumented seed
//!   pipeline is within noise (see `DESIGN.md` §9 for the methodology and
//!   the committed numbers in `BENCH_pipeline.json`).
//! * [`CollectingRecorder`] — keeps everything: a lock-free sharded counter
//!   array aggregated across rayon workers into a [`MetricsSnapshot`], and a
//!   per-job span tree ([`SpanNode`]) for tests, benches, and the engine's
//!   `profile`/`wait` protocol responses.
//!
//! Counter flushes from worker threads land in cache-line-padded shards
//! indexed by a per-thread slot, so parallel tile tasks do not contend on a
//! single atomic. Spans are phase-granular (a handful per multiply), so a
//! mutex-guarded tree is fine there.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// The monotonic counters the pipeline and engine report.
///
/// Each variant is one slot in a [`MetricsSnapshot`]; the meaning (and the
/// ground truth each is tested against) is documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[repr(usize)]
pub enum Counter {
    /// Output tiles visited by the per-tile symbolic phase (step 2). Equals
    /// the step-1 structure's nnz — one visit per predicted output tile.
    TilesVisited,
    /// Matched `(A_ik, B_kj)` tile pairs found by the set intersection,
    /// summed over all output tiles.
    MatchedPairs,
    /// Set-intersection lookups issued: for binary search, one per element
    /// of the shorter tile list; for merge, one per pointer advance bound
    /// (`|a| + |b|`). A cheap, deterministic proxy for intersection work.
    IntersectionProbes,
    /// Step-3 tiles accumulated through the rank-based sparse accumulator.
    SparseAccPicks,
    /// Step-3 tiles accumulated through the dense 256-slot accumulator.
    DenseAccPicks,
    /// Bytes attributed to the device through a [`crate::MemTracker`] with
    /// this recorder attached.
    BytesAlloc,
    /// Bytes credited back to the device through an attached tracker.
    BytesFreed,
    /// Tiles dispatched through `Scheduling::Binned`'s work-estimate bins
    /// (steps 2 and 3 each count their own dispatch).
    BinnedTiles,
    /// Non-empty work-estimate buckets observed by binned dispatches.
    BinsOccupied,
    /// Output tiles whose intersection resolved to the binary-search kernel
    /// (the chosen-kernel histogram of `IntersectionKind::Adaptive`; fixed
    /// kinds also report here so the three picks always sum to the visited
    /// tiles).
    IsectBinaryPicks,
    /// Output tiles whose intersection resolved to the merge kernel.
    IsectMergePicks,
    /// Output tiles whose intersection resolved to the bitmap kernel.
    IsectBitmapPicks,
    /// Completed jobs whose measured peak was ≤ ¼ of the admission estimate
    /// (log₂(peak/est) ≤ −2: the estimator over-predicted by 4× or more).
    EstErrLeQuarter,
    /// Completed jobs with log₂(peak/est) = −1 (estimate 2–4× the peak).
    EstErrHalf,
    /// Completed jobs whose estimate landed within 2× of the measured peak
    /// (log₂(peak/est) = 0) — the estimator's "got it right" bucket.
    EstErrWithin2x,
    /// Completed jobs with log₂(peak/est) = +1 (peak 2–4× the estimate).
    EstErrDouble,
    /// Completed jobs whose measured peak was ≥ 4× the admission estimate
    /// (log₂(peak/est) ≥ +2: the under-prediction band admission control
    /// must band-limit, per the OCEAN estimation plan).
    EstErrGeQuad,
    /// Serving sessions opened (`open_session`).
    SessionsOpened,
    /// Jobs accepted into a serving-session queue (single or batched).
    ServeEnqueued,
    /// Backpressure hints issued to clients because a session queue stayed
    /// full past its hold window (the replacement for queue-full shedding).
    ServeBackpressureHints,
    /// Jobs parked by deferred admission (estimate exceeded the *free*
    /// device budget at dispatch time) before being re-evaluated.
    ServeDeferred,
    /// Jobs that arrived as members of a `multiply_many` batch.
    ServeBatchJobs,
    /// Multiply links executed inside `Chain`/`Power` jobs (a chain of `n`
    /// operands reports `n - 1` links; plain multiplies report none).
    ChainLinks,
    /// Masked-multiply jobs completed (`MaskedMultiply`, or a chain whose
    /// final link carried a mask).
    MaskedJobs,
    /// Completed jobs whose admission estimate came from the sampled
    /// symbolic pass (an `est_sample_*` band was attached).
    EstSampleJobs,
    /// Tile rows measured by sampled estimates, summed over completed jobs
    /// — `est_sample_rows / est_sample_jobs` is the mean sample size.
    EstSampleRows,
    /// Sampled estimates that measured the whole population (sample rate
    /// reached 100% of tile rows; the band had zero width).
    EstSampleExact,
    /// Multiply-shaped jobs whose estimate fell back to the constant
    /// compression model: sampling disabled, the `engine.estimate_sample`
    /// failpoint, or operands with no materialized structure to sample.
    EstSampleFallback,
    /// Step-3 tiles run through the SIMD sparse kernel (lane-built rank
    /// tables). A subset of `sparse_acc_picks`; zero on the scalar path.
    SimdSparsePicks,
    /// Step-3 tiles run through the SIMD dense micro-kernel because the
    /// paper's `tnnz` rule picked the dense accumulator. A subset of
    /// `dense_acc_picks`; zero on the scalar path.
    SimdDensePicks,
    /// Step-3 tiles promoted to the dense 16×16 micro-kernel by the
    /// dense-tile fast path (below `tnnz`) or pinned by `ForceDenseTile`.
    /// The legacy `sparse_acc_picks`/`dense_acc_picks` counters keep
    /// recording the paper's threshold rule for these tiles, so this
    /// overlays (rather than partitions) those counts.
    DenseTilePicks,
}

/// Number of counter slots. Kept in sync with [`Counter`]; new counters are
/// appended (the enum is `#[non_exhaustive]`).
pub const COUNTER_COUNT: usize = 31;

/// Every counter, in slot order, with its snake_case wire name.
pub const COUNTERS: [(Counter, &str); COUNTER_COUNT] = [
    (Counter::TilesVisited, "tiles_visited"),
    (Counter::MatchedPairs, "matched_pairs"),
    (Counter::IntersectionProbes, "intersection_probes"),
    (Counter::SparseAccPicks, "sparse_acc_picks"),
    (Counter::DenseAccPicks, "dense_acc_picks"),
    (Counter::BytesAlloc, "bytes_alloc"),
    (Counter::BytesFreed, "bytes_freed"),
    (Counter::BinnedTiles, "binned_tiles"),
    (Counter::BinsOccupied, "bins_occupied"),
    (Counter::IsectBinaryPicks, "isect_binary_picks"),
    (Counter::IsectMergePicks, "isect_merge_picks"),
    (Counter::IsectBitmapPicks, "isect_bitmap_picks"),
    (Counter::EstErrLeQuarter, "est_err_le_quarter"),
    (Counter::EstErrHalf, "est_err_half"),
    (Counter::EstErrWithin2x, "est_err_within_2x"),
    (Counter::EstErrDouble, "est_err_double"),
    (Counter::EstErrGeQuad, "est_err_ge_quad"),
    (Counter::SessionsOpened, "sessions_opened"),
    (Counter::ServeEnqueued, "serve_enqueued"),
    (Counter::ServeBackpressureHints, "serve_backpressure_hints"),
    (Counter::ServeDeferred, "serve_deferred"),
    (Counter::ServeBatchJobs, "serve_batch_jobs"),
    (Counter::ChainLinks, "chain_links"),
    (Counter::MaskedJobs, "masked_jobs"),
    (Counter::EstSampleJobs, "est_sample_jobs"),
    (Counter::EstSampleRows, "est_sample_rows"),
    (Counter::EstSampleExact, "est_sample_exact"),
    (Counter::EstSampleFallback, "est_sample_fallback"),
    (Counter::SimdSparsePicks, "simd_sparse_picks"),
    (Counter::SimdDensePicks, "simd_dense_picks"),
    (Counter::DenseTilePicks, "dense_tile_picks"),
];

/// The five estimator-error buckets in ascending log₂(peak/est) order, so a
/// report can print the histogram without naming each variant.
pub const EST_ERR_BUCKETS: [Counter; 5] = [
    Counter::EstErrLeQuarter,
    Counter::EstErrHalf,
    Counter::EstErrWithin2x,
    Counter::EstErrDouble,
    Counter::EstErrGeQuad,
];

/// Buckets a completed job's estimator error: `log₂(peak/est)` rounded to
/// the nearest integer and clamped to `[-2, +2]`, mapped onto the five
/// `est_err_*` counters. A zero estimate or peak lands in the saturating end
/// buckets (`peak == 0` → most over-predicted, `est == 0` → most
/// under-predicted), so every completed job falls in exactly one bucket.
pub fn est_error_bucket(est_bytes: usize, peak_bytes: usize) -> Counter {
    if peak_bytes == 0 {
        return Counter::EstErrLeQuarter;
    }
    if est_bytes == 0 {
        return Counter::EstErrGeQuad;
    }
    let log2 = (peak_bytes as f64 / est_bytes as f64).log2().round();
    match log2 as i64 {
        i64::MIN..=-2 => Counter::EstErrLeQuarter,
        -1 => Counter::EstErrHalf,
        0 => Counter::EstErrWithin2x,
        1 => Counter::EstErrDouble,
        _ => Counter::EstErrGeQuad,
    }
}

impl Counter {
    /// The counter's slot index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The counter's stable snake_case name (used on the JSON wire).
    pub fn name(self) -> &'static str {
        COUNTERS[self.index()].1
    }
}

/// An aggregated, point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals, indexed by [`Counter::index`].
    pub totals: [u64; COUNTER_COUNT],
}

impl MetricsSnapshot {
    /// The total for one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.totals[counter.index()]
    }

    /// Iterates `(counter, name, total)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, &'static str, u64)> + '_ {
        COUNTERS
            .iter()
            .map(move |&(c, name)| (c, name, self.totals[c.index()]))
    }

    /// Difference `self - earlier`, saturating at zero per slot. Used to
    /// attribute a window (e.g. one job) out of cumulative totals.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut totals = [0u64; COUNTER_COUNT];
        for (slot, t) in totals.iter_mut().enumerate() {
            *t = self.totals[slot].saturating_sub(earlier.totals[slot]);
        }
        MetricsSnapshot { totals }
    }
}

/// A queue-depth gauge: current depth plus its high-water mark. Unlike the
/// monotonic [`Counter`]s this goes up *and* down, so it lives outside the
/// [`Recorder`] snapshot; the serving layer keeps one per session and one
/// global, and reports both through the `stats` verb.
#[derive(Debug, Default)]
pub struct QueueGauge {
    depth: AtomicU64,
    high_water: AtomicU64,
}

impl QueueGauge {
    /// A gauge at depth zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` entries arriving; returns the new depth.
    pub fn add(&self, n: u64) -> u64 {
        let depth = self.depth.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        depth
    }

    /// Records `n` entries leaving (saturating at zero).
    pub fn sub(&self, n: u64) {
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .depth
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current depth.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// A wait-time gauge: accumulated wait and sample count, so a stats report
/// can show the mean queue wait of a session without keeping per-job state.
#[derive(Debug, Default)]
pub struct WaitGauge {
    total_micros: AtomicU64,
    samples: AtomicU64,
}

impl WaitGauge {
    /// A gauge with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one wait.
    pub fn record(&self, wait: Duration) {
        self.total_micros
            .fetch_add(wait.as_micros() as u64, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded wait.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed))
    }

    /// Number of recorded waits.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Mean wait over the recorded samples (zero when empty).
    pub fn mean(&self) -> Duration {
        self.total_micros
            .load(Ordering::Relaxed)
            .checked_div(self.samples())
            .map_or(Duration::ZERO, Duration::from_micros)
    }
}

/// Identifier of an open span, returned by [`Recorder::span_enter`] and
/// passed back to [`Recorder::span_exit`].
///
/// `SpanId::NULL` marks "no span" (the [`NullRecorder`] path); exits with it
/// are no-ops everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId {
    /// The job the span belongs to.
    pub job: u64,
    /// Index of the span within the job's tree; `u32::MAX` means null.
    pub idx: u32,
}

impl SpanId {
    /// The "no span" sentinel.
    pub const NULL: SpanId = SpanId {
        job: 0,
        idx: u32::MAX,
    };

    /// Whether this is the null sentinel.
    pub fn is_null(self) -> bool {
        self.idx == u32::MAX
    }
}

/// The sink the pipeline and engine report observations into.
///
/// Implementations must be cheap when disabled: callers gate per-tile
/// bookkeeping on [`Recorder::is_enabled`], but still issue the handful of
/// phase-level span calls unconditionally, so those must be O(1) no-ops on a
/// disabled recorder.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether observations are being kept. Hot loops skip their local
    /// bookkeeping when this is `false`.
    fn is_enabled(&self) -> bool;

    /// Opens a named span under `job`, nested inside the job's currently
    /// open span (if any).
    fn span_enter(&self, job: u64, name: &'static str) -> SpanId;

    /// Closes a span opened by [`Recorder::span_enter`], recording its wall
    /// time. Must accept [`SpanId::NULL`] as a no-op.
    fn span_exit(&self, span: SpanId);

    /// Adds `n` to a counter.
    fn add(&self, counter: Counter, n: u64);

    /// Current aggregated counter totals.
    fn snapshot(&self) -> MetricsSnapshot;
}

/// The compiled-out fast path: keeps nothing, answers `false` to
/// [`Recorder::is_enabled`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn span_enter(&self, _job: u64, _name: &'static str) -> SpanId {
        SpanId::NULL
    }

    fn span_exit(&self, _span: SpanId) {}

    fn add(&self, _counter: Counter, _n: u64) {}

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

/// A shared [`NullRecorder`], for call sites that need an `Arc<dyn Recorder>`
/// without allocating one each time.
pub fn null_recorder() -> Arc<dyn Recorder> {
    Arc::new(NullRecorder)
}

/// Counter shards. 16 shards × cache-line padding keeps rayon workers from
/// bouncing one cache line; 16 ≥ the worker counts the simulated devices use.
const SHARDS: usize = 16;

/// One cache-line-padded shard of counter slots.
#[repr(align(64))]
#[derive(Debug)]
struct Shard {
    slots: [AtomicU64; COUNTER_COUNT],
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Returns this thread's shard index. Threads are dealt shards round-robin
/// on first use; the assignment is stable for the thread's lifetime.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// One recorded span: name, position in the job's tree, and wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's name (e.g. `"step2"`).
    pub name: &'static str,
    /// Wall time between enter and exit. Zero until the span exits.
    pub elapsed: Duration,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Finds the first direct child with `name`.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// Flat span record while a job's tree is being built.
#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    parent: Option<u32>,
    start: Instant,
    elapsed: Duration,
}

/// Span state of one job: flat nodes plus the currently-open stack.
#[derive(Debug, Default)]
struct JobSpans {
    nodes: Vec<OpenSpan>,
    stack: Vec<u32>,
}

impl JobSpans {
    /// Reassembles the flat records into trees of the root spans.
    fn to_trees(&self) -> Vec<SpanNode> {
        // Children attach in index order, which is open order.
        let mut trees: Vec<SpanNode> = Vec::new();
        // Map flat index -> path of child positions, built incrementally.
        let mut paths: Vec<Vec<usize>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let built = SpanNode {
                name: node.name,
                elapsed: node.elapsed,
                children: Vec::new(),
            };
            match node.parent {
                None => {
                    trees.push(built);
                    paths.push(vec![trees.len() - 1]);
                }
                Some(p) => {
                    let mut path = paths[p as usize].clone();
                    let slot = {
                        let parent = resolve_mut(&mut trees, &path);
                        parent.children.push(built);
                        parent.children.len() - 1
                    };
                    path.push(slot);
                    paths.push(path);
                }
            }
        }
        trees
    }
}

/// Walks `path` (root index, then child positions) to a mutable node.
fn resolve_mut<'a>(trees: &'a mut [SpanNode], path: &[usize]) -> &'a mut SpanNode {
    let mut node = &mut trees[path[0]];
    for &c in &path[1..] {
        node = &mut node.children[c];
    }
    node
}

/// A recorder that keeps everything: sharded counters plus per-job span
/// trees. Used by tests, the benches, and the engine's `--profile` mode.
#[derive(Debug)]
pub struct CollectingRecorder {
    shards: [Shard; SHARDS],
    spans: Mutex<Vec<(u64, JobSpans)>>,
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingRecorder {
    /// An empty collecting recorder.
    pub fn new() -> Self {
        CollectingRecorder {
            shards: std::array::from_fn(|_| Shard::default()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The recorded span trees of `job`, roots in open order. Empty if the
    /// job recorded no spans.
    pub fn span_tree(&self, job: u64) -> Vec<SpanNode> {
        self.spans
            .lock()
            .iter()
            .find(|(j, _)| *j == job)
            .map(|(_, s)| s.to_trees())
            .unwrap_or_default()
    }

    /// Job ids that have recorded spans, in first-seen order.
    pub fn jobs(&self) -> Vec<u64> {
        self.spans.lock().iter().map(|(j, _)| *j).collect()
    }

    /// Drops all recorded spans and zeroes the counters.
    pub fn reset(&self) {
        self.spans.lock().clear();
        for shard in &self.shards {
            for slot in &shard.slots {
                slot.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl Recorder for CollectingRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, job: u64, name: &'static str) -> SpanId {
        let mut spans = self.spans.lock();
        let entry = match spans.iter_mut().position(|(j, _)| *j == job) {
            Some(i) => &mut spans[i].1,
            None => {
                spans.push((job, JobSpans::default()));
                &mut spans.last_mut().expect("just pushed").1
            }
        };
        let idx = entry.nodes.len() as u32;
        entry.nodes.push(OpenSpan {
            name,
            parent: entry.stack.last().copied(),
            start: Instant::now(),
            elapsed: Duration::ZERO,
        });
        entry.stack.push(idx);
        SpanId { job, idx }
    }

    fn span_exit(&self, span: SpanId) {
        if span.is_null() {
            return;
        }
        let mut spans = self.spans.lock();
        if let Some((_, entry)) = spans.iter_mut().find(|(j, _)| *j == span.job) {
            if let Some(node) = entry.nodes.get_mut(span.idx as usize) {
                node.elapsed = node.start.elapsed();
            }
            // Pop the stack down to (and including) this span; exits arrive
            // in LIFO order from well-formed instrumentation, but tolerate
            // an out-of-order exit by unwinding past it.
            if let Some(pos) = entry.stack.iter().rposition(|&i| i == span.idx) {
                entry.stack.truncate(pos);
            }
        }
    }

    fn add(&self, counter: Counter, n: u64) {
        self.shards[shard_index()].slots[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let mut totals = [0u64; COUNTER_COUNT];
        for shard in &self.shards {
            for (slot, t) in totals.iter_mut().enumerate() {
                *t += shard.slots[slot].load(Ordering::Relaxed);
            }
        }
        MetricsSnapshot { totals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.is_enabled());
        let span = r.span_enter(1, "x");
        assert!(span.is_null());
        r.span_exit(span);
        r.add(Counter::TilesVisited, 10);
        assert_eq!(r.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counters_aggregate_across_threads() {
        use rayon::prelude::*;
        let r = CollectingRecorder::new();
        (0..1000usize).into_par_iter().for_each(|_| {
            r.add(Counter::MatchedPairs, 3);
            r.add(Counter::TilesVisited, 1);
        });
        let snap = r.snapshot();
        assert_eq!(snap.get(Counter::MatchedPairs), 3000);
        assert_eq!(snap.get(Counter::TilesVisited), 1000);
        assert_eq!(snap.get(Counter::DenseAccPicks), 0);
    }

    #[test]
    fn span_tree_nests_under_the_open_parent() {
        let r = CollectingRecorder::new();
        let job = r.span_enter(7, "job");
        let s1 = r.span_enter(7, "step1");
        r.span_exit(s1);
        let s2 = r.span_enter(7, "step2");
        let inner = r.span_enter(7, "scan");
        r.span_exit(inner);
        r.span_exit(s2);
        r.span_exit(job);

        let trees = r.span_tree(7);
        assert_eq!(trees.len(), 1);
        let root = &trees[0];
        assert_eq!(root.name, "job");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "step1");
        let step2 = root.child("step2").expect("step2 child");
        assert_eq!(step2.children[0].name, "scan");
        assert!(root.elapsed >= step2.elapsed);
        // Other jobs are independent.
        assert!(r.span_tree(8).is_empty());
        assert_eq!(r.jobs(), vec![7]);
    }

    #[test]
    fn snapshot_since_subtracts_per_slot() {
        let r = CollectingRecorder::new();
        r.add(Counter::BytesAlloc, 100);
        let before = r.snapshot();
        r.add(Counter::BytesAlloc, 50);
        r.add(Counter::BytesFreed, 150);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.get(Counter::BytesAlloc), 50);
        assert_eq!(delta.get(Counter::BytesFreed), 150);
    }

    #[test]
    fn counter_names_are_stable_and_in_slot_order() {
        for (i, (c, name)) in COUNTERS.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(c.name(), *name);
        }
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.iter().count(), COUNTER_COUNT);
    }

    #[test]
    fn est_error_buckets_cover_the_ratio_line() {
        // Exact powers of two land in their own buckets…
        assert_eq!(est_error_bucket(400, 100), Counter::EstErrLeQuarter);
        assert_eq!(est_error_bucket(200, 100), Counter::EstErrHalf);
        assert_eq!(est_error_bucket(100, 100), Counter::EstErrWithin2x);
        assert_eq!(est_error_bucket(100, 200), Counter::EstErrDouble);
        assert_eq!(est_error_bucket(100, 400), Counter::EstErrGeQuad);
        // …the tails saturate…
        assert_eq!(est_error_bucket(1 << 30, 1), Counter::EstErrLeQuarter);
        assert_eq!(est_error_bucket(1, 1 << 30), Counter::EstErrGeQuad);
        // …and degenerate inputs still land in exactly one bucket.
        assert_eq!(est_error_bucket(100, 0), Counter::EstErrLeQuarter);
        assert_eq!(est_error_bucket(0, 100), Counter::EstErrGeQuad);
        // The committed burst's worst row: est 4.5 MB vs peak 69 MB is the
        // ≥4× under-prediction band.
        assert_eq!(
            est_error_bucket(4_506_576, 69_326_916),
            Counter::EstErrGeQuad
        );
    }

    #[test]
    fn queue_gauge_tracks_depth_and_high_water() {
        let g = QueueGauge::new();
        assert_eq!(g.depth(), 0);
        assert_eq!(g.add(3), 3);
        assert_eq!(g.add(2), 5);
        g.sub(4);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.high_water(), 5);
        // Saturates instead of underflowing.
        g.sub(10);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.high_water(), 5);
    }

    #[test]
    fn wait_gauge_reports_the_mean() {
        let g = WaitGauge::new();
        assert_eq!(g.mean(), Duration::ZERO);
        g.record(Duration::from_millis(10));
        g.record(Duration::from_millis(30));
        assert_eq!(g.samples(), 2);
        assert_eq!(g.mean(), Duration::from_millis(20));
        assert_eq!(g.total(), Duration::from_millis(40));
    }

    #[test]
    fn reset_clears_spans_and_counters() {
        let r = CollectingRecorder::new();
        let s = r.span_enter(1, "job");
        r.span_exit(s);
        r.add(Counter::TilesVisited, 5);
        r.reset();
        assert!(r.span_tree(1).is_empty());
        assert_eq!(r.snapshot(), MetricsSnapshot::default());
    }
}
