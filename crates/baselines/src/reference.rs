//! Serial gold-reference SpGEMM.
//!
//! Gustavson's row-row algorithm (the paper's Algorithm 1) with a dense
//! sparse-accumulator and a touched-column list, executed serially. Simple
//! enough to be obviously correct; every parallel method in the workspace is
//! tested against it.

use tsg_matrix::{Csr, Scalar};

/// Computes `C = A·B` serially. Output rows are sorted; entries that cancel
/// to exact zero are kept (callers compare with
/// [`Csr::approx_eq_ignoring_zeros`] when that matters).
pub fn reference_spgemm<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    assert_eq!(a.ncols, b.nrows, "inner dimensions must agree");
    let mut spa = vec![T::ZERO; b.ncols];
    let mut occupied = vec![false; b.ncols];
    let mut touched: Vec<u32> = Vec::new();

    let mut rowptr = vec![0usize; a.nrows + 1];
    let mut colidx = Vec::new();
    let mut vals = Vec::new();

    for i in 0..a.nrows {
        let (acols, avals) = a.row(i);
        touched.clear();
        for (&j, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(j as usize);
            for (&k, &bv) in bcols.iter().zip(bvals) {
                if !occupied[k as usize] {
                    occupied[k as usize] = true;
                    touched.push(k);
                }
                spa[k as usize] += av * bv;
            }
        }
        touched.sort_unstable();
        for &k in &touched {
            colidx.push(k);
            vals.push(spa[k as usize]);
            spa[k as usize] = T::ZERO;
            occupied[k as usize] = false;
        }
        rowptr[i + 1] = colidx.len();
    }
    Csr {
        nrows: a.nrows,
        ncols: b.ncols,
        rowptr,
        colidx,
        vals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::{Coo, Dense};

    #[test]
    fn matches_dense_on_small_random() {
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 5 + (trial % 20);
            let mut coo_a = Coo::new(n, n);
            let mut coo_b = Coo::new(n, n);
            for _ in 0..n * 3 {
                coo_a.push(
                    (next() % n as u64) as u32,
                    (next() % n as u64) as u32,
                    ((next() % 7) as f64) - 3.0,
                );
                coo_b.push(
                    (next() % n as u64) as u32,
                    (next() % n as u64) as u32,
                    ((next() % 7) as f64) - 3.0,
                );
            }
            let a = coo_a.to_csr();
            let b = coo_b.to_csr();
            let got = reference_spgemm(&a, &b).drop_numeric_zeros();
            let want = Dense::from_csr(&a).matmul(&Dense::from_csr(&b)).to_csr();
            assert!(got.approx_eq(&want, 1e-12), "trial {trial}");
        }
    }

    #[test]
    fn figure1_style_counts() {
        // The paper's Figure 1 example: A with 8 nonzeros times B with 10
        // gives C with 11. We rebuild a 6x6 instance with those counts.
        let a = Coo::from_triplets(
            6,
            6,
            vec![
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 1, 1.0),
                (1, 2, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (4, 4, 1.0),
                (5, 5, 1.0),
            ],
        )
        .unwrap()
        .to_csr();
        let b = Coo::from_triplets(
            6,
            6,
            vec![
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 1, 1.0),
                (1, 2, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (3, 4, 1.0),
                (4, 4, 1.0),
                (4, 5, 1.0),
                (5, 5, 1.0),
            ],
        )
        .unwrap()
        .to_csr();
        assert_eq!(a.nnz(), 8);
        assert_eq!(b.nnz(), 10);
        let c = reference_spgemm(&a, &b);
        assert_eq!(c.nnz(), 11);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Coo::from_triplets(2, 3, vec![(0, 0, 2.0), (1, 2, 3.0)])
            .unwrap()
            .to_csr();
        let b = Coo::from_triplets(3, 4, vec![(0, 1, 5.0), (2, 3, 7.0)])
            .unwrap()
            .to_csr();
        let c = reference_spgemm(&a, &b);
        assert_eq!(c.nrows, 2);
        assert_eq!(c.ncols, 4);
        assert_eq!(c.get(0, 1), Some(10.0));
        assert_eq!(c.get(1, 3), Some(21.0));
        assert_eq!(c.nnz(), 2);
    }
}
