//! tSparse-like baseline: dense tile-wise multiplication (§4.7).
//!
//! Zachariadis et al.'s tSparse stores matrices as tiles (like this paper)
//! but multiplies matched tile pairs as *dense* 16×16 GEMMs on half-precision
//! tensor cores, converting each resulting dense tile back to sparse form.
//! Per DESIGN.md, `f32` micro-GEMMs stand in for the hh→s tensor-core MMA —
//! wasting sparsity in exactly the way the paper's comparison targets — and
//! TileSpGEMM is likewise run in `f32` for Figures 13/14.
//!
//! Two further behaviours the paper calls out are reproduced:
//! * the output buffer is *resized repeatedly* during execution ("the memory
//!   allocation of C needs to be resized repeatedly"), modelled as doubling
//!   re-allocations charged to the tracker and the alloc slice;
//! * per-tile temporary compaction buffers, giving the method its larger
//!   allocation share in Figure 14.

use crate::RunOutcome;
use rayon::prelude::*;
use tilespgemm_core::step1::tile_structure_spgemm;
use tilespgemm_core::step2::matched_pairs;
use tilespgemm_core::SpGemmError;
use tsg_matrix::{Csr, Scalar, TileMatrix, TILE_AREA, TILE_DIM};
use tsg_runtime::{Breakdown, MemTracker, Step};

/// Result of a tSparse-like multiplication (kept in `f32`, the comparison
/// precision of §4.7).
#[derive(Debug)]
pub struct TSparseOutcome {
    /// The product in sparse-tile form.
    pub c: TileMatrix<f32>,
    /// Runtime breakdown (Figure 14's left bars).
    pub breakdown: Breakdown,
    /// Peak tracked bytes.
    pub peak_bytes: usize,
}

/// One compacted output tile.
#[derive(Debug, Default, Clone)]
struct CompactTile {
    rows: Vec<u8>,
    cols: Vec<u8>,
    vals: Vec<f32>,
    masks: [u16; TILE_DIM],
    row_ptr: [u8; TILE_DIM],
}

/// Multiplies tiled `f32` operands the tSparse way.
pub fn multiply_tiled(
    a: &TileMatrix<f32>,
    b: &TileMatrix<f32>,
    tracker: &MemTracker,
) -> Result<TSparseOutcome, SpGemmError> {
    if a.ncols != b.nrows {
        return Err(SpGemmError::ShapeMismatch {
            a: (a.nrows, a.ncols),
            b: (b.nrows, b.ncols),
        });
    }
    let mut breakdown = Breakdown::default();
    let input_bytes = {
        use tsg_matrix::Footprint;
        a.bytes() + b.bytes()
    };
    tracker.on_alloc(input_bytes)?;

    // Step 1: tile-structure symbolic product (same as TileSpGEMM's).
    let c_pattern = breakdown.timed(Step::Step1, || {
        tile_structure_spgemm(
            a.tile_m,
            &a.tile_ptr,
            &a.tile_colidx,
            &b.tile_ptr,
            &b.tile_colidx,
            b.tile_n,
        )
    });
    let num_tiles = c_pattern.nnz();

    let (b_cols, c_rowidx) = breakdown.timed(Step::Step2, || {
        let b_cols = b.col_index();
        let mut c_rowidx = vec![0u32; num_tiles];
        for ti in 0..c_pattern.rows {
            c_rowidx[c_pattern.ptr[ti]..c_pattern.ptr[ti + 1]].fill(ti as u32);
        }
        (b_cols, c_rowidx)
    });

    // Step 3: dense tile products. Each matched pair is multiplied as a
    // full 16x16x16 dense GEMM (the tensor-core stand-in), ignoring operand
    // sparsity by construction.
    let mut tiles: Vec<CompactTile> = vec![CompactTile::default(); num_tiles];
    breakdown.timed(Step::Step3, || {
        tiles.par_iter_mut().enumerate().for_each_init(
            || (Vec::new(), Vec::new()),
            |(scratch, pairs), (t, out)| {
                let ti = c_rowidx[t] as usize;
                let tj = c_pattern.idx[t] as usize;
                matched_pairs(
                    a,
                    &b_cols,
                    ti,
                    tj,
                    tilespgemm_core::IntersectionKind::Merge,
                    scratch,
                    pairs,
                );
                let mut acc = [0.0f32; TILE_AREA];
                let mut da = [0.0f32; TILE_AREA];
                let mut db = [0.0f32; TILE_AREA];
                for &(a_id, b_id) in pairs.iter() {
                    // Densify both tiles, then run the full dense MMA.
                    densify(a.tile(a_id as usize), &mut da);
                    densify(b.tile(b_id as usize), &mut db);
                    for r in 0..TILE_DIM {
                        for k in 0..TILE_DIM {
                            let x = da[r * TILE_DIM + k];
                            // No sparsity shortcut: tensor cores process the
                            // whole fragment regardless of zeros.
                            for c in 0..TILE_DIM {
                                acc[r * TILE_DIM + c] += x * db[k * TILE_DIM + c];
                            }
                        }
                    }
                }
                // Convert the dense result back to sparse form.
                let mut nnz = 0usize;
                for r in 0..TILE_DIM {
                    out.row_ptr[r] = nnz as u8;
                    let mut mask = 0u16;
                    for c in 0..TILE_DIM {
                        let v = acc[r * TILE_DIM + c];
                        if v != 0.0 {
                            mask |= 1 << c;
                            out.rows.push(r as u8);
                            out.cols.push(c as u8);
                            out.vals.push(v);
                            nnz += 1;
                        }
                    }
                    out.masks[r] = mask;
                }
            },
        );
    });

    // Assemble, modelling tSparse's repeated output resizing: the value
    // buffer is grown by doubling as tiles are appended, each growth a
    // tracked realloc (Figure 14's outsized allocation slice).
    let total_nnz: usize = tiles.iter().map(|t| t.vals.len()).sum();
    let mut tile_nnz = vec![0usize; num_tiles + 1];
    for (t, tile) in tiles.iter().enumerate() {
        tile_nnz[t + 1] = tile_nnz[t] + tile.vals.len();
    }
    let (row_idx, col_idx, vals, masks, row_ptr) = breakdown.timed(Step::Alloc, || {
        let per_nnz = 2 + std::mem::size_of::<f32>();
        let mut grown = 4096usize;
        tracker.on_alloc(grown * per_nnz)?;
        let mut charged = grown * per_nnz;
        while grown < total_nnz {
            grown *= 2;
            tracker.on_alloc(grown * per_nnz)?;
            tracker.on_free(charged);
            charged = grown * per_nnz;
        }
        tracker.on_alloc(num_tiles * (TILE_DIM * 3 + 8) + 8)?;
        let mut row_idx = Vec::with_capacity(total_nnz);
        let mut col_idx = Vec::with_capacity(total_nnz);
        let mut vals = Vec::with_capacity(total_nnz);
        let mut masks = Vec::with_capacity(num_tiles * TILE_DIM);
        let mut row_ptr = Vec::with_capacity(num_tiles * TILE_DIM);
        for tile in &tiles {
            row_idx.extend_from_slice(&tile.rows);
            col_idx.extend_from_slice(&tile.cols);
            vals.extend_from_slice(&tile.vals);
            masks.extend_from_slice(&tile.masks);
            row_ptr.extend_from_slice(&tile.row_ptr);
        }
        Ok::<_, SpGemmError>((row_idx, col_idx, vals, masks, row_ptr))
    })?;

    let c = TileMatrix {
        nrows: a.nrows,
        ncols: b.ncols,
        tile_m: a.tile_m,
        tile_n: b.tile_n,
        tile_ptr: c_pattern.ptr,
        tile_colidx: c_pattern.idx,
        tile_nnz,
        row_ptr,
        row_idx,
        col_idx,
        vals,
        masks,
    };
    let peak_bytes = tracker.peak_bytes();
    tracker.on_free(input_bytes);
    Ok(TSparseOutcome {
        c,
        breakdown,
        peak_bytes,
    })
}

fn densify<T: Scalar>(tile: tsg_matrix::TileView<'_, T>, out: &mut [T; TILE_AREA]) {
    out.fill(T::ZERO);
    for (r, c, v) in tile.iter() {
        out[r as usize * TILE_DIM + c as usize] = v;
    }
}

/// CSR convenience wrapper used by tests and the shootout example.
pub fn multiply_csr_f32(
    a: &Csr<f32>,
    b: &Csr<f32>,
    tracker: &MemTracker,
) -> Result<RunOutcome, SpGemmError> {
    let ta = TileMatrix::from_csr(a);
    let tb = TileMatrix::from_csr(b);
    let out = multiply_tiled(&ta, &tb, tracker)?;
    Ok(RunOutcome {
        c: out.c.to_csr().cast::<f64>().drop_numeric_zeros(),
        breakdown: out.breakdown,
        peak_bytes: out.peak_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_spgemm;
    use tsg_matrix::Coo;

    fn random_f32(n: usize, per_row: usize, seed: u64) -> Csr<f32> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::<f32>::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(
                    r,
                    (next() % n as u64) as u32,
                    ((next() % 9) + 1) as f32 * 0.25,
                );
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference_in_f32() {
        for (n, k, s) in [(48usize, 4usize, 1u64), (100, 6, 2)] {
            let a = random_f32(n, k, s);
            let got = multiply_csr_f32(&a, &a, &MemTracker::new()).unwrap();
            let want = reference_spgemm(&a, &a).cast::<f64>().drop_numeric_zeros();
            assert!(
                got.c.approx_eq_ignoring_zeros(&want, 1e-4),
                "n={n} (f32 tolerance)"
            );
        }
    }

    #[test]
    fn agrees_with_tilespgemm_in_f32() {
        let a = random_f32(120, 5, 7);
        let ta = TileMatrix::from_csr(&a);
        let ts = multiply_tiled(&ta, &ta, &MemTracker::new()).unwrap();
        let tile = tilespgemm_core::multiply(
            &ta,
            &ta,
            &tilespgemm_core::Config::default(),
            &MemTracker::new(),
        )
        .unwrap();
        let x = ts.c.to_csr().drop_numeric_zeros();
        let y = tile.c.to_csr().drop_numeric_zeros();
        assert!(x.approx_eq_ignoring_zeros(&y, 1e-4));
    }

    #[test]
    fn output_tiles_validate() {
        let a = random_f32(200, 4, 9);
        let ta = TileMatrix::from_csr(&a);
        let out = multiply_tiled(&ta, &ta, &MemTracker::new()).unwrap();
        out.c.validate().unwrap();
    }

    #[test]
    fn realloc_churn_is_visible_in_timeline() {
        let a = random_f32(300, 8, 11);
        let ta = TileMatrix::from_csr(&a);
        let tracker = MemTracker::with_timeline(usize::MAX);
        multiply_tiled(&ta, &ta, &tracker).unwrap();
        let tl = tracker.timeline();
        let decreases = tl
            .windows(2)
            .filter(|w| w[1].current_bytes < w[0].current_bytes)
            .count();
        assert!(decreases >= 1, "expected output-resize churn");
    }
}
