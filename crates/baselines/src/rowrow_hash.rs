//! NSPARSE-like baseline: two-round binned hashing.
//!
//! Nagasaka et al.'s NSPARSE runs a *symbolic* round and a *numeric* round;
//! each round bins rows by a cheap work bound and processes each bin with an
//! open-addressing hash table sized to the bin's bound (shared-memory tables
//! for small bins, global tables above). Reproduced here:
//!
//! * rows binned by intermediate-product upper bound into power-of-two
//!   buckets ([`tsg_runtime::binning`]);
//! * symbolic round: per-row linear-probing hash *set* sized
//!   `next_pow2(2·ub)`;
//! * numeric round: per-row hash *map* (column → value) of the same sizing,
//!   extracted and sorted per row;
//! * memory model: NSPARSE "allocate\[s\] enough large space" (paper §5) —
//!   the tracked global table space is `Σ next_pow2(2·ub(i)) × 12` bytes
//!   over all rows whose bound exceeds the shared-memory capacity, which is
//!   what makes the real library exhaust device memory on the high-flop
//!   matrices of Figure 7.

use rayon::prelude::*;
use tilespgemm_core::SpGemmError;
use tsg_matrix::Csr;
use tsg_runtime::{
    bin_rows_by, exclusive_scan_to, split_mut_by_offsets, Breakdown, MemTracker, Step,
};

/// Hash-table slots that fit the modelled 48 kB shared memory (12-byte
/// entries): bounds at or below this stay "on chip" and are not charged to
/// the global-table allocation.
const SHARED_CAPACITY: usize = 4096;

/// Rows per batch when a bin spills to global tables.
const GLOBAL_BATCH_ROWS: usize = 2048;

const EMPTY: u32 = u32::MAX;

#[inline]
fn hash_slot(key: u32, mask: usize) -> usize {
    (key as usize).wrapping_mul(0x9E37_79B9) & mask
}

/// Runs the NSPARSE-like method.
pub fn multiply(
    a: &Csr<f64>,
    b: &Csr<f64>,
    tracker: &MemTracker,
) -> Result<crate::RunOutcome, SpGemmError> {
    assert_eq!(a.ncols, b.nrows, "inner dimensions must agree");
    let mut breakdown = Breakdown::default();

    let input_bytes = {
        use tsg_matrix::Footprint;
        a.bytes() + b.bytes()
    };
    tracker.on_alloc(input_bytes)?;

    // Round-1 analysis: upper bounds and binning (Step1 = setup analysis).
    let ubs = breakdown.timed(Step::Step1, || a.row_upper_bounds(b));
    let _bins = breakdown.timed(Step::Step1, || bin_rows_by(a.nrows, 24, |i| ubs[i]));

    // Global hash-table space for rows above shared capacity. NSPARSE
    // processes the global bins one at a time, in batches of rows; every
    // row of a batch holds a table sized to *its bin's* bound. The tracked
    // allocation is therefore the worst single bin batch — a few huge rows
    // (power-law graphs) cost little, while thousands of uniformly heavy
    // rows (dense-cluster matrices) exhaust device memory, matching which
    // matrices the real library fails on in Figure 7.
    let global_table_bytes = {
        let mut per_bin_rows: std::collections::BTreeMap<usize, usize> = Default::default();
        for &ub in &ubs {
            let size = (2 * ub).next_power_of_two();
            if size > SHARED_CAPACITY {
                *per_bin_rows.entry(size).or_insert(0) += 1;
            }
        }
        per_bin_rows
            .into_iter()
            .map(|(size, rows)| size * 12 * rows.min(GLOBAL_BATCH_ROWS))
            .max()
            .unwrap_or(0)
    };
    breakdown.timed(Step::Alloc, || tracker.on_alloc(global_table_bytes))?;

    // ---- Symbolic round: hash sets. ----
    let counts: Vec<usize> = breakdown.timed(Step::Step2, || {
        (0..a.nrows)
            .into_par_iter()
            .map_init(Vec::<u32>::new, |table, i| {
                let ub = ubs[i];
                if ub == 0 {
                    return 0;
                }
                let capacity = (2 * ub).next_power_of_two();
                table.clear();
                table.resize(capacity, EMPTY);
                let mask = capacity - 1;
                let mut count = 0usize;
                for &j in a.row(i).0 {
                    for &k in b.row(j as usize).0 {
                        let mut slot = hash_slot(k, mask);
                        loop {
                            let cur = table[slot];
                            if cur == k {
                                break;
                            }
                            if cur == EMPTY {
                                table[slot] = k;
                                count += 1;
                                break;
                            }
                            slot = (slot + 1) & mask;
                        }
                    }
                }
                count
            })
            .collect()
    });

    let mut rowptr = vec![0usize; a.nrows + 1];
    let nnz_c = exclusive_scan_to(&counts, &mut rowptr);
    let (mut colidx, mut vals) = breakdown.timed(Step::Alloc, || {
        tracker.on_alloc(nnz_c * 12 + (a.nrows + 1) * 8)?;
        Ok::<_, SpGemmError>((
            tracker.timed_alloc(|| vec![0u32; nnz_c]),
            tracker.timed_alloc(|| vec![0f64; nnz_c]),
        ))
    })?;

    // ---- Numeric round: hash maps, extract + sort per row. ----
    breakdown.timed(Step::Step3, || {
        let col_w = split_mut_by_offsets(&mut colidx, &rowptr);
        let val_w = split_mut_by_offsets(&mut vals, &rowptr);
        col_w.into_par_iter().zip(val_w).enumerate().for_each_init(
            || (Vec::<u32>::new(), Vec::<f64>::new()),
            |(keys, accum), (i, (col_w, val_w))| {
                if col_w.is_empty() {
                    return;
                }
                let capacity = (2 * ubs[i]).next_power_of_two();
                let mask = capacity - 1;
                keys.clear();
                keys.resize(capacity, EMPTY);
                accum.clear();
                accum.resize(capacity, 0.0);
                let (acols, avals) = a.row(i);
                for (&j, &av) in acols.iter().zip(avals) {
                    let (bcols, bvals) = b.row(j as usize);
                    for (&k, &bv) in bcols.iter().zip(bvals) {
                        let mut slot = hash_slot(k, mask);
                        loop {
                            let cur = keys[slot];
                            if cur == k {
                                accum[slot] += av * bv;
                                break;
                            }
                            if cur == EMPTY {
                                keys[slot] = k;
                                accum[slot] = av * bv;
                                break;
                            }
                            slot = (slot + 1) & mask;
                        }
                    }
                }
                // Extract occupied slots, sort by column.
                let mut out = 0usize;
                for slot in 0..capacity {
                    if keys[slot] != EMPTY {
                        col_w[out] = keys[slot];
                        val_w[out] = accum[slot];
                        out += 1;
                    }
                }
                debug_assert_eq!(out, col_w.len());
                // Co-sort the two windows by column index.
                let mut perm: Vec<u32> = (0..out as u32).collect();
                perm.sort_unstable_by_key(|&p| col_w[p as usize]);
                let sorted_cols: Vec<u32> = perm.iter().map(|&p| col_w[p as usize]).collect();
                let sorted_vals: Vec<f64> = perm.iter().map(|&p| val_w[p as usize]).collect();
                col_w.copy_from_slice(&sorted_cols);
                val_w.copy_from_slice(&sorted_vals);
            },
        );
    });

    let peak_bytes = tracker.peak_bytes();
    tracker.on_free(global_table_bytes + input_bytes);

    Ok(crate::RunOutcome {
        c: Csr {
            nrows: a.nrows,
            ncols: b.ncols,
            rowptr,
            colidx,
            vals,
        }
        .drop_numeric_zeros(),
        breakdown,
        peak_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_spgemm;
    use tsg_matrix::Coo;

    fn random(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(r, (next() % n as u64) as u32, ((next() % 5) + 1) as f64);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference() {
        for (n, k, s) in [(40usize, 4usize, 1u64), (120, 6, 2), (77, 9, 3)] {
            let a = random(n, k, s);
            let b = random(n, k, s + 5);
            let got = multiply(&a, &b, &MemTracker::new()).unwrap();
            let want = reference_spgemm(&a, &b).drop_numeric_zeros();
            assert!(got.c.approx_eq_ignoring_zeros(&want, 1e-10), "n={n}");
        }
    }

    #[test]
    fn long_rows_exceed_shared_capacity_and_charge_global_tables() {
        // One row referencing thousands of B entries forces a global table.
        let n = 3000usize;
        let mut coo = Coo::new(n, n);
        for c in 0..n as u32 {
            coo.push(0, c, 1.0); // dense row 0
            coo.push(c, c, 1.0);
        }
        let a = coo.to_csr();
        let tracker = MemTracker::new();
        let out = multiply(&a, &a, &tracker).unwrap();
        // Row 0's ub = n + 1 extra -> table > SHARED_CAPACITY slots.
        assert!(out.peak_bytes > SHARED_CAPACITY * 12);
        let want = reference_spgemm(&a, &a).drop_numeric_zeros();
        assert!(out.c.approx_eq_ignoring_zeros(&want, 1e-10));
    }

    #[test]
    fn budget_failure_on_flop_heavy_matrix() {
        // Dense-ish: ub/row ~ 70² ≈ 5k > shared capacity, so every row
        // charges a global table (~256 × 16384 × 12 B ≈ 50 MB).
        let a = random(256, 80, 9);
        let tracker = MemTracker::with_budget(1 << 20);
        let err = multiply(&a, &a, &tracker).unwrap_err();
        assert!(matches!(err, SpGemmError::OutOfMemory(_)));
    }

    #[test]
    fn output_rows_are_sorted() {
        let a = random(90, 7, 13);
        let out = multiply(&a, &a, &MemTracker::new()).unwrap();
        out.c.validate().unwrap();
    }
}
