//! spECK-like baseline: lightweight analysis + adaptive per-row kernels.
//!
//! Parger et al.'s spECK spends a very cheap pre-pass on global statistics
//! and per-row bounds, then assigns each row one of several kernels without
//! the heavyweight multi-round binning of NSPARSE. It completes every matrix
//! in the paper's dataset and is the strongest baseline. Reproduced:
//!
//! * analysis: per-row upper bounds (Step 1);
//! * symbolic phase, kernel chosen per row:
//!   - small bound: sort-dedup in a local buffer;
//!   - large bound, high density: dense flag array;
//!   - large bound, low density: open-addressing hash set;
//! * numeric phase writing *directly* into the final CSR arrays (no
//!   intermediate row buffers), again kernel-per-row:
//!   - small: expand-sort-compress in a local buffer;
//!   - dense: dense SPA with touched list;
//!   - sparse: hash map, extract + sort;
//! * memory: per-worker scratch plus the output only — spECK's modest
//!   footprint in Figure 9, with its density-related degradation coming
//!   from the dense path's wide sweeps.

use rayon::prelude::*;
use tilespgemm_core::SpGemmError;
use tsg_matrix::Csr;
use tsg_runtime::{exclusive_scan_to, split_mut_by_offsets, Breakdown, MemTracker, Step};

/// Rows with bounds at or below this use the local sort kernels.
const SORT_KERNEL_MAX: usize = 128;
/// Density (`ub / ncols`) above which the dense kernels are preferred.
const DENSE_DENSITY: f64 = 0.05;

const EMPTY: u32 = u32::MAX;

#[inline]
fn hash_slot(key: u32, mask: usize) -> usize {
    (key as usize).wrapping_mul(0x9E37_79B9) & mask
}

/// Per-worker scratch shared by the kernels.
struct Scratch {
    spa: Vec<f64>,
    flags: Vec<bool>,
    touched: Vec<u32>,
    table: Vec<u32>,
    accum: Vec<f64>,
    expansion: Vec<(u32, f64)>,
}

impl Scratch {
    fn new(ncols: usize) -> Self {
        Self {
            spa: vec![0.0; ncols],
            flags: vec![false; ncols],
            touched: Vec::new(),
            table: Vec::new(),
            accum: Vec::new(),
            expansion: Vec::new(),
        }
    }
}

/// Runs the spECK-like method.
pub fn multiply(
    a: &Csr<f64>,
    b: &Csr<f64>,
    tracker: &MemTracker,
) -> Result<crate::RunOutcome, SpGemmError> {
    assert_eq!(a.ncols, b.nrows, "inner dimensions must agree");
    let mut breakdown = Breakdown::default();

    let input_bytes = {
        use tsg_matrix::Footprint;
        a.bytes() + b.bytes()
    };
    tracker.on_alloc(input_bytes)?;

    // Lightweight analysis.
    let ubs = breakdown.timed(Step::Step1, || a.row_upper_bounds(b));

    // Per-worker scratch: dense lane + hash/sort buffers.
    let lanes = rayon::current_num_threads().max(1);
    let scratch_bytes = lanes * b.ncols * 9;
    tracker.on_alloc(scratch_bytes)?;

    // ---- Symbolic phase: per-row nnz counts. ----
    let counts: Vec<usize> = breakdown.timed(Step::Step2, || {
        (0..a.nrows)
            .into_par_iter()
            .map_init(
                || Scratch::new(b.ncols),
                |scratch, i| {
                    let ub = ubs[i];
                    if ub == 0 {
                        0
                    } else if ub <= SORT_KERNEL_MAX {
                        symbolic_sort(a, b, i, scratch)
                    } else if (ub as f64) / (b.ncols as f64) >= DENSE_DENSITY {
                        symbolic_dense(a, b, i, scratch)
                    } else {
                        symbolic_hash(a, b, i, ub, scratch)
                    }
                },
            )
            .collect()
    });

    let mut rowptr = vec![0usize; a.nrows + 1];
    let nnz_c = exclusive_scan_to(&counts, &mut rowptr);
    let (mut colidx, mut vals) = breakdown.timed(Step::Alloc, || {
        tracker.on_alloc(nnz_c * 12 + (a.nrows + 1) * 8)?;
        Ok::<_, SpGemmError>((
            tracker.timed_alloc(|| vec![0u32; nnz_c]),
            tracker.timed_alloc(|| vec![0f64; nnz_c]),
        ))
    })?;

    // ---- Numeric phase: direct writes into the output windows. ----
    breakdown.timed(Step::Step3, || {
        let col_w = split_mut_by_offsets(&mut colidx, &rowptr);
        let val_w = split_mut_by_offsets(&mut vals, &rowptr);
        col_w.into_par_iter().zip(val_w).enumerate().for_each_init(
            || Scratch::new(b.ncols),
            |scratch, (i, (col_w, val_w))| {
                if col_w.is_empty() {
                    return;
                }
                let ub = ubs[i];
                if ub <= SORT_KERNEL_MAX {
                    numeric_sort(a, b, i, scratch, col_w, val_w);
                } else if (ub as f64) / (b.ncols as f64) >= DENSE_DENSITY {
                    numeric_dense(a, b, i, scratch, col_w, val_w);
                } else {
                    numeric_hash(a, b, i, ub, scratch, col_w, val_w);
                }
            },
        );
    });

    let peak_bytes = tracker.peak_bytes();
    tracker.on_free(scratch_bytes + input_bytes);

    Ok(crate::RunOutcome {
        c: Csr {
            nrows: a.nrows,
            ncols: b.ncols,
            rowptr,
            colidx,
            vals,
        }
        .drop_numeric_zeros(),
        breakdown,
        peak_bytes,
    })
}

fn symbolic_sort(a: &Csr<f64>, b: &Csr<f64>, i: usize, scratch: &mut Scratch) -> usize {
    scratch.touched.clear();
    for &j in a.row(i).0 {
        scratch.touched.extend_from_slice(b.row(j as usize).0);
    }
    scratch.touched.sort_unstable();
    scratch.touched.dedup();
    scratch.touched.len()
}

fn symbolic_dense(a: &Csr<f64>, b: &Csr<f64>, i: usize, scratch: &mut Scratch) -> usize {
    scratch.touched.clear();
    for &j in a.row(i).0 {
        for &k in b.row(j as usize).0 {
            if !scratch.flags[k as usize] {
                scratch.flags[k as usize] = true;
                scratch.touched.push(k);
            }
        }
    }
    for &k in &scratch.touched {
        scratch.flags[k as usize] = false;
    }
    scratch.touched.len()
}

fn symbolic_hash(a: &Csr<f64>, b: &Csr<f64>, i: usize, ub: usize, scratch: &mut Scratch) -> usize {
    let capacity = (2 * ub).next_power_of_two();
    let mask = capacity - 1;
    // The table persists across rows; only the slots a row used are reset
    // afterwards (tracked in `touched`), so per-row cost is O(ub), not
    // O(capacity) — the trick real spECK plays with its shared-memory maps.
    if scratch.table.len() < capacity {
        scratch.table.resize(capacity, EMPTY);
    }
    scratch.touched.clear();
    for &j in a.row(i).0 {
        for &k in b.row(j as usize).0 {
            let mut slot = hash_slot(k, mask);
            loop {
                let cur = scratch.table[slot];
                if cur == k {
                    break;
                }
                if cur == EMPTY {
                    scratch.table[slot] = k;
                    scratch.touched.push(slot as u32);
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
    }
    let count = scratch.touched.len();
    for &slot in &scratch.touched {
        scratch.table[slot as usize] = EMPTY;
    }
    count
}

fn numeric_sort(
    a: &Csr<f64>,
    b: &Csr<f64>,
    i: usize,
    scratch: &mut Scratch,
    col_w: &mut [u32],
    val_w: &mut [f64],
) {
    scratch.expansion.clear();
    let (acols, avals) = a.row(i);
    for (&j, &av) in acols.iter().zip(avals) {
        let (bcols, bvals) = b.row(j as usize);
        for (&k, &bv) in bcols.iter().zip(bvals) {
            scratch.expansion.push((k, av * bv));
        }
    }
    scratch.expansion.sort_unstable_by_key(|&(k, _)| k);
    let mut out = usize::MAX;
    let mut last = u32::MAX;
    for &(k, v) in &scratch.expansion {
        if k == last && out != usize::MAX {
            val_w[out] += v;
        } else {
            out = out.wrapping_add(1);
            col_w[out] = k;
            val_w[out] = v;
            last = k;
        }
    }
    debug_assert_eq!(out + 1, col_w.len());
}

fn numeric_dense(
    a: &Csr<f64>,
    b: &Csr<f64>,
    i: usize,
    scratch: &mut Scratch,
    col_w: &mut [u32],
    val_w: &mut [f64],
) {
    let (acols, avals) = a.row(i);
    scratch.touched.clear();
    for (&j, &av) in acols.iter().zip(avals) {
        let (bcols, bvals) = b.row(j as usize);
        for (&k, &bv) in bcols.iter().zip(bvals) {
            if !scratch.flags[k as usize] {
                scratch.flags[k as usize] = true;
                scratch.touched.push(k);
            }
            scratch.spa[k as usize] += av * bv;
        }
    }
    scratch.touched.sort_unstable();
    for (out, &k) in scratch.touched.iter().enumerate() {
        col_w[out] = k;
        val_w[out] = scratch.spa[k as usize];
        scratch.spa[k as usize] = 0.0;
        scratch.flags[k as usize] = false;
    }
}

fn numeric_hash(
    a: &Csr<f64>,
    b: &Csr<f64>,
    i: usize,
    ub: usize,
    scratch: &mut Scratch,
    col_w: &mut [u32],
    val_w: &mut [f64],
) {
    let capacity = (2 * ub).next_power_of_two();
    let mask = capacity - 1;
    if scratch.table.len() < capacity {
        scratch.table.resize(capacity, EMPTY);
        scratch.accum.resize(capacity, 0.0);
    }
    scratch.touched.clear();
    let (acols, avals) = a.row(i);
    for (&j, &av) in acols.iter().zip(avals) {
        let (bcols, bvals) = b.row(j as usize);
        for (&k, &bv) in bcols.iter().zip(bvals) {
            let mut slot = hash_slot(k, mask);
            loop {
                let cur = scratch.table[slot];
                if cur == k {
                    scratch.accum[slot] += av * bv;
                    break;
                }
                if cur == EMPTY {
                    scratch.table[slot] = k;
                    scratch.accum[slot] = av * bv;
                    scratch.touched.push(slot as u32);
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
    }
    debug_assert_eq!(scratch.touched.len(), col_w.len());
    // Extract, reset the used slots, and sort the window by column.
    for (out, &slot) in scratch.touched.iter().enumerate() {
        col_w[out] = scratch.table[slot as usize];
        val_w[out] = scratch.accum[slot as usize];
        scratch.table[slot as usize] = EMPTY;
    }
    let mut perm: Vec<u32> = (0..col_w.len() as u32).collect();
    perm.sort_unstable_by_key(|&p| col_w[p as usize]);
    let sorted_cols: Vec<u32> = perm.iter().map(|&p| col_w[p as usize]).collect();
    let sorted_vals: Vec<f64> = perm.iter().map(|&p| val_w[p as usize]).collect();
    col_w.copy_from_slice(&sorted_cols);
    val_w.copy_from_slice(&sorted_vals);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_spgemm;
    use tsg_matrix::Coo;

    fn random(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(
                    r,
                    (next() % n as u64) as u32,
                    ((next() % 9) + 1) as f64 * 0.5,
                );
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference_across_kernel_regimes() {
        // per_row sweeps through the sort / dense / hash regimes.
        for (n, k) in [(50usize, 2usize), (50, 8), (200, 15), (80, 40), (3000, 12)] {
            let a = random(n, k, (n * k) as u64);
            let got = multiply(&a, &a, &MemTracker::new()).unwrap();
            let want = reference_spgemm(&a, &a).drop_numeric_zeros();
            assert!(got.c.approx_eq_ignoring_zeros(&want, 1e-10), "n={n} k={k}");
        }
    }

    #[test]
    fn hash_regime_is_exercised_on_hypersparse_rows() {
        // n large, rows long enough to exceed SORT_KERNEL_MAX but density
        // below DENSE_DENSITY -> hash path.
        let a = random(20_000, 15, 77);
        let ubs = a.row_upper_bounds(&a);
        let hash_rows = (0..a.nrows)
            .filter(|&i| {
                ubs[i] > SORT_KERNEL_MAX && (ubs[i] as f64) / (a.ncols as f64) < DENSE_DENSITY
            })
            .count();
        assert!(
            hash_rows > 1000,
            "dataset exercises only {hash_rows} hash rows"
        );
        let got = multiply(&a, &a, &MemTracker::new()).unwrap();
        let want = reference_spgemm(&a, &a).drop_numeric_zeros();
        assert!(got.c.approx_eq_ignoring_zeros(&want, 1e-10));
    }

    #[test]
    fn empty_rows_and_matrices() {
        let z = Csr::<f64>::zero(7, 7);
        assert_eq!(multiply(&z, &z, &MemTracker::new()).unwrap().c.nnz(), 0);
        let mut coo = Coo::new(5, 5);
        coo.push(3, 1, 2.0);
        let a = coo.to_csr();
        let out = multiply(&a, &a, &MemTracker::new()).unwrap();
        assert_eq!(out.c.nnz(), 0); // (3,1)·(1,*) is empty
    }

    #[test]
    fn completes_within_moderate_budget() {
        let a = random(200, 30, 3);
        let tracker = MemTracker::with_budget(64 << 20);
        let out = multiply(&a, &a, &tracker).unwrap();
        assert!(out.peak_bytes < 64 << 20);
    }

    #[test]
    fn output_is_valid_csr() {
        let a = random(500, 10, 9);
        let out = multiply(&a, &a, &MemTracker::new()).unwrap();
        out.c.validate().unwrap();
    }
}
