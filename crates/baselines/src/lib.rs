#![warn(missing_docs)]

//! # tsg-baselines — the SpGEMM methods the paper compares against
//!
//! Faithful algorithmic analogues of the four row-row GPU libraries of the
//! paper's evaluation, plus the tSparse-style dense-tile method of §4.7, all
//! implemented from their published designs (see DESIGN.md's substitution
//! table):
//!
//! | Module | Stands in for | Design reproduced |
//! |---|---|---|
//! | [`rowrow_dense`] | cuSPARSE v11.4 | two-phase row-row with dense SPA and a flops-proportional work buffer |
//! | [`rowrow_esc`] | bhSPARSE (Liu & Vinter) | binning + ESC / heap accumulators, progressive global buffer |
//! | [`rowrow_hash`] | NSPARSE (Nagasaka et al.) | two-round binning with per-row open-addressing hash tables |
//! | [`speck`] | spECK (Parger et al.) | lightweight analysis + adaptive per-row kernels, chunked long rows |
//! | [`tsparse`] | tSparse (Zachariadis et al.) | tile grid with dense 16×16 tile products (`f32` standing in for hh→s tensor cores) and repeated output re-allocation |
//!
//! [`reference`](mod@reference) provides the serial gold implementation every method is
//! tested against. [`MethodKind`] + [`run_method`] give the figure harness a
//! uniform way to run everything, including TileSpGEMM itself.

pub mod reference;
pub mod rowrow_dense;
pub mod rowrow_esc;
pub mod rowrow_hash;
pub mod speck;
pub mod tsparse;

use tilespgemm_core::{Config, SpGemmError};
use tsg_matrix::{Csr, TileMatrix};
use tsg_runtime::{Breakdown, MemTracker};

/// Every method the figure harness can run on `f64` CSR operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// cuSPARSE-like dense-SPA row-row method.
    CuSparseLike,
    /// bhSPARSE-like binned ESC/heap method.
    BhSparseLike,
    /// NSPARSE-like hash method.
    NSparseLike,
    /// spECK-like adaptive method.
    SpeckLike,
    /// TileSpGEMM (this paper's method).
    TileSpGemm,
}

impl MethodKind {
    /// The four row-row baselines plus TileSpGEMM, in the paper's plotting
    /// order (cuSPARSE, bhSPARSE, NSPARSE, spECK, TileSpGEMM).
    pub fn all() -> [MethodKind; 5] {
        [
            MethodKind::CuSparseLike,
            MethodKind::BhSparseLike,
            MethodKind::NSparseLike,
            MethodKind::SpeckLike,
            MethodKind::TileSpGemm,
        ]
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::CuSparseLike => "cuSPARSE-like",
            MethodKind::BhSparseLike => "bhSPARSE-like",
            MethodKind::NSparseLike => "NSPARSE-like",
            MethodKind::SpeckLike => "spECK-like",
            MethodKind::TileSpGemm => "TileSpGEMM",
        }
    }
}

/// The uniform result record the harness consumes.
#[derive(Debug)]
pub struct RunOutcome {
    /// The product (explicit zeros dropped for cross-method comparability).
    pub c: Csr<f64>,
    /// Per-phase wall times (symbolic → step2, numeric → step3 for the
    /// row-row methods).
    pub breakdown: Breakdown,
    /// Peak tracked device bytes.
    pub peak_bytes: usize,
}

/// Runs one method on CSR operands under the given tracker (budget +
/// timeline). For [`MethodKind::TileSpGemm`] the CSR→tiled conversion is
/// excluded from the breakdown, matching the paper's protocol (§4.6 assumes
/// tiled inputs; conversion is measured separately in Figure 12).
pub fn run_method(
    kind: MethodKind,
    a: &Csr<f64>,
    b: &Csr<f64>,
    tracker: &MemTracker,
) -> Result<RunOutcome, SpGemmError> {
    match kind {
        MethodKind::CuSparseLike => rowrow_dense::multiply(a, b, tracker),
        MethodKind::BhSparseLike => rowrow_esc::multiply(a, b, tracker),
        MethodKind::NSparseLike => rowrow_hash::multiply(a, b, tracker),
        MethodKind::SpeckLike => speck::multiply(a, b, tracker),
        MethodKind::TileSpGemm => {
            let ta = TileMatrix::from_csr(a);
            let tb = TileMatrix::from_csr(b);
            let out = tilespgemm_core::multiply(&ta, &tb, &Config::default(), tracker)?;
            Ok(RunOutcome {
                c: out.c.to_csr().drop_numeric_zeros(),
                breakdown: out.breakdown,
                peak_bytes: out.peak_bytes,
            })
        }
    }
}

/// Run a method on pre-tiled operands where applicable, so harnesses can
/// exclude conversion cost for TileSpGEMM precisely. Row-row methods take
/// the CSR operands regardless.
pub struct PreparedOperands {
    /// CSR form (all methods).
    pub a: Csr<f64>,
    /// CSR form (all methods).
    pub b: Csr<f64>,
    /// Tiled form (TileSpGEMM).
    pub ta: TileMatrix<f64>,
    /// Tiled form (TileSpGEMM).
    pub tb: TileMatrix<f64>,
}

impl PreparedOperands {
    /// Prepares both representations of the operands.
    pub fn new(a: Csr<f64>, b: Csr<f64>) -> Self {
        let ta = TileMatrix::from_csr(&a);
        let tb = TileMatrix::from_csr(&b);
        Self { a, b, ta, tb }
    }

    /// `A²` operands.
    pub fn squared(a: Csr<f64>) -> Self {
        let b = a.clone();
        Self::new(a, b)
    }

    /// `A·Aᵀ` operands.
    pub fn aat(a: Csr<f64>) -> Self {
        let b = a.transpose();
        Self::new(a, b)
    }

    /// Runs `kind` without charging format preparation.
    pub fn run(
        &self,
        kind: MethodKind,
        tracker: &MemTracker,
    ) -> Result<(Breakdown, usize, usize), SpGemmError> {
        match kind {
            MethodKind::TileSpGemm => {
                let out =
                    tilespgemm_core::multiply(&self.ta, &self.tb, &Config::default(), tracker)?;
                Ok((out.breakdown, out.c.nnz(), out.peak_bytes))
            }
            _ => {
                let out = run_method(kind, &self.a, &self.b, tracker)?;
                Ok((out.breakdown, out.c.nnz(), out.peak_bytes))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper_order() {
        let names: Vec<_> = MethodKind::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "cuSPARSE-like",
                "bhSPARSE-like",
                "NSPARSE-like",
                "spECK-like",
                "TileSpGEMM"
            ]
        );
    }

    #[test]
    fn every_method_multiplies_identity() {
        let i = Csr::<f64>::identity(48);
        for kind in MethodKind::all() {
            let out = run_method(kind, &i, &i, &MemTracker::new()).unwrap();
            assert!(
                out.c.approx_eq_ignoring_zeros(&i, 1e-12),
                "{} failed identity",
                kind.name()
            );
        }
    }

    #[test]
    fn prepared_operands_aat_uses_transpose() {
        let a = Csr::from_parts(2, 2, vec![0, 1, 1], vec![1], vec![3.0]).unwrap();
        let prep = PreparedOperands::aat(a);
        // A·Aᵀ = [[9, 0], [0, 0]].
        let (_, nnz, _) = prep.run(MethodKind::SpeckLike, &MemTracker::new()).unwrap();
        assert_eq!(nnz, 1);
    }
}
