//! bhSPARSE-like baseline: binned ESC / heap SpGEMM.
//!
//! Liu & Vinter's framework inspects the intermediate-product upper bound of
//! every row, sorts rows into 38 bins, and dispatches per bin:
//!
//! * bound 0 — row is empty;
//! * bound 1 — a single product, copied directly;
//! * small bounds — ESC (expand, sort, compress) in on-chip memory;
//! * medium bounds — a heap (priority-queue) accumulator;
//! * large bounds — ESC in global memory with a *progressively* grown
//!   buffer (their "progressive allocation", which the paper notes suffers
//!   from repeated copies).
//!
//! Reproduced here with the same dispatch. The global ESC expansion is
//! materialised for real (that *is* the algorithm) and tracked; its size is
//! 12 bytes per product over the large-bin rows — the allocation that makes
//! the real library the most memory-hungry line of Figure 9 and the first
//! to fail on the flop-heavy matrices of Figure 7.

use rayon::prelude::*;
use tilespgemm_core::SpGemmError;
use tsg_matrix::Csr;
use tsg_runtime::{
    bin_rows_by, exclusive_scan_to, split_mut_by_offsets, Breakdown, MemTracker, Step,
};

/// Upper bound treated by the local (on-chip) ESC kernel.
const LOCAL_ESC_MAX: usize = 64;
/// Upper bound treated by the heap kernel; above it, global ESC.
const HEAP_MAX: usize = 256;
/// The bin count bhSPARSE uses.
const BIN_COUNT: usize = 38;

/// Runs the bhSPARSE-like method.
pub fn multiply(
    a: &Csr<f64>,
    b: &Csr<f64>,
    tracker: &MemTracker,
) -> Result<crate::RunOutcome, SpGemmError> {
    assert_eq!(a.ncols, b.nrows, "inner dimensions must agree");
    let mut breakdown = Breakdown::default();

    let input_bytes = {
        use tsg_matrix::Footprint;
        a.bytes() + b.bytes()
    };
    tracker.on_alloc(input_bytes)?;

    // Analysis + binning (charged like the framework's inspection stage).
    let ubs = breakdown.timed(Step::Step1, || a.row_upper_bounds(b));
    let bins = breakdown.timed(Step::Step1, || bin_rows_by(a.nrows, BIN_COUNT, |i| ubs[i]));

    // Progressive global buffer for the large rows: bhSPARSE grows it in
    // doubling steps, re-copying — we track each growth event so the
    // Figure 9 timeline shows the sawtooth, and charge the final size.
    let large_products: usize = ubs.iter().filter(|&&u| u > HEAP_MAX).sum();
    let target = large_products * 12;
    let mut progressive = 0usize;
    breakdown.timed(Step::Alloc, || {
        if target == 0 {
            return Ok(());
        }
        // Doubling growth toward the exact target; each step frees the
        // stale buffer and allocates the doubled one, producing the
        // sawtooth the real library's progressive method exhibits.
        let mut cap = (1usize << 20).min(target);
        loop {
            if progressive > 0 {
                tracker.on_free(progressive);
            }
            tracker.on_alloc(cap)?;
            progressive = cap;
            if cap >= target {
                break;
            }
            cap = (cap * 2).min(target);
        }
        Ok::<_, SpGemmError>(())
    })?;

    // ---- Symbolic + numeric per bin. Each row is produced independently
    // into per-row vectors, then assembled (the framework's re-gather). ----
    let mut rows: Vec<(Vec<u32>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); a.nrows];
    breakdown.timed(Step::Step3, || {
        // Distribute whole bins; rows inside a bin run in parallel.
        let row_slots: Vec<&mut (Vec<u32>, Vec<f64>)> = rows.iter_mut().collect();
        // Index rows by id for scattered write: build a map from row -> slot
        // via unsafe-free approach: process all rows in one parallel loop,
        // dispatching on the row's bin.
        row_slots.into_par_iter().enumerate().for_each(|(i, slot)| {
            let ub = ubs[i];
            let out = if ub == 0 {
                (Vec::new(), Vec::new())
            } else if ub == 1 {
                single_product_row(a, b, i)
            } else if ub <= LOCAL_ESC_MAX {
                esc_row(a, b, i, ub)
            } else if ub <= HEAP_MAX {
                heap_row(a, b, i)
            } else {
                esc_row(a, b, i, ub) // global ESC: same kernel, bigger buffer
            };
            *slot = out;
        });
        let _ = &bins; // binning structure retained for reporting parity
    });

    // Assemble CSR.
    let counts: Vec<usize> = rows.iter().map(|(c, _)| c.len()).collect();
    let mut rowptr = vec![0usize; a.nrows + 1];
    let nnz_c = exclusive_scan_to(&counts, &mut rowptr);
    let (mut colidx, mut vals) = breakdown.timed(Step::Alloc, || {
        tracker.on_alloc(nnz_c * 12 + (a.nrows + 1) * 8)?;
        Ok::<_, SpGemmError>((
            tracker.timed_alloc(|| vec![0u32; nnz_c]),
            tracker.timed_alloc(|| vec![0f64; nnz_c]),
        ))
    })?;
    breakdown.timed(Step::Step2, || {
        let col_w = split_mut_by_offsets(&mut colidx, &rowptr);
        let val_w = split_mut_by_offsets(&mut vals, &rowptr);
        col_w
            .into_par_iter()
            .zip(val_w)
            .zip(rows.par_iter())
            .for_each(|((cw, vw), (rc, rv))| {
                cw.copy_from_slice(rc);
                vw.copy_from_slice(rv);
            });
    });

    let peak_bytes = tracker.peak_bytes();
    tracker.on_free(progressive + input_bytes);

    Ok(crate::RunOutcome {
        c: Csr {
            nrows: a.nrows,
            ncols: b.ncols,
            rowptr,
            colidx,
            vals,
        }
        .drop_numeric_zeros(),
        breakdown,
        peak_bytes,
    })
}

/// Bound-1 rows: exactly one intermediate product.
fn single_product_row(a: &Csr<f64>, b: &Csr<f64>, i: usize) -> (Vec<u32>, Vec<f64>) {
    let (acols, avals) = a.row(i);
    for (&j, &av) in acols.iter().zip(avals) {
        let (bcols, bvals) = b.row(j as usize);
        if let (Some(&k), Some(&bv)) = (bcols.first(), bvals.first()) {
            return (vec![k], vec![av * bv]);
        }
    }
    (Vec::new(), Vec::new())
}

/// ESC kernel: expand all products, sort by column, compress by summation.
fn esc_row(a: &Csr<f64>, b: &Csr<f64>, i: usize, ub: usize) -> (Vec<u32>, Vec<f64>) {
    let mut expansion: Vec<(u32, f64)> = Vec::with_capacity(ub);
    let (acols, avals) = a.row(i);
    for (&j, &av) in acols.iter().zip(avals) {
        let (bcols, bvals) = b.row(j as usize);
        for (&k, &bv) in bcols.iter().zip(bvals) {
            expansion.push((k, av * bv));
        }
    }
    expansion.sort_unstable_by_key(|&(k, _)| k);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for (k, v) in expansion {
        if cols.last() == Some(&k) {
            *vals.last_mut().unwrap() += v;
        } else {
            cols.push(k);
            vals.push(v);
        }
    }
    (cols, vals)
}

/// Heap kernel: k-way merge of the referenced B rows through a binary heap
/// (Liu & Vinter's priority-queue accumulator).
fn heap_row(a: &Csr<f64>, b: &Csr<f64>, i: usize) -> (Vec<u32>, Vec<f64>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let (acols, avals) = a.row(i);
    // Heap entries: (column, segment index); each segment is one scaled row
    // of B with its own cursor.
    let mut cursors: Vec<usize> = vec![0; acols.len()];
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::with_capacity(acols.len());
    for (s, &j) in acols.iter().enumerate() {
        if let Some(&k) = b.row(j as usize).0.first() {
            heap.push(Reverse((k, s)));
        }
    }
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    while let Some(Reverse((k, s))) = heap.pop() {
        let j = acols[s] as usize;
        let (bcols, bvals) = b.row(j);
        let cur = cursors[s];
        let product = avals[s] * bvals[cur];
        if cols.last() == Some(&k) {
            *vals.last_mut().unwrap() += product;
        } else {
            cols.push(k);
            vals.push(product);
        }
        cursors[s] += 1;
        if cursors[s] < bcols.len() {
            heap.push(Reverse((bcols[cursors[s]], s)));
        }
    }
    (cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_spgemm;
    use tsg_matrix::Coo;

    fn random(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(
                    r,
                    (next() % n as u64) as u32,
                    ((next() % 9) + 1) as f64 * 0.5,
                );
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference_across_bin_regimes() {
        // per_row sweeps push rows through the single/local-ESC/heap/global
        // paths.
        for (n, k) in [(60usize, 1usize), (60, 3), (60, 9), (40, 20), (300, 18)] {
            let a = random(n, k, (n + k) as u64);
            let got = multiply(&a, &a, &MemTracker::new()).unwrap();
            let want = reference_spgemm(&a, &a).drop_numeric_zeros();
            assert!(got.c.approx_eq_ignoring_zeros(&want, 1e-10), "n={n} k={k}");
        }
    }

    #[test]
    fn heap_kernel_merges_duplicates() {
        // Row 0 of A references two B rows sharing column 5.
        let a = Coo::from_triplets(3, 3, vec![(0, 1, 2.0), (0, 2, 3.0)])
            .unwrap()
            .to_csr();
        let mut b = Coo::new(3, 8);
        b.push(1, 5, 1.0);
        b.push(1, 6, 1.0);
        b.push(2, 5, 10.0);
        let b = b.to_csr();
        let (cols, vals) = heap_row(&a, &b, 0);
        assert_eq!(cols, vec![5, 6]);
        assert_eq!(vals, vec![2.0 * 1.0 + 3.0 * 10.0, 2.0]);
    }

    #[test]
    fn progressive_buffer_oom_on_flop_heavy_matrix() {
        // Dense-ish 200x200: products ~ 200*140² ≈ 3.9M -> ≈47 MB of
        // expansion, over a 1 MB budget.
        let a = random(200, 170, 5);
        let tracker = MemTracker::with_budget(1 << 20);
        let err = multiply(&a, &a, &tracker).unwrap_err();
        assert!(matches!(err, SpGemmError::OutOfMemory(_)));
    }

    #[test]
    fn timeline_shows_progressive_growth() {
        let a = random(150, 60, 7);
        let tracker = MemTracker::with_timeline(usize::MAX);
        multiply(&a, &a, &tracker).unwrap();
        // Growth events produce alloc/free churn: the timeline must contain
        // at least one decrease before the end (a freed stale buffer).
        let tl = tracker.timeline();
        let decreases = tl
            .windows(2)
            .filter(|w| w[1].current_bytes < w[0].current_bytes)
            .count();
        assert!(decreases >= 1, "expected progressive realloc churn");
    }

    #[test]
    fn empty_rows_produce_empty_output_rows() {
        let mut coo = Coo::new(5, 5);
        coo.push(2, 2, 4.0);
        let a = coo.to_csr();
        let out = multiply(&a, &a, &MemTracker::new()).unwrap();
        assert_eq!(out.c.nnz(), 1);
        assert_eq!(out.c.get(2, 2), Some(16.0));
    }
}
