//! cuSPARSE-like baseline: two-phase row-row SpGEMM with dense sparse
//! accumulators.
//!
//! cuSPARSE v11.4 is closed source; per DESIGN.md's substitution table we
//! model its generic SpGEMM as the classic two-phase (symbolic + numeric)
//! Gustavson method with a dense per-row accumulator (Gilbert et al.'s SPA)
//! and a *flops-proportional work buffer* — the allocation that makes the
//! real library fail on high-flop matrices (`TSOPF_FS_b300_c2`, `gupta3`,
//! `SiO2`, `case39` in the paper's Figure 7, reported as `0.00`).
//!
//! Memory model tracked against the device budget:
//! * work buffer: 16 bytes per intermediate product (the documented
//!   `cusparseSpGEMM` buffer growth is of this order),
//! * one dense SPA lane per worker thread (`ncols` values + flags),
//! * the output CSR.

use rayon::prelude::*;
use tilespgemm_core::SpGemmError;
use tsg_matrix::Csr;
use tsg_runtime::{exclusive_scan_to, split_mut_by_offsets, Breakdown, MemTracker, Step};

/// Bytes of modelled work-buffer per intermediate product (one column index
/// plus one value, as `cusparseSpGEMM`'s documented buffer growth implies).
const WORK_BUFFER_BYTES_PER_PRODUCT: usize = 12;

/// Runs the cuSPARSE-like method.
pub fn multiply(
    a: &Csr<f64>,
    b: &Csr<f64>,
    tracker: &MemTracker,
) -> Result<crate::RunOutcome, SpGemmError> {
    assert_eq!(a.ncols, b.nrows, "inner dimensions must agree");
    let mut breakdown = Breakdown::default();

    // Inputs resident on the device.
    let input_bytes = csr_bytes(a) + csr_bytes(b);
    tracker.on_alloc(input_bytes)?;

    // Work-buffer estimation + allocation (the phase real cuSPARSE performs
    // in `workEstimation`/`compute`): proportional to the intermediate
    // product count.
    let ubs = breakdown.timed(Step::Step1, || a.row_upper_bounds(b));
    let products: usize = ubs.iter().sum();
    let work_buffer = products * WORK_BUFFER_BYTES_PER_PRODUCT;
    breakdown.timed(Step::Alloc, || tracker.on_alloc(work_buffer))?;

    // Dense SPA lanes: one per worker.
    let lanes = rayon::current_num_threads().max(1);
    let spa_bytes = lanes * b.ncols * (8 + 1);
    tracker.on_alloc(spa_bytes)?;

    // ---- Symbolic: count each output row with a dense flag array. ----
    let counts: Vec<usize> = breakdown.timed(Step::Step2, || {
        (0..a.nrows)
            .into_par_iter()
            .map_init(
                || (vec![false; b.ncols], Vec::<u32>::new()),
                |(flags, touched), i| {
                    let (acols, _) = a.row(i);
                    touched.clear();
                    for &j in acols {
                        for &k in b.row(j as usize).0 {
                            if !flags[k as usize] {
                                flags[k as usize] = true;
                                touched.push(k);
                            }
                        }
                    }
                    let n = touched.len();
                    for &k in touched.iter() {
                        flags[k as usize] = false;
                    }
                    n
                },
            )
            .collect()
    });

    let mut rowptr = vec![0usize; a.nrows + 1];
    let nnz_c = exclusive_scan_to(&counts, &mut rowptr);
    let (mut colidx, mut vals) = breakdown.timed(Step::Alloc, || {
        tracker.on_alloc(nnz_c * 12 + (a.nrows + 1) * 8)?;
        Ok::<_, SpGemmError>((
            tracker.timed_alloc(|| vec![0u32; nnz_c]),
            tracker.timed_alloc(|| vec![0f64; nnz_c]),
        ))
    })?;

    // ---- Numeric: dense value SPA per row, sorted gather. ----
    breakdown.timed(Step::Step3, || {
        let col_w = split_mut_by_offsets(&mut colidx, &rowptr);
        let val_w = split_mut_by_offsets(&mut vals, &rowptr);
        col_w.into_par_iter().zip(val_w).enumerate().for_each_init(
            || (vec![0f64; b.ncols], vec![false; b.ncols], Vec::<u32>::new()),
            |(spa, flags, touched), (i, (col_w, val_w))| {
                let (acols, avals) = a.row(i);
                touched.clear();
                for (&j, &av) in acols.iter().zip(avals) {
                    let (bcols, bvals) = b.row(j as usize);
                    for (&k, &bv) in bcols.iter().zip(bvals) {
                        if !flags[k as usize] {
                            flags[k as usize] = true;
                            touched.push(k);
                        }
                        spa[k as usize] += av * bv;
                    }
                }
                touched.sort_unstable();
                for (out, &k) in touched.iter().enumerate() {
                    col_w[out] = k;
                    val_w[out] = spa[k as usize];
                    spa[k as usize] = 0.0;
                    flags[k as usize] = false;
                }
            },
        );
    });

    let peak_bytes = tracker.peak_bytes();
    tracker.on_free(work_buffer + spa_bytes + input_bytes);

    Ok(crate::RunOutcome {
        c: Csr {
            nrows: a.nrows,
            ncols: b.ncols,
            rowptr,
            colidx,
            vals,
        }
        .drop_numeric_zeros(),
        breakdown,
        peak_bytes,
    })
}

fn csr_bytes(m: &Csr<f64>) -> usize {
    use tsg_matrix::Footprint;
    m.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_spgemm;
    use tsg_matrix::Coo;

    fn random(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(
                    r,
                    (next() % n as u64) as u32,
                    ((next() % 9) + 1) as f64 * 0.25,
                );
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference() {
        for (n, k, s) in [(30usize, 3usize, 1u64), (100, 5, 2), (64, 8, 3)] {
            let a = random(n, k, s);
            let b = random(n, k, s + 9);
            let got = multiply(&a, &b, &MemTracker::new()).unwrap();
            let want = reference_spgemm(&a, &b).drop_numeric_zeros();
            assert!(got.c.approx_eq_ignoring_zeros(&want, 1e-10), "n={n}");
        }
    }

    #[test]
    fn work_buffer_blows_small_budget() {
        let a = random(100, 10, 5);
        // Products ~ 100*10*10 = 10k -> work buffer ~160 kB; cap below it.
        let tracker = MemTracker::with_budget(100_000);
        let err = multiply(&a, &a, &tracker).unwrap_err();
        assert!(matches!(err, SpGemmError::OutOfMemory(_)));
    }

    #[test]
    fn breakdown_charges_symbolic_and_numeric() {
        let a = random(200, 6, 7);
        let out = multiply(&a, &a, &MemTracker::new()).unwrap();
        assert!(out.breakdown.step2.as_nanos() > 0);
        assert!(out.breakdown.step3.as_nanos() > 0);
        assert!(out.peak_bytes > 0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let z = Csr::<f64>::zero(10, 10);
        let out = multiply(&z, &z, &MemTracker::new()).unwrap();
        assert_eq!(out.c.nnz(), 0);
    }
}
