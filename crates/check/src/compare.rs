//! Canonical form and the value-comparison policy.
//!
//! Every SpGEMM implementation in the workspace is free to emit its product
//! in its own order and with its own explicit zeros; before two products can
//! be compared they are reduced to one *canonical form*: strictly ascending
//! columns per row, duplicate coordinates summed, and entries whose value is
//! exactly `0.0` dropped (a numeric cancellation is not a structural
//! nonzero for comparison purposes).
//!
//! Structure is then compared **exactly** — the paper's symbolic phase is
//! deterministic, so any pattern difference is a bug, never rounding.
//! Values are compared under [`ValuePolicy`]: floating-point addition is not
//! associative, and the implementations legitimately sum the same products
//! in different orders (dense accumulator: column order; sparse
//! accumulator: pair order; row-row baselines: B-row order), so exact value
//! equality would reject correct results. The policy accepts a value when
//! *any* of three bounds holds:
//!
//! * within [`ValuePolicy::max_ulps`] units-in-the-last-place — the natural
//!   "reordered sum" distance for well-conditioned sums;
//! * relative error below [`ValuePolicy::rel_tol`] — covers magnitudes
//!   where a fixed ULP count is too strict;
//! * absolute error below [`ValuePolicy::abs_tol`] — covers near-total
//!   cancellation, where relative error is meaningless.

use tsg_matrix::{Coo, Csr};

/// When two floating-point values count as "the same product".
///
/// The defaults accept reordered-summation noise (hundreds of ULPs covers
/// sums of thousands of terms) while still catching any real defect — a
/// dropped product term changes a value by many orders of magnitude more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValuePolicy {
    /// Maximum units-in-the-last-place distance.
    pub max_ulps: u64,
    /// Maximum `|got - want| / max(|got|, |want|)`.
    pub rel_tol: f64,
    /// Maximum `|got - want|`, the cancellation floor.
    pub abs_tol: f64,
}

impl Default for ValuePolicy {
    fn default() -> Self {
        ValuePolicy {
            max_ulps: 512,
            rel_tol: 1e-9,
            abs_tol: 1e-12,
        }
    }
}

impl ValuePolicy {
    /// Whether `got` is acceptable for an expected value `want`.
    pub fn accepts(&self, got: f64, want: f64) -> bool {
        if got == want {
            return true;
        }
        if got.is_nan() || want.is_nan() {
            return false;
        }
        let diff = (got - want).abs();
        diff <= self.abs_tol
            || diff <= self.rel_tol * got.abs().max(want.abs())
            || ulp_distance(got, want) <= self.max_ulps
    }
}

/// Units-in-the-last-place distance between two finite doubles: how many
/// representable values lie between them. `u64::MAX` for NaNs. Works across
/// zero (`-0.0` and `+0.0` are 0 apart; the smallest positive and smallest
/// negative subnormal are 2 apart).
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the IEEE-754 bit patterns onto a single monotonic unsigned line:
    // negatives are flipped below the midpoint, positives offset above it.
    fn ordered(x: f64) -> u64 {
        let bits = x.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
    ordered(a).abs_diff(ordered(b))
}

/// The first difference found between two canonicalized products.
#[derive(Debug, Clone, PartialEq)]
pub enum Mismatch {
    /// The matrices have different dimensions.
    Shape {
        /// Dimensions of the checked product.
        got: (usize, usize),
        /// Dimensions of the expected product.
        want: (usize, usize),
    },
    /// A row stores a different number of nonzeros.
    RowNnz {
        /// The differing row.
        row: usize,
        /// Stored nonzeros in the checked product's row.
        got: usize,
        /// Stored nonzeros in the expected product's row.
        want: usize,
    },
    /// A row stores a different column pattern.
    Pattern {
        /// The differing row.
        row: usize,
        /// First differing column in the checked product.
        got: u32,
        /// Column expected at that position.
        want: u32,
    },
    /// A stored value differs beyond the [`ValuePolicy`].
    Value {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: u32,
        /// Value in the checked product.
        got: f64,
        /// Expected value.
        want: f64,
        /// ULP distance between them.
        ulps: u64,
    },
    /// A variant failed to produce a product at all, or its tiled output
    /// was not bitwise identical where it must be.
    Run {
        /// Human-readable description of what went wrong.
        detail: String,
    },
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::Shape { got, want } => {
                write!(
                    f,
                    "shape {}x{} != expected {}x{}",
                    got.0, got.1, want.0, want.1
                )
            }
            Mismatch::RowNnz { row, got, want } => {
                write!(f, "row {row}: {got} stored nonzeros, expected {want}")
            }
            Mismatch::Pattern { row, got, want } => {
                write!(f, "row {row}: column {got} where {want} was expected")
            }
            Mismatch::Value {
                row,
                col,
                got,
                want,
                ulps,
            } => write!(
                f,
                "value at ({row},{col}): {got:e} != expected {want:e} ({ulps} ulps apart)"
            ),
            Mismatch::Run { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for Mismatch {}

/// Reduces a CSR matrix to the canonical comparison form: sorted columns,
/// duplicates summed, entries that are exactly `0.0` dropped.
pub fn canonicalize(m: &Csr<f64>) -> Csr<f64> {
    let mut coo = Coo::new(m.nrows, m.ncols);
    for r in 0..m.nrows {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(r as u32, c, v);
        }
    }
    // `Coo::to_csr` sorts and sums duplicates; dropping numeric zeros
    // afterwards also removes stored zeros that were never duplicated.
    coo.to_csr().drop_numeric_zeros()
}

/// Compares two products after canonicalizing both: structure exactly,
/// values under `policy`. Returns the first difference found.
pub fn compare_csr(got: &Csr<f64>, want: &Csr<f64>, policy: &ValuePolicy) -> Result<(), Mismatch> {
    let g = canonicalize(got);
    let w = canonicalize(want);
    if (g.nrows, g.ncols) != (w.nrows, w.ncols) {
        return Err(Mismatch::Shape {
            got: (g.nrows, g.ncols),
            want: (w.nrows, w.ncols),
        });
    }
    for r in 0..g.nrows {
        let (gc, gv) = g.row(r);
        let (wc, wv) = w.row(r);
        if gc.len() != wc.len() {
            return Err(Mismatch::RowNnz {
                row: r,
                got: gc.len(),
                want: wc.len(),
            });
        }
        for i in 0..gc.len() {
            if gc[i] != wc[i] {
                return Err(Mismatch::Pattern {
                    row: r,
                    got: gc[i],
                    want: wc[i],
                });
            }
            if !policy.accepts(gv[i], wv[i]) {
                return Err(Mismatch::Value {
                    row: r,
                    col: gc[i],
                    got: gv[i],
                    want: wv[i],
                    ulps: ulp_distance(gv[i], wv[i]),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        // Crossing zero counts both zero representations' slots:
        // 2 * bits(MIN_POSITIVE) + 1.
        assert_eq!(
            ulp_distance(f64::MIN_POSITIVE, -f64::MIN_POSITIVE),
            2 * f64::MIN_POSITIVE.to_bits() + 1
        );
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        // Reordered three-term sums land within a few ULPs.
        let s1 = 0.1 + 0.2 + 0.3;
        let s2 = 0.3 + 0.2 + 0.1;
        assert!(ulp_distance(s1, s2) <= 4);
    }

    #[test]
    fn policy_accepts_reorder_noise_and_rejects_defects() {
        let p = ValuePolicy::default();
        assert!(p.accepts(0.1 + 0.2, 0.2 + 0.1));
        assert!(!p.accepts(1.0, 2.0));
        assert!(!p.accepts(1.0, f64::NAN));
        // A cancellation residue near zero is accepted via the abs floor.
        assert!(p.accepts(1e-13, -1e-13));
    }

    #[test]
    fn canonicalize_drops_explicit_zeros_and_cancelled_duplicates() {
        // A CSR that stores an explicit zero at (1,2)…
        let with_zero = Csr::from_parts(2, 4, vec![0, 1, 2], vec![1, 2], vec![2.0, 0.0]).unwrap();
        let c = canonicalize(&with_zero);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.row(0), (&[1u32][..], &[2.0][..]));
        // …and duplicate COO pushes that cancel to exactly zero.
        let mut coo = Coo::new(2, 4);
        coo.push(0, 3, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(0, 3, -1.0);
        let c = canonicalize(&coo.to_csr());
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.row(0).0, &[1u32][..]);
    }

    #[test]
    fn compare_reports_first_difference() {
        let a = Csr::<f64>::identity(3);
        let b = a.map_values(|v| v + 1e-15);
        assert!(compare_csr(&a, &b, &ValuePolicy::default()).is_ok());
        let c = a.map_values(|v| v * 2.0);
        match compare_csr(&c, &a, &ValuePolicy::default()) {
            Err(Mismatch::Value { row: 0, col: 0, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        match compare_csr(&coo.to_csr(), &a, &ValuePolicy::default()) {
            Err(Mismatch::Pattern { row: 0, .. }) | Err(Mismatch::RowNnz { row: 0, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
