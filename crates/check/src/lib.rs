#![warn(missing_docs)]

//! # tsg-check — verification subsystem for the TileSpGEMM workspace
//!
//! The single correctness authority the workspace's tests and CI run
//! against (DESIGN.md §10):
//!
//! * [`compare`] — the canonical product form (sorted columns, duplicates
//!   summed, explicit zeros dropped) and the documented [`ValuePolicy`]
//!   under which reordered float summations are compared.
//! * [`oracle`] — the differential oracle: one operand pair driven through
//!   the full `Config` knob sweep of the tiled pipeline plus all five
//!   baseline methods, compared bitwise (scheduling-tier knobs) or under
//!   the value policy (summation-order-tier knobs) against the serial
//!   Gustavson gold, with a balanced-tracker check on every run. The op-
//!   expression axes ride the same sweep: the structural-mask kernel vs
//!   `hadamard(gold, mask)`, the tiled linear combination vs the
//!   elementwise CSR gold, and a handle-to-handle chain vs the composed
//!   gold product.
//! * [`corpus`] — the deterministic adversarial corpus, addressable by
//!   stable name + seed so failures reproduce from one CLI line.
//! * [`shrink`] — a greedy delta-debugging shrinker that minimizes any
//!   failing operand pair before it is reported.
//!
//! The `tsg-check` binary fronts all of this:
//! `cargo run -p tsg-check -- sweep|corpus|shrink`.
//!
//! With `--features failpoints` the crate's test suite additionally drives
//! the engine's fault-injection sites (`tsg_runtime::failpoint`).

pub mod compare;
pub mod corpus;
pub mod oracle;
pub mod shrink;

pub use compare::{canonicalize, compare_csr, ulp_distance, Mismatch, ValuePolicy};
pub use oracle::{
    check_add, check_chain, check_configs, check_masked, check_methods, check_pair, check_simd,
    OracleFailure, OracleReport,
};
pub use shrink::{shrink_pair, Shrunk};
