//! The differential oracle.
//!
//! For one operand pair the oracle establishes the serial Gustavson product
//! ([`tsg_baselines::reference::reference_spgemm`]) as gold, then drives
//! every implementation the workspace ships and compares each against it:
//!
//! * **Bitwise tier** — the tiled pipeline under every knob that must not
//!   change a single bit of the output: scheduling × pair-reuse ×
//!   intersection strategy × recorder. These variants reorder *scheduling*,
//!   never the per-tile arithmetic, so their tiled outputs are compared for
//!   exact equality against the default-config run.
//! * **Value tier** — knobs and methods that legitimately reorder the float
//!   summation (accumulator policy × `tnnz` threshold, and all five
//!   baseline methods). Their products are compared against gold under the
//!   [`ValuePolicy`] after canonicalization.
//!
//! Every single run uses a fresh [`MemTracker`] and the oracle asserts it
//! returns to zero bytes — a leak in any variant is a failure even when the
//! product is right.

use tilespgemm_core::{
    multiply_csr, multiply_csr_with, AccumulatorKind, Config, IntersectionKind, Scheduling,
};
use tsg_baselines::reference::reference_spgemm;
use tsg_baselines::{run_method, MethodKind};
use tsg_matrix::Csr;
use tsg_runtime::{CollectingRecorder, MemTracker};

use crate::compare::{compare_csr, Mismatch, ValuePolicy};

/// A passed oracle run.
#[derive(Debug, Clone, Copy)]
pub struct OracleReport {
    /// Implementation variants checked (pipeline configs + baselines).
    pub variants: usize,
    /// Stored nonzeros of the canonical gold product.
    pub gold_nnz: usize,
}

/// A failed oracle run: which variant diverged, and how.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Human-readable variant label (e.g. `tile[sched=binned,reuse=off]`).
    pub variant: String,
    /// The first difference found.
    pub mismatch: Mismatch,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variant {}: {}", self.variant, self.mismatch)
    }
}

impl std::error::Error for OracleFailure {}

fn fail(variant: impl Into<String>, mismatch: Mismatch) -> OracleFailure {
    OracleFailure {
        variant: variant.into(),
        mismatch,
    }
}

fn run_detail(variant: &str, e: impl std::fmt::Display) -> OracleFailure {
    fail(
        variant,
        Mismatch::Run {
            detail: format!("run failed: {e}"),
        },
    )
}

/// Runs the tiled pipeline once under `config` with a balanced-tracker
/// check, returning the raw output.
fn run_tile(
    variant: &str,
    a: &Csr<f64>,
    b: &Csr<f64>,
    config: &Config,
) -> Result<tilespgemm_core::Output<f64>, OracleFailure> {
    let tracker = MemTracker::new();
    let out = multiply_csr(a, b, config, &tracker).map_err(|e| run_detail(variant, e))?;
    balanced(variant, &tracker)?;
    Ok(out)
}

fn balanced(variant: &str, tracker: &MemTracker) -> Result<(), OracleFailure> {
    if tracker.current_bytes() != 0 {
        return Err(fail(
            variant,
            Mismatch::Run {
                detail: format!(
                    "tracker leaked {} bytes after the multiply",
                    tracker.current_bytes()
                ),
            },
        ));
    }
    Ok(())
}

/// Checks the five baseline methods (and the tiled pipeline run through the
/// same entry point) against gold. Returns how many variants were checked.
pub fn check_methods(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<usize, OracleFailure> {
    let gold = reference_spgemm(a, b);
    let mut checked = 0;
    for kind in MethodKind::all() {
        let variant = format!("method[{}]", kind.name());
        let tracker = MemTracker::new();
        let got = run_method(kind, a, b, &tracker).map_err(|e| run_detail(&variant, e))?;
        // The methods' documented accounting contract differs from the
        // pipeline's: temporaries and inputs are credited back, but the
        // long-lived *output* allocation stays attributed until reset (see
        // `tsg_runtime::tracker`). So the leftover must be bounded by the
        // peak, not zero.
        if tracker.current_bytes() > tracker.peak_bytes() {
            return Err(fail(
                &variant,
                Mismatch::Run {
                    detail: format!(
                        "tracker leftover {} bytes exceeds peak {}",
                        tracker.current_bytes(),
                        tracker.peak_bytes()
                    ),
                },
            ));
        }
        compare_csr(&got.c, &gold, policy).map_err(|m| fail(&variant, m))?;
        checked += 1;
    }
    Ok(checked)
}

/// Sweeps the tiled pipeline's full `Config` space. Bitwise-tier knobs are
/// compared exactly against the default-config run; value-tier knobs
/// (accumulator × threshold) against gold under `policy`. Returns how many
/// variants were checked.
pub fn check_configs(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<usize, OracleFailure> {
    let gold = reference_spgemm(a, b);
    let pivot = run_tile("tile[default]", a, b, &Config::default())?;
    compare_csr(&pivot.to_csr(), &gold, policy).map_err(|m| fail("tile[default]", m))?;
    let mut checked = 1;

    // Bitwise tier: scheduling × pair-reuse × intersection never touch the
    // per-tile arithmetic order, so the tiled product must be identical.
    for scheduling in [
        Scheduling::PerTile,
        Scheduling::PerTileRow,
        Scheduling::Binned,
        Scheduling::Auto,
    ] {
        for pair_reuse in [true, false] {
            for intersection in [
                IntersectionKind::BinarySearch,
                IntersectionKind::Merge,
                IntersectionKind::Bitmap,
                IntersectionKind::Adaptive,
            ] {
                let variant = format!(
                    "tile[sched={scheduling:?},reuse={},isect={intersection:?}]",
                    if pair_reuse { "on" } else { "off" }
                );
                let cfg = Config::builder()
                    .scheduling(scheduling)
                    .pair_reuse(pair_reuse)
                    .intersection(intersection)
                    .build();
                let out = run_tile(&variant, a, b, &cfg)?;
                if out.c != pivot.c {
                    return Err(fail(
                        variant,
                        Mismatch::Run {
                            detail: "tiled output is not bitwise identical to the default run"
                                .to_string(),
                        },
                    ));
                }
                checked += 1;
            }
        }
    }

    // Recorder attachment must also be invisible to the product.
    {
        let variant = "tile[recorder=collecting]";
        let tracker = MemTracker::new();
        let recorder = CollectingRecorder::new();
        let out = multiply_csr_with(a, b, &Config::default(), &tracker, &recorder, 1)
            .map_err(|e| run_detail(variant, e))?;
        balanced(variant, &tracker)?;
        if out.c != pivot.c {
            return Err(fail(
                variant,
                Mismatch::Run {
                    detail: "recorded run is not bitwise identical to the default run".to_string(),
                },
            ));
        }
        checked += 1;
    }

    // Value tier: accumulator policy and threshold reorder the summation,
    // so these compare against gold under the policy — including thresholds
    // straddling the paper's 192 on both sides and both degenerate ends.
    for accumulator in [
        AccumulatorKind::Adaptive,
        AccumulatorKind::AlwaysSparse,
        AccumulatorKind::AlwaysDense,
    ] {
        for tnnz in [0usize, 64, 192, 256] {
            let variant = format!("tile[acc={accumulator:?},tnnz={tnnz}]");
            let cfg = Config::builder()
                .accumulator(accumulator)
                .tnnz_threshold(tnnz)
                .build();
            let out = run_tile(&variant, a, b, &cfg)?;
            compare_csr(&out.to_csr(), &gold, policy).map_err(|m| fail(&variant, m))?;
            checked += 1;
        }
    }
    Ok(checked)
}

/// The full oracle: config sweep plus all baseline methods.
pub fn check_pair(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<OracleReport, OracleFailure> {
    let variants = check_configs(a, b, policy)? + check_methods(a, b, policy)?;
    Ok(OracleReport {
        variants,
        gold_nnz: crate::compare::canonicalize(&reference_spgemm(a, b)).nnz(),
    })
}
