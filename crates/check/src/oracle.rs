//! The differential oracle.
//!
//! For one operand pair the oracle establishes the serial Gustavson product
//! ([`tsg_baselines::reference::reference_spgemm`]) as gold, then drives
//! every implementation the workspace ships and compares each against it:
//!
//! * **Bitwise tier** — the tiled pipeline under every knob that must not
//!   change a single bit of the output: scheduling × pair-reuse ×
//!   intersection strategy × recorder. These variants reorder *scheduling*,
//!   never the per-tile arithmetic, so their tiled outputs are compared for
//!   exact equality against the default-config run.
//! * **Value tier** — knobs and methods that legitimately reorder the float
//!   summation (accumulator policy × `tnnz` threshold, and all five
//!   baseline methods). Their products are compared against gold under the
//!   [`ValuePolicy`] after canonicalization.
//! * **SIMD-dispatch tier** ([`check_simd`]) — every [`SimdPolicy`] against
//!   the forced-scalar run, *bitwise*, across the plain, masked and chained
//!   products: the vector kernels are written to preserve the scalar
//!   per-slot addition order exactly.
//!
//! Every single run uses a fresh [`MemTracker`] and the oracle asserts it
//! returns to zero bytes — a leak in any variant is a failure even when the
//! product is right.

use tilespgemm_core::{
    multiply, multiply_csr, multiply_csr_with, multiply_masked, AccumulatorKind, Config,
    IntersectionKind, Scheduling, SimdPolicy,
};
use tsg_baselines::reference::reference_spgemm;
use tsg_baselines::{run_method, MethodKind};
use tsg_matrix::{ops, Coo, Csr, TileMatrix};
use tsg_runtime::{CollectingRecorder, MemTracker};

use crate::compare::{compare_csr, Mismatch, ValuePolicy};

/// A passed oracle run.
#[derive(Debug, Clone, Copy)]
pub struct OracleReport {
    /// Implementation variants checked (pipeline configs + baselines).
    pub variants: usize,
    /// Stored nonzeros of the canonical gold product.
    pub gold_nnz: usize,
}

/// A failed oracle run: which variant diverged, and how.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Human-readable variant label (e.g. `tile[sched=binned,reuse=off]`).
    pub variant: String,
    /// The first difference found.
    pub mismatch: Mismatch,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variant {}: {}", self.variant, self.mismatch)
    }
}

impl std::error::Error for OracleFailure {}

fn fail(variant: impl Into<String>, mismatch: Mismatch) -> OracleFailure {
    OracleFailure {
        variant: variant.into(),
        mismatch,
    }
}

fn run_detail(variant: &str, e: impl std::fmt::Display) -> OracleFailure {
    fail(
        variant,
        Mismatch::Run {
            detail: format!("run failed: {e}"),
        },
    )
}

/// Runs the tiled pipeline once under `config` with a balanced-tracker
/// check, returning the raw output.
fn run_tile(
    variant: &str,
    a: &Csr<f64>,
    b: &Csr<f64>,
    config: &Config,
) -> Result<tilespgemm_core::Output<f64>, OracleFailure> {
    let tracker = MemTracker::new();
    let out = multiply_csr(a, b, config, &tracker).map_err(|e| run_detail(variant, e))?;
    balanced(variant, &tracker)?;
    Ok(out)
}

fn balanced(variant: &str, tracker: &MemTracker) -> Result<(), OracleFailure> {
    if tracker.current_bytes() != 0 {
        return Err(fail(
            variant,
            Mismatch::Run {
                detail: format!(
                    "tracker leaked {} bytes after the multiply",
                    tracker.current_bytes()
                ),
            },
        ));
    }
    Ok(())
}

/// Checks the five baseline methods (and the tiled pipeline run through the
/// same entry point) against gold. Returns how many variants were checked.
pub fn check_methods(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<usize, OracleFailure> {
    let gold = reference_spgemm(a, b);
    let mut checked = 0;
    for kind in MethodKind::all() {
        let variant = format!("method[{}]", kind.name());
        let tracker = MemTracker::new();
        let got = run_method(kind, a, b, &tracker).map_err(|e| run_detail(&variant, e))?;
        // The methods' documented accounting contract differs from the
        // pipeline's: temporaries and inputs are credited back, but the
        // long-lived *output* allocation stays attributed until reset (see
        // `tsg_runtime::tracker`). So the leftover must be bounded by the
        // peak, not zero.
        if tracker.current_bytes() > tracker.peak_bytes() {
            return Err(fail(
                &variant,
                Mismatch::Run {
                    detail: format!(
                        "tracker leftover {} bytes exceeds peak {}",
                        tracker.current_bytes(),
                        tracker.peak_bytes()
                    ),
                },
            ));
        }
        compare_csr(&got.c, &gold, policy).map_err(|m| fail(&variant, m))?;
        checked += 1;
    }
    Ok(checked)
}

/// Sweeps the tiled pipeline's full `Config` space. Bitwise-tier knobs are
/// compared exactly against the default-config run; value-tier knobs
/// (accumulator × threshold) against gold under `policy`. Returns how many
/// variants were checked.
pub fn check_configs(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<usize, OracleFailure> {
    let gold = reference_spgemm(a, b);
    let pivot = run_tile("tile[default]", a, b, &Config::default())?;
    compare_csr(&pivot.to_csr(), &gold, policy).map_err(|m| fail("tile[default]", m))?;
    let mut checked = 1;

    // Bitwise tier: scheduling × pair-reuse × intersection never touch the
    // per-tile arithmetic order, so the tiled product must be identical.
    for scheduling in [
        Scheduling::PerTile,
        Scheduling::PerTileRow,
        Scheduling::Binned,
        Scheduling::Auto,
    ] {
        for pair_reuse in [true, false] {
            for intersection in [
                IntersectionKind::BinarySearch,
                IntersectionKind::Merge,
                IntersectionKind::Bitmap,
                IntersectionKind::Adaptive,
            ] {
                let variant = format!(
                    "tile[sched={scheduling:?},reuse={},isect={intersection:?}]",
                    if pair_reuse { "on" } else { "off" }
                );
                let cfg = Config::builder()
                    .scheduling(scheduling)
                    .pair_reuse(pair_reuse)
                    .intersection(intersection)
                    .build();
                let out = run_tile(&variant, a, b, &cfg)?;
                if out.c != pivot.c {
                    return Err(fail(
                        variant,
                        Mismatch::Run {
                            detail: "tiled output is not bitwise identical to the default run"
                                .to_string(),
                        },
                    ));
                }
                checked += 1;
            }
        }
    }

    // Recorder attachment must also be invisible to the product.
    {
        let variant = "tile[recorder=collecting]";
        let tracker = MemTracker::new();
        let recorder = CollectingRecorder::new();
        let out = multiply_csr_with(a, b, &Config::default(), &tracker, &recorder, 1)
            .map_err(|e| run_detail(variant, e))?;
        balanced(variant, &tracker)?;
        if out.c != pivot.c {
            return Err(fail(
                variant,
                Mismatch::Run {
                    detail: "recorded run is not bitwise identical to the default run".to_string(),
                },
            ));
        }
        checked += 1;
    }

    // Value tier: accumulator policy and threshold reorder the summation,
    // so these compare against gold under the policy — including thresholds
    // straddling the paper's 192 on both sides and both degenerate ends.
    for accumulator in [
        AccumulatorKind::Adaptive,
        AccumulatorKind::AlwaysSparse,
        AccumulatorKind::AlwaysDense,
    ] {
        for tnnz in [0usize, 64, 192, 256] {
            let variant = format!("tile[acc={accumulator:?},tnnz={tnnz}]");
            let cfg = Config::builder()
                .accumulator(accumulator)
                .tnnz_threshold(tnnz)
                .build();
            let out = run_tile(&variant, a, b, &cfg)?;
            compare_csr(&out.to_csr(), &gold, policy).map_err(|m| fail(&variant, m))?;
            checked += 1;
        }
    }
    Ok(checked)
}

/// Masked/add runs free their inputs but keep the long-lived output
/// allocation attributed until reset (same contract as the baseline
/// methods), so the leftover must be bounded by the peak, not zero.
fn bounded(variant: &str, tracker: &MemTracker) -> Result<(), OracleFailure> {
    if tracker.current_bytes() > tracker.peak_bytes() {
        return Err(fail(
            variant,
            Mismatch::Run {
                detail: format!(
                    "tracker leftover {} bytes exceeds peak {}",
                    tracker.current_bytes(),
                    tracker.peak_bytes()
                ),
            },
        ));
    }
    Ok(())
}

/// A unit-valued structural mask keeping the entries of `pattern` whose
/// coordinates satisfy `keep`. Values are 1.0 so the same matrix doubles
/// as the Hadamard multiplicand when building the masked gold.
fn pattern_mask(pattern: &Csr<f64>, keep: impl Fn(u32, u32) -> bool) -> Csr<f64> {
    let mut coo = Coo::new(pattern.nrows, pattern.ncols);
    for r in 0..pattern.nrows {
        let (cols, _) = pattern.row(r);
        for &c in cols {
            if keep(r as u32, c) {
                coo.push(r as u32, c, 1.0);
            }
        }
    }
    coo.to_csr()
}

/// Checks the structural-mask kernel (`C⟨M⟩ = A·B`) against the composed
/// gold `hadamard(reference(a, b), mask)` for a full mask (every product
/// entry survives) and a checkerboard-thinned one (roughly half pruned —
/// exercises both tile-level and in-tile rejection). Returns how many
/// variants were checked.
pub fn check_masked(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<usize, OracleFailure> {
    let gold = reference_spgemm(a, b);
    let ta = TileMatrix::from_csr(a);
    let tb = TileMatrix::from_csr(b);
    let masks = [
        ("masked[full]", pattern_mask(&gold, |_, _| true)),
        (
            "masked[checkerboard]",
            pattern_mask(&gold, |r, c| (r + c).is_multiple_of(2)),
        ),
    ];
    let mut checked = 0;
    for (variant, mask) in &masks {
        let tracker = MemTracker::new();
        let tm = TileMatrix::from_csr(mask);
        let out = multiply_masked(&ta, &tb, &tm, &Config::default(), &tracker)
            .map_err(|e| run_detail(variant, e))?;
        bounded(variant, &tracker)?;
        let expected = ops::hadamard(&gold, mask);
        compare_csr(&out.to_csr(), &expected, policy).map_err(|m| fail(*variant, m))?;
        checked += 1;
    }
    Ok(checked)
}

/// Checks the tiled linear combination `αX + βY` against the elementwise
/// CSR gold [`ops::add`]. Both operands are derived from `a` (the corpus
/// pair may be rectangular, and addition needs matching shapes): `X = a`
/// and `Y` a checkerboard-thinned, value-shifted variant so the union has
/// overlap-only, X-only and Y-absent positions. Sweeps identity, scaled
/// and subtracting coefficient pairs — the last exercises the explicit-zero
/// cancellation path, which canonicalization folds away on both sides.
/// Returns how many variants were checked.
pub fn check_add(a: &Csr<f64>, policy: &ValuePolicy) -> Result<usize, OracleFailure> {
    let x = a.clone();
    let mut coo = Coo::new(a.nrows, a.ncols);
    for r in 0..a.nrows {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if (r as u32 + c).is_multiple_of(2) {
                coo.push(r as u32, c, 2.0 * v + 1.0);
            }
        }
    }
    let y = coo.to_csr();
    let tx = TileMatrix::from_csr(&x);
    let ty = TileMatrix::from_csr(&y);
    let mut checked = 0;
    for (alpha, beta) in [(1.0, 1.0), (2.0, -0.5), (1.0, -1.0)] {
        let variant = format!("add[alpha={alpha},beta={beta}]");
        let got = tilespgemm_core::add(alpha, &tx, beta, &ty);
        let expected = ops::add(alpha, &x, beta, &y);
        compare_csr(&got.to_csr(), &expected, policy).map_err(|m| fail(&variant, m))?;
        checked += 1;
    }
    Ok(checked)
}

/// Checks a two-link chain the way the engine folds one — the first link's
/// *tiled* product fed straight back as the next link's left operand, no
/// CSR round-trip — against the composed gold
/// `reference(reference(a, b), d)`, plus a variant with a structural mask
/// on the final link. `d` is a deterministic square matrix (scaled
/// diagonal plus an off-diagonal band) sized to `b`'s column count.
/// Returns how many variants were checked.
pub fn check_chain(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<usize, OracleFailure> {
    let n = b.ncols;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i as u32, i as u32, 1.0 + i as f64 * 0.25);
        if n > 1 {
            coo.push(i as u32, ((i + 3) % n) as u32, -0.5);
        }
    }
    let d = coo.to_csr();
    let gold = reference_spgemm(&reference_spgemm(a, b), &d);
    let ta = TileMatrix::from_csr(a);
    let tb = TileMatrix::from_csr(b);
    let td = TileMatrix::from_csr(&d);
    let config = Config::default();
    let mut checked = 0;

    // Unmasked: fold the links handle-to-handle on tiled intermediates.
    {
        let variant = "chain[a*b*d]";
        let tracker = MemTracker::new();
        let cur = multiply(&ta, &tb, &config, &tracker).map_err(|e| run_detail(variant, e))?;
        let out = multiply(&cur.c, &td, &config, &tracker).map_err(|e| run_detail(variant, e))?;
        balanced(variant, &tracker)?;
        compare_csr(&out.to_csr(), &gold, policy).map_err(|m| fail(variant, m))?;
        checked += 1;
    }

    // Mask pushed into the final link only, per the engine's pushdown rule.
    {
        let variant = "chain[a*b*d,masked]";
        let mask = pattern_mask(&gold, |r, c| (r + c).is_multiple_of(2));
        let tm = TileMatrix::from_csr(&mask);
        let tracker = MemTracker::new();
        let cur = multiply(&ta, &tb, &config, &tracker).map_err(|e| run_detail(variant, e))?;
        let out = multiply_masked(&cur.c, &td, &tm, &config, &tracker)
            .map_err(|e| run_detail(variant, e))?;
        bounded(variant, &tracker)?;
        let expected = ops::hadamard(&gold, &mask);
        compare_csr(&out.to_csr(), &expected, policy).map_err(|m| fail(variant, m))?;
        checked += 1;
    }
    Ok(checked)
}

/// Checks the SIMD dispatch axis: every [`SimdPolicy`] must be **bitwise**
/// identical to the forced-scalar run. The vector kernels preserve the
/// per-output-slot addition order (separate mul/add roundings, no FMA, lane
/// blending — see the `tilespgemm_core::simd` module docs), so unlike the
/// accumulator value tier this axis demands exact equality, and it demands
/// it across the plain product (under `tnnz` thresholds straddling the
/// dense-tile promotion), the masked kernel, and a two-link tiled chain.
/// Returns how many variants were checked.
pub fn check_simd(a: &Csr<f64>, b: &Csr<f64>) -> Result<usize, OracleFailure> {
    const POLICIES: [(&str, SimdPolicy); 3] = [
        ("auto", SimdPolicy::Auto),
        ("force-simd", SimdPolicy::ForceSimd),
        ("force-dense-tile", SimdPolicy::ForceDenseTile),
    ];
    let not_identical = |variant: String| {
        fail(
            variant,
            Mismatch::Run {
                detail: "output is not bitwise identical to the forced-scalar run".to_string(),
            },
        )
    };
    let mut checked = 0;

    // Plain product, with the accumulator threshold on both sides of the
    // dense-tile promotion point so sparse-SIMD, dense-SIMD and the fast
    // path all get exercised against their scalar references.
    for tnnz in [64usize, 192] {
        let pivot_cfg = Config::builder()
            .simd(SimdPolicy::ForceScalar)
            .tnnz_threshold(tnnz)
            .build();
        let pivot = run_tile(&format!("simd[scalar,tnnz={tnnz}]"), a, b, &pivot_cfg)?;
        checked += 1;
        for (name, policy) in POLICIES {
            let variant = format!("simd[{name},tnnz={tnnz}]");
            let cfg = Config::builder().simd(policy).tnnz_threshold(tnnz).build();
            let out = run_tile(&variant, a, b, &cfg)?;
            if out.c != pivot.c {
                return Err(not_identical(variant));
            }
            checked += 1;
        }
    }

    // Masked kernel: the checkerboard mask forces the remap of sparse
    // kernels to their dense counterparts (products land outside the mask).
    {
        let gold = reference_spgemm(a, b);
        let mask = pattern_mask(&gold, |r, c| (r + c).is_multiple_of(2));
        let ta = TileMatrix::from_csr(a);
        let tb = TileMatrix::from_csr(b);
        let tm = TileMatrix::from_csr(&mask);
        let run = |variant: &str, policy: SimdPolicy| {
            let tracker = MemTracker::new();
            let cfg = Config::builder().simd(policy).build();
            let out = multiply_masked(&ta, &tb, &tm, &cfg, &tracker)
                .map_err(|e| run_detail(variant, e))?;
            bounded(variant, &tracker)?;
            Ok::<_, OracleFailure>(out)
        };
        let pivot = run("simd[scalar,masked]", SimdPolicy::ForceScalar)?;
        checked += 1;
        for (name, policy) in POLICIES {
            let variant = format!("simd[{name},masked]");
            let out = run(&variant, policy)?;
            if out.c != pivot.c {
                return Err(not_identical(variant));
            }
            checked += 1;
        }
    }

    // Two-link chain on tiled intermediates: the second link consumes a
    // SIMD-produced tiled matrix, so divergence would compound here first.
    // `d` is the same deterministic diagonal-plus-band shape `check_chain`
    // folds with.
    {
        let n = b.ncols;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i as u32, i as u32, 1.0 + i as f64 * 0.25);
            if n > 1 {
                coo.push(i as u32, ((i + 3) % n) as u32, -0.5);
            }
        }
        let d = coo.to_csr();
        let ta = TileMatrix::from_csr(a);
        let tb = TileMatrix::from_csr(b);
        let td = TileMatrix::from_csr(&d);
        let run = |variant: &str, policy: SimdPolicy| {
            let tracker = MemTracker::new();
            let cfg = Config::builder().simd(policy).build();
            let cur = multiply(&ta, &tb, &cfg, &tracker).map_err(|e| run_detail(variant, e))?;
            let out = multiply(&cur.c, &td, &cfg, &tracker).map_err(|e| run_detail(variant, e))?;
            balanced(variant, &tracker)?;
            Ok::<_, OracleFailure>(out)
        };
        let pivot = run("simd[scalar,chain]", SimdPolicy::ForceScalar)?;
        checked += 1;
        for (name, policy) in POLICIES {
            let variant = format!("simd[{name},chain]");
            let out = run(&variant, policy)?;
            if out.c != pivot.c {
                return Err(not_identical(variant));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// The full oracle: config sweep, all baseline methods, the op-expression
/// axes (masked product, linear combination, chained product), and the
/// SIMD bitwise-dispatch axis.
pub fn check_pair(
    a: &Csr<f64>,
    b: &Csr<f64>,
    policy: &ValuePolicy,
) -> Result<OracleReport, OracleFailure> {
    let variants = check_configs(a, b, policy)?
        + check_methods(a, b, policy)?
        + check_masked(a, b, policy)?
        + check_add(a, policy)?
        + check_chain(a, b, policy)?
        + check_simd(a, b)?;
    Ok(OracleReport {
        variants,
        gold_nnz: crate::compare::canonicalize(&reference_spgemm(a, b)).nnz(),
    })
}
