//! Greedy input minimization for failing operand pairs.
//!
//! Delta-debugging over the operands' entry lists: repeatedly try dropping
//! chunks of entries (halving the chunk size down to single entries) from
//! `A`, then from `B`, keeping any removal that preserves the failure;
//! iterate to a fixpoint, then trim unused trailing dimensions. The result
//! is the small reproducer `tsg-check sweep` prints and CI uploads.

use tsg_matrix::{Coo, Csr};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Minimized left operand (still failing).
    pub a: Csr<f64>,
    /// Minimized right operand (still failing).
    pub b: Csr<f64>,
    /// Predicate evaluations spent.
    pub tests: usize,
}

/// `(row, col, value)` entries of a CSR matrix.
pub fn triplets(m: &Csr<f64>) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::with_capacity(m.nnz());
    for r in 0..m.nrows {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            out.push((r as u32, c, v));
        }
    }
    out
}

/// Rebuilds a CSR from triplets at fixed dimensions.
pub fn from_triplets(nrows: usize, ncols: usize, entries: &[(u32, u32, f64)]) -> Csr<f64> {
    let mut coo = Coo::new(nrows, ncols);
    for &(r, c, v) in entries {
        coo.push(r, c, v);
    }
    coo.to_csr()
}

/// One ddmin pass over `entries`: tries dropping chunks, keeping drops that
/// still satisfy `fails`. Returns whether anything was removed.
fn reduce(
    entries: &mut Vec<(u32, u32, f64)>,
    mut fails: impl FnMut(&[(u32, u32, f64)]) -> bool,
) -> bool {
    let mut removed_any = false;
    let mut chunk = (entries.len() / 2).max(1);
    while !entries.is_empty() {
        let mut start = 0;
        let mut removed_this_size = false;
        while start < entries.len() {
            let end = (start + chunk).min(entries.len());
            let mut candidate = Vec::with_capacity(entries.len() - (end - start));
            candidate.extend_from_slice(&entries[..start]);
            candidate.extend_from_slice(&entries[end..]);
            if fails(&candidate) {
                *entries = candidate;
                removed_any = true;
                removed_this_size = true;
                // Re-test the same offset: it now holds different entries.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_this_size {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    removed_any
}

/// Minimizes a failing pair. `fails` must return `true` for the original
/// operands (otherwise they are returned unchanged); the returned pair is a
/// local minimum — removing any single remaining entry, or trimming the
/// dimensions further, makes the failure disappear.
pub fn shrink_pair(
    a: &Csr<f64>,
    b: &Csr<f64>,
    mut fails: impl FnMut(&Csr<f64>, &Csr<f64>) -> bool,
) -> Shrunk {
    let mut tests = 0;
    let mut check = |a: &Csr<f64>, b: &Csr<f64>, tests: &mut usize| {
        *tests += 1;
        fails(a, b)
    };
    if !check(a, b, &mut tests) {
        return Shrunk {
            a: a.clone(),
            b: b.clone(),
            tests,
        };
    }
    let (mut ta, mut tb) = (triplets(a), triplets(b));
    let (nrows_a, ncols_a) = (a.nrows, a.ncols);
    let (nrows_b, ncols_b) = (b.nrows, b.ncols);
    loop {
        let cur_b = from_triplets(nrows_b, ncols_b, &tb);
        let changed_a = reduce(&mut ta, |cand| {
            check(&from_triplets(nrows_a, ncols_a, cand), &cur_b, &mut tests)
        });
        let cur_a = from_triplets(nrows_a, ncols_a, &ta);
        let changed_b = reduce(&mut tb, |cand| {
            check(&cur_a, &from_triplets(nrows_b, ncols_b, cand), &mut tests)
        });
        if !changed_a && !changed_b {
            break;
        }
    }
    let mut best_a = from_triplets(nrows_a, ncols_a, &ta);
    let mut best_b = from_triplets(nrows_b, ncols_b, &tb);
    // Trim trailing dimensions the surviving entries never touch. The inner
    // dimension must stay shared between the operands.
    let used_rows_a = ta.iter().map(|e| e.0 + 1).max().unwrap_or(1) as usize;
    let used_cols_b = tb.iter().map(|e| e.1 + 1).max().unwrap_or(1) as usize;
    let used_inner = ta
        .iter()
        .map(|e| e.1 + 1)
        .chain(tb.iter().map(|e| e.0 + 1))
        .max()
        .unwrap_or(1) as usize;
    let trimmed_a = from_triplets(used_rows_a, used_inner, &ta);
    let trimmed_b = from_triplets(used_inner, used_cols_b, &tb);
    if check(&trimmed_a, &trimmed_b, &mut tests) {
        best_a = trimmed_a;
        best_b = trimmed_b;
    }
    Shrunk {
        a: best_a,
        b: best_b,
        tests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_round_trip() {
        let m = tsg_gen::random::erdos_renyi(20, 30, 80, 5);
        let t = triplets(&m);
        let back = from_triplets(20, 30, &t);
        assert_eq!(m.content_hash(), back.content_hash());
    }

    #[test]
    fn shrinks_to_the_single_poison_entry() {
        // Failure: "A contains an entry with value 666 anywhere".
        let mut ta = triplets(&tsg_gen::random::erdos_renyi(40, 40, 200, 9));
        ta.push((17, 23, 666.0));
        let a = from_triplets(40, 40, &ta);
        let b = tsg_gen::random::erdos_renyi(40, 40, 150, 10);
        let shrunk = shrink_pair(&a, &b, |a, _| {
            triplets(a).iter().any(|&(_, _, v)| v == 666.0)
        });
        assert_eq!(shrunk.a.nnz(), 1);
        assert_eq!(shrunk.b.nnz(), 0);
        assert_eq!(triplets(&shrunk.a), vec![(17, 23, 666.0)]);
        // Dimensions were trimmed to the surviving entry.
        assert_eq!(shrunk.a.nrows, 18);
        assert!(shrunk.tests > 1);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let a = tsg_gen::random::erdos_renyi(10, 10, 30, 1);
        let shrunk = shrink_pair(&a, &a, |_, _| false);
        assert_eq!(shrunk.a.content_hash(), a.content_hash());
        assert_eq!(shrunk.tests, 1);
    }
}
