//! The deterministic adversarial corpus.
//!
//! Each case is an operand pair `(A, B)` addressable by a stable name plus
//! a seed, so any failure reproduces from one CLI line
//! (`tsg-check sweep --case NAME --seed N`). The cases target the places
//! the tiled pipeline can silently diverge from row-row SpGEMM: the 16×16
//! tile boundaries, the 192-nonzero sparse/dense accumulator threshold, the
//! step-1 tile prediction (which may allocate tiles whose element-level
//! intersection is empty), duplicate and cancelling inputs, and the skewed
//! generator families the paper evaluates on.

use tsg_gen::suite::GenSpec;
use tsg_matrix::{Coo, Csr, TILE_DIM};

/// One corpus entry: stable name plus what it stresses.
#[derive(Debug, Clone, Copy)]
pub struct CaseSpec {
    /// Stable case name, accepted by `tsg-check sweep --case`.
    pub name: &'static str,
    /// What the case is designed to break.
    pub summary: &'static str,
}

/// Every corpus case, in sweep order.
pub const CASES: &[CaseSpec] = &[
    CaseSpec {
        name: "empty",
        summary: "both operands all-zero: no tiles anywhere in the pipeline",
    },
    CaseSpec {
        name: "identity",
        summary: "I*I: strictly diagonal tiles, one nonzero each",
    },
    CaseSpec {
        name: "permutation",
        summary: "P*Q for random permutations: product is again a permutation",
    },
    CaseSpec {
        name: "dense-tile-row",
        summary: "one fully dense tile row in A against a scattered B",
    },
    CaseSpec {
        name: "tnnz-192",
        summary: "single output tile with exactly tnnz=192 nonzeros (sparse accumulator)",
    },
    CaseSpec {
        name: "tnnz-193",
        summary: "single output tile with 193 nonzeros (first dense-accumulator tile)",
    },
    CaseSpec {
        name: "dense-tile-256",
        summary: "single fully dense 256-nonzero output tile",
    },
    CaseSpec {
        name: "tile-column-b",
        summary: "every B nonzero in one tile column: maximal step-1 fan-in",
    },
    CaseSpec {
        name: "rank1-blowup",
        summary: "dense column times dense row: fully dense rank-1 product",
    },
    CaseSpec {
        name: "coo-dup",
        summary: "operands built from duplicate COO pushes, including exact cancellations",
    },
    CaseSpec {
        name: "phantom-tile",
        summary: "step-1 predicts a tile whose element intersection is empty",
    },
    CaseSpec {
        name: "cancellation",
        summary: "product values that cancel to exact numeric zero",
    },
    CaseSpec {
        name: "fem",
        summary: "FEM block structure (paper's regular family)",
    },
    CaseSpec {
        name: "rmat-skew",
        summary: "skewed R-MAT power-law graph (paper's irregular family)",
    },
    CaseSpec {
        name: "scatter-rect",
        summary: "rectangular chain A(60x90)*B(90x40)",
    },
    CaseSpec {
        name: "skew-row",
        summary: "one row of A concentrating >50% of all intermediate products",
    },
    CaseSpec {
        name: "grid-empty",
        summary: "near-empty grid product: many tile rows, almost no products each",
    },
    CaseSpec {
        name: "dense-blocks",
        summary: "block-diagonal dense 16x16 tiles: compression ~16x, zero variance",
    },
];

/// Names of all corpus cases, in sweep order.
pub fn names() -> impl Iterator<Item = &'static str> {
    CASES.iter().map(|c| c.name)
}

/// Tiny deterministic generator (xorshift64*) so corpus values depend only
/// on `(name, seed)` — no global RNG state, no platform variance.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A value in `{0.25, 0.5, …, 8.0}` — exactly representable, nonzero.
    fn val(&mut self) -> f64 {
        0.25 * (1 + self.below(32)) as f64
    }
}

fn permutation(n: usize, rng: &mut Rng) -> Csr<f64> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mut coo = Coo::new(n, n);
    for (r, &c) in perm.iter().enumerate() {
        coo.push(r as u32, c, 1.0);
    }
    coo.to_csr()
}

/// One 16×16 tile (as a whole matrix) holding exactly `nnz` entries, filled
/// in a fixed interleaved order so thresholds hit mid-tile, not row-aligned.
fn single_tile(nnz: usize, rng: &mut Rng) -> Csr<f64> {
    assert!(nnz <= TILE_DIM * TILE_DIM);
    let mut coo = Coo::new(TILE_DIM, TILE_DIM);
    let mut placed = 0;
    // First pass: positions whose linear index is not a multiple of 4
    // (exactly 192 of 256), then backfill the skipped ones.
    for pass in 0..2 {
        for lin in 0..TILE_DIM * TILE_DIM {
            let skip = lin % 4 == 0;
            if (pass == 0 && skip) || (pass == 1 && !skip) || placed == nnz {
                continue;
            }
            coo.push((lin / TILE_DIM) as u32, (lin % TILE_DIM) as u32, rng.val());
            placed += 1;
        }
    }
    coo.to_csr()
}

fn scatter(nrows: usize, ncols: usize, per_row: usize, rng: &mut Rng) -> Csr<f64> {
    let mut coo = Coo::new(nrows, ncols);
    for r in 0..nrows {
        for _ in 0..per_row {
            coo.push(r as u32, rng.below(ncols as u64) as u32, rng.val());
        }
    }
    coo.to_csr()
}

/// Builds the named case. `None` for unknown names. Same `(name, seed)`
/// always yields the same operand pair.
pub fn build(name: &str, seed: u64) -> Option<(Csr<f64>, Csr<f64>)> {
    let mut rng = Rng::new(seed.wrapping_add(0xC0FF_EE00));
    let t = TILE_DIM as u32;
    Some(match name {
        "empty" => {
            let z = Coo::new(48, 48).to_csr();
            (z.clone(), z)
        }
        "identity" => {
            let i = Csr::<f64>::identity(64);
            (i.clone(), i)
        }
        "permutation" => (permutation(64, &mut rng), permutation(64, &mut rng)),
        "dense-tile-row" => {
            let mut coo = Coo::new(64, 64);
            for r in 0..TILE_DIM as u32 {
                for c in 0..64u32 {
                    coo.push(r, c, rng.val());
                }
            }
            // Sparse remainder so the dense tile row meets real partners.
            for r in TILE_DIM as u32..64 {
                coo.push(r, r, rng.val());
                coo.push(r, rng.below(64) as u32, rng.val());
            }
            (coo.to_csr(), scatter(64, 64, 4, &mut rng))
        }
        // I · B keeps B's single tile intact, so the output tile holds
        // exactly the target nonzero count on the paper's 192 threshold.
        "tnnz-192" => (Csr::identity(TILE_DIM), single_tile(192, &mut rng)),
        "tnnz-193" => (Csr::identity(TILE_DIM), single_tile(193, &mut rng)),
        "dense-tile-256" => (Csr::identity(TILE_DIM), single_tile(256, &mut rng)),
        "tile-column-b" => {
            let a = scatter(96, 96, 6, &mut rng);
            let mut coo = Coo::new(96, 96);
            for r in 0..96u32 {
                coo.push(r, rng.below(u64::from(t)) as u32, rng.val());
                coo.push(r, rng.below(u64::from(t)) as u32, rng.val());
            }
            (a, coo.to_csr())
        }
        "rank1-blowup" => {
            let mut col = Coo::new(64, 64);
            let mut row = Coo::new(64, 64);
            for i in 0..64u32 {
                col.push(i, 0, rng.val());
                row.push(0, i, rng.val());
            }
            (col.to_csr(), row.to_csr())
        }
        "coo-dup" => {
            let dup = |rng: &mut Rng| {
                let mut coo = Coo::new(32, 32);
                for _ in 0..60 {
                    let (r, c) = (rng.below(32) as u32, rng.below(32) as u32);
                    let v = rng.val();
                    // The stored value is the *sum* of duplicate pushes.
                    coo.push(r, c, v * 0.5);
                    coo.push(r, c, v * 0.25);
                    coo.push(r, c, v * 0.25);
                }
                // A duplicate pair cancelling to exact zero: must vanish.
                let (r, c) = (rng.below(32) as u32, rng.below(32) as u32);
                let v = rng.val();
                coo.push(r, c, v);
                coo.push(r, c, -v);
                coo.to_csr()
            };
            (dup(&mut rng), dup(&mut rng))
        }
        "phantom-tile" => {
            // A's tile (0,1) covers columns {16}; B's tile (1,0) covers
            // rows {17}. Step 1 predicts output tile (0,0) from the
            // tile-level product, but the element-level intersection
            // 16 ∩ 17 is empty: the tile is allocated with zero nonzeros.
            let mut a = Coo::new(32, 32);
            let mut b = Coo::new(32, 32);
            a.push(0, t, 1.0);
            b.push(t + 1, 0, 1.0);
            // Plus one honest product away from the phantom.
            a.push(20, 20, rng.val());
            b.push(20, 20, rng.val());
            (a.to_csr(), b.to_csr())
        }
        "cancellation" => {
            // C[0][0] = A[0][0]*B[0][0] + A[0][1]*B[1][0] = v - v = 0.
            let mut a = Coo::new(32, 32);
            let mut b = Coo::new(32, 32);
            for k in 0..8u32 {
                let r = k * 4;
                let v = rng.val();
                a.push(r, r, v);
                a.push(r, r + 1, v);
                b.push(r, r, 1.0);
                b.push(r + 1, r, -1.0);
                // A surviving entry in the same rows keeps shapes honest.
                b.push(r, r + 2, rng.val());
            }
            (a.to_csr(), b.to_csr())
        }
        "fem" => {
            let a = GenSpec::Fem {
                nodes: 60,
                block: 4,
                couplings: 3,
                spread: 6,
                seed,
            }
            .build();
            (a.clone(), a)
        }
        "rmat-skew" => {
            let a = GenSpec::Rmat {
                scale: 8,
                edges: 2200,
                mild: false,
                seed,
            }
            .build();
            (a.clone(), a)
        }
        "scatter-rect" => (
            tsg_gen::random::erdos_renyi(60, 90, 420, seed.wrapping_add(11)),
            tsg_gen::random::erdos_renyi(90, 40, 320, seed.wrapping_add(12)),
        ),
        "skew-row" => {
            // Row 0 of A hits 64 heavy B rows (32 nonzeros each): 2048
            // products from one row against ~511 from everything else, so a
            // single tile row carries ~80% of the work. A uniform sampler
            // that misses it under-predicts by 4–5×; the heavy-row rule in
            // `tilespgemm_core::sample` must catch it on every seed.
            let n = 512;
            let mut a = Coo::new(n, n);
            for c in 0..64u32 {
                a.push(0, c, rng.val());
            }
            for r in 1..n as u32 {
                a.push(r, 64 + rng.below(n as u64 - 64) as u32, rng.val());
            }
            let mut b = Coo::new(n, n);
            for r in 0..64u32 {
                for _ in 0..32 {
                    b.push(r, rng.below(n as u64) as u32, rng.val());
                }
            }
            for r in 64..n as u32 {
                b.push(r, rng.below(n as u64) as u32, rng.val());
            }
            (a.to_csr(), b.to_csr())
        }
        "grid-empty" => {
            // Grid-structured A (3D-stencil-like bands at ±1/±16/±256)
            // against a B that keeps only every 64th row: almost every
            // intermediate product vanishes, so the estimator sees many
            // tile rows whose true contribution is zero — an adversary for
            // samplers that assume work is roughly uniform and nonzero.
            let n = 2048i64;
            let mut a = Coo::new(n as usize, n as usize);
            for r in 0..n {
                for off in [0i64, -1, 1, -16, 16, -256, 256] {
                    let c = r + off;
                    if (0..n).contains(&c) {
                        a.push(r as u32, c as u32, rng.val());
                    }
                }
            }
            let mut b = Coo::new(n as usize, n as usize);
            for r in (0..n).step_by(64) {
                b.push(r as u32, rng.below(n as u64) as u32, rng.val());
            }
            (a.to_csr(), b.to_csr())
        }
        "dense-blocks" => {
            // Block-diagonal with fully dense 16×16 tiles: A·A compresses
            // exactly 16× (4096 products per block, 256 outputs) with zero
            // variance across tile rows — the sampled band must collapse
            // onto the truth instead of inflating it.
            let blocks = 16;
            let n = blocks * TILE_DIM;
            let mut a = Coo::new(n, n);
            for blk in 0..blocks as u32 {
                let base = blk * t;
                for r in 0..t {
                    for c in 0..t {
                        a.push(base + r, base + c, rng.val());
                    }
                }
            }
            let a = a.to_csr();
            (a.clone(), a)
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_case_builds_and_is_deterministic() {
        for case in CASES {
            let (a1, b1) = build(case.name, 7).unwrap_or_else(|| panic!("{}", case.name));
            let (a2, b2) = build(case.name, 7).unwrap();
            assert_eq!(a1.content_hash(), a2.content_hash(), "{}", case.name);
            assert_eq!(b1.content_hash(), b2.content_hash(), "{}", case.name);
            assert_eq!(a1.ncols, b1.nrows, "{} shapes chain", case.name);
            a1.validate().unwrap();
            b1.validate().unwrap();
        }
        assert!(build("no-such-case", 0).is_none());
    }

    #[test]
    fn threshold_cases_store_the_exact_tile_counts() {
        for (name, nnz) in [
            ("tnnz-192", 192),
            ("tnnz-193", 193),
            ("dense-tile-256", 256),
        ] {
            let (_, b) = build(name, 3).unwrap();
            assert_eq!(b.nnz(), nnz, "{name}");
            assert_eq!((b.nrows, b.ncols), (TILE_DIM, TILE_DIM));
        }
    }

    #[test]
    fn seeds_change_the_content() {
        let (a1, _) = build("rmat-skew", 1).unwrap();
        let (a2, _) = build("rmat-skew", 2).unwrap();
        assert_ne!(a1.content_hash(), a2.content_hash());
    }
}
