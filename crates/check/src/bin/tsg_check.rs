//! `tsg-check` — the verification CLI.
//!
//! ```text
//! tsg-check sweep  [--case NAME] [--seed N] [--repro PATH]
//! tsg-check corpus
//! tsg-check shrink --case NAME [--seed N] [--repro PATH]
//! ```
//!
//! `sweep` runs the differential oracle over the adversarial corpus (or one
//! named case) and exits nonzero on the first failure, after shrinking the
//! failing pair and writing a JSON reproducer artifact. `corpus` lists the
//! cases. `shrink` minimizes a (failing) case without running the whole
//! sweep first. See README §"Reproducing a tsg-check failure".

use std::process::ExitCode;

use tsg_check::{check_pair, corpus, shrink_pair, ValuePolicy};
use tsg_engine::json::{obj, Value};
use tsg_matrix::Csr;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tsg-check <sweep|corpus|shrink> [options]\n\
         \n\
         sweep  [--case NAME] [--seed N] [--repro PATH]  run the oracle over the corpus\n\
         corpus                                          list corpus cases\n\
         shrink --case NAME [--seed N] [--repro PATH]    minimize a failing case"
    );
    ExitCode::from(2)
}

struct Opts {
    case: Option<String>,
    seed: u64,
    repro: String,
}

fn parse_opts(args: &[String]) -> Option<Opts> {
    let mut opts = Opts {
        case: None,
        seed: 0,
        repro: "tsg-check-repro.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next()?;
        match flag.as_str() {
            "--case" => opts.case = Some(value.clone()),
            "--seed" => opts.seed = value.parse().ok()?,
            "--repro" => opts.repro = value.clone(),
            _ => return None,
        }
    }
    Some(opts)
}

fn triplets_json(m: &Csr<f64>) -> Value {
    Value::Arr(
        tsg_check::shrink::triplets(m)
            .into_iter()
            .map(|(r, c, v)| {
                Value::Arr(vec![
                    Value::Num(f64::from(r)),
                    Value::Num(f64::from(c)),
                    Value::Num(v),
                ])
            })
            .collect(),
    )
}

fn matrix_json(m: &Csr<f64>) -> Value {
    obj([
        ("rows", m.nrows.into()),
        ("cols", m.ncols.into()),
        ("triplets", triplets_json(m)),
    ])
}

/// Shrinks a failing pair under the oracle predicate and writes the
/// reproducer artifact (shrunk operands as triplet lists, ready to feed
/// back through `Coo` or the protocol's triplet `load`).
fn write_repro(
    path: &str,
    case: &str,
    seed: u64,
    variant: &str,
    detail: &str,
    a: &Csr<f64>,
    b: &Csr<f64>,
) {
    let policy = ValuePolicy::default();
    let shrunk = shrink_pair(a, b, |a, b| check_pair(a, b, &policy).is_err());
    eprintln!(
        "shrunk {}x{} ({} nnz) * {}x{} ({} nnz) -> {}x{} ({} nnz) * {}x{} ({} nnz) in {} runs",
        a.nrows,
        a.ncols,
        a.nnz(),
        b.nrows,
        b.ncols,
        b.nnz(),
        shrunk.a.nrows,
        shrunk.a.ncols,
        shrunk.a.nnz(),
        shrunk.b.nrows,
        shrunk.b.ncols,
        shrunk.b.nnz(),
        shrunk.tests
    );
    let artifact = obj([
        ("case", case.into()),
        ("seed", seed.into()),
        ("variant", variant.into()),
        ("mismatch", detail.into()),
        ("a", matrix_json(&shrunk.a)),
        ("b", matrix_json(&shrunk.b)),
    ]);
    match std::fs::write(path, format!("{artifact}\n")) {
        Ok(()) => eprintln!("reproducer written to {path}"),
        Err(e) => eprintln!("could not write reproducer to {path}: {e}"),
    }
    eprintln!(
        "re-run just this case with: cargo run -p tsg-check -- sweep --case {case} --seed {seed}"
    );
}

fn sweep(opts: &Opts) -> ExitCode {
    let policy = ValuePolicy::default();
    let names: Vec<&str> = match &opts.case {
        Some(name) => vec![name.as_str()],
        None => corpus::names().collect(),
    };
    let mut failed = false;
    for name in names {
        let Some((a, b)) = corpus::build(name, opts.seed) else {
            eprintln!("unknown corpus case {name:?}; `tsg-check corpus` lists them");
            return ExitCode::from(2);
        };
        match check_pair(&a, &b, &policy) {
            Ok(report) => println!(
                "PASS {name} seed={} ({} variants, gold nnz {})",
                opts.seed, report.variants, report.gold_nnz
            ),
            Err(failure) => {
                println!("FAIL {name} seed={}: {failure}", opts.seed);
                write_repro(
                    &opts.repro,
                    name,
                    opts.seed,
                    &failure.variant,
                    &failure.mismatch.to_string(),
                    &a,
                    &b,
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn list_corpus() -> ExitCode {
    for case in corpus::CASES {
        let (a, b) = corpus::build(case.name, 0).expect("every listed case builds");
        println!(
            "{:<16} {}x{} ({} nnz) * {}x{} ({} nnz)  {}",
            case.name,
            a.nrows,
            a.ncols,
            a.nnz(),
            b.nrows,
            b.ncols,
            b.nnz(),
            case.summary
        );
    }
    ExitCode::SUCCESS
}

fn shrink_case(opts: &Opts) -> ExitCode {
    let Some(name) = &opts.case else {
        eprintln!("shrink needs --case NAME");
        return ExitCode::from(2);
    };
    let Some((a, b)) = corpus::build(name, opts.seed) else {
        eprintln!("unknown corpus case {name:?}");
        return ExitCode::from(2);
    };
    let policy = ValuePolicy::default();
    match check_pair(&a, &b, &policy) {
        Ok(report) => {
            println!(
                "{name} seed={} passes the oracle ({} variants); nothing to shrink",
                opts.seed, report.variants
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            println!("FAIL {name} seed={}: {failure}", opts.seed);
            write_repro(
                &opts.repro,
                name,
                opts.seed,
                &failure.variant,
                &failure.mismatch.to_string(),
                &a,
                &b,
            );
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let Some(opts) = parse_opts(&args[1..]) else {
        return usage();
    };
    match cmd.as_str() {
        "sweep" => sweep(&opts),
        "corpus" => list_corpus(),
        "shrink" => shrink_case(&opts),
        _ => usage(),
    }
}
