//! Statistical authority for the OCEAN-style sampled estimator
//! (`tilespgemm_core::sample`): over the full adversarial corpus × seeds,
//! the sampled nnz(C)/flops estimates must land inside a *documented*
//! relative-error envelope, the confidence band must actually cover the
//! truth at roughly its stated confidence, and a 100% sample rate must
//! degenerate to the exact count. Failures write a repro artifact in the
//! spirit of the shrinker's ddmin output: a JSON file naming the corpus
//! case, seed, and the numbers that disagreed, so one `tsg-check sweep
//! --case NAME --seed N`-style line reproduces the input.
//!
//! ## The documented envelope
//!
//! At [`DEFAULT_SAMPLE_RATE`] (1/16, floor 16 tile rows):
//!
//! * **flops** are exact on the CSR path — the sampler's first pass counts
//!   every intermediate product in O(nnz(A)); no envelope needed.
//! * **nnz(C)** point estimates stay within **2×** of the truth on every
//!   corpus case × seed (ratio ∈ [0.5, 2.0], with an absolute slack of 32
//!   nonzeros so near-empty products don't turn rounding into a ratio).
//! * the **95% band** `[nnz_lo, nnz_hi]` contains the truth on **≥90%** of
//!   (case, seed) runs — the collapsed-strata variance is conservative, so
//!   in practice coverage is higher, but 90% is the floor this suite pins.

use std::fmt::Write as _;

use tilespgemm_core::sample::{sample_csr, DEFAULT_SAMPLE_RATE};
use tilespgemm_core::Config;
use tsg_check::corpus;
use tsg_matrix::TileMatrix;
use tsg_runtime::MemTracker;

const SEEDS: [u64; 3] = [1, 2, 3];

/// Ground truth: the pipeline's structural output nnz (the tiled form keeps
/// predicted entries that cancel numerically — exactly what the symbolic
/// sampler estimates) and the exact flop count.
fn truth(a: &tsg_matrix::Csr<f64>, b: &tsg_matrix::Csr<f64>) -> (u64, u64) {
    let ta = TileMatrix::from_csr(a);
    let tb = TileMatrix::from_csr(b);
    let out = tilespgemm_core::multiply(&ta, &tb, &Config::default(), &MemTracker::new())
        .expect("corpus product fits an untracked budget");
    (out.c.nnz() as u64, a.spgemm_flops(b))
}

/// One estimator disagreement, serialized into the repro artifact.
struct Violation {
    case: &'static str,
    seed: u64,
    kind: &'static str,
    detail: String,
}

/// Writes the ddmin-style repro artifact and panics with its path. The
/// artifact names the corpus case + seed (the full reproduction key: corpus
/// inputs are pure functions of that pair) and the numbers that disagreed.
fn fail_with_artifact(violations: &[Violation]) -> ! {
    let mut json = String::from("[\n");
    for v in violations {
        let _ = writeln!(
            json,
            "  {{\"case\": \"{}\", \"seed\": {}, \"kind\": \"{}\", \"detail\": \"{}\", \"repro\": \"corpus::build(\\\"{}\\\", {})\"}},",
            v.case, v.seed, v.kind, v.detail, v.case, v.seed
        );
    }
    json.push(']');
    let path = std::env::temp_dir().join("tsg-estimator-repro.json");
    std::fs::write(&path, &json).expect("write repro artifact");
    panic!(
        "estimator accuracy violations on {} case(s); repro artifact at {}:\n{}",
        violations.len(),
        path.display(),
        json
    );
}

/// The headline contract: every corpus case × seed at the default rate has
/// an exact flop count and an nnz(C) point estimate within the documented
/// 2× envelope.
#[test]
fn sampled_estimates_stay_inside_the_documented_envelope() {
    let mut violations = Vec::new();
    for case in corpus::CASES {
        for seed in SEEDS {
            let (a, b) = corpus::build(case.name, seed).expect("case exists");
            let (true_nnz, true_flops) = truth(&a, &b);
            let s = sample_csr(&a, &b, DEFAULT_SAMPLE_RATE, seed ^ 0xE57);
            if s.products * 2 != true_flops {
                violations.push(Violation {
                    case: case.name,
                    seed,
                    kind: "flops",
                    detail: format!("sampled {} != exact {}", s.products * 2, true_flops),
                });
            }
            // ≤2× envelope with a 32-nonzero absolute slack for near-empty
            // products (grid-empty's truth is O(100); a handful of nonzeros
            // of scale-up rounding must not read as a ratio violation).
            let slack = 32;
            let lo = (true_nnz / 2).saturating_sub(slack);
            let hi = true_nnz * 2 + slack;
            if s.est_nnz_c < lo || s.est_nnz_c > hi {
                violations.push(Violation {
                    case: case.name,
                    seed,
                    kind: "nnz_envelope",
                    detail: format!(
                        "estimate {} outside [{}, {}] (truth {}, sampled {}/{} tile rows)",
                        s.est_nnz_c, lo, hi, true_nnz, s.sampled_tile_rows, s.total_tile_rows
                    ),
                });
            }
        }
    }
    if !violations.is_empty() {
        fail_with_artifact(&violations);
    }
}

/// Band coverage: the 95% interval must contain the truth on at least 90%
/// of (case, seed) runs. Misses are reported individually so a systematic
/// under-coverage names its corpus cases.
#[test]
fn confidence_band_covers_the_truth_on_at_least_90_percent_of_runs() {
    let mut total = 0u32;
    let mut covered = 0u32;
    let mut misses = Vec::new();
    for case in corpus::CASES {
        for seed in SEEDS {
            let (a, b) = corpus::build(case.name, seed).expect("case exists");
            let (true_nnz, _) = truth(&a, &b);
            let s = sample_csr(&a, &b, DEFAULT_SAMPLE_RATE, seed ^ 0xBADD);
            total += 1;
            if (s.nnz_lo..=s.nnz_hi).contains(&true_nnz) {
                covered += 1;
            } else {
                misses.push(Violation {
                    case: case.name,
                    seed,
                    kind: "band_miss",
                    detail: format!(
                        "truth {} outside band [{}, {}] (point {})",
                        true_nnz, s.nnz_lo, s.nnz_hi, s.est_nnz_c
                    ),
                });
            }
        }
    }
    // 90% floor, rounded down — with 18 cases × 3 seeds that allows 5
    // misses before the suite fails.
    if covered * 10 < total * 9 {
        fail_with_artifact(&misses);
    }
}

/// Rate 1.0 is the degenerate sample: the whole population is measured, the
/// estimate equals the pipeline's structural output nnz exactly, and the
/// band has zero width. Holds on every corpus case — no sampling noise to
/// tolerate.
#[test]
fn full_rate_degenerates_to_the_exact_count() {
    let mut violations = Vec::new();
    for case in corpus::CASES {
        let (a, b) = corpus::build(case.name, SEEDS[0]).expect("case exists");
        let (true_nnz, true_flops) = truth(&a, &b);
        let s = sample_csr(&a, &b, 1.0, 7);
        if !s.exact || s.est_nnz_c != true_nnz || s.nnz_lo != true_nnz || s.nnz_hi != true_nnz {
            violations.push(Violation {
                case: case.name,
                seed: SEEDS[0],
                kind: "full_rate",
                detail: format!(
                    "exact={} est={} band=[{}, {}] truth={}",
                    s.exact, s.est_nnz_c, s.nnz_lo, s.nnz_hi, true_nnz
                ),
            });
        }
        if s.products * 2 != true_flops {
            violations.push(Violation {
                case: case.name,
                seed: SEEDS[0],
                kind: "full_rate_flops",
                detail: format!("{} != {}", s.products * 2, true_flops),
            });
        }
    }
    if !violations.is_empty() {
        fail_with_artifact(&violations);
    }
}

/// The skew adversary specifically: `skew-row` concentrates >50% of all
/// intermediate products in one tile row. The heavy-row rule must measure
/// that row on *every* seed — an estimator that can miss it would
/// under-predict by the concentrated share.
#[test]
fn skew_adversary_never_loses_its_heavy_row() {
    for seed in 0..16u64 {
        let (a, b) = corpus::build("skew-row", 3).expect("case exists");
        let (true_nnz, _) = truth(&a, &b);
        let s = sample_csr(&a, &b, DEFAULT_SAMPLE_RATE, seed);
        assert!(
            s.est_nnz_c >= true_nnz / 2,
            "sampler seed {seed} under-predicted the skewed product: {} < {}/2",
            s.est_nnz_c,
            true_nnz
        );
    }
}

mod determinism {
    //! The seeded sampler must be bit-reproducible across thread counts:
    //! selection is a pure function of `(weights, rate, seed)` and the
    //! measurement loop is serial integer arithmetic, so running inside a
    //! 1-thread and an 8-thread rayon pool must produce identical
    //! [`SampleStats`] — field for field, including the band edges.

    use proptest::prelude::*;
    use tilespgemm_core::sample::{sample_csr, sample_tiled, SampleStats};
    use tsg_matrix::TileMatrix;

    fn in_pool<F: FnOnce() -> SampleStats + Send>(threads: usize, f: F) -> SampleStats {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(f)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn sampler_is_bit_reproducible_across_thread_counts(
            n in 64usize..1024,
            per_row in 1usize..8,
            gen_seed in 0u64..1000,
            sample_seed in 0u64..1000,
            rate_idx in 0usize..4,
        ) {
            let rate = [0.05f64, 1.0 / 16.0, 0.5, 1.0][rate_idx];
            let a = tsg_gen::random::erdos_renyi(n, n, n * per_row, gen_seed);
            let b = tsg_gen::random::erdos_renyi(n, n, n * per_row, gen_seed ^ 0x5eed);
            let one = in_pool(1, || sample_csr(&a, &b, rate, sample_seed));
            let eight = in_pool(8, || sample_csr(&a, &b, rate, sample_seed));
            prop_assert_eq!(one, eight, "CSR sampler diverged across pools");

            let ta = TileMatrix::from_csr(&a);
            let tb = TileMatrix::from_csr(&b);
            let one_t = in_pool(1, || sample_tiled(&ta, &tb, rate, sample_seed));
            let eight_t = in_pool(8, || sample_tiled(&ta, &tb, rate, sample_seed));
            prop_assert_eq!(one_t, eight_t, "tiled sampler diverged across pools");
        }
    }
}
