//! Self-tests of the differential oracle: the sweep really covers the full
//! knob space, passes on the adversarial corpus, and actually *fails* when
//! the acceptance policy is tightened past what reordered summation allows.

use tsg_check::{check_pair, corpus, ValuePolicy};

/// One default-policy oracle run covers the whole variant space:
/// 1 pivot + 32 bitwise (scheduling × reuse × intersection) + 1 recorder
/// + 12 value-tier (accumulator × threshold) + 5 baseline methods
/// + 2 masked + 3 add + 2 chain (op-expression axes)
/// + 16 SIMD-dispatch bitwise (2 tnnz × 4 policies + 4 masked + 4 chain)
///   = 74.
#[test]
fn corpus_cases_pass_and_cover_every_variant() {
    let policy = ValuePolicy::default();
    for name in [
        "empty",
        "identity",
        "phantom-tile",
        "cancellation",
        "tnnz-193",
    ] {
        let (a, b) = corpus::build(name, 0).expect("case exists");
        let report = check_pair(&a, &b, &policy).unwrap_or_else(|f| panic!("{name} failed: {f}"));
        assert_eq!(report.variants, 74, "{name} covered the full sweep");
    }
}

/// The oracle is not vacuous: with a zero-tolerance policy the legitimate
/// summation-order differences between implementations surface as a value
/// mismatch, attributed to a named variant. (The default policy exists
/// precisely to accept this noise — see DESIGN.md §10.2.)
#[test]
fn zero_tolerance_policy_exposes_reordered_summation() {
    let strict = ValuePolicy {
        max_ulps: 0,
        rel_tol: 0.0,
        abs_tol: 0.0,
    };
    let (a, b) = corpus::build("rmat-skew", 0).expect("case exists");
    let failure = check_pair(&a, &b, &strict)
        .expect_err("bit-exact equality across summation orders is impossible here");
    assert!(!failure.variant.is_empty());
    // And the default policy accepts the very same pair.
    assert!(check_pair(&a, &b, &ValuePolicy::default()).is_ok());
}

/// Seeds select different matrices but never different verdicts: a few
/// seeds of the generator-backed cases all pass.
#[test]
fn generator_cases_pass_across_seeds() {
    let policy = ValuePolicy::default();
    for seed in [1, 2, 3] {
        for name in ["coo-dup", "scatter-rect"] {
            let (a, b) = corpus::build(name, seed).expect("case exists");
            check_pair(&a, &b, &policy)
                .unwrap_or_else(|f| panic!("{name} seed={seed} failed: {f}"));
        }
    }
}
