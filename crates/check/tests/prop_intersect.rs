//! Property test pinning the bitmap intersection kernel to binary search.
//!
//! The bitmap kernel recovers `(pos_a, pos_b)` list positions by
//! rank-over-popcount instead of walking the sorted lists, so it is the one
//! intersection variant whose output order is not obviously the same as the
//! reference kernels. This test drives it across the adversarial corpus
//! (randomized seeds) and asserts the *pair lists themselves* — not just the
//! final product — are identical to binary search, tile by tile.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use tilespgemm_core::step2::matched_pairs_with;
use tilespgemm_core::IntersectionKind;
use tsg_check::corpus;
use tsg_matrix::{Csr, ListBitmaps, TileMatrix};

/// Pins bitmap pair lists to binary search for every step-1-predicted tile
/// of one operand pair.
fn pin_pair_lists(a: &Csr<f64>, b: &Csr<f64>, label: &str) -> Result<(), TestCaseError> {
    let ta = TileMatrix::from_csr(a);
    let tb = TileMatrix::from_csr(b);
    let b_cols = tb.col_index();
    let a_maps = ListBitmaps::from_csr(&ta.tile_ptr, &ta.tile_colidx, ta.tile_n);
    let b_maps = ListBitmaps::from_csr(&b_cols.colptr, &b_cols.rowidx, tb.tile_m);
    let (mut scratch, mut pairs) = (Vec::new(), Vec::new());
    let (mut scratch_ref, mut pairs_ref) = (Vec::new(), Vec::new());
    for ti in 0..ta.tile_m {
        for tj in 0..tb.tile_n {
            let kind = matched_pairs_with(
                &ta,
                &b_cols,
                ti,
                tj,
                IntersectionKind::Bitmap,
                Some((&a_maps, &b_maps)),
                &mut scratch,
                &mut pairs,
            );
            prop_assert_eq!(
                kind,
                IntersectionKind::Bitmap,
                "{}: sidecars present, Bitmap must not degrade",
                label
            );
            matched_pairs_with(
                &ta,
                &b_cols,
                ti,
                tj,
                IntersectionKind::BinarySearch,
                None,
                &mut scratch_ref,
                &mut pairs_ref,
            );
            prop_assert_eq!(
                &scratch,
                &scratch_ref,
                "{}: tile ({ti},{tj}) position pairs diverge",
                label
            );
            prop_assert_eq!(
                &pairs,
                &pairs_ref,
                "{}: tile ({ti},{tj}) flat id pairs diverge",
                label
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bitmap_pair_lists_match_binary_search_on_the_corpus(seed in 0u64..10_000) {
        for name in corpus::names() {
            let (a, b) = corpus::build(name, seed).expect("known corpus case");
            pin_pair_lists(&a, &b, name)?;
        }
    }
}
