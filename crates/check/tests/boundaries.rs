//! Boundary tests around the paper's tile thresholds, each pinned against
//! the serial reference baseline through the shared comparator:
//!
//! * a tile with exactly `tnnz = 192` nonzeros (last sparse-accumulator
//!   tile) and with 193 (first dense-accumulator tile);
//! * a fully dense 256-nonzero tile;
//! * a step-1 tile whose element-level intersection is empty (allocated,
//!   then zero nonzeros);
//! * the threshold knob itself moving the 192 tile across the boundary.
//!
//! The accumulator choice is observed through the recorder's
//! `SparseAccPicks` / `DenseAccPicks` counters, so these tests pin *which
//! kernel ran*, not just that the product came out right.

use tilespgemm_core::{multiply_csr, multiply_csr_with, Config, Output};
use tsg_baselines::reference::reference_spgemm;
use tsg_check::{compare_csr, corpus, ValuePolicy};
use tsg_matrix::Csr;
use tsg_runtime::{CollectingRecorder, Counter, MemTracker, Recorder};

fn case(name: &str) -> (Csr<f64>, Csr<f64>) {
    corpus::build(name, 0).expect("corpus case exists")
}

/// Runs the tiled pipeline under `config` with a collecting recorder and
/// returns the output plus the (sparse, dense) accumulator pick counts,
/// after pinning the product against the serial reference.
fn run_pinned(a: &Csr<f64>, b: &Csr<f64>, config: &Config) -> (Output<f64>, u64, u64) {
    let tracker = MemTracker::new();
    let recorder = CollectingRecorder::new();
    let out = multiply_csr_with(a, b, config, &tracker, &recorder, 1).expect("multiply succeeds");
    assert_eq!(tracker.current_bytes(), 0, "pipeline tracker must balance");
    compare_csr(
        &out.to_csr(),
        &reference_spgemm(a, b),
        &ValuePolicy::default(),
    )
    .expect("tiled product matches the reference baseline");
    let snap = recorder.snapshot();
    (
        out,
        snap.get(Counter::SparseAccPicks),
        snap.get(Counter::DenseAccPicks),
    )
}

#[test]
fn tile_with_exactly_192_nnz_takes_the_sparse_accumulator() {
    let (a, b) = case("tnnz-192");
    let (out, sparse, dense) = run_pinned(&a, &b, &Config::default());
    // I * B: one output tile, symbolic nnz exactly at the threshold.
    assert_eq!(out.c.tile_count(), 1);
    assert_eq!(out.c.nnz(), 192);
    assert_eq!(
        (sparse, dense),
        (1, 0),
        "192 = tnnz stays on the sparse side"
    );
}

#[test]
fn tile_with_193_nnz_takes_the_dense_accumulator() {
    let (a, b) = case("tnnz-193");
    let (out, sparse, dense) = run_pinned(&a, &b, &Config::default());
    assert_eq!(out.c.tile_count(), 1);
    assert_eq!(out.c.nnz(), 193);
    assert_eq!((sparse, dense), (0, 1), "193 > tnnz flips to dense");
}

#[test]
fn fully_dense_256_nnz_tile_takes_the_dense_accumulator() {
    let (a, b) = case("dense-tile-256");
    let (out, sparse, dense) = run_pinned(&a, &b, &Config::default());
    assert_eq!(out.c.tile_count(), 1);
    assert_eq!(out.c.nnz(), 256, "all 256 slots of the tile are stored");
    assert_eq!((sparse, dense), (0, 1));
}

#[test]
fn threshold_knob_moves_the_192_tile_across_the_boundary() {
    let (a, b) = case("tnnz-192");
    // Lowering the threshold by one must flip the very same tile to the
    // dense accumulator — the boundary is the config knob, not a constant.
    let cfg = Config::builder().tnnz_threshold(191).build();
    let (_, sparse, dense) = run_pinned(&a, &b, &cfg);
    assert_eq!((sparse, dense), (0, 1), "192 > 191 picks dense");
}

#[test]
fn empty_intersection_still_allocates_a_step1_tile() {
    let (a, b) = case("phantom-tile");
    let tracker = MemTracker::new();
    let out = multiply_csr(&a, &b, &Config::default(), &tracker).expect("multiply succeeds");
    // Step 1 predicts tile (0,0) from the tile-level product, but the
    // element-level intersection is empty: the tile must be present in the
    // output structure with zero stored nonzeros.
    let empties = (0..out.c.tile_count())
        .filter(|&t| out.c.tile_nnz_of(t) == 0)
        .count();
    assert!(
        empties >= 1,
        "the predicted-but-empty tile is retained in the tiled output"
    );
    // The canonical product still matches the reference exactly: only the
    // honest (20,20) entry survives.
    let gold = reference_spgemm(&a, &b);
    compare_csr(&out.to_csr(), &gold, &ValuePolicy::default()).unwrap();
    assert_eq!(out.to_csr().nnz(), 1);
}
