//! Fault-injection tests (`--features failpoints`).
//!
//! Each test arms one failpoint from the catalog (DESIGN.md §10.3) and
//! asserts *graceful degradation*: the stable error code comes back, the
//! memory tracker unwinds to balance, and the component keeps serving
//! afterwards. Every test holds [`failpoint::exclusive`] because the
//! registry is process-global.

#![cfg(feature = "failpoints")]

use std::sync::Arc;

use tilespgemm_core::{multiply_csr, Config};
use tsg_baselines::reference::reference_spgemm;
use tsg_check::{compare_csr, corpus, ValuePolicy};
use tsg_engine::protocol::{Control, Session};
use tsg_engine::{Engine, EngineConfig, JobSpec};
use tsg_runtime::failpoint;
use tsg_runtime::MemTracker;

fn operands() -> (tsg_matrix::Csr<f64>, tsg_matrix::Csr<f64>) {
    corpus::build("dense-tile-row", 0).expect("corpus case exists")
}

/// Every tracked allocation of the pipeline, failed one at a time: the
/// multiply must return the stable `out_of_memory` code and credit back
/// everything it had allocated — including the failure *inside step 3*
/// (the output-array allocation, the last tracked site).
#[test]
fn oom_at_every_pipeline_allocation_unwinds_and_recovers() {
    let _x = failpoint::exclusive();
    let (a, b) = operands();

    // First, count the tracked allocation sites of one clean run by arming
    // with an infinite skip (never fails, still counts hits).
    failpoint::arm("tracker.alloc", u64::MAX, 1);
    let tracker = MemTracker::new();
    multiply_csr(&a, &b, &Config::default(), &tracker).expect("clean run");
    let allocs = failpoint::hits("tracker.alloc");
    assert!(allocs >= 3, "pipeline has inputs/temps/output allocations");

    // Now fail each site in turn, the last being mid-step-3.
    for k in 0..allocs {
        failpoint::arm("tracker.alloc", k, 1);
        let tracker = MemTracker::new();
        let err = multiply_csr(&a, &b, &Config::default(), &tracker)
            .expect_err("armed allocation must fail");
        assert_eq!(err.code(), "out_of_memory", "allocation #{k}");
        assert_eq!(
            tracker.current_bytes(),
            0,
            "allocation #{k} must unwind everything already charged"
        );
    }

    // Disarmed, the same operands multiply fine and match the reference.
    failpoint::clear("tracker.alloc");
    let tracker = MemTracker::new();
    let out = multiply_csr(&a, &b, &Config::default(), &tracker).expect("recovered");
    compare_csr(
        &out.to_csr(),
        &reference_spgemm(&a, &b),
        &ValuePolicy::default(),
    )
    .unwrap();
}

/// Scratch-arena pool growth refused by the `arena.grow` failpoint: the
/// multiply fails with the stable `out_of_memory` code before steps 2/3
/// run, the tracker unwinds to balance, and a disarmed retry — reusing the
/// very same tracker — succeeds and matches the reference.
#[test]
fn arena_growth_failure_unwinds_and_recovers() {
    let _x = failpoint::exclusive();
    let (a, b) = operands();
    failpoint::arm("arena.grow", 0, 1);
    let tracker = MemTracker::new();
    let err = multiply_csr(&a, &b, &Config::default(), &tracker)
        .expect_err("armed arena growth must fail");
    assert_eq!(err.code(), "out_of_memory");
    assert_eq!(
        tracker.current_bytes(),
        0,
        "arena reservation failure must credit back the step-2 temporaries"
    );
    assert!(failpoint::hits("arena.grow") >= 1, "the site was exercised");
    failpoint::clear("arena.grow");
    let out = multiply_csr(&a, &b, &Config::default(), &tracker).expect("recovered");
    assert_eq!(tracker.current_bytes(), 0);
    compare_csr(
        &out.to_csr(),
        &reference_spgemm(&a, &b),
        &ValuePolicy::default(),
    )
    .unwrap();
}

/// An allocation failure during an engine job: the job fails with
/// `out_of_memory`, the shared device tracker balances, and the *next* job
/// on the same engine succeeds.
#[test]
fn engine_job_survives_device_oom() {
    let _x = failpoint::exclusive();
    let engine = Engine::new(EngineConfig::default());
    let (a, b) = operands();
    let (ida, _) = engine.register(a);
    let (idb, _) = engine.register(b);
    // Pre-convert so the armed failpoint hits the multiply, not the cache.
    engine.convert(ida).unwrap();
    engine.convert(idb).unwrap();

    failpoint::arm("tracker.alloc", 0, 1);
    let err = engine
        .multiply_now(JobSpec::new(ida, idb))
        .expect_err("armed job must fail");
    assert_eq!(err.code(), "out_of_memory");
    assert_eq!(engine.device_tracker().current_bytes(), 0);
    assert_eq!(engine.stats().failed, 1);

    let report = engine
        .multiply_now(JobSpec::new(ida, idb))
        .expect("engine keeps serving after a failed job");
    assert!(report.nnz_c > 0);
    engine.shutdown();
}

/// The cache refuses to account a conversion: the registry serves it
/// uncached instead of failing, and later multiplies still work.
#[test]
fn cache_alloc_failure_falls_back_to_uncached_conversion() {
    let _x = failpoint::exclusive();
    let engine = Engine::new(EngineConfig::default());
    let (a, _) = operands();
    let (id, _) = engine.register(a);

    failpoint::arm("registry.cache_alloc", 0, 1);
    let (_tiles, _bytes, hit) = engine.convert(id).unwrap();
    assert!(!hit, "conversion served fresh, not from cache");
    assert_eq!(engine.stats().registry.uncached_conversions, 1);

    let report = engine.multiply_now(JobSpec::new(id, id)).unwrap();
    assert!(report.nnz_c > 0);
    engine.shutdown();
}

/// Every cached conversion vanishes between admission and resolve (the
/// eviction race): the job reconverts and completes with the right product.
#[test]
fn eviction_race_reconverts_and_completes() {
    let _x = failpoint::exclusive();
    let engine = Engine::new(EngineConfig::default());
    let (a, b) = operands();
    let gold = reference_spgemm(&a, &b);
    let (ida, _) = engine.register(a);
    let (idb, _) = engine.register(b);
    engine.convert(ida).unwrap();
    engine.convert(idb).unwrap();

    failpoint::arm("registry.evict_all", 0, 1);
    let report = engine.multiply_now(JobSpec::new(ida, idb)).unwrap();
    let stats = engine.stats();
    assert!(
        stats.registry.evictions >= 2,
        "both cached conversions were dropped mid-flight"
    );
    compare_csr(
        &report.c.to_csr().drop_numeric_zeros(),
        &gold,
        &ValuePolicy::default(),
    )
    .unwrap();
    engine.shutdown();
}

/// Backpressure shedding: a full queue rejects with the stable
/// `queue_full` code, counts the shed, and the next submission sails.
#[test]
fn queue_full_sheds_and_recovers() {
    let _x = failpoint::exclusive();
    let engine = Engine::new(EngineConfig::default());
    let (a, _) = operands();
    let (id, _) = engine.register(a);

    failpoint::arm("engine.queue_full", 0, 1);
    let err = engine
        .submit(JobSpec::new(id, id))
        .expect_err("armed submission is shed");
    assert_eq!(err.code(), "queue_full");
    assert_eq!(engine.stats().shed, 1);

    let report = engine.multiply_now(JobSpec::new(id, id)).unwrap();
    assert!(report.nnz_c > 0);
    engine.shutdown();
}

/// An operand disappearing between admission and execution (the
/// unregister race): the job fails with `unknown_matrix`, the worker loop
/// survives, and the engine completes the next job.
#[test]
fn resolve_race_fails_job_but_not_the_worker() {
    let _x = failpoint::exclusive();
    let engine = Engine::new(EngineConfig::default());
    let (a, _) = operands();
    let (id, _) = engine.register(a);

    failpoint::arm("engine.resolve", 0, 1);
    let err = engine
        .multiply_now(JobSpec::new(id, id))
        .expect_err("armed resolve must fail");
    assert_eq!(err.code(), "unknown_matrix");
    assert_eq!(engine.device_tracker().current_bytes(), 0);

    let report = engine.multiply_now(JobSpec::new(id, id)).unwrap();
    assert!(report.nnz_c > 0);
    engine.shutdown();
}

/// The registry refuses to take a chain's intermediate product (the
/// resident registration fails at `engine.chain_register`): graceful
/// degradation, not failure — the chain still completes with the right
/// final product, only the intermediate handle is missing from the
/// report, and a disarmed rerun publishes it again.
#[test]
fn chain_intermediate_registration_failure_degrades_gracefully() {
    let _x = failpoint::exclusive();
    let engine = Engine::new(EngineConfig::default());
    let (a, b) = operands();
    let gold = reference_spgemm(&reference_spgemm(&a, &b), &b);
    let (ida, _) = engine.register(a);
    let (idb, _) = engine.register(b);

    failpoint::arm("engine.chain_register", 0, 1);
    let report = engine
        .multiply_now(JobSpec::chain([ida, idb, idb]))
        .expect("chain survives a refused intermediate registration");
    assert!(failpoint::hits("engine.chain_register") >= 1);
    assert_eq!(report.links, 2);
    assert!(
        report.intermediates.is_empty(),
        "the refused intermediate must not be reported as a handle"
    );
    compare_csr(
        &report.c.to_csr().drop_numeric_zeros(),
        &gold,
        &ValuePolicy::default(),
    )
    .unwrap();
    assert_eq!(engine.device_tracker().current_bytes(), 0);

    // Disarmed, the same chain publishes its intermediate again.
    failpoint::clear("engine.chain_register");
    let report = engine
        .multiply_now(JobSpec::chain([ida, idb, idb]))
        .unwrap();
    assert_eq!(report.intermediates.len(), 1);
    engine.shutdown();
}

/// A request frame truncated in transit parses as garbage: the session
/// answers `bad_request` and keeps serving the same connection.
#[test]
fn truncated_frame_is_bad_request_and_session_survives() {
    let _x = failpoint::exclusive();
    let session = Session::new(Arc::new(Engine::new(EngineConfig::default())));

    failpoint::arm("protocol.truncate_request", 0, 1);
    let (resp, ctl) = session.handle_line(r#"{"op":"stats"}"#);
    assert_eq!(ctl, Control::Continue);
    assert!(resp.contains("\"bad_request\""), "got: {resp}");

    let (resp, ctl) = session.handle_line(r#"{"op":"stats"}"#);
    assert_eq!(ctl, Control::Continue);
    assert!(
        !resp.contains("\"error\""),
        "session must keep serving: {resp}"
    );
    session.engine().shutdown();
}

/// A frame over the 16 MiB limit — injected, so the harness does not ship
/// 16 MiB — is refused with `frame_too_large` before parsing, and the
/// session keeps serving.
#[test]
fn oversized_frame_is_refused_and_session_survives() {
    let _x = failpoint::exclusive();
    let session = Session::new(Arc::new(Engine::new(EngineConfig::default())));

    failpoint::arm("protocol.oversized_request", 0, 1);
    let (resp, ctl) = session.handle_line(r#"{"op":"hello"}"#);
    assert_eq!(ctl, Control::Continue);
    assert!(resp.contains("\"frame_too_large\""), "got: {resp}");

    let (resp, _) = session.handle_line(r#"{"op":"hello"}"#);
    assert!(
        !resp.contains("\"error\""),
        "session must keep serving: {resp}"
    );
    session.engine().shutdown();
}

/// The sampled admission estimator "fails" (`engine.estimate_sample`): the
/// estimate must fall back to the constant-compression upper bound and the
/// job must still be *admitted* — degraded estimation may widen the
/// prediction, never wrongly reject a job the sampled model would admit.
#[test]
fn estimate_sample_failure_falls_back_to_upper_bound_and_still_admits() {
    let _x = failpoint::exclusive();
    let engine = Engine::new(EngineConfig::default());
    let (a, b) = operands();
    let (ida, _) = engine.register(a);
    let (idb, _) = engine.register(b);

    // Baseline: sampling on, the estimate carries a measured band.
    let sampled = engine.estimate(ida, idb).expect("estimate");
    assert!(sampled.sample.is_some(), "default config samples");

    // Armed: sampling fails for the next estimate only. The fallback is
    // the ASSUMED_COMPRESSION model — no band, typically a different (and
    // not smaller) byte prediction.
    failpoint::arm("engine.estimate_sample", 0, 1);
    let fallback = engine.estimate(ida, idb).expect("fallback estimate");
    assert!(fallback.sample.is_none(), "fallback carries no band");
    assert_eq!(
        fallback.flops, sampled.flops,
        "both paths count exact flops from the CSR forms"
    );

    // Armed again for the submit path: the job is admitted under the
    // fallback estimate and completes. Degraded estimation must never
    // reject a job the default budget admits.
    failpoint::arm("engine.estimate_sample", 0, 1);
    let report = engine
        .multiply_now(JobSpec::new(ida, idb))
        .expect("job admitted and completed on the fallback estimate");
    assert!(report.nnz_c > 0);
    assert!(report.estimate.sample.is_none());
    failpoint::clear("engine.estimate_sample");

    // Disarmed, sampling resumes.
    let again = engine.estimate(ida, idb).expect("estimate");
    assert!(again.sample.is_some());
    engine.shutdown();
}

/// The `core.simd_dispatch` failpoint forces the whole multiply down the
/// scalar kernel ladder: the armed run records zero `simd_*`/`dense_tile`
/// picks while the accumulator-decision counters are untouched, and —
/// because scalar *is* the reference summation order — the product is
/// bitwise identical to the unforced run. Disarmed, vector dispatch
/// resumes by itself.
#[test]
fn simd_dispatch_failpoint_forces_scalar_and_stays_bitwise_identical() {
    use tsg_runtime::{CollectingRecorder, Counter, Recorder};

    let _x = failpoint::exclusive();
    let (a, b) = operands();
    let run = || {
        let tracker = MemTracker::new();
        let recorder = CollectingRecorder::new();
        let out =
            tilespgemm_core::multiply_csr_with(&a, &b, &Config::default(), &tracker, &recorder, 1)
                .expect("multiply succeeds");
        assert_eq!(tracker.current_bytes(), 0);
        (out, recorder.snapshot())
    };

    let (clean, clean_snap) = run();

    failpoint::arm("core.simd_dispatch", 0, 0);
    let (forced, forced_snap) = run();
    assert!(
        failpoint::hits("core.simd_dispatch") >= 1,
        "the dispatch site was exercised"
    );
    assert_eq!(
        forced_snap.get(Counter::SimdSparsePicks)
            + forced_snap.get(Counter::SimdDensePicks)
            + forced_snap.get(Counter::DenseTilePicks),
        0,
        "the armed run must not touch a vector kernel"
    );
    assert_eq!(
        (
            forced_snap.get(Counter::SparseAccPicks),
            forced_snap.get(Counter::DenseAccPicks)
        ),
        (
            clean_snap.get(Counter::SparseAccPicks),
            clean_snap.get(Counter::DenseAccPicks)
        ),
        "the accumulator decision is dispatch-independent"
    );
    assert_eq!(
        forced.c, clean.c,
        "scalar fallback is bitwise identical to the dispatched run"
    );

    failpoint::clear("core.simd_dispatch");
    let (again, _) = run();
    assert_eq!(again.c, clean.c, "vector dispatch resumes after disarming");
}
