//! SIMD-vs-scalar bitwise equivalence on adversarial tiles.
//!
//! Every [`SimdPolicy`] must reproduce the forced-scalar product *bit for
//! bit* — the vector kernels keep the scalar per-slot addition order (no
//! FMA, lane blending; see the `simd` module docs), so this is an exact
//! contract, not a tolerance. The cases aim at the spots where a lane
//! kernel would first go wrong:
//!
//! * an all-dense 16×16 tile (every lane selected, full strips);
//! * a single-entry tile (one lane selected, everything else blended off);
//! * cancellation to an exact stored zero (a `+0.0`/`-0.0` confusion or a
//!   spurious `x*0` contribution flips the sign bit here);
//! * output tiles with nnz pinned at the dense-tile promotion threshold
//!   and the paper's `tnnz` accumulator threshold, ±1 on both sides;
//! * R-MAT matrices across proptest seeds, squared, under the default
//!   thread pool and pinned to one rayon thread.

use proptest::prelude::*;
use tilespgemm_core::{multiply_csr, simd::DENSE_TILE_TNNZ, Config, Output, SimdPolicy};
use tsg_matrix::{Coo, Csr, TILE_DIM};

const POLICIES: [SimdPolicy; 3] = [
    SimdPolicy::Auto,
    SimdPolicy::ForceSimd,
    SimdPolicy::ForceDenseTile,
];

fn run(a: &Csr<f64>, b: &Csr<f64>, policy: SimdPolicy) -> Output<f64> {
    let cfg = Config::builder().simd(policy).build();
    multiply_csr(a, b, &cfg, &tsg_runtime::MemTracker::new()).expect("multiply succeeds")
}

/// Structure equality plus value equality *by bits*: `==` on floats treats
/// `-0.0 == 0.0` and any NaN as unequal, so the sign-of-zero cases compare
/// the raw representations.
fn assert_bitwise(name: &str, a: &Csr<f64>, b: &Csr<f64>) {
    let pivot = run(a, b, SimdPolicy::ForceScalar);
    for policy in POLICIES {
        let out = run(a, b, policy);
        assert_eq!(
            pivot.c.masks, out.c.masks,
            "{name}/{policy:?}: structure diverged"
        );
        let pb: Vec<u64> = pivot.c.vals.iter().map(|v| v.to_bits()).collect();
        let ob: Vec<u64> = out.c.vals.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, ob, "{name}/{policy:?}: values are not bit-identical");
    }
}

/// A single-tile matrix holding the first `nnz` slots of a 16×16 tile in
/// row-major order, with varied non-symmetric values.
fn tile_with_nnz(nnz: usize, scale: f64) -> Csr<f64> {
    let mut coo = Coo::new(TILE_DIM, TILE_DIM);
    for k in 0..nnz {
        let (r, c) = (k / TILE_DIM, k % TILE_DIM);
        let v = scale * (1.0 + k as f64 * 0.375) * if k % 3 == 0 { -1.0 } else { 1.0 };
        coo.push(r as u32, c as u32, v);
    }
    coo.to_csr()
}

#[test]
fn all_dense_tile_is_bitwise_equal() {
    let a = tile_with_nnz(256, 1.0);
    let b = tile_with_nnz(256, 0.5);
    assert_bitwise("all-dense", &a, &b);
}

#[test]
fn single_entry_tile_is_bitwise_equal() {
    let mut coo = Coo::new(TILE_DIM, TILE_DIM);
    coo.push(7, 11, 3.25);
    let a = coo.to_csr();
    let mut coo = Coo::new(TILE_DIM, TILE_DIM);
    coo.push(11, 2, -1.5);
    let b = coo.to_csr();
    assert_bitwise("single-entry", &a, &b);
}

#[test]
fn cancellation_to_stored_zero_is_bitwise_equal() {
    // Row 0 of A holds +x and -x; B's rows 0 and 1 are identical, so every
    // product in C's row 0 sums to an exact stored 0.0. A kernel that adds
    // a spurious `va * 0.0` or mishandles the sign of zero diverges here.
    let mut coo = Coo::new(TILE_DIM, TILE_DIM);
    coo.push(0, 0, 2.5);
    coo.push(0, 1, -2.5);
    let a = coo.to_csr();
    let mut coo = Coo::new(TILE_DIM, TILE_DIM);
    for c in 0..TILE_DIM as u32 {
        let v = 1.0 + c as f64 * 0.125;
        coo.push(0, c, v);
        coo.push(1, c, v);
    }
    let b = coo.to_csr();
    assert_bitwise("cancellation", &a, &b);
    let out = run(&a, &b, SimdPolicy::ForceSimd);
    assert!(
        out.c.vals.iter().all(|v| v.to_bits() == 0.0f64.to_bits()),
        "the cancelled row stores exact +0.0"
    );
}

#[test]
fn output_nnz_pinned_at_both_thresholds_is_bitwise_equal() {
    // I · B keeps B's tile nnz, so the output tile sits exactly at the
    // requested count: the dense-tile promotion point and the paper's
    // `tnnz` accumulator threshold, each ±1.
    let eye = Csr::<f64>::identity(TILE_DIM);
    for nnz in [
        DENSE_TILE_TNNZ - 1,
        DENSE_TILE_TNNZ,
        DENSE_TILE_TNNZ + 1,
        191,
        192,
        193,
    ] {
        let b = tile_with_nnz(nnz, 1.0);
        assert_bitwise(&format!("tnnz-{nnz}"), &eye, &b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Squared R-MAT matrices across seeds, once on the ambient pool and
    /// once pinned to a single rayon thread: the kernel choice must be
    /// invisible at any parallelism.
    #[test]
    fn rmat_square_is_bitwise_equal_at_any_thread_count(seed in 0u64..10_000) {
        let a = tsg_gen::suite::GenSpec::Rmat {
            scale: 7,
            edges: 600 + (seed as usize % 700),
            mild: seed % 2 == 0,
            seed,
        }
        .build();
        assert_bitwise("rmat-ambient", &a, &a);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool builds");
        pool.install(|| assert_bitwise("rmat-1-thread", &a, &a));
    }
}
