//! Steady-state allocation audit of the step-2/step-3 hot path.
//!
//! A counting global allocator wraps the system allocator; after one warm
//! pass over every tile task (which grows the scratch arena's buffers to
//! their high-water sizes), a second identical pass must perform **zero**
//! heap allocations — the property the arena module exists to provide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use tilespgemm_core::step2::{encode_pairs, matched_pairs_with, symbolic_tile, PairBuffer};
use tilespgemm_core::step3::{numeric_tile_dense, numeric_tile_sparse};
use tilespgemm_core::IntersectionKind;
use tsg_matrix::{Coo, ListBitmaps, TileMatrix};
use tsg_runtime::{Scratch, ScratchPool};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn random_tiled(n: usize, per_row: usize, seed: u64) -> TileMatrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut coo = Coo::new(n, n);
    for r in 0..n as u32 {
        for _ in 0..per_row {
            let c = (next() % n as u64) as u32;
            coo.push(r, c, (next() % 16) as f64 - 8.0);
        }
    }
    TileMatrix::from_csr(&coo.to_csr())
}

/// One full pass of the per-tile hot path over every `(ti, tj)` tile pair
/// of `a·b`, using only `s` and the pre-sized `vals` window for storage.
/// Returns a checksum so the work cannot be optimized away.
#[allow(clippy::too_many_arguments)]
fn hot_pass(
    a: &TileMatrix<f64>,
    b: &TileMatrix<f64>,
    b_cols: &tsg_matrix::TileColIndex,
    bitmaps: (&ListBitmaps, &ListBitmaps),
    buf: &PairBuffer,
    s: &mut Scratch,
    vals: &mut [f64],
    tnnz: usize,
) -> f64 {
    let mut checksum = 0.0;
    let mut t = 0usize;
    for ti in 0..a.tile_m {
        for tj in 0..b.tile_n {
            // Step 2: adaptive intersection + symbolic mask-OR, staged
            // through the arena's pair lists and packed-word scratch.
            matched_pairs_with(
                a,
                b_cols,
                ti,
                tj,
                IntersectionKind::Adaptive,
                Some(bitmaps),
                &mut s.pos_pairs,
                &mut s.id_pairs,
            );
            let sym = symbolic_tile(a, b, &s.id_pairs);
            s.words.clear();
            encode_pairs(&s.pos_pairs, &mut s.words);
            if s.id_pairs.is_empty() {
                continue;
            }
            // Step 3 over the persisted pair buffer: decode, then both
            // numeric kernels into the pre-sized value window.
            let (_, b_ids) = b_cols.col(tj);
            buf.decode_tile(t, a.tile_ptr[ti] as u32, b_ids, &mut s.id_pairs);
            t += 1;
            let window = &mut vals[..sym.nnz];
            window.fill(0.0);
            if sym.nnz > tnnz {
                numeric_tile_dense(a, b, &s.id_pairs, &sym.masks, window);
            } else {
                numeric_tile_sparse(a, b, &s.id_pairs, &sym.masks, &sym.row_ptr, window);
            }
            checksum += window.iter().sum::<f64>();
        }
    }
    checksum
}

#[test]
fn steady_state_hot_path_performs_zero_allocations() {
    let a = random_tiled(160, 6, 97);
    let b = random_tiled(160, 6, 131);
    let b_cols = b.col_index();
    let a_maps = ListBitmaps::from_csr(&a.tile_ptr, &a.tile_colidx, a.tile_n);
    let b_maps = ListBitmaps::from_csr(&b_cols.colptr, &b_cols.rowidx, b.tile_m);

    // A pair buffer covering every non-empty tile pair, as step 2 persists.
    let (mut pos, mut ids) = (Vec::new(), Vec::new());
    let (mut words, mut offsets) = (Vec::new(), vec![0u32]);
    for ti in 0..a.tile_m {
        for tj in 0..b.tile_n {
            matched_pairs_with(
                &a,
                &b_cols,
                ti,
                tj,
                IntersectionKind::Adaptive,
                Some((&a_maps, &b_maps)),
                &mut pos,
                &mut ids,
            );
            if ids.is_empty() {
                continue;
            }
            encode_pairs(&pos, &mut words);
            offsets.push(words.len() as u32);
        }
    }
    let buf = PairBuffer { offsets, words };

    let pool = ScratchPool::new();
    let mut guard = pool.checkout();
    let mut vals = vec![0.0f64; 256];

    // Warm pass: scratch buffers grow to their high-water sizes here.
    let warm = hot_pass(
        &a,
        &b,
        &b_cols,
        (&a_maps, &b_maps),
        &buf,
        &mut guard,
        &mut vals,
        192,
    );

    // Steady state: bit-identical work, zero heap traffic.
    let before = ALLOCS.load(Ordering::Relaxed);
    let steady = hot_pass(
        &a,
        &b,
        &b_cols,
        (&a_maps, &b_maps),
        &buf,
        &mut guard,
        &mut vals,
        192,
    );
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state step-2/3 execution must not touch the allocator"
    );
    assert_eq!(warm, steady, "the two passes did identical work");
    assert_ne!(warm, 0.0, "the product is non-trivial");
}
