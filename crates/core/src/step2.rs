//! Step 2: per-tile symbolic phase (§3.3, Algorithm 2, Figures 4–5).
//!
//! For every tile `C_ij` found by step 1, one task (the paper's warp):
//!
//! 1. intersects `A`'s tile row `i` with `B`'s tile column `j`
//!    ([`crate::intersect`]) to find the matched pairs `(A_ik, B_kj)`;
//! 2. for each pair, walks `A_ik`'s nonzeros; a nonzero at local `(r, c)`
//!    pulls `B_kj`'s row mask `c` and ORs it into `C_ij`'s row mask `r`
//!    (the paper's `AtomicOr` — plain OR here because one task owns the
//!    tile);
//! 3. popcounts the 16 row masks into the tile's local row pointers and its
//!    nonzero count.
//!
//! All state is a few `u16`s on the stack, honouring the paper's bound that
//! step 2 never allocates global intermediate memory.

use crate::intersect::{
    intersect_bitmap, intersect_into, resolve_kind, IntersectionKind, MatchedPair,
};
use tsg_matrix::{ListBitmaps, Scalar, TileColIndex, TileMatrix, TILE_DIM};

/// Escape word of the packed pair encoding: the next four words carry the
/// absolute `(pos_a, pos_b)` positions (lo/hi halves). Unreachable as a
/// delta word because deltas are capped below 255 (high byte ≤ 254).
pub const PAIR_ESCAPE: u16 = u16::MAX;

/// The matched pairs of every output tile, delta-coded into packed `u16`
/// words: tile `t` owns `words[offsets[t]..offsets[t + 1]]`.
///
/// Step 2 persists this when [`crate::Config::pair_reuse`] is on, so step 3
/// reads the lists back instead of re-running the tile-row/tile-column set
/// intersection (the paper's kernels recompute it; see DESIGN.md §7).
///
/// What is stored are the intersection's *list positions* `(pos_a, pos_b)`,
/// not flat tile ids: both positions rise strictly within a tile, so
/// successive pairs delta-code into a single word `(da << 8) | db` whenever
/// both deltas fit a byte (the overwhelmingly common case — ≈2 bytes per
/// pair against 8 for the flat form). Rare wide deltas spill to a
/// [`PAIR_ESCAPE`] word plus four absolute half-words.
/// [`PairBuffer::decode_tile`] re-derives the flat ids from the tile-row
/// base and the tile-column id list, exactly as [`matched_pairs`] does.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairBuffer {
    /// Per-tile *word* offsets into `words`, length `num_tiles + 1`.
    pub offsets: Vec<u32>,
    /// Packed delta words, grouped per output tile.
    pub words: Vec<u16>,
}

impl PairBuffer {
    /// The packed words of output tile `t`.
    pub fn tile_words(&self, t: usize) -> &[u16] {
        &self.words[self.offsets[t] as usize..self.offsets[t + 1] as usize]
    }

    /// Number of output tiles covered.
    pub fn tile_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Decodes tile `t` back to list positions `(pos_a, pos_b)`.
    pub fn decode_positions(&self, t: usize, out: &mut Vec<MatchedPair>) {
        out.clear();
        decode_words(self.tile_words(t), |pa, pb| out.push((pa, pb)));
    }

    /// Decodes tile `t` to flat `(a_tile_id, b_tile_id)` pairs (cleared
    /// first): `a_base` is `a.tile_ptr[ti]` and `b_ids` the tile-id list of
    /// `B`'s tile column `tj` — the same translation [`matched_pairs`]
    /// applies.
    pub fn decode_tile(&self, t: usize, a_base: u32, b_ids: &[u32], out: &mut Vec<(u32, u32)>) {
        out.clear();
        decode_words(self.tile_words(t), |pa, pb| {
            out.push((a_base + pa, b_ids[pb as usize]));
        });
    }

    /// Total number of pairs stored across every tile. Escape groups are
    /// self-delimiting (five words), so a linear walk suffices.
    pub fn pair_count(&self) -> usize {
        let mut n = 0usize;
        let mut i = 0usize;
        while i < self.words.len() {
            i += if self.words[i] == PAIR_ESCAPE { 5 } else { 1 };
            n += 1;
        }
        n
    }

    /// Tracked size of the buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u16>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

/// Appends the packed encoding of one tile's position pairs (strictly
/// ascending in both components) to `out`.
pub fn encode_pairs(pairs: &[MatchedPair], out: &mut Vec<u16>) {
    let (mut prev_a, mut prev_b) = (0u32, 0u32);
    for &(pa, pb) in pairs {
        let (da, db) = (pa - prev_a, pb - prev_b);
        if da < 255 && db < 255 {
            out.push(((da as u16) << 8) | db as u16);
        } else {
            out.push(PAIR_ESCAPE);
            out.push(pa as u16);
            out.push((pa >> 16) as u16);
            out.push(pb as u16);
            out.push((pb >> 16) as u16);
        }
        (prev_a, prev_b) = (pa, pb);
    }
}

/// Walks one tile's packed words, yielding each `(pos_a, pos_b)`.
fn decode_words(words: &[u16], mut emit: impl FnMut(u32, u32)) {
    let (mut pa, mut pb) = (0u32, 0u32);
    let mut i = 0usize;
    while i < words.len() {
        let w = words[i];
        if w == PAIR_ESCAPE {
            pa = words[i + 1] as u32 | (words[i + 2] as u32) << 16;
            pb = words[i + 3] as u32 | (words[i + 4] as u32) << 16;
            i += 5;
        } else {
            pa += (w >> 8) as u32;
            pb += (w & 0xFF) as u32;
            i += 1;
        }
        emit(pa, pb);
    }
}

/// The per-tile symbolic result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSymbolic {
    /// Row bitmasks of the output tile.
    pub masks: [u16; TILE_DIM],
    /// Local row pointers (16 entries, derived 17th == `nnz`).
    pub row_ptr: [u8; TILE_DIM],
    /// Stored nonzeros of the tile.
    pub nnz: usize,
}

/// Finds the matched `(a_tile_id, b_tile_id)` pairs for output tile
/// `(ti, tj)`, appending to `pairs` (cleared first).
///
/// `a` contributes its tile row `ti`; `b_cols` (the column index of `B`)
/// contributes its tile column `tj`. Positions returned by the intersection
/// are translated to flat tile ids.
pub fn matched_pairs<T: Scalar>(
    a: &TileMatrix<T>,
    b_cols: &TileColIndex,
    ti: usize,
    tj: usize,
    kind: IntersectionKind,
    scratch: &mut Vec<MatchedPair>,
    pairs: &mut Vec<(u32, u32)>,
) {
    matched_pairs_with(a, b_cols, ti, tj, kind, None, scratch, pairs);
}

/// [`matched_pairs`] with optional bitmap sidecars: `bitmaps` are the
/// [`ListBitmaps`] of `A`'s tile rows and `B`'s tile columns (when the
/// pipeline's footprint gate built them). The kind resolves per tile —
/// `Adaptive` through the cost model, `Bitmap` degrading to binary search
/// when the sidecars are absent — and the resolved concrete kind is
/// returned for the chosen-kernel histogram. `scratch` is left holding the
/// list-position pairs (what [`encode_pairs`] packs); `pairs` gets the
/// translated flat tile ids.
#[allow(clippy::too_many_arguments)]
pub fn matched_pairs_with<T: Scalar>(
    a: &TileMatrix<T>,
    b_cols: &TileColIndex,
    ti: usize,
    tj: usize,
    kind: IntersectionKind,
    bitmaps: Option<(&ListBitmaps, &ListBitmaps)>,
    scratch: &mut Vec<MatchedPair>,
    pairs: &mut Vec<(u32, u32)>,
) -> IntersectionKind {
    let a_base = a.tile_ptr[ti];
    let a_cols = a.tile_row_cols(ti);
    let (b_rows, b_ids) = b_cols.col(tj);
    let words = bitmaps.map(|(am, _)| am.words_per_list());
    let resolved = resolve_kind(kind, a_cols.len(), b_rows.len(), words);
    if resolved == IntersectionKind::Bitmap {
        let (am, bm) = bitmaps.expect("Bitmap only resolves with sidecars present");
        let (aw, ar) = am.list(ti);
        let (bw, br) = bm.list(tj);
        intersect_bitmap(aw, ar, bw, br, scratch);
    } else {
        intersect_into(resolved, a_cols, b_rows, scratch);
    }
    pairs.clear();
    pairs.extend(
        scratch
            .iter()
            .map(|&(pa, pb)| ((a_base + pa as usize) as u32, b_ids[pb as usize])),
    );
    resolved
}

/// Computes the symbolic tile `C_ij` from its matched pairs (Figure 5).
pub fn symbolic_tile<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
) -> TileSymbolic {
    let mut masks = [0u16; TILE_DIM];
    for &(a_id, b_id) in pairs {
        let a_tile = a.tile(a_id as usize);
        let b_masks = b.tile(b_id as usize).masks;
        // Every nonzero (r, c) of A_ik routes B_kj's row mask c into C row r.
        for (&r, &c) in a_tile.row_idx.iter().zip(a_tile.col_idx.iter()) {
            masks[r as usize] |= b_masks[c as usize];
        }
    }
    let (row_ptr, nnz) = crate::maskops::row_ptr_from_masks(&masks);
    TileSymbolic {
        masks,
        row_ptr,
        nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::{Coo, Csr};

    /// Builds a tiled matrix from triplets on a 32x32 grid (2x2 tiles).
    fn tiled(entries: &[(u32, u32)]) -> TileMatrix<f64> {
        let mut coo = Coo::new(32, 32);
        for &(r, c) in entries {
            coo.push(r, c, 1.0);
        }
        TileMatrix::from_csr(&coo.to_csr())
    }

    #[test]
    fn figure5_style_mask_or() {
        // A has one tile (0,0) with nonzeros at rows 0: cols {0, 2}.
        // B has one tile (0,0) with row masks: row0 = {0,1}, row2 = {1,3}.
        // C tile (0,0) row 0 must get mask {0,1} | {1,3} = {0,1,3}.
        let a = tiled(&[(0, 0), (0, 2)]);
        let b = tiled(&[(0, 0), (0, 1), (2, 1), (2, 3)]);
        let sym = symbolic_tile(&a, &b, &[(0, 0)]);
        assert_eq!(sym.masks[0], 0b1011);
        assert_eq!(sym.nnz, 3);
        assert_eq!(sym.row_ptr[0], 0);
        assert_eq!(sym.row_ptr[1], 3);
        assert_eq!(sym.row_ptr[15], 3);
    }

    #[test]
    fn symbolic_counts_match_exact_product_pattern() {
        // Random 32x32: symbolic nnz per tile must equal the true tile nnz
        // of the CSR product computed densely.
        let mut state = 31u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ea: Vec<(u32, u32)> = (0..150)
            .map(|_| ((next() % 32) as u32, (next() % 32) as u32))
            .collect();
        let eb: Vec<(u32, u32)> = (0..150)
            .map(|_| ((next() % 32) as u32, (next() % 32) as u32))
            .collect();
        let a = tiled(&ea);
        let b = tiled(&eb);
        // Dense positive-values oracle (no numeric cancellation possible).
        let ac: Csr<f64> = a.to_csr();
        let bc: Csr<f64> = b.to_csr();
        let dense = tsg_matrix::Dense::from_csr(&ac).matmul(&tsg_matrix::Dense::from_csr(&bc));
        let c_exact = TileMatrix::from_csr(&dense.to_csr());

        let b_cols = b.col_index();
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        for ti in 0..2usize {
            for tj in 0..2usize {
                matched_pairs(
                    &a,
                    &b_cols,
                    ti,
                    tj,
                    IntersectionKind::BinarySearch,
                    &mut scratch,
                    &mut pairs,
                );
                let sym = symbolic_tile(&a, &b, &pairs);
                // Find the exact tile, if present.
                let exact_nnz = c_exact
                    .tile_row_cols(ti)
                    .iter()
                    .position(|&tc| tc == tj as u32)
                    .map(|off| c_exact.tile_nnz_of(c_exact.tile_ptr[ti] + off))
                    .unwrap_or(0);
                assert_eq!(sym.nnz, exact_nnz, "tile ({ti},{tj})");
            }
        }
    }

    #[test]
    fn no_pairs_gives_empty_tile() {
        let a = tiled(&[(0, 0)]);
        let b = tiled(&[(0, 0)]);
        let sym = symbolic_tile(&a, &b, &[]);
        assert_eq!(sym.nnz, 0);
        assert_eq!(sym.masks, [0u16; 16]);
        assert_eq!(sym.row_ptr, [0u8; 16]);
    }

    #[test]
    fn full_tile_symbolic_reaches_256() {
        // Dense A tile times dense B tile -> full mask.
        let all: Vec<(u32, u32)> = (0..16u32)
            .flat_map(|r| (0..16u32).map(move |c| (r, c)))
            .collect();
        let a = tiled(&all);
        let b = tiled(&all);
        let sym = symbolic_tile(&a, &b, &[(0, 0)]);
        assert_eq!(sym.nnz, 256);
        assert_eq!(sym.masks, [0xFFFF; 16]);
        assert_eq!(sym.row_ptr[15], 240);
    }

    #[test]
    fn matched_pairs_translates_to_flat_ids() {
        // A row 0 has tiles at tile-cols {0, 1}; B col 1 has tiles at
        // tile-rows {0, 1}. Intersection of {0,1} (A's cols) with {0,1}
        // (B's rows) = both.
        let a = tiled(&[(0, 0), (0, 16), (16, 16)]);
        let b = tiled(&[(0, 16), (16, 16)]);
        let b_cols = b.col_index();
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        matched_pairs(
            &a,
            &b_cols,
            0,
            1,
            IntersectionKind::BinarySearch,
            &mut scratch,
            &mut pairs,
        );
        assert_eq!(pairs.len(), 2);
        // First pair: A tile (0,0) id 0 with B tile (0,1) id 0.
        // Second: A tile (0,1) id 1 with B tile (1,1) id 1.
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn matched_pairs_with_bitmap_sidecars_matches_list_kernels() {
        let a = tiled(&[(0, 0), (0, 16), (16, 16)]);
        let b = tiled(&[(0, 16), (16, 16)]);
        let b_cols = b.col_index();
        // Sidecars over the shared universe K = a.tile_n = b.tile_m = 2.
        let am = ListBitmaps::from_csr(&a.tile_ptr, &a.tile_colidx, a.tile_n);
        let bm = ListBitmaps::from_csr(&b_cols.colptr, &b_cols.rowidx, b.tile_m);
        let (mut scratch, mut pairs) = (Vec::new(), Vec::new());
        for kind in [
            IntersectionKind::BinarySearch,
            IntersectionKind::Merge,
            IntersectionKind::Bitmap,
            IntersectionKind::Adaptive,
        ] {
            for ti in 0..2usize {
                for tj in 0..2usize {
                    matched_pairs(
                        &a,
                        &b_cols,
                        ti,
                        tj,
                        IntersectionKind::BinarySearch,
                        &mut scratch,
                        &mut pairs,
                    );
                    let want = pairs.clone();
                    let resolved = matched_pairs_with(
                        &a,
                        &b_cols,
                        ti,
                        tj,
                        kind,
                        Some((&am, &bm)),
                        &mut scratch,
                        &mut pairs,
                    );
                    assert_eq!(pairs, want, "{kind:?} tile ({ti},{tj})");
                    assert_ne!(resolved, IntersectionKind::Adaptive);
                    // Without sidecars, Bitmap degrades but output is identical.
                    let degraded = matched_pairs_with(
                        &a,
                        &b_cols,
                        ti,
                        tj,
                        kind,
                        None,
                        &mut scratch,
                        &mut pairs,
                    );
                    assert_eq!(pairs, want);
                    assert_ne!(degraded, IntersectionKind::Bitmap);
                }
            }
        }
    }

    #[test]
    fn packed_pairs_round_trip_with_and_without_escapes() {
        // Tight deltas, a wide pos_a jump, a wide pos_b jump, and a pair
        // beyond u16 range — all must survive the escape path.
        let pairs: Vec<MatchedPair> = vec![
            (0, 0),
            (1, 3),
            (254, 4),   // da = 253: still a single word
            (510, 5),   // da = 256: escape
            (511, 300), // db = 295: escape
            (80_000, 70_000),
            (80_001, 70_001),
        ];
        let mut words = Vec::new();
        encode_pairs(&pairs, &mut words);
        // 4 single words + 3 escapes of 5 words each.
        assert_eq!(words.len(), 4 + 3 * 5);
        let buf = PairBuffer {
            offsets: vec![0, words.len() as u32],
            words,
        };
        let mut decoded = vec![(9, 9)];
        buf.decode_positions(0, &mut decoded);
        assert_eq!(decoded, pairs);
        assert_eq!(buf.tile_count(), 1);
        assert_eq!(buf.bytes(), buf.words.len() * 2 + 2 * 4);
    }

    #[test]
    fn decode_tile_translates_like_matched_pairs() {
        let a = tiled(&[(0, 0), (0, 16), (16, 16)]);
        let b = tiled(&[(0, 16), (16, 16)]);
        let b_cols = b.col_index();
        let (mut scratch, mut flat) = (Vec::new(), Vec::new());
        matched_pairs(
            &a,
            &b_cols,
            0,
            1,
            IntersectionKind::BinarySearch,
            &mut scratch,
            &mut flat,
        );
        // Pack the positions, then decode with the same base/id context.
        let mut words = Vec::new();
        encode_pairs(&scratch, &mut words);
        let buf = PairBuffer {
            offsets: vec![0, words.len() as u32],
            words,
        };
        let mut decoded = Vec::new();
        let (_, b_ids) = b_cols.col(1);
        buf.decode_tile(0, a.tile_ptr[0] as u32, b_ids, &mut decoded);
        assert_eq!(decoded, flat);
    }

    #[test]
    fn dense_delta_streams_pack_to_one_word_per_pair() {
        let pairs: Vec<MatchedPair> = (0..1000u32).map(|i| (i, i)).collect();
        let mut words = Vec::new();
        encode_pairs(&pairs, &mut words);
        assert_eq!(words.len(), pairs.len());
    }
}
