//! Step 2: per-tile symbolic phase (§3.3, Algorithm 2, Figures 4–5).
//!
//! For every tile `C_ij` found by step 1, one task (the paper's warp):
//!
//! 1. intersects `A`'s tile row `i` with `B`'s tile column `j`
//!    ([`crate::intersect`]) to find the matched pairs `(A_ik, B_kj)`;
//! 2. for each pair, walks `A_ik`'s nonzeros; a nonzero at local `(r, c)`
//!    pulls `B_kj`'s row mask `c` and ORs it into `C_ij`'s row mask `r`
//!    (the paper's `AtomicOr` — plain OR here because one task owns the
//!    tile);
//! 3. popcounts the 16 row masks into the tile's local row pointers and its
//!    nonzero count.
//!
//! All state is a few `u16`s on the stack, honouring the paper's bound that
//! step 2 never allocates global intermediate memory.

use crate::intersect::{intersect_into, IntersectionKind, MatchedPair};
use tsg_matrix::{Scalar, TileColIndex, TileMatrix, TILE_DIM};

/// The matched `(a_tile_id, b_tile_id)` pairs of every output tile, in CSR
/// shape: tile `t`'s pairs are `pairs[offsets[t]..offsets[t + 1]]`.
///
/// Step 2 persists this when [`crate::Config::pair_reuse`] is on, so step 3
/// reads the lists back instead of re-running the tile-row/tile-column set
/// intersection (the paper's kernels recompute it; see DESIGN.md §7).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairBuffer {
    /// Per-tile offsets into `pairs`, length `num_tiles + 1`.
    pub offsets: Vec<usize>,
    /// Flat matched `(a_tile_id, b_tile_id)` lists, grouped per output tile.
    pub pairs: Vec<(u32, u32)>,
}

impl PairBuffer {
    /// The matched pairs of output tile `t`.
    pub fn tile(&self, t: usize) -> &[(u32, u32)] {
        &self.pairs[self.offsets[t]..self.offsets[t + 1]]
    }

    /// Number of output tiles covered.
    pub fn tile_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Tracked size of the buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.pairs.len() * std::mem::size_of::<(u32, u32)>()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }
}

/// The per-tile symbolic result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSymbolic {
    /// Row bitmasks of the output tile.
    pub masks: [u16; TILE_DIM],
    /// Local row pointers (16 entries, derived 17th == `nnz`).
    pub row_ptr: [u8; TILE_DIM],
    /// Stored nonzeros of the tile.
    pub nnz: usize,
}

/// Finds the matched `(a_tile_id, b_tile_id)` pairs for output tile
/// `(ti, tj)`, appending to `pairs` (cleared first).
///
/// `a` contributes its tile row `ti`; `b_cols` (the column index of `B`)
/// contributes its tile column `tj`. Positions returned by the intersection
/// are translated to flat tile ids.
pub fn matched_pairs<T: Scalar>(
    a: &TileMatrix<T>,
    b_cols: &TileColIndex,
    ti: usize,
    tj: usize,
    kind: IntersectionKind,
    scratch: &mut Vec<MatchedPair>,
    pairs: &mut Vec<(u32, u32)>,
) {
    let a_base = a.tile_ptr[ti];
    let a_cols = a.tile_row_cols(ti);
    let (b_rows, b_ids) = b_cols.col(tj);
    intersect_into(kind, a_cols, b_rows, scratch);
    pairs.clear();
    pairs.extend(
        scratch
            .iter()
            .map(|&(pa, pb)| ((a_base + pa as usize) as u32, b_ids[pb as usize])),
    );
}

/// Computes the symbolic tile `C_ij` from its matched pairs (Figure 5).
pub fn symbolic_tile<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
) -> TileSymbolic {
    let mut masks = [0u16; TILE_DIM];
    for &(a_id, b_id) in pairs {
        let a_tile = a.tile(a_id as usize);
        let b_masks = b.tile(b_id as usize).masks;
        // Every nonzero (r, c) of A_ik routes B_kj's row mask c into C row r.
        for (&r, &c) in a_tile.row_idx.iter().zip(a_tile.col_idx.iter()) {
            masks[r as usize] |= b_masks[c as usize];
        }
    }
    let mut row_ptr = [0u8; TILE_DIM];
    let mut nnz = 0usize;
    for r in 0..TILE_DIM {
        // At most 15 full rows precede any pointer: 15 * 16 = 240 <= u8::MAX.
        debug_assert!(nnz <= 240);
        row_ptr[r] = nnz as u8;
        nnz += masks[r].count_ones() as usize;
    }
    TileSymbolic {
        masks,
        row_ptr,
        nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::{Coo, Csr};

    /// Builds a tiled matrix from triplets on a 32x32 grid (2x2 tiles).
    fn tiled(entries: &[(u32, u32)]) -> TileMatrix<f64> {
        let mut coo = Coo::new(32, 32);
        for &(r, c) in entries {
            coo.push(r, c, 1.0);
        }
        TileMatrix::from_csr(&coo.to_csr())
    }

    #[test]
    fn figure5_style_mask_or() {
        // A has one tile (0,0) with nonzeros at rows 0: cols {0, 2}.
        // B has one tile (0,0) with row masks: row0 = {0,1}, row2 = {1,3}.
        // C tile (0,0) row 0 must get mask {0,1} | {1,3} = {0,1,3}.
        let a = tiled(&[(0, 0), (0, 2)]);
        let b = tiled(&[(0, 0), (0, 1), (2, 1), (2, 3)]);
        let sym = symbolic_tile(&a, &b, &[(0, 0)]);
        assert_eq!(sym.masks[0], 0b1011);
        assert_eq!(sym.nnz, 3);
        assert_eq!(sym.row_ptr[0], 0);
        assert_eq!(sym.row_ptr[1], 3);
        assert_eq!(sym.row_ptr[15], 3);
    }

    #[test]
    fn symbolic_counts_match_exact_product_pattern() {
        // Random 32x32: symbolic nnz per tile must equal the true tile nnz
        // of the CSR product computed densely.
        let mut state = 31u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ea: Vec<(u32, u32)> = (0..150)
            .map(|_| ((next() % 32) as u32, (next() % 32) as u32))
            .collect();
        let eb: Vec<(u32, u32)> = (0..150)
            .map(|_| ((next() % 32) as u32, (next() % 32) as u32))
            .collect();
        let a = tiled(&ea);
        let b = tiled(&eb);
        // Dense positive-values oracle (no numeric cancellation possible).
        let ac: Csr<f64> = a.to_csr();
        let bc: Csr<f64> = b.to_csr();
        let dense = tsg_matrix::Dense::from_csr(&ac).matmul(&tsg_matrix::Dense::from_csr(&bc));
        let c_exact = TileMatrix::from_csr(&dense.to_csr());

        let b_cols = b.col_index();
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        for ti in 0..2usize {
            for tj in 0..2usize {
                matched_pairs(
                    &a,
                    &b_cols,
                    ti,
                    tj,
                    IntersectionKind::BinarySearch,
                    &mut scratch,
                    &mut pairs,
                );
                let sym = symbolic_tile(&a, &b, &pairs);
                // Find the exact tile, if present.
                let exact_nnz = c_exact
                    .tile_row_cols(ti)
                    .iter()
                    .position(|&tc| tc == tj as u32)
                    .map(|off| c_exact.tile_nnz_of(c_exact.tile_ptr[ti] + off))
                    .unwrap_or(0);
                assert_eq!(sym.nnz, exact_nnz, "tile ({ti},{tj})");
            }
        }
    }

    #[test]
    fn no_pairs_gives_empty_tile() {
        let a = tiled(&[(0, 0)]);
        let b = tiled(&[(0, 0)]);
        let sym = symbolic_tile(&a, &b, &[]);
        assert_eq!(sym.nnz, 0);
        assert_eq!(sym.masks, [0u16; 16]);
        assert_eq!(sym.row_ptr, [0u8; 16]);
    }

    #[test]
    fn full_tile_symbolic_reaches_256() {
        // Dense A tile times dense B tile -> full mask.
        let all: Vec<(u32, u32)> = (0..16u32)
            .flat_map(|r| (0..16u32).map(move |c| (r, c)))
            .collect();
        let a = tiled(&all);
        let b = tiled(&all);
        let sym = symbolic_tile(&a, &b, &[(0, 0)]);
        assert_eq!(sym.nnz, 256);
        assert_eq!(sym.masks, [0xFFFF; 16]);
        assert_eq!(sym.row_ptr[15], 240);
    }

    #[test]
    fn matched_pairs_translates_to_flat_ids() {
        // A row 0 has tiles at tile-cols {0, 1}; B col 1 has tiles at
        // tile-rows {0, 1}. Intersection of {0,1} (A's cols) with {0,1}
        // (B's rows) = both.
        let a = tiled(&[(0, 0), (0, 16), (16, 16)]);
        let b = tiled(&[(0, 16), (16, 16)]);
        let b_cols = b.col_index();
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        matched_pairs(
            &a,
            &b_cols,
            0,
            1,
            IntersectionKind::BinarySearch,
            &mut scratch,
            &mut pairs,
        );
        assert_eq!(pairs.len(), 2);
        // First pair: A tile (0,0) id 0 with B tile (0,1) id 0.
        // Second: A tile (0,1) id 1 with B tile (1,1) id 1.
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
    }
}
