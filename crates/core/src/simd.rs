//! Runtime-dispatched SIMD numeric kernels for step 3, and the dense-tile
//! fast path.
//!
//! The 16×16 tile with 16-bit row masks maps directly onto vector lanes: a
//! tile row is four f64 lanes × four strips on AVX2 (two lanes × eight
//! strips on NEON), and a row mask nibble selects the live lanes of one
//! strip. This module layers three pieces over the scalar kernels in
//! [`crate::step3`]:
//!
//! 1. **Runtime dispatch** ([`detected_level`]): `is_x86_feature_detected!`
//!    picks AVX2 on x86_64, NEON is baseline on aarch64, and everything else
//!    (or `TSG_SIMD=scalar` in the environment, or the `core.simd_dispatch`
//!    failpoint) falls back to the scalar reference kernels.
//! 2. **A policy knob** ([`SimdPolicy`], `Config::simd`) mirroring
//!    [`crate::IntersectionKind::Adaptive`]: `Auto` selects per tile,
//!    `ForceScalar`/`ForceSimd`/`ForceDenseTile` pin a path for ablations
//!    and differential checks.
//! 3. **A dense-tile fast path**: when a tile's output density crosses
//!    [`DENSE_TILE_TNNZ`] (a closed-form threshold in the spirit of the
//!    step-2 selector; see DESIGN.md §15), the whole tile runs through the
//!    dense 16×16 micro-kernel — expanded B rows, masked lane adds — instead
//!    of the per-product sparse accumulator.
//!
//! **Bitwise identity.** Every path here produces output bit-identical to
//! the scalar sparse accumulator. Two invariants make that possible: each
//! output slot receives its products in the same order on every path (pairs
//! in order, A nonzeros in order, B row entries in ascending column — lanes
//! only parallelize across *distinct* slots), and the vector kernels use
//! separate multiply and add instructions (never FMA), matching the scalar
//! `acc += va * vb` two-rounding sequence. Lanes outside a B row mask are
//! blended away rather than fed zeros, so they cannot flip a sign of zero or
//! launder `inf * 0` into the output. The tsg-check oracle pins this
//! equality across the whole corpus.

use std::any::TypeId;
use std::sync::OnceLock;

use tsg_matrix::{Scalar, TileMatrix, TILE_AREA, TILE_DIM};

use crate::maskops;
use crate::step3::{
    fill_indices_from_masks, numeric_tile_dense, numeric_tile_sparse, AccumulatorKind,
};
use crate::EstHints;

/// The instruction set the numeric kernels run on, resolved once per
/// process by [`detected_level`] (and forced down by policy or failpoint
/// per multiply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar kernels — the bit-identical reference path.
    Scalar,
    /// 256-bit AVX2 lanes (x86_64, runtime-detected).
    Avx2,
    /// 128-bit NEON lanes (aarch64 baseline).
    Neon,
}

impl SimdLevel {
    /// Wire name for protocol/bench surfaces.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

/// Which numeric implementation step 3 uses — the `AccumulatorKind`-style
/// knob carried by `Config::simd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPolicy {
    /// Per-tile selection (default): vector kernels when the hardware has
    /// them, and the dense-tile micro-kernel once a tile's output density
    /// crosses the [`DENSE_TILE_TNNZ`] threshold.
    Auto,
    /// Pin the scalar reference kernels (pre-SIMD behavior, and the pivot
    /// the oracle compares every other policy against).
    ForceScalar,
    /// Pin the vector kernels under the paper's sparse/dense accumulator
    /// split, without the lowered dense-tile threshold. Degrades to scalar
    /// where the hardware has no vector unit.
    ForceSimd,
    /// Run every tile through the dense 16×16 micro-kernel regardless of
    /// density (the ablation's upper bound on dense-path coverage).
    ForceDenseTile,
}

/// Output-density threshold (stored nonzeros out of 256) above which `Auto`
/// routes a tile through the dense micro-kernel even though the paper's
/// accumulator rule (`tnnz` = 192) would still pick the sparse one.
///
/// Derivation (DESIGN.md §15): per product the sparse accumulator pays a
/// hardware-popcount rank + scattered add; the dense micro-kernel pays a
/// per-pair B expansion (~b_nnz + 16 stores) amortized over the pair's A
/// nonzeros, then ~6 vector ops per live 4-slot strip — but a strip only
/// covers real work when its slots are mostly live. On the committed
/// power-law rows B rows average ~2 stored entries, so the expansion never
/// amortizes until the output tile is close to full: measured on those rows
/// the dense micro-kernel only beats the tight sparse kernel above ~11/16
/// density, 176 of 256 slots (the paper's accumulator rule takes over at
/// `tnnz` = 192).
pub const DENSE_TILE_TNNZ: usize = 176;

/// When `est_hints` predicts at least this many matched pairs per output
/// tile, the B-expansion cost of the dense micro-kernel amortizes over more
/// A nonzeros, so `Auto` halves the dense-tile threshold.
pub const HINT_PAIRS_PER_TILE: usize = 8;

/// The dense-tile promotion threshold for one run: [`DENSE_TILE_TNNZ`]
/// capped at the configured `tnnz` (so a lowered accumulator threshold is
/// honored), and halved when the sampled-estimator hints predict pair-heavy
/// tiles ([`HINT_PAIRS_PER_TILE`]).
pub fn dense_tile_threshold(tnnz: usize, est_hints: Option<EstHints>) -> usize {
    let mut t = DENSE_TILE_TNNZ.min(tnnz);
    if let Some(h) = est_hints {
        if h.pairs >= h.tiles_c.max(1) * HINT_PAIRS_PER_TILE {
            t /= 2;
        }
    }
    t
}

/// Detects the best vector level this process can use. Cached after the
/// first call; `TSG_SIMD=scalar` in the environment pins the scalar
/// reference kernels for a whole run (the CI force-disable leg).
pub fn detected_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::env::var_os("TSG_SIMD").is_some_and(|v| v == "scalar") {
            return SimdLevel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            // `popcnt` predates AVX2 on every real part, but the tight
            // sparse kernel compiles with both features enabled, so gate on
            // both rather than assume.
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
            {
                return SimdLevel::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            return SimdLevel::Neon;
        }
        #[allow(unreachable_code)]
        SimdLevel::Scalar
    })
}

/// Resolves the level one multiply runs at: the policy's force-down, then
/// the `core.simd_dispatch` failpoint (which forces the scalar path so
/// fault drills can pin the fallback), then hardware detection.
pub fn resolve_level(policy: SimdPolicy) -> SimdLevel {
    if policy == SimdPolicy::ForceScalar {
        return SimdLevel::Scalar;
    }
    #[cfg(feature = "failpoints")]
    if tsg_runtime::failpoint::should_fail("core.simd_dispatch") {
        return SimdLevel::Scalar;
    }
    detected_level()
}

/// The per-tile kernel choice — a pure function of run-constant facts plus
/// the tile's nonzero count, so the observability replay re-derives exactly
/// what the hot loop ran (same contract as the step-2 `resolve_kind`
/// histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Scalar sparse (rank-addressed) accumulator — the reference path.
    SparseScalar,
    /// Scalar dense 256-slot accumulator.
    DenseScalar,
    /// Sparse accumulator with lane-built rank tables.
    SparseSimd,
    /// Vector dense micro-kernel, chosen by the paper's `tnnz` rule.
    DenseSimd,
    /// Vector dense micro-kernel, promoted by the dense-tile fast path
    /// (below `tnnz`) or pinned by [`SimdPolicy::ForceDenseTile`].
    DenseTile,
}

/// Selects the kernel for a tile with `nnz` stored output nonzeros.
///
/// `dense_tile_nnz` is the promotion threshold from
/// [`dense_tile_threshold`]. The fast path only promotes under
/// [`AccumulatorKind::Adaptive`], so the `AlwaysSparse`/`AlwaysDense`
/// ablation knobs keep their meaning.
pub fn select_kernel(
    policy: SimdPolicy,
    level: SimdLevel,
    nnz: usize,
    acc: AccumulatorKind,
    tnnz: usize,
    dense_tile_nnz: usize,
) -> Kernel {
    let dense = acc.use_dense(nnz, tnnz);
    let vector = level != SimdLevel::Scalar;
    match policy {
        SimdPolicy::ForceScalar => {
            if dense {
                Kernel::DenseScalar
            } else {
                Kernel::SparseScalar
            }
        }
        SimdPolicy::ForceDenseTile => Kernel::DenseTile,
        SimdPolicy::ForceSimd => match (vector, dense) {
            (true, true) => Kernel::DenseSimd,
            (true, false) => Kernel::SparseSimd,
            (false, true) => Kernel::DenseScalar,
            (false, false) => Kernel::SparseScalar,
        },
        SimdPolicy::Auto => {
            if !vector {
                if dense {
                    Kernel::DenseScalar
                } else {
                    Kernel::SparseScalar
                }
            } else if dense {
                Kernel::DenseSimd
            } else if acc == AccumulatorKind::Adaptive && nnz >= dense_tile_nnz {
                Kernel::DenseTile
            } else {
                Kernel::SparseSimd
            }
        }
    }
}

/// Runs the numeric phase for one tile through the selected kernel.
///
/// All five kernels produce bit-identical `vals`; see the module docs for
/// why. Non-`f64` element types always take the scalar reference kernels
/// (the vector kernels are f64-lane specializations).
#[allow(clippy::too_many_arguments)]
pub fn run_numeric<T: Scalar>(
    kernel: Kernel,
    level: SimdLevel,
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    row_ptr: &[u8],
    vals: &mut [T],
) {
    match kernel {
        Kernel::SparseScalar => numeric_tile_sparse(a, b, pairs, masks, row_ptr, vals),
        Kernel::DenseScalar => numeric_tile_dense(a, b, pairs, masks, vals),
        Kernel::SparseSimd => numeric_tile_sparse_fast(a, b, pairs, masks, row_ptr, vals, level),
        Kernel::DenseSimd | Kernel::DenseTile => {
            numeric_tile_dense_simd(a, b, pairs, masks, vals, level)
        }
    }
}

/// The tuned sparse accumulator. Same triple loop as
/// [`numeric_tile_sparse`] — pairs in order, A nonzeros in order, B row
/// entries ascending — so every output slot sees its additions in the
/// reference order and the result is bit-identical. What changes is the
/// cost per product: tile windows are resolved once per pair without view
/// construction, rank queries compile to a hardware `popcnt`, and on AVX2
/// the B-row multiplies run four lanes at a time (the adds stay scalar, in
/// order; a vector lane multiply rounds exactly like the scalar one).
///
/// Power-law workloads put ~80% of output tiles below 9 stored nonzeros,
/// so the per-pair/per-product overhead is what the SIMD rung actually
/// buys back — the wide dense strips only pay on near-dense tiles (see
/// [`DENSE_TILE_TNNZ`]).
pub fn numeric_tile_sparse_fast<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    row_ptr: &[u8],
    vals: &mut [T],
    level: SimdLevel,
) {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 && TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: TypeId equality proves T == f64; level is runtime-detected.
        unsafe {
            let af = &*(a as *const TileMatrix<T> as *const TileMatrix<f64>);
            let bf = &*(b as *const TileMatrix<T> as *const TileMatrix<f64>);
            let vf = &mut *(vals as *mut [T] as *mut [f64]);
            sparse_fast_avx2(af, bf, pairs, masks, row_ptr, vf);
        }
        return;
    }
    let _ = level;
    // SAFETY: the structural invariants checked inside the body hold for
    // any well-formed TileMatrix pair produced by steps 1–2.
    unsafe { sparse_fast_body(a, b, pairs, masks, row_ptr, vals) }
}

/// Index fill from the symbolic row masks, dispatched like the numeric
/// kernels: the scalar level keeps the per-bit reference
/// [`fill_indices_from_masks`], the vector levels decode each mask byte
/// through [`maskops::BYTE_DECODE`] with unconditional 8-byte stores
/// (branch-free SWAR — the decode table is the mask-driven
/// scatter/compress primitive, just applied to structure instead of
/// values). Output bytes are identical either way; only the store pattern
/// differs.
pub fn fill_indices_fast(
    masks: &[u16],
    row_idx: &mut [u8],
    col_idx: &mut [u8],
    level: SimdLevel,
) -> usize {
    if level == SimdLevel::Scalar {
        return fill_indices_from_masks(masks, row_idx, col_idx);
    }
    // The unconditional 8-byte stores spill up to 15 bytes past a row's
    // entries, and most power-law tiles hold fewer than 16 nonzeros total —
    // so decode into a stack scratch with slack and copy the live prefix
    // out. The copy is at most TILE_AREA bytes per array and the scratch
    // stays in L1.
    let mut cols = [0u8; TILE_AREA + 16];
    let mut rows = [0u8; TILE_AREA + 16];
    let cp = cols.as_mut_ptr();
    let rp = rows.as_mut_ptr();
    let mut k = 0usize;
    for (r, &m) in masks.iter().enumerate().take(TILE_DIM) {
        if m == 0 {
            continue;
        }
        let (lo, hi) = (m as u8 as usize, (m >> 8) as usize);
        let pop_lo = lo.count_ones() as usize;
        // SAFETY: k <= TILE_AREA - pop so far, and each pair of stores ends
        // by k + pop_lo + 8 <= TILE_AREA + 16.
        unsafe {
            let lo_cols = u64::from_le_bytes(maskops::BYTE_DECODE[lo].0);
            let hi_cols = u64::from_le_bytes(maskops::BYTE_DECODE[hi].0) + 0x0808_0808_0808_0808;
            cp.add(k).cast::<u64>().write_unaligned(lo_cols);
            cp.add(k + pop_lo).cast::<u64>().write_unaligned(hi_cols);
            let row8 = (r as u64) * 0x0101_0101_0101_0101;
            rp.add(k).cast::<u64>().write_unaligned(row8);
            rp.add(k + 8).cast::<u64>().write_unaligned(row8);
        }
        k += pop_lo + hi.count_ones() as usize;
    }
    let n = k.min(row_idx.len()).min(col_idx.len());
    row_idx[..n].copy_from_slice(&rows[..n]);
    col_idx[..n].copy_from_slice(&cols[..n]);
    k
}

/// `popcnt` is universal on AVX2 hardware; compiling the body with both
/// features turns every rank query into a single instruction and lets the
/// vectorizer use 256-bit registers for the strip loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn sparse_fast_avx2(
    a: &TileMatrix<f64>,
    b: &TileMatrix<f64>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    row_ptr: &[u8],
    vals: &mut [f64],
) {
    sparse_fast_body(a, b, pairs, masks, row_ptr, vals)
}

/// Shared tight body; `#[inline(always)]` so the `target_feature` wrappers
/// compile it with their feature sets.
#[inline(always)]
unsafe fn sparse_fast_body<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    row_ptr: &[u8],
    vals: &mut [T],
) {
    debug_assert!(masks.len() >= TILE_DIM && row_ptr.len() >= TILE_DIM);
    let vp = vals.as_mut_ptr();
    for &(a_id, b_id) in pairs {
        let (a_id, b_id) = (a_id as usize, b_id as usize);
        debug_assert!(a_id + 1 < a.tile_nnz.len() && b_id + 1 < b.tile_nnz.len());
        let a_lo = *a.tile_nnz.get_unchecked(a_id);
        let a_len = *a.tile_nnz.get_unchecked(a_id + 1) - a_lo;
        let b_lo = *b.tile_nnz.get_unchecked(b_id);
        let b_len = *b.tile_nnz.get_unchecked(b_id + 1) - b_lo;
        let a_rows = a.row_idx.as_ptr().add(a_lo);
        let a_cols = a.col_idx.as_ptr().add(a_lo);
        let a_vals = a.vals.as_ptr().add(a_lo);
        let b_rp = b.row_ptr.as_ptr().add(b_id * TILE_DIM);
        let b_cols = b.col_idx.as_ptr().add(b_lo);
        let b_vals = b.vals.as_ptr().add(b_lo);
        for i in 0..a_len {
            let r = *a_rows.add(i) as usize;
            let c = *a_cols.add(i) as usize;
            let va = *a_vals.add(i);
            let s = *b_rp.add(c) as usize;
            let e = if c + 1 < TILE_DIM {
                *b_rp.add(c + 1) as usize
            } else {
                b_len
            };
            if s == e {
                continue;
            }
            let mask = *masks.get_unchecked(r) as u32;
            let base = *row_ptr.get_unchecked(r) as usize;
            for kb in s..e {
                let k = *b_cols.add(kb) as u32;
                let vb = *b_vals.add(kb);
                debug_assert!(mask & (1 << k) != 0, "product outside symbolic mask");
                let rank = (mask & ((1u32 << k) - 1)).count_ones() as usize;
                let slot = vp.add(base + rank);
                *slot += va * vb;
            }
        }
    }
}

/// Dense 16×16 micro-kernel: B tiles expanded to dense rows, one broadcast
/// multiply + masked lane add per A nonzero per strip, compressed through
/// the output masks at the end. Falls back to the scalar dense accumulator
/// when the level is scalar or the element type has no lane kernel.
pub fn numeric_tile_dense_simd<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    vals: &mut [T],
    level: SimdLevel,
) {
    if level != SimdLevel::Scalar && TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: TypeId equality proves T == f64; the reference casts
        // re-view the same types.
        let (af, bf) = unsafe {
            (
                &*(a as *const TileMatrix<T> as *const TileMatrix<f64>),
                &*(b as *const TileMatrix<T> as *const TileMatrix<f64>),
            )
        };
        let vf = unsafe { &mut *(vals as *mut [T] as *mut [f64]) };
        #[cfg(target_arch = "x86_64")]
        if level == SimdLevel::Avx2 {
            // SAFETY: level is runtime-detected AVX2.
            unsafe { dense_tile_avx2(af, bf, pairs, masks, vf) };
            return;
        }
        #[cfg(target_arch = "aarch64")]
        if level == SimdLevel::Neon {
            // SAFETY: NEON is baseline on aarch64.
            unsafe { dense_tile_neon(af, bf, pairs, masks, vf) };
            return;
        }
        let _ = (af, bf, vf);
    }
    numeric_tile_dense(a, b, pairs, masks, vals);
}

/// Mask-ordered compress of a 256-slot accumulator into the tile's value
/// window, via the byte-decode table. Identical output order to the
/// `trailing_zeros` walk in [`numeric_tile_dense`].
fn compress_acc<T: Scalar>(acc: &[T; TILE_AREA], masks: &[u16], vals: &mut [T]) {
    let mut cols = [0u8; TILE_DIM];
    let mut out = 0usize;
    for (r, &m) in masks.iter().enumerate().take(TILE_DIM) {
        let n = maskops::decode_mask_cols(m, &mut cols, 0);
        let row = r * TILE_DIM;
        for &c in &cols[..n] {
            vals[out] = acc[row + c as usize];
            out += 1;
        }
    }
    debug_assert_eq!(out, vals.len());
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dense_tile_avx2(
    a: &TileMatrix<f64>,
    b: &TileMatrix<f64>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    vals: &mut [f64],
) {
    use std::arch::x86_64::*;
    // Mask-nibble -> 4-lane blend selector (MSB-set lanes take the new sum).
    static NIBBLE_BLEND: [[u64; 4]; 16] = {
        let mut t = [[0u64; 4]; 16];
        let mut n = 0;
        while n < 16 {
            let mut lane = 0;
            while lane < 4 {
                if n & (1 << lane) != 0 {
                    t[n][lane] = u64::MAX;
                }
                lane += 1;
            }
            n += 1;
        }
        t
    };
    let mut acc = [0f64; TILE_AREA];
    // B-row expansion scratch. Lanes outside the *current* pair's row masks
    // may hold stale values from an earlier pair; they are never selected by
    // the blend, so the buffer is not re-zeroed between pairs.
    let mut bd = [0f64; TILE_AREA];
    for &(a_id, b_id) in pairs {
        let a_tile = a.tile(a_id as usize);
        let b_tile = b.tile(b_id as usize);
        for r in 0..TILE_DIM {
            for kb in b_tile.row_range(r) {
                bd[r * TILE_DIM + b_tile.col_idx[kb] as usize] = b_tile.vals[kb];
            }
        }
        for ((&r, &c), &va) in a_tile
            .row_idx
            .iter()
            .zip(a_tile.col_idx.iter())
            .zip(a_tile.vals.iter())
        {
            let bm = b_tile.masks[c as usize];
            if bm == 0 {
                continue;
            }
            let vav = _mm256_set1_pd(va);
            let arow = acc.as_mut_ptr().add(r as usize * TILE_DIM);
            let brow = bd.as_ptr().add(c as usize * TILE_DIM);
            for g in 0..4 {
                let nib = ((bm >> (g * 4)) & 0xF) as usize;
                if nib == 0 {
                    continue;
                }
                let sel = _mm256_castsi256_pd(_mm256_loadu_si256(
                    NIBBLE_BLEND[nib].as_ptr() as *const __m256i
                ));
                let bv = _mm256_loadu_pd(brow.add(g * 4));
                let cur = _mm256_loadu_pd(arow.add(g * 4));
                // Separate mul then add — never FMA — to match the scalar
                // kernel's two-rounding sequence bit for bit.
                let sum = _mm256_add_pd(cur, _mm256_mul_pd(vav, bv));
                _mm256_storeu_pd(arow.add(g * 4), _mm256_blendv_pd(cur, sum, sel));
            }
        }
    }
    compress_acc(&acc, masks, vals);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dense_tile_neon(
    a: &TileMatrix<f64>,
    b: &TileMatrix<f64>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    vals: &mut [f64],
) {
    use std::arch::aarch64::*;
    // Mask bit-pair -> 2-lane select (all-ones lanes take the new sum).
    static PAIR_SELECT: [[u64; 2]; 4] =
        [[0, 0], [u64::MAX, 0], [0, u64::MAX], [u64::MAX, u64::MAX]];
    let mut acc = [0f64; TILE_AREA];
    let mut bd = [0f64; TILE_AREA];
    for &(a_id, b_id) in pairs {
        let a_tile = a.tile(a_id as usize);
        let b_tile = b.tile(b_id as usize);
        for r in 0..TILE_DIM {
            for kb in b_tile.row_range(r) {
                bd[r * TILE_DIM + b_tile.col_idx[kb] as usize] = b_tile.vals[kb];
            }
        }
        for ((&r, &c), &va) in a_tile
            .row_idx
            .iter()
            .zip(a_tile.col_idx.iter())
            .zip(a_tile.vals.iter())
        {
            let bm = b_tile.masks[c as usize];
            if bm == 0 {
                continue;
            }
            let vav = vdupq_n_f64(va);
            let arow = acc.as_mut_ptr().add(r as usize * TILE_DIM);
            let brow = bd.as_ptr().add(c as usize * TILE_DIM);
            for g in 0..8 {
                let bits = ((bm >> (g * 2)) & 0b11) as usize;
                if bits == 0 {
                    continue;
                }
                let sel = vld1q_u64(PAIR_SELECT[bits].as_ptr());
                let bv = vld1q_f64(brow.add(g * 2));
                let cur = vld1q_f64(arow.add(g * 2));
                // Separate mul then add — never FMA — to match the scalar
                // kernel's two-rounding sequence bit for bit.
                let sum = vaddq_f64(cur, vmulq_f64(vav, bv));
                vst1q_f64(arow.add(g * 2), vbslq_f64(sel, sum, cur));
            }
        }
    }
    compress_acc(&acc, masks, vals);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step2::symbolic_tile;
    use tsg_matrix::Coo;

    fn tiled(entries: &[(u32, u32, f64)]) -> TileMatrix<f64> {
        let mut coo = Coo::new(16, 16);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        TileMatrix::from_csr(&coo.to_csr())
    }

    fn assert_all_kernels_bitwise_equal(a: &TileMatrix<f64>, b: &TileMatrix<f64>) {
        let pairs = [(0u32, 0u32)];
        let sym = symbolic_tile(a, b, &pairs);
        let mut reference = vec![0.0f64; sym.nnz];
        numeric_tile_sparse(a, b, &pairs, &sym.masks, &sym.row_ptr, &mut reference);
        let level = detected_level();
        for kernel in [
            Kernel::SparseScalar,
            Kernel::DenseScalar,
            Kernel::SparseSimd,
            Kernel::DenseSimd,
            Kernel::DenseTile,
        ] {
            let mut vals = vec![0.0f64; sym.nnz];
            run_numeric(
                kernel,
                level,
                a,
                b,
                &pairs,
                &sym.masks,
                &sym.row_ptr,
                &mut vals,
            );
            let same = vals
                .iter()
                .zip(&reference)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "{kernel:?} diverged from the scalar sparse kernel");
        }
    }

    #[test]
    fn all_kernels_bitwise_equal_on_a_full_tile() {
        let entries: Vec<(u32, u32, f64)> = (0..256u32)
            .map(|k| {
                (
                    k / 16,
                    k % 16,
                    ((k as f64) * 0.37 - 41.0) * if k % 3 == 0 { -1.0 } else { 1.0 },
                )
            })
            .collect();
        let a = tiled(&entries);
        assert_all_kernels_bitwise_equal(&a, &a);
    }

    #[test]
    fn all_kernels_bitwise_equal_on_sparse_and_signed_zero_tiles() {
        let a = tiled(&[(0, 0, -1.0), (0, 3, 0.0), (7, 7, 1.25e300), (15, 0, -0.5)]);
        let b = tiled(&[(0, 1, 0.0), (3, 1, -0.0), (7, 7, 1.25e300), (0, 15, 2.0)]);
        assert_all_kernels_bitwise_equal(&a, &b);
        assert_all_kernels_bitwise_equal(&b, &a);
    }

    #[test]
    fn selection_is_pure_and_respects_policies() {
        use AccumulatorKind::*;
        let t = dense_tile_threshold(192, None);
        assert_eq!(t, DENSE_TILE_TNNZ);
        // Scalar level never yields vector kernels.
        for nnz in [0, 64, 200] {
            let k = select_kernel(SimdPolicy::Auto, SimdLevel::Scalar, nnz, Adaptive, 192, t);
            assert!(matches!(k, Kernel::SparseScalar | Kernel::DenseScalar));
        }
        // Auto on a vector level: sparse below the fast-path threshold,
        // dense-tile promotion in between, accumulator-dense above tnnz.
        let lvl = SimdLevel::Avx2;
        assert_eq!(
            select_kernel(SimdPolicy::Auto, lvl, t - 1, Adaptive, 192, t),
            Kernel::SparseSimd
        );
        assert_eq!(
            select_kernel(SimdPolicy::Auto, lvl, t, Adaptive, 192, t),
            Kernel::DenseTile
        );
        assert_eq!(
            select_kernel(SimdPolicy::Auto, lvl, 193, Adaptive, 192, t),
            Kernel::DenseSimd
        );
        // The fast path respects the accumulator ablation knobs.
        assert_eq!(
            select_kernel(SimdPolicy::Auto, lvl, 200, AlwaysSparse, 192, t),
            Kernel::SparseSimd
        );
        assert_eq!(
            select_kernel(SimdPolicy::ForceScalar, lvl, 200, Adaptive, 192, t),
            Kernel::DenseScalar
        );
        assert_eq!(
            select_kernel(
                SimdPolicy::ForceDenseTile,
                SimdLevel::Scalar,
                1,
                Adaptive,
                192,
                t
            ),
            Kernel::DenseTile
        );
    }

    #[test]
    fn hints_lower_the_dense_tile_threshold() {
        let hints = EstHints {
            nnz_c: 10_000,
            pairs: 1000,
            tiles_c: 100,
        };
        assert_eq!(dense_tile_threshold(192, Some(hints)), DENSE_TILE_TNNZ / 2);
        let sparse_hints = EstHints {
            nnz_c: 10_000,
            pairs: 100,
            tiles_c: 100,
        };
        assert_eq!(
            dense_tile_threshold(192, Some(sparse_hints)),
            DENSE_TILE_TNNZ
        );
        // A lowered accumulator threshold caps the fast path.
        assert_eq!(dense_tile_threshold(32, None), 32);
    }

    #[test]
    fn force_scalar_resolves_to_scalar_level() {
        assert_eq!(resolve_level(SimdPolicy::ForceScalar), SimdLevel::Scalar);
    }

    #[test]
    fn fill_indices_fast_matches_scalar_fill_bytewise() {
        // Adversarial mask sets: empty, full, single high bit, byte
        // boundaries, and an xorshift-scrambled batch — sized exactly, so
        // the branch-free path must hand off to the tail loop correctly.
        let mut cases: Vec<[u16; TILE_DIM]> = vec![
            [0u16; TILE_DIM],
            [u16::MAX; TILE_DIM],
            [0x8000; TILE_DIM],
            [0x0100; TILE_DIM],
            [0x00ff; TILE_DIM],
            [0xff00; TILE_DIM],
        ];
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..64 {
            let mut m = [0u16; TILE_DIM];
            for slot in m.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *slot = x as u16;
            }
            cases.push(m);
        }
        for masks in &cases {
            let nnz: usize = masks.iter().map(|m| m.count_ones() as usize).sum();
            let mut ri_s = vec![0xaau8; nnz];
            let mut ci_s = vec![0xaau8; nnz];
            let n_s = fill_indices_from_masks(masks, &mut ri_s, &mut ci_s);
            for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Neon] {
                let mut ri = vec![0x55u8; nnz];
                let mut ci = vec![0x55u8; nnz];
                let n = fill_indices_fast(masks, &mut ri, &mut ci, level);
                assert_eq!(n, n_s, "count mismatch at {level:?} for {masks:?}");
                assert_eq!(ri, ri_s, "row_idx mismatch at {level:?} for {masks:?}");
                assert_eq!(ci, ci_s, "col_idx mismatch at {level:?} for {masks:?}");
            }
        }
    }
}
