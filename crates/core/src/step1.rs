//! Step 1: symbolic SpGEMM on the high-level tile structure (§3.3).
//!
//! Treating each sparse tile as a single "nonzero", the tile layout of
//! `C = A·B` is the pattern of `C' = A'·B'` where `A'`/`B'` are the tile
//! layouts of `A`/`B` (the paper's Figure 3). The paper calls NSPARSE for
//! this small symbolic product; our NSPARSE stand-in is the same kernel:
//! per-row upper bounds, then a per-row accumulator that switches between
//! sort-dedup (short rows) and open-addressing hashing (long rows).
//!
//! Tile-wise cancellation is *not* considered: a tile of `C'` may turn out
//! to hold zero nonzeros after step 2, and is then retained as an empty tile
//! exactly as the paper specifies ("the final C is allowed to store empty
//! tiles").

use rayon::prelude::*;

/// The pattern of one level of tile structure: a CSR without values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilePattern {
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
    /// Row pointers (length `rows + 1`).
    pub ptr: Vec<usize>,
    /// Column indices, ascending per row.
    pub idx: Vec<u32>,
}

impl TilePattern {
    /// The tile ids of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.idx[self.ptr[i]..self.ptr[i + 1]]
    }

    /// Number of stored tiles.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }
}

/// Rows with at most this many gathered candidates use sort-dedup; longer
/// rows use the hash accumulator. Mirrors NSPARSE's binning intent at the
/// granularity step 1 needs.
const SORT_PATH_MAX: usize = 128;

/// Computes the symbolic product pattern `C' = A'·B'` over tile structures.
///
/// `a_ptr`/`a_idx` describe `A'` (one entry per sparse tile of `A`), and
/// likewise for `B'`. Output rows are sorted.
pub fn tile_structure_spgemm(
    a_rows: usize,
    a_ptr: &[usize],
    a_idx: &[u32],
    b_ptr: &[usize],
    b_idx: &[u32],
    b_cols: usize,
) -> TilePattern {
    let rows: Vec<Vec<u32>> = (0..a_rows)
        .into_par_iter()
        .map(|i| {
            let acols = &a_idx[a_ptr[i]..a_ptr[i + 1]];
            let ub: usize = acols
                .iter()
                .map(|&k| b_ptr[k as usize + 1] - b_ptr[k as usize])
                .sum();
            if ub == 0 {
                return Vec::new();
            }
            if ub <= SORT_PATH_MAX {
                symbolic_row_sort(acols, b_ptr, b_idx, ub)
            } else {
                symbolic_row_hash(acols, b_ptr, b_idx, ub)
            }
        })
        .collect();

    let mut ptr = vec![0usize; a_rows + 1];
    for (i, r) in rows.iter().enumerate() {
        ptr[i + 1] = ptr[i] + r.len();
    }
    let mut idx = Vec::with_capacity(ptr[a_rows]);
    for r in rows {
        idx.extend_from_slice(&r);
    }
    TilePattern {
        rows: a_rows,
        cols: b_cols,
        ptr,
        idx,
    }
}

fn symbolic_row_sort(acols: &[u32], b_ptr: &[usize], b_idx: &[u32], ub: usize) -> Vec<u32> {
    let mut gathered = Vec::with_capacity(ub);
    for &k in acols {
        gathered.extend_from_slice(&b_idx[b_ptr[k as usize]..b_ptr[k as usize + 1]]);
    }
    gathered.sort_unstable();
    gathered.dedup();
    gathered
}

/// Open-addressing (linear probing) hash set over `u32` keys, sized to the
/// next power of two above `2·ub` — the NSPARSE symbolic-phase design.
fn symbolic_row_hash(acols: &[u32], b_ptr: &[usize], b_idx: &[u32], ub: usize) -> Vec<u32> {
    const EMPTY: u32 = u32::MAX;
    let capacity = (2 * ub).next_power_of_two();
    let mask = capacity - 1;
    let mut table = vec![EMPTY; capacity];
    let mut count = 0usize;
    for &k in acols {
        for &col in &b_idx[b_ptr[k as usize]..b_ptr[k as usize + 1]] {
            let mut slot = (col as usize).wrapping_mul(0x9E37_79B9) & mask;
            loop {
                let cur = table[slot];
                if cur == col {
                    break;
                }
                if cur == EMPTY {
                    table[slot] = col;
                    count += 1;
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
    }
    let mut out = Vec::with_capacity(count);
    out.extend(table.into_iter().filter(|&c| c != EMPTY));
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle.
    fn oracle(
        a_rows: usize,
        a_ptr: &[usize],
        a_idx: &[u32],
        b_ptr: &[usize],
        b_idx: &[u32],
    ) -> Vec<Vec<u32>> {
        (0..a_rows)
            .map(|i| {
                let mut set = std::collections::BTreeSet::new();
                for &k in &a_idx[a_ptr[i]..a_ptr[i + 1]] {
                    for &c in &b_idx[b_ptr[k as usize]..b_ptr[k as usize + 1]] {
                        set.insert(c);
                    }
                }
                set.into_iter().collect()
            })
            .collect()
    }

    #[test]
    fn figure3_style_example() {
        // Figure-3-style example: an A' with 8 tiles times a B' with 6 tiles
        // yields a C' whose nonzeros are the union of the referenced B'
        // rows. A' rows: {0,1,3}, {2}, {0,3}, {1,2};
        // B' rows: {1}, {2}, {1,3}, {0,2}.
        let a_ptr = [0usize, 3, 4, 6, 8];
        let a_idx = [0u32, 1, 3, 2, 0, 3, 1, 2];
        let b_ptr = [0usize, 1, 2, 4, 6];
        let b_idx = [1u32, 2, 1, 3, 0, 2];
        let c = tile_structure_spgemm(4, &a_ptr, &a_idx, &b_ptr, &b_idx, 4);
        assert_eq!(c.row(0), &[0, 1, 2]);
        assert_eq!(c.row(1), &[1, 3]);
        assert_eq!(c.row(2), &[0, 1, 2]);
        assert_eq!(c.row(3), &[1, 2, 3]);
        assert_eq!(c.nnz(), 11);
    }

    #[test]
    fn matches_oracle_on_random_patterns_both_paths() {
        let mut state = 999u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for rows in [1usize, 7, 40] {
            for density in [2usize, 30] {
                // density=30 with rows=40 pushes rows past SORT_PATH_MAX so
                // the hash path runs too.
                let mut a_ptr = vec![0usize];
                let mut a_idx = Vec::new();
                for _ in 0..rows {
                    let mut cols: Vec<u32> = (0..density)
                        .map(|_| (next() % rows as u64) as u32)
                        .collect();
                    cols.sort_unstable();
                    cols.dedup();
                    a_idx.extend_from_slice(&cols);
                    a_ptr.push(a_idx.len());
                }
                let (b_ptr, b_idx) = (a_ptr.clone(), a_idx.clone());
                let c = tile_structure_spgemm(rows, &a_ptr, &a_idx, &b_ptr, &b_idx, rows);
                let want = oracle(rows, &a_ptr, &a_idx, &b_ptr, &b_idx);
                for (i, w) in want.iter().enumerate() {
                    assert_eq!(c.row(i), &w[..], "row {i}, density {density}");
                }
            }
        }
    }

    #[test]
    fn empty_structure_gives_empty_product() {
        let c = tile_structure_spgemm(3, &[0, 0, 0, 0], &[], &[0, 0, 0, 0], &[], 3);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.ptr, vec![0, 0, 0, 0]);
    }

    #[test]
    fn hash_path_handles_adversarial_collisions() {
        // All columns map near each other: many probes, still exact.
        let acols = [0u32];
        let b_ptr = [0usize, 200];
        let b_idx: Vec<u32> = (0..200u32).map(|i| i * 64).collect();
        let got = symbolic_row_hash(&acols, &b_ptr, &b_idx, 200);
        assert_eq!(got, b_idx);
    }
}
