//! Masked SpGEMM: `C⟨M⟩ = A·B`, computing only the entries of the product
//! that fall inside a mask pattern `M`.
//!
//! The paper situates SpGEMM inside GraphBLAS (§1), whose signature
//! operation is the masked product — e.g. linear-algebra triangle counting
//! is `C⟨A⟩ = A·A` followed by a reduction, never materialising the full
//! square. The tiled format makes masking unusually cheap: `M`'s tile
//! layout prunes step 1's output pattern, and `M`'s row bitmasks AND into
//! step 2's symbolic masks, so step 3 touches exactly the surviving
//! entries.

use crate::intersect::MatchedPair;
use crate::maskops;
use crate::simd::{self, Kernel};
use crate::step2::{matched_pairs, symbolic_tile};
use crate::{Config, SpGemmError};
use rayon::prelude::*;
use tsg_matrix::{Scalar, TileMatrix, TILE_DIM};
use tsg_runtime::{split_mut_by_offsets, Breakdown, MemTracker, Step};

/// Computes `C⟨M⟩ = A·B`: the product restricted to the stored pattern of
/// `mask`. Tiles of the product outside `mask`'s tile layout are never
/// formed; inside a surviving tile, only positions present in `mask` are
/// kept.
///
/// Values of `mask` are ignored — only its pattern matters (the GraphBLAS
/// structural mask).
pub fn multiply_masked<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    mask: &TileMatrix<T>,
    config: &Config,
    tracker: &MemTracker,
) -> Result<crate::Output<T>, SpGemmError> {
    if a.ncols != b.nrows {
        return Err(SpGemmError::ShapeMismatch {
            a: (a.nrows, a.ncols),
            b: (b.nrows, b.ncols),
        });
    }
    if (mask.nrows, mask.ncols) != (a.nrows, b.ncols) {
        return Err(SpGemmError::ShapeMismatch {
            a: (mask.nrows, mask.ncols),
            b: (a.nrows, b.ncols),
        });
    }
    let mut breakdown = Breakdown::default();
    let input_bytes = crate::pipeline::tile_matrix_bytes(a) + crate::pipeline::tile_matrix_bytes(b);
    tracker.on_alloc(input_bytes)?;

    // Step 1 under a mask degenerates to M's own tile layout: a product
    // tile can only survive where the mask has a tile. (Tiles of M whose
    // product is empty simply come out with zero nonzeros, like the
    // unmasked algorithm's retained empty tiles.)
    let (c_ptr, c_colidx) = breakdown.timed(Step::Step1, || {
        (mask.tile_ptr.clone(), mask.tile_colidx.clone())
    });
    let num_tiles = c_colidx.len();

    let (b_cols, c_rowidx, mut c_masks, mut c_row_ptr) = breakdown.timed(Step::Alloc, || {
        let b_cols = b.col_index();
        let mut c_rowidx = vec![0u32; num_tiles];
        for ti in 0..mask.tile_m {
            c_rowidx[c_ptr[ti]..c_ptr[ti + 1]].fill(ti as u32);
        }
        (
            b_cols,
            c_rowidx,
            vec![0u16; num_tiles * TILE_DIM],
            vec![0u8; num_tiles * TILE_DIM],
        )
    });
    tracker.on_alloc(num_tiles * (4 + TILE_DIM * 3 + 8) + b_cols.rowidx.len() * 16)?;

    // Step 2 with the mask ANDed in. The kernel level and dense-tile
    // threshold are run constants, like the unmasked pipeline's.
    let simd_level = simd::resolve_level(config.simd);
    let dense_tile_nnz = simd::dense_tile_threshold(config.tnnz_threshold, config.est_hints);
    let mut c_counts = vec![0usize; num_tiles];
    breakdown.timed(Step::Step2, || {
        c_masks
            .par_chunks_mut(TILE_DIM)
            .zip(c_row_ptr.par_chunks_mut(TILE_DIM))
            .zip(c_counts.par_iter_mut())
            .enumerate()
            .for_each_init(
                || (Vec::<MatchedPair>::new(), Vec::<(u32, u32)>::new()),
                |(scratch, pairs), (t, ((mask_w, row_ptr_w), count))| {
                    let ti = c_rowidx[t] as usize;
                    let tj = c_colidx[t] as usize;
                    matched_pairs(a, &b_cols, ti, tj, config.intersection, scratch, pairs);
                    let sym = symbolic_tile(a, b, pairs);
                    let m_tile = mask.tile(t);
                    let mut m_masks = [0u16; TILE_DIM];
                    m_masks.copy_from_slice(m_tile.masks);
                    let allowed = maskops::and_masks(&sym.masks, &m_masks, simd_level);
                    let (row_ptr, nnz) = maskops::row_ptr_from_masks(&allowed);
                    mask_w.copy_from_slice(&allowed);
                    row_ptr_w.copy_from_slice(&row_ptr);
                    *count = nnz;
                },
            );
    });

    let mut c_offsets = vec![0usize; num_tiles + 1];
    let nnz_c = tsg_runtime::exclusive_scan_to(&c_counts, &mut c_offsets);
    let (mut c_row_idx, mut c_col_idx, mut c_vals) = breakdown.timed(Step::Alloc, || {
        tracker.on_alloc(nnz_c * (2 + std::mem::size_of::<T>()))?;
        Ok::<_, SpGemmError>((
            tracker.timed_alloc(|| vec![0u8; nnz_c]),
            tracker.timed_alloc(|| vec![0u8; nnz_c]),
            tracker.timed_alloc(|| vec![T::ZERO; nnz_c]),
        ))
    })?;

    // Step 3: numeric, but products whose column is masked out are dropped
    // by the sparse accumulator's rank addressing — we give it the masked
    // row masks, so only surviving positions exist. The dense accumulator
    // computes the full tile then compresses through the masked masks.
    breakdown.timed(Step::Step3, || {
        let row_idx_w = split_mut_by_offsets(&mut c_row_idx, &c_offsets);
        let col_idx_w = split_mut_by_offsets(&mut c_col_idx, &c_offsets);
        let vals_w = split_mut_by_offsets(&mut c_vals, &c_offsets);
        row_idx_w
            .into_par_iter()
            .zip(col_idx_w)
            .zip(vals_w)
            .enumerate()
            .for_each_init(
                || (Vec::<MatchedPair>::new(), Vec::<(u32, u32)>::new()),
                |(scratch, pairs), (t, ((ri_w, ci_w), vals_w))| {
                    let ti = c_rowidx[t] as usize;
                    let tj = c_colidx[t] as usize;
                    let masks = &c_masks[t * TILE_DIM..(t + 1) * TILE_DIM];
                    simd::fill_indices_fast(masks, ri_w, ci_w, simd_level);
                    matched_pairs(a, &b_cols, ti, tj, config.intersection, scratch, pairs);
                    // The sparse path cannot be used directly: products may
                    // fall outside the masked pattern. Use the dense
                    // accumulator (vector micro-kernel where the level has
                    // one) and compress through the masked masks — except
                    // when the mask kept everything, where the adaptive
                    // kernel choice applies unchanged.
                    let full_inside = {
                        let sym = symbolic_tile(a, b, pairs);
                        (0..TILE_DIM).all(|r| sym.masks[r] & !masks[r] == 0)
                    };
                    let kernel = simd::select_kernel(
                        config.simd,
                        simd_level,
                        vals_w.len(),
                        config.accumulator,
                        config.tnnz_threshold,
                        dense_tile_nnz,
                    );
                    let row_ptr = &c_row_ptr[t * TILE_DIM..(t + 1) * TILE_DIM];
                    let kernel = match kernel {
                        Kernel::SparseScalar | Kernel::SparseSimd if full_inside => kernel,
                        Kernel::SparseScalar => Kernel::DenseScalar,
                        Kernel::SparseSimd => Kernel::DenseSimd,
                        dense => dense,
                    };
                    simd::run_numeric(kernel, simd_level, a, b, pairs, masks, row_ptr, vals_w);
                },
            );
    });

    let c = TileMatrix {
        nrows: a.nrows,
        ncols: b.ncols,
        tile_m: mask.tile_m,
        tile_n: mask.tile_n,
        tile_ptr: c_ptr,
        tile_colidx: c_colidx,
        tile_nnz: c_offsets,
        row_ptr: c_row_ptr,
        row_idx: c_row_idx,
        col_idx: c_col_idx,
        vals: c_vals,
        masks: c_masks,
    };
    let peak_bytes = tracker.peak_bytes();
    tracker.on_free(input_bytes);
    Ok(crate::Output {
        c,
        breakdown,
        peak_bytes,
        pair_buffer: None,
        conversion: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::{ops, Coo, Csr};

    fn random(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(
                    r,
                    (next() % n as u64) as u32,
                    ((next() % 9) + 1) as f64 * 0.5,
                );
            }
        }
        coo.to_csr()
    }

    fn masked_oracle(a: &Csr<f64>, b: &Csr<f64>, mask: &Csr<f64>) -> Csr<f64> {
        let full = crate::multiply_csr(a, b, &Config::default(), &MemTracker::new())
            .unwrap()
            .to_csr();
        let pattern = mask.map_values(|_| 1.0);
        ops::hadamard(&full, &pattern)
    }

    #[test]
    fn masked_product_matches_hadamard_oracle() {
        for seed in [1u64, 7, 23] {
            let a = random(80, 5, seed);
            let b = random(80, 5, seed + 50);
            let mask = random(80, 8, seed + 99);
            let ta = TileMatrix::from_csr(&a);
            let tb = TileMatrix::from_csr(&b);
            let tm = TileMatrix::from_csr(&mask);
            let out =
                multiply_masked(&ta, &tb, &tm, &Config::default(), &MemTracker::new()).unwrap();
            out.c.validate().unwrap();
            let got = out.c.to_csr().drop_numeric_zeros();
            let want = masked_oracle(&a, &b, &mask).drop_numeric_zeros();
            assert!(got.approx_eq_ignoring_zeros(&want, 1e-10), "seed {seed}");
        }
    }

    #[test]
    fn self_mask_gives_triangle_counting_kernel() {
        // C<A> = A·A on a small undirected graph: per-edge common-neighbour
        // counts.
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0u32, 1u32), (0, 2), (1, 2), (2, 3)] {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        let adj = coo.to_csr();
        let t = TileMatrix::from_csr(&adj);
        let out = multiply_masked(&t, &t, &t, &Config::default(), &MemTracker::new()).unwrap();
        let c = out.c.to_csr();
        // Edge (0,1): common neighbour {2} -> 1. Edge (2,3): no common
        // neighbour, so the position is absent from the product pattern and
        // the mask intersection drops it.
        assert_eq!(c.get(0, 1), Some(1.0));
        assert_eq!(c.get(2, 3), None);
        // Triangle count = sum / 6.
        assert_eq!(ops::sum_all(&c), 6.0);
    }

    #[test]
    fn masked_output_never_exceeds_mask_pattern() {
        let a = random(60, 6, 3);
        let mask = random(60, 2, 4);
        let ta = TileMatrix::from_csr(&a);
        let tm = TileMatrix::from_csr(&mask);
        let out = multiply_masked(&ta, &ta, &tm, &Config::default(), &MemTracker::new()).unwrap();
        let c = out.c.to_csr();
        for row in 0..60 {
            let (cols, _) = c.row(row);
            let (mcols, _) = mask.row(row);
            for &col in cols {
                assert!(mcols.contains(&col), "({row},{col}) outside the mask");
            }
        }
        assert!(out.c.nnz() <= mask.nnz());
    }

    #[test]
    fn empty_mask_gives_empty_product() {
        let a = random(40, 5, 9);
        let ta = TileMatrix::from_csr(&a);
        let tm = TileMatrix::from_csr(&Csr::zero(40, 40));
        let out = multiply_masked(&ta, &ta, &tm, &Config::default(), &MemTracker::new()).unwrap();
        assert_eq!(out.c.nnz(), 0);
        assert_eq!(out.c.tile_count(), 0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = TileMatrix::from_csr(&Csr::<f64>::identity(32));
        let m = TileMatrix::from_csr(&Csr::<f64>::identity(48));
        let err = multiply_masked(&a, &a, &m, &Config::default(), &MemTracker::new()).unwrap_err();
        assert!(matches!(err, SpGemmError::ShapeMismatch { .. }));
    }
}
