//! Shared mask algebra for 16×16 tiles — the single source of truth for the
//! OR/AND/popcount/rank operations that step 2, step 3, the masked kernel,
//! and the bitmap intersection all build on.
//!
//! Every helper here is pure integer work, so the SIMD variants (dispatched
//! by [`crate::simd::SimdLevel`]) are exactly identical to the scalar ones —
//! there is no rounding to preserve, only bits. The float kernels that
//! consume these ranks live in [`crate::step3`] (scalar reference) and
//! [`crate::simd`] (lane kernels).

use tsg_matrix::TILE_DIM;

use crate::simd::SimdLevel;

/// Rank of bit `k` within a 16-bit row mask: how many set bits lie strictly
/// below it. This is the sparse accumulator's scatter address (§3.3).
#[inline(always)]
pub fn rank16(mask: u16, k: u32) -> usize {
    (mask & ((1u16 << k) - 1)).count_ones() as usize
}

/// Rank of `bit` within a 64-bit bitmap word — the same query the bitmap
/// intersection kernel uses to recover list positions.
#[inline(always)]
pub fn rank64(word: u64, bit: u32) -> usize {
    (word & ((1u64 << bit) - 1)).count_ones() as usize
}

/// Local row pointers and nonzero count from a tile's row masks — the
/// popcount scan step 2 runs after the mask OR (Figure 5) and the masked
/// kernel runs after ANDing the mask pattern in.
#[inline]
pub fn row_ptr_from_masks(masks: &[u16; TILE_DIM]) -> ([u8; TILE_DIM], usize) {
    let mut row_ptr = [0u8; TILE_DIM];
    let mut nnz = 0usize;
    for r in 0..TILE_DIM {
        // At most 15 full rows precede any pointer: 15 * 16 = 240 <= u8::MAX.
        debug_assert!(nnz <= 240);
        row_ptr[r] = nnz as u8;
        nnz += masks[r].count_ones() as usize;
    }
    (row_ptr, nnz)
}

/// Elementwise AND of two 16-row mask sets — the masked kernel's pruning
/// reduction. One 256-bit op on AVX2, two 128-bit ops on NEON.
#[inline]
pub fn and_masks(x: &[u16; TILE_DIM], y: &[u16; TILE_DIM], level: SimdLevel) -> [u16; TILE_DIM] {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        // SAFETY: the level was runtime-detected, so AVX2 is available.
        return unsafe { and_masks_avx2(x, y) };
    }
    #[cfg(target_arch = "aarch64")]
    if level == SimdLevel::Neon {
        // SAFETY: NEON is baseline on aarch64.
        return unsafe { and_masks_neon(x, y) };
    }
    let _ = level;
    let mut out = [0u16; TILE_DIM];
    for r in 0..TILE_DIM {
        out[r] = x[r] & y[r];
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn and_masks_avx2(x: &[u16; TILE_DIM], y: &[u16; TILE_DIM]) -> [u16; TILE_DIM] {
    use std::arch::x86_64::*;
    let mut out = [0u16; TILE_DIM];
    let a = _mm256_loadu_si256(x.as_ptr() as *const __m256i);
    let b = _mm256_loadu_si256(y.as_ptr() as *const __m256i);
    _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, _mm256_and_si256(a, b));
    out
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn and_masks_neon(x: &[u16; TILE_DIM], y: &[u16; TILE_DIM]) -> [u16; TILE_DIM] {
    use std::arch::aarch64::*;
    let mut out = [0u16; TILE_DIM];
    for half in 0..2 {
        let a = vld1q_u16(x.as_ptr().add(half * 8));
        let b = vld1q_u16(y.as_ptr().add(half * 8));
        vst1q_u16(out.as_mut_ptr().add(half * 8), vandq_u16(a, b));
    }
    out
}

/// Elementwise OR of two 16-row mask sets (the step-2 reduction when two
/// symbolic sources merge). Same dispatch shape as [`and_masks`].
#[inline]
pub fn or_masks(x: &[u16; TILE_DIM], y: &[u16; TILE_DIM], level: SimdLevel) -> [u16; TILE_DIM] {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        // SAFETY: the level was runtime-detected, so AVX2 is available.
        return unsafe { or_masks_avx2(x, y) };
    }
    #[cfg(target_arch = "aarch64")]
    if level == SimdLevel::Neon {
        // SAFETY: NEON is baseline on aarch64.
        return unsafe { or_masks_neon(x, y) };
    }
    let _ = level;
    let mut out = [0u16; TILE_DIM];
    for r in 0..TILE_DIM {
        out[r] = x[r] | y[r];
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn or_masks_avx2(x: &[u16; TILE_DIM], y: &[u16; TILE_DIM]) -> [u16; TILE_DIM] {
    use std::arch::x86_64::*;
    let mut out = [0u16; TILE_DIM];
    let a = _mm256_loadu_si256(x.as_ptr() as *const __m256i);
    let b = _mm256_loadu_si256(y.as_ptr() as *const __m256i);
    _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, _mm256_or_si256(a, b));
    out
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn or_masks_neon(x: &[u16; TILE_DIM], y: &[u16; TILE_DIM]) -> [u16; TILE_DIM] {
    use std::arch::aarch64::*;
    let mut out = [0u16; TILE_DIM];
    for half in 0..2 {
        let a = vld1q_u16(x.as_ptr().add(half * 8));
        let b = vld1q_u16(y.as_ptr().add(half * 8));
        vst1q_u16(out.as_mut_ptr().add(half * 8), vorrq_u16(a, b));
    }
    out
}

/// For every byte value: its set-bit positions in ascending order, padded
/// with zeros, plus the count — the branch-free decode table behind
/// [`crate::step3::fill_indices_from_masks`] and the dense compress.
pub static BYTE_DECODE: [([u8; 8], u8); 256] = {
    let mut table = [([0u8; 8], 0u8); 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut k = 0u8;
        let mut bit = 0u8;
        while bit < 8 {
            if byte & (1 << bit) != 0 {
                table[byte].0[k as usize] = bit;
                k += 1;
            }
            bit += 1;
        }
        table[byte].1 = k;
        byte += 1;
    }
    table
};

/// Appends the set-bit positions of `mask` (offset by nothing for bits 0–7,
/// by 8 for bits 8–15) into `cols[out..]`, returning the new cursor. Output
/// order is ascending, identical to a `trailing_zeros` walk.
#[inline]
pub fn decode_mask_cols(mask: u16, cols: &mut [u8], mut out: usize) -> usize {
    let (lo, lo_n) = BYTE_DECODE[(mask & 0xFF) as usize];
    cols[out..out + lo_n as usize].copy_from_slice(&lo[..lo_n as usize]);
    out += lo_n as usize;
    let (hi, hi_n) = BYTE_DECODE[(mask >> 8) as usize];
    for i in 0..hi_n as usize {
        cols[out + i] = hi[i] + 8;
    }
    out + hi_n as usize
}

/// Per-row prefix-rank tables: `tables[r][k]` is the rank of column `k`
/// within `masks[r]` — the sparse accumulator's whole scatter-address space
/// precomputed so the per-product popcount disappears from the inner loop.
///
/// The AVX2/NEON builders compute all 16 ranks of a row in lanes (mask
/// broadcast, AND with the 16 prefix masks, popcount per lane); the scalar
/// builder walks the bits. All produce identical tables.
#[inline]
pub fn rank_tables(masks: &[u16], level: SimdLevel) -> [[u8; TILE_DIM]; TILE_DIM] {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        // SAFETY: the level was runtime-detected, so AVX2 is available.
        return unsafe { rank_tables_avx2(masks) };
    }
    #[cfg(target_arch = "aarch64")]
    if level == SimdLevel::Neon {
        // SAFETY: NEON is baseline on aarch64.
        return unsafe { rank_tables_neon(masks) };
    }
    let _ = level;
    rank_tables_scalar(masks)
}

fn rank_tables_scalar(masks: &[u16]) -> [[u8; TILE_DIM]; TILE_DIM] {
    let mut tables = [[0u8; TILE_DIM]; TILE_DIM];
    for (r, &m) in masks.iter().enumerate().take(TILE_DIM) {
        let mut rank = 0u8;
        for (k, slot) in tables[r].iter_mut().enumerate() {
            *slot = rank;
            rank += ((m >> k) & 1) as u8;
        }
    }
    tables
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rank_tables_avx2(masks: &[u16]) -> [[u8; TILE_DIM]; TILE_DIM] {
    use std::arch::x86_64::*;
    // (1 << k) - 1 for k = 0..16, as sixteen u16 lanes.
    static PREFIX: [u16; TILE_DIM] = {
        let mut p = [0u16; TILE_DIM];
        let mut k = 0;
        while k < TILE_DIM {
            p[k] = (1u16 << k).wrapping_sub(1);
            k += 1;
        }
        p
    };
    let prefix = _mm256_loadu_si256(PREFIX.as_ptr() as *const __m256i);
    let nibble_lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
        3, 4,
    );
    let low_nibbles = _mm256_set1_epi8(0x0F);
    let ones = _mm256_set1_epi8(1);
    let mut tables = [[0u8; TILE_DIM]; TILE_DIM];
    for (r, &m) in masks.iter().enumerate().take(TILE_DIM) {
        // Sixteen prefix-masked copies of the row mask, popcounted per lane.
        let v = _mm256_and_si256(_mm256_set1_epi16(m as i16), prefix);
        let lo = _mm256_and_si256(v, low_nibbles);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_nibbles);
        let byte_counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(nibble_lut, lo),
            _mm256_shuffle_epi8(nibble_lut, hi),
        );
        // Sum adjacent byte counts into the sixteen u16 lanes, then narrow.
        let lane_counts = _mm256_maddubs_epi16(byte_counts, ones);
        let mut counts16 = [0u16; TILE_DIM];
        _mm256_storeu_si256(counts16.as_mut_ptr() as *mut __m256i, lane_counts);
        for k in 0..TILE_DIM {
            tables[r][k] = counts16[k] as u8;
        }
    }
    tables
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn rank_tables_neon(masks: &[u16]) -> [[u8; TILE_DIM]; TILE_DIM] {
    use std::arch::aarch64::*;
    static PREFIX: [u16; TILE_DIM] = {
        let mut p = [0u16; TILE_DIM];
        let mut k = 0;
        while k < TILE_DIM {
            p[k] = (1u16 << k).wrapping_sub(1);
            k += 1;
        }
        p
    };
    let mut tables = [[0u8; TILE_DIM]; TILE_DIM];
    for (r, &m) in masks.iter().enumerate().take(TILE_DIM) {
        let bc = vdupq_n_u16(m);
        for half in 0..2 {
            let pref = vld1q_u16(PREFIX.as_ptr().add(half * 8));
            let v = vandq_u16(bc, pref);
            // Per-byte popcount, then pairwise byte sums -> per-u16 counts.
            let counts = vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u16(v)));
            let mut lane = [0u16; 8];
            vst1q_u16(lane.as_mut_ptr(), counts);
            for k in 0..8 {
                tables[r][half * 8 + k] = lane[k] as u8;
            }
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank16_counts_bits_below() {
        assert_eq!(rank16(0b1011, 0), 0);
        assert_eq!(rank16(0b1011, 1), 1);
        assert_eq!(rank16(0b1011, 3), 2);
        assert_eq!(rank16(0xFFFF, 15), 15);
    }

    #[test]
    fn rank64_counts_bits_below() {
        assert_eq!(rank64(0b101, 2), 1);
        assert_eq!(rank64(u64::MAX, 63), 63);
    }

    #[test]
    fn row_ptr_matches_running_popcount() {
        let mut masks = [0u16; TILE_DIM];
        masks[0] = 0b111;
        masks[2] = 0x8001;
        let (row_ptr, nnz) = row_ptr_from_masks(&masks);
        assert_eq!(nnz, 5);
        assert_eq!(row_ptr[0], 0);
        assert_eq!(row_ptr[1], 3);
        assert_eq!(row_ptr[2], 3);
        assert_eq!(row_ptr[3], 5);
        assert_eq!(row_ptr[15], 5);
    }

    #[test]
    fn and_or_masks_match_scalar_on_every_level() {
        let mut x = [0u16; TILE_DIM];
        let mut y = [0u16; TILE_DIM];
        for r in 0..TILE_DIM {
            x[r] = (0x9E37u16).rotate_left(r as u32);
            y[r] = (0x5BD1u16).rotate_right(r as u32 * 3);
        }
        let and_ref = and_masks(&x, &y, SimdLevel::Scalar);
        let or_ref = or_masks(&x, &y, SimdLevel::Scalar);
        let level = crate::simd::detected_level();
        assert_eq!(and_masks(&x, &y, level), and_ref);
        assert_eq!(or_masks(&x, &y, level), or_ref);
        for r in 0..TILE_DIM {
            assert_eq!(and_ref[r], x[r] & y[r]);
            assert_eq!(or_ref[r], x[r] | y[r]);
        }
    }

    #[test]
    fn byte_decode_matches_trailing_zeros_walk() {
        for (byte, &(positions, count)) in BYTE_DECODE.iter().enumerate() {
            let mut bits = byte as u8;
            let mut k = 0usize;
            while bits != 0 {
                assert_eq!(positions[k], bits.trailing_zeros() as u8);
                bits &= bits - 1;
                k += 1;
            }
            assert_eq!(count as usize, k);
        }
    }

    #[test]
    fn decode_mask_cols_covers_both_bytes() {
        let mut cols = [0u8; 16];
        let n = decode_mask_cols(0x8103, &mut cols, 0);
        assert_eq!(&cols[..n], &[0, 1, 8, 15]);
    }

    #[test]
    fn rank_tables_agree_with_popcount_definition() {
        let mut masks = [0u16; TILE_DIM];
        for (r, slot) in masks.iter_mut().enumerate() {
            *slot = (0xACE1u16).rotate_left(r as u32) ^ (r as u16 * 257);
        }
        masks[3] = 0;
        masks[7] = 0xFFFF;
        let scalar = rank_tables_scalar(&masks);
        for (r, &m) in masks.iter().enumerate() {
            for (k, &rank) in scalar[r].iter().enumerate() {
                assert_eq!(rank as usize, rank16(m, k as u32), "({r},{k})");
            }
        }
        let level = crate::simd::detected_level();
        assert_eq!(rank_tables(&masks, level), scalar);
        assert_eq!(rank_tables(&masks, SimdLevel::Scalar), scalar);
    }
}
