//! Set intersection of tile index lists (step 2, Algorithm 2 lines 6–18).
//!
//! For a tile `C_ij`, the tiles of `A`'s tile row `i` and `B`'s tile column
//! `j` must be matched by index: `A_ik` pairs with `B_kj`. Both index lists
//! are sorted, so this is sorted-set intersection. The paper evaluates two
//! strategies and picks binary search; this module adds two more beyond the
//! paper (DESIGN.md §11):
//!
//! * [`intersect_binary_search`] — each element of the *shorter* list is
//!   binary-searched in the longer one; after a hit, the next search's left
//!   bound starts just past the hit (the "narrowing" the paper describes
//!   with its `tilecolidx_A` example).
//! * [`intersect_merge`] — the classic two-pointer merge, kept as the
//!   ablation baseline (`ablation_intersection` bench).
//! * [`intersect_bitmap`] — word-wise AND over the
//!   [`tsg_matrix::ListBitmaps`] sidecar with `trailing_zeros` iteration;
//!   list positions are recovered by rank-by-popcount. Cost is independent
//!   of the list lengths, which makes it the winner on dense tile rows.
//! * [`IntersectionKind::Adaptive`] — picks one of the three per tile from
//!   the list lengths and the bitmap width via [`adaptive_choice`].
//!
//! Every kernel emits the same pair list in the same (ascending-value)
//! order, so the choice is bitwise-invisible in the product — the
//! `tsg-check` oracle pins this across its whole corpus.

/// Which intersection kernel step 2 and step 3 use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectionKind {
    /// Binary-search the shorter list into the longer one (paper default).
    BinarySearch,
    /// Two-pointer merge.
    Merge,
    /// Word-wise AND over per-list bitmaps with rank-by-popcount position
    /// recovery. Falls back to [`Self::BinarySearch`] when the pipeline
    /// skipped building the sidecar (see `resolve_kind`).
    Bitmap,
    /// Per-tile choice among the three concrete kernels by the cost model
    /// in [`adaptive_choice`].
    Adaptive,
}

/// A matched tile pair: positions into the two index lists.
pub type MatchedPair = (u32, u32);

/// Relative cost of touching one bitmap word versus advancing one list
/// element: an AND plus a zero test per word, and two popcounts per hit.
/// Calibrated on the `ablation_intersection` bench; see DESIGN.md §11.
const BITMAP_WORD_COST: usize = 2;

/// The deterministic per-tile kernel choice for
/// [`IntersectionKind::Adaptive`]: compares the model costs
///
/// * merge — `la + lb` advances,
/// * binary search — `min` probes of `ceil(log2(max) + 1)` steps,
/// * bitmap — `words × BITMAP_WORD_COST` (when a sidecar exists),
///
/// and returns the cheapest (ties prefer binary search, then merge). A pure
/// function of `(la, lb, bitmap_words)`, so instrumentation can replay the
/// choice outside the hot loop.
pub fn adaptive_choice(la: usize, lb: usize, bitmap_words: Option<usize>) -> IntersectionKind {
    if la == 0 || lb == 0 {
        return IntersectionKind::BinarySearch;
    }
    let (short, long) = if la <= lb { (la, lb) } else { (lb, la) };
    let merge = la + lb;
    let bsearch = short * (usize::BITS - long.leading_zeros()) as usize;
    let bitmap = bitmap_words.map(|w| w * BITMAP_WORD_COST);
    if let Some(bitmap) = bitmap {
        if bitmap < bsearch && bitmap < merge {
            return IntersectionKind::Bitmap;
        }
    }
    if bsearch <= merge {
        IntersectionKind::BinarySearch
    } else {
        IntersectionKind::Merge
    }
}

/// Resolves a configured kind to the concrete kernel for one tile:
/// [`IntersectionKind::Adaptive`] goes through [`adaptive_choice`], and
/// [`IntersectionKind::Bitmap`] degrades to binary search when no sidecar
/// was built (`bitmap_words == None`). Never returns `Adaptive`, and
/// returns `Bitmap` only when `bitmap_words` is `Some`.
pub fn resolve_kind(
    kind: IntersectionKind,
    la: usize,
    lb: usize,
    bitmap_words: Option<usize>,
) -> IntersectionKind {
    match kind {
        IntersectionKind::BinarySearch | IntersectionKind::Merge => kind,
        IntersectionKind::Bitmap => {
            if bitmap_words.is_some() {
                IntersectionKind::Bitmap
            } else {
                IntersectionKind::BinarySearch
            }
        }
        IntersectionKind::Adaptive => adaptive_choice(la, lb, bitmap_words),
    }
}

/// Intersects `a` and `b` (both strictly ascending), pushing `(pos_a,
/// pos_b)` pairs for every common value, using the configured kernel.
///
/// This list-only entry point has no bitmap sidecar, so
/// [`IntersectionKind::Bitmap`]/[`IntersectionKind::Adaptive`] resolve to a
/// list kernel; the pipeline dispatches bitmaps itself through
/// [`crate::step2::matched_pairs_with`].
pub fn intersect_into(kind: IntersectionKind, a: &[u32], b: &[u32], out: &mut Vec<MatchedPair>) {
    out.clear();
    match resolve_kind(kind, a.len(), b.len(), None) {
        IntersectionKind::BinarySearch => intersect_binary_search(a, b, out),
        IntersectionKind::Merge => intersect_merge(a, b, out),
        IntersectionKind::Bitmap | IntersectionKind::Adaptive => {
            unreachable!("resolve_kind without a sidecar yields a list kernel")
        }
    }
}

/// Binary-search intersection with left-bound narrowing.
pub fn intersect_binary_search(a: &[u32], b: &[u32], out: &mut Vec<MatchedPair>) {
    // Search each element of the shorter array within the longer one, as the
    // paper's Algorithm 2 does (lines 6 and 16–17 swap the roles).
    if a.len() <= b.len() {
        search_short_in_long(a, b, out, false);
    } else {
        search_short_in_long(b, a, out, true);
    }
}

fn search_short_in_long(short: &[u32], long: &[u32], out: &mut Vec<MatchedPair>, swapped: bool) {
    let mut lo = 0usize;
    for (ps, &value) in short.iter().enumerate() {
        if lo >= long.len() {
            break;
        }
        match long[lo..].binary_search(&value) {
            Ok(rel) => {
                let pl = lo + rel;
                if swapped {
                    out.push((pl as u32, ps as u32));
                } else {
                    out.push((ps as u32, pl as u32));
                }
                // Narrow: both lists ascend, so later values of the short
                // list can only match past this position.
                lo = pl + 1;
            }
            Err(rel) => {
                // Even a miss tells us where the next search may start.
                lo += rel;
            }
        }
    }
}

/// Two-pointer merge intersection.
pub fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<MatchedPair>) {
    let (mut p, mut q) = (0usize, 0usize);
    while p < a.len() && q < b.len() {
        match a[p].cmp(&b[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                out.push((p as u32, q as u32));
                p += 1;
                q += 1;
            }
        }
    }
}

/// Bitmap intersection over two lists' [`tsg_matrix::ListBitmaps`] rows:
/// `(a_words, a_rank)` and `(b_words, b_rank)` are the membership words and
/// exclusive prefix popcounts of the two lists (equal length). Common values
/// survive the word-wise AND; each survivor's positions in the *lists* are
/// recovered as `rank[word] + popcount(word_bits_below_it)`. Output order is
/// ascending by value — identical to the list kernels'.
pub fn intersect_bitmap(
    a_words: &[u64],
    a_rank: &[u32],
    b_words: &[u64],
    b_rank: &[u32],
    out: &mut Vec<MatchedPair>,
) {
    out.clear();
    debug_assert_eq!(a_words.len(), b_words.len());
    for (w, (&aw, &bw)) in a_words.iter().zip(b_words.iter()).enumerate() {
        let mut common = aw & bw;
        if common == 0 {
            continue;
        }
        let (ra, rb) = (a_rank[w], b_rank[w]);
        while common != 0 {
            let bit = common.trailing_zeros();
            out.push((
                ra + crate::maskops::rank64(aw, bit) as u32,
                rb + crate::maskops::rank64(bw, bit) as u32,
            ));
            common &= common - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::ListBitmaps;

    fn run(kind: IntersectionKind, a: &[u32], b: &[u32]) -> Vec<MatchedPair> {
        let mut out = Vec::new();
        intersect_into(kind, a, b, &mut out);
        out
    }

    /// Bitmap intersection of two plain lists via a throwaway sidecar.
    fn run_bitmap(a: &[u32], b: &[u32]) -> Vec<MatchedPair> {
        let universe = a.iter().chain(b).max().map_or(1, |&m| m as usize + 1);
        let mut idx = a.to_vec();
        idx.extend_from_slice(b);
        let bm = ListBitmaps::from_csr(&[0, a.len(), a.len() + b.len()], &idx, universe);
        let (aw, ar) = bm.list(0);
        let (bw, br) = bm.list(1);
        let mut out = vec![(9u32, 9u32)]; // must be cleared
        intersect_bitmap(aw, ar, bw, br, &mut out);
        out
    }

    #[test]
    fn paper_example_c12() {
        // Figure 4: tile row A1* has columns {0, 1, 3}, tile column B*2 has
        // rows {1, 3}; the intersection is {1, 3} — pairs A11·B12 and
        // A13·B32.
        let a = [0u32, 1, 3];
        let b = [1u32, 3];
        let pairs = run(IntersectionKind::BinarySearch, &a, &b);
        // Positions: value 1 sits at a[1]/b[0], value 3 at a[2]/b[1].
        assert_eq!(pairs, vec![(1, 0), (2, 1)]);
        assert_eq!(run_bitmap(&a, &b), pairs);
    }

    #[test]
    fn all_kernels_agree_on_many_inputs() {
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            // Mix small universes (dense lists, multi-hit words) with wide
            // ones (sparse bitmaps spanning several words).
            let bound = [40u64, 70, 500][round % 3];
            let la = (next() % 20) as usize;
            let lb = (next() % 20) as usize;
            let mut a: Vec<u32> = (0..la).map(|_| (next() % bound) as u32).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| (next() % bound) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let bs = run(IntersectionKind::BinarySearch, &a, &b);
            let mg = run(IntersectionKind::Merge, &a, &b);
            let bm = run_bitmap(&a, &b);
            assert_eq!(bs, mg, "a={a:?} b={b:?}");
            assert_eq!(bs, bm, "a={a:?} b={b:?}");
            // And every reported pair is a real match.
            for (pa, pb) in bs {
                assert_eq!(a[pa as usize], b[pb as usize]);
            }
        }
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        assert!(run(IntersectionKind::BinarySearch, &[], &[1, 2]).is_empty());
        assert!(run(IntersectionKind::BinarySearch, &[3], &[]).is_empty());
        assert!(run(IntersectionKind::Merge, &[1, 3, 5], &[0, 2, 4]).is_empty());
        assert!(run(IntersectionKind::BinarySearch, &[1, 3, 5], &[0, 2, 4]).is_empty());
        assert!(run_bitmap(&[1, 3, 5], &[0, 2, 4]).is_empty());
    }

    #[test]
    fn identical_lists_match_elementwise() {
        let v: Vec<u32> = (0..50).map(|i| i * 3).collect();
        let pairs = run(IntersectionKind::BinarySearch, &v, &v);
        assert_eq!(pairs.len(), 50);
        assert!(pairs
            .iter()
            .enumerate()
            .all(|(i, &(a, b))| a as usize == i && b as usize == i));
        assert_eq!(run_bitmap(&v, &v), pairs);
    }

    #[test]
    fn swapped_roles_report_positions_in_original_order() {
        // a longer than b: the kernel searches b in a but must still report
        // (pos_in_a, pos_in_b).
        let a = [1u32, 4, 6, 9, 12, 15];
        let b = [6u32, 15];
        let pairs = run(IntersectionKind::BinarySearch, &a, &b);
        assert_eq!(pairs, vec![(2, 0), (5, 1)]);
        assert_eq!(run_bitmap(&a, &b), pairs);
    }

    #[test]
    fn intersect_into_clears_previous_contents() {
        let mut out = vec![(9u32, 9u32)];
        intersect_into(IntersectionKind::Merge, &[1], &[1], &mut out);
        assert_eq!(out, vec![(0, 0)]);
    }

    #[test]
    fn intersect_into_resolves_sidecar_kinds_to_list_kernels() {
        let a = [0u32, 2, 5, 9];
        let b = [2u32, 9, 11];
        let want = run(IntersectionKind::Merge, &a, &b);
        assert_eq!(run(IntersectionKind::Bitmap, &a, &b), want);
        assert_eq!(run(IntersectionKind::Adaptive, &a, &b), want);
    }

    #[test]
    fn adaptive_choice_follows_the_cost_model() {
        // Tiny lists: binary search beats a 16-word bitmap pass.
        assert_eq!(
            adaptive_choice(2, 3, Some(16)),
            IntersectionKind::BinarySearch
        );
        // Two long lists: the fixed-cost bitmap wins.
        assert_eq!(
            adaptive_choice(200, 300, Some(16)),
            IntersectionKind::Bitmap
        );
        // Comparable long lists without a sidecar: merge beats log-factor
        // binary search.
        assert_eq!(adaptive_choice(100, 110, None), IntersectionKind::Merge);
        // Empty list: trivially binary search (cost 0).
        assert_eq!(
            adaptive_choice(0, 50, Some(1)),
            IntersectionKind::BinarySearch
        );
        // Never returns Adaptive, and Bitmap only with a sidecar.
        for la in 0..40 {
            for lb in 0..40 {
                for words in [None, Some(1), Some(8), Some(64)] {
                    let k = adaptive_choice(la, lb, words);
                    assert_ne!(k, IntersectionKind::Adaptive);
                    assert!(words.is_some() || k != IntersectionKind::Bitmap);
                    assert_eq!(k, resolve_kind(IntersectionKind::Adaptive, la, lb, words));
                }
            }
        }
    }

    #[test]
    fn resolve_kind_degrades_bitmap_without_sidecar() {
        assert_eq!(
            resolve_kind(IntersectionKind::Bitmap, 5, 5, None),
            IntersectionKind::BinarySearch
        );
        assert_eq!(
            resolve_kind(IntersectionKind::Bitmap, 5, 5, Some(4)),
            IntersectionKind::Bitmap
        );
        assert_eq!(
            resolve_kind(IntersectionKind::Merge, 5, 5, Some(4)),
            IntersectionKind::Merge
        );
    }
}
