//! Set intersection of tile index lists (step 2, Algorithm 2 lines 6–18).
//!
//! For a tile `C_ij`, the tiles of `A`'s tile row `i` and `B`'s tile column
//! `j` must be matched by index: `A_ik` pairs with `B_kj`. Both index lists
//! are sorted, so this is sorted-set intersection. The paper evaluates two
//! strategies and picks binary search:
//!
//! * [`intersect_binary_search`] — each element of the *shorter* list is
//!   binary-searched in the longer one; after a hit, the next search's left
//!   bound starts just past the hit (the "narrowing" the paper describes
//!   with its `tilecolidx_A` example).
//! * [`intersect_merge`] — the classic two-pointer merge, kept as the
//!   ablation baseline (`ablation_intersection` bench).

/// Which intersection kernel step 2 and step 3 use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectionKind {
    /// Binary-search the shorter list into the longer one (paper default).
    BinarySearch,
    /// Two-pointer merge.
    Merge,
}

/// A matched tile pair: positions into the two index lists.
pub type MatchedPair = (u32, u32);

/// Intersects `a` and `b` (both strictly ascending), pushing `(pos_a,
/// pos_b)` pairs for every common value, using the configured kernel.
pub fn intersect_into(kind: IntersectionKind, a: &[u32], b: &[u32], out: &mut Vec<MatchedPair>) {
    out.clear();
    match kind {
        IntersectionKind::BinarySearch => intersect_binary_search(a, b, out),
        IntersectionKind::Merge => intersect_merge(a, b, out),
    }
}

/// Binary-search intersection with left-bound narrowing.
pub fn intersect_binary_search(a: &[u32], b: &[u32], out: &mut Vec<MatchedPair>) {
    // Search each element of the shorter array within the longer one, as the
    // paper's Algorithm 2 does (lines 6 and 16–17 swap the roles).
    if a.len() <= b.len() {
        search_short_in_long(a, b, out, false);
    } else {
        search_short_in_long(b, a, out, true);
    }
}

fn search_short_in_long(short: &[u32], long: &[u32], out: &mut Vec<MatchedPair>, swapped: bool) {
    let mut lo = 0usize;
    for (ps, &value) in short.iter().enumerate() {
        if lo >= long.len() {
            break;
        }
        match long[lo..].binary_search(&value) {
            Ok(rel) => {
                let pl = lo + rel;
                if swapped {
                    out.push((pl as u32, ps as u32));
                } else {
                    out.push((ps as u32, pl as u32));
                }
                // Narrow: both lists ascend, so later values of the short
                // list can only match past this position.
                lo = pl + 1;
            }
            Err(rel) => {
                // Even a miss tells us where the next search may start.
                lo += rel;
            }
        }
    }
}

/// Two-pointer merge intersection.
pub fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<MatchedPair>) {
    let (mut p, mut q) = (0usize, 0usize);
    while p < a.len() && q < b.len() {
        match a[p].cmp(&b[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                out.push((p as u32, q as u32));
                p += 1;
                q += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: IntersectionKind, a: &[u32], b: &[u32]) -> Vec<MatchedPair> {
        let mut out = Vec::new();
        intersect_into(kind, a, b, &mut out);
        out
    }

    #[test]
    fn paper_example_c12() {
        // Figure 4: tile row A1* has columns {0, 1, 3}, tile column B*2 has
        // rows {1, 3}; the intersection is {1, 3} — pairs A11·B12 and
        // A13·B32.
        let a = [0u32, 1, 3];
        let b = [1u32, 3];
        let pairs = run(IntersectionKind::BinarySearch, &a, &b);
        // Positions: value 1 sits at a[1]/b[0], value 3 at a[2]/b[1].
        assert_eq!(pairs, vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn binary_search_matches_merge_on_many_inputs() {
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let la = (next() % 20) as usize;
            let lb = (next() % 20) as usize;
            let mut a: Vec<u32> = (0..la).map(|_| (next() % 40) as u32).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| (next() % 40) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let bs = run(IntersectionKind::BinarySearch, &a, &b);
            let mg = run(IntersectionKind::Merge, &a, &b);
            assert_eq!(bs, mg, "a={a:?} b={b:?}");
            // And every reported pair is a real match.
            for (pa, pb) in bs {
                assert_eq!(a[pa as usize], b[pb as usize]);
            }
        }
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        assert!(run(IntersectionKind::BinarySearch, &[], &[1, 2]).is_empty());
        assert!(run(IntersectionKind::BinarySearch, &[3], &[]).is_empty());
        assert!(run(IntersectionKind::Merge, &[1, 3, 5], &[0, 2, 4]).is_empty());
        assert!(run(IntersectionKind::BinarySearch, &[1, 3, 5], &[0, 2, 4]).is_empty());
    }

    #[test]
    fn identical_lists_match_elementwise() {
        let v: Vec<u32> = (0..50).map(|i| i * 3).collect();
        let pairs = run(IntersectionKind::BinarySearch, &v, &v);
        assert_eq!(pairs.len(), 50);
        assert!(pairs
            .iter()
            .enumerate()
            .all(|(i, &(a, b))| a as usize == i && b as usize == i));
    }

    #[test]
    fn swapped_roles_report_positions_in_original_order() {
        // a longer than b: the kernel searches b in a but must still report
        // (pos_in_a, pos_in_b).
        let a = [1u32, 4, 6, 9, 12, 15];
        let b = [6u32, 15];
        let pairs = run(IntersectionKind::BinarySearch, &a, &b);
        assert_eq!(pairs, vec![(2, 0), (5, 1)]);
    }

    #[test]
    fn intersect_into_clears_previous_contents() {
        let mut out = vec![(9u32, 9u32)];
        intersect_into(IntersectionKind::Merge, &[1], &[1], &mut out);
        assert_eq!(out, vec![(0, 0)]);
    }
}
