//! OCEAN-style sampled estimation of SpGEMM cost.
//!
//! The engine's original admission model predicted nnz(C) from a fixed
//! compression constant (`products / 4`), which systematically over-predicts
//! stencil-like products (their intermediate products collapse ~15×) and
//! under-predicts scattered ones (which barely compact at all). Following
//! the OCEAN paper's observation that *sampled* symbolic execution is cheap
//! and accurate enough to drive kernel and memory decisions, this module
//! runs the exact tile-row symbolic product on a deterministic, seeded
//! subset of A's tile rows and scales the measurements up with a stratified
//! estimator and a finite-population confidence band.
//!
//! Design points:
//!
//! * **Tile-row granularity.** A sample unit is one 16-row block of `A` —
//!   the same unit the pipeline's tile layout uses — so the sampled numbers
//!   (nonzeros, matched tile pairs, output tiles) are exactly the quantities
//!   steps 1–3 will later produce for that block.
//! * **Exact first pass.** A cheap `O(nnz(A))` pass computes the exact
//!   intermediate-product count per tile row (CSR path) or a proportional
//!   proxy (tiled path). The flop count therefore never depends on sampling
//!   on the CSR path, and the per-row weights drive the skew handling below.
//! * **Heavy rows are always sampled.** Any tile row holding more than a
//!   `1/m` share of the total products is measured exactly, so a single
//!   ultra-skewed row (the classic sampler-killer) can never be missed; the
//!   stratified estimator only has to cover the well-behaved remainder.
//! * **Deterministic and serial.** Row selection is a pure function of
//!   `(weights, rate, seed)` and the measurement loop is serial integer
//!   arithmetic, so the same inputs produce bit-identical [`SampleStats`]
//!   on any thread count — a property the check suite pins.
//!
//! The band is a 95% normal-approximation interval over the stratified
//! estimate with a finite-population correction: at `rate = 1` every row is
//! measured, the correction zeroes the width, and the estimate degenerates
//! to the exact count.

use std::collections::HashMap;

use tsg_matrix::{Csr, Scalar, TileMatrix, TILE_DIM};

/// Default fraction of A's tile rows the engine samples per estimate. One
/// sixteenth keeps the estimator's cost a small slice of the symbolic phase
/// it predicts while leaving dozens of sample blocks on any matrix large
/// enough for the estimate to matter.
pub const DEFAULT_SAMPLE_RATE: f64 = 1.0 / 16.0;

/// Sampling floor: matrices with up to this many tile rows are measured
/// exactly (the "sample" is the whole population), and larger ones never
/// sample fewer blocks than this.
pub const MIN_SAMPLED_TILE_ROWS: usize = 16;

/// z-score of the two-sided 95% normal interval the band targets.
const Z_95: f64 = 1.959964;

/// What a sampled symbolic pass measured, scaled to the full product.
///
/// All fields are integers so the struct stays `Eq`/hashable and the
/// cross-thread determinism contract is exact, not approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleStats {
    /// Tile rows of `A` (the sampling population).
    pub total_tile_rows: u32,
    /// Tile rows actually measured (heavy rows + one per stratum).
    pub sampled_tile_rows: u32,
    /// Intermediate products (`flops / 2`). Exact on the CSR path; a
    /// ratio-scaled estimate on the tiled path (see [`Self::products_exact`]).
    pub products: u64,
    /// Whether [`Self::products`] is exact rather than scaled up.
    pub products_exact: bool,
    /// Point estimate of nnz(C) after compaction.
    pub est_nnz_c: u64,
    /// Lower edge of the 95% band on nnz(C). Never below the nonzeros the
    /// sampled rows were *observed* to produce.
    pub nnz_lo: u64,
    /// Upper edge of the 95% band on nnz(C). Never above the product count
    /// or the dense capacity.
    pub nnz_hi: u64,
    /// Estimated matched `(A_ik, B_kj)` tile pairs (step 2's output, the
    /// pair-buffer sizing input).
    pub est_pairs: u64,
    /// Estimated non-empty output tiles.
    pub est_tiles_c: u64,
    /// Every tile row was measured: the estimate *is* the exact count and
    /// the band has zero width.
    pub exact: bool,
}

impl SampleStats {
    /// Half-width of the nnz band relative to the point estimate (0 when
    /// exact or when the estimate is zero).
    pub fn rel_halfwidth(&self) -> f64 {
        if self.est_nnz_c == 0 {
            return 0.0;
        }
        (self.nnz_hi.saturating_sub(self.nnz_lo)) as f64 / 2.0 / self.est_nnz_c as f64
    }
}

/// splitmix64 finalizer — the per-stratum offset hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Quantities one measured tile row contributes.
#[derive(Debug, Clone, Copy, Default)]
struct RowMeasure {
    products: u64,
    nnz: u64,
    pairs: u64,
    tiles: u64,
}

/// The seeded row selection: heavy rows (measured exactly, outside the
/// estimator) plus one row per contiguous stratum of the remainder.
struct Selection {
    heavy: Vec<u32>,
    /// `(row index, stratum size)` per stratum pick, in stratum order.
    picks: Vec<(u32, u32)>,
    /// Rows in the stratified remainder (the scaled population).
    rest_count: u64,
}

impl Selection {
    fn sampled_rows(&self) -> u32 {
        (self.heavy.len() + self.picks.len()) as u32
    }
}

/// Chooses which tile rows to measure. Pure in `(w, rate, seed)`.
fn select_rows(w: &[u64], rate: f64, seed: u64) -> Selection {
    let n = w.len();
    let m = if rate >= 1.0 {
        n
    } else {
        (((rate.max(0.0) * n as f64).ceil() as usize).max(MIN_SAMPLED_TILE_ROWS)).min(n)
    };
    if m >= n {
        // Full measurement: every row is "heavy", nothing is estimated.
        return Selection {
            heavy: (0..n as u32).collect(),
            picks: Vec::new(),
            rest_count: 0,
        };
    }
    let total: u128 = w.iter().map(|&x| x as u128).sum();
    // A row holding more than a 1/m share of the work is measured exactly;
    // strictly more than m-1 rows can never qualify, so the heavy set fits
    // the sampling budget.
    let mut heavy = Vec::new();
    let mut rest = Vec::with_capacity(n);
    for (i, &wi) in w.iter().enumerate() {
        if (wi as u128) * (m as u128) > total {
            heavy.push(i as u32);
        } else {
            rest.push(i as u32);
        }
    }
    let budget = m.saturating_sub(heavy.len()).max(1).min(rest.len());
    let mut picks = Vec::with_capacity(budget);
    for s in 0..budget {
        let lo = s * rest.len() / budget;
        let hi = (s + 1) * rest.len() / budget;
        if hi > lo {
            let off = (mix(seed ^ (s as u64).wrapping_mul(0xA24B_AED4_963E_E407))
                % (hi - lo) as u64) as usize;
            picks.push((rest[lo + off], (hi - lo) as u32));
        }
    }
    Selection {
        heavy,
        picks,
        rest_count: rest.len() as u64,
    }
}

/// Scales per-stratum samples up to a population total with a 95% band.
///
/// `heavy` is the exact contribution of the heavy rows; `xs` pairs each
/// stratum sample with its stratum size. The band uses the collapsed-strata
/// variance (sample variance of the picks treated as an SRS of the
/// remainder) with a finite-population correction — conservative for an
/// ordered population, and exactly zero once every row is measured.
fn scale_up(heavy: u64, xs: &[(u64, u32)], rest_count: u64, cap: u64) -> (u64, u64, u64) {
    let clamp = |v: u128| -> u64 { v.min(cap as u128) as u64 };
    if xs.is_empty() {
        // Nothing estimated: the heavy sum is the exact total.
        let t = heavy.min(cap);
        return (t, t, t);
    }
    let observed: u64 = xs.iter().map(|&(x, _)| x).sum();
    let point_wide: u128 = heavy as u128
        + xs.iter()
            .map(|&(x, ns)| x as u128 * ns as u128)
            .sum::<u128>();
    let point = clamp(point_wide);
    let m = xs.len() as f64;
    let floor = heavy.saturating_add(observed).min(cap);
    if xs.len() < 2 {
        // One stratum: no variance estimate — band spans what was observed
        // up to the structural cap.
        return (point, floor, cap);
    }
    let mean = xs.iter().map(|&(x, _)| x as f64).sum::<f64>() / m;
    let s2 = xs
        .iter()
        .map(|&(x, _)| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / (m - 1.0);
    let nr = rest_count as f64;
    let fpc = 1.0 - (m / nr).min(1.0);
    let sd = (nr * nr * fpc * s2 / m).sqrt();
    let hw = Z_95 * sd;
    let lo = ((point as f64 - hw).max(0.0) as u64).max(floor).min(cap);
    let hi = (((point as f64 + hw).ceil()) as u64).max(lo).min(cap);
    (point, lo, hi)
}

/// Assembles [`SampleStats`] from a selection and its per-row measurements.
/// `exact_products` carries the pass-1 total when the caller computed it
/// exactly (the CSR path); `None` scales the sampled product counts up.
fn assemble(
    total_rows: usize,
    sel: &Selection,
    heavy_m: RowMeasure,
    picks_m: &[(RowMeasure, u32)],
    nnz_cap: u64,
    tiles_cap: u64,
    exact_products: Option<u64>,
) -> SampleStats {
    let field = |f: fn(&RowMeasure) -> u64| -> Vec<(u64, u32)> {
        picks_m.iter().map(|(m, ns)| (f(m), *ns)).collect()
    };
    let (nnz, nnz_lo, nnz_hi) = scale_up(heavy_m.nnz, &field(|m| m.nnz), sel.rest_count, nnz_cap);
    let (pairs, _, _) = scale_up(heavy_m.pairs, &field(|m| m.pairs), sel.rest_count, u64::MAX);
    let (tiles, _, _) = scale_up(
        heavy_m.tiles,
        &field(|m| m.tiles),
        sel.rest_count,
        tiles_cap,
    );
    let products = exact_products.unwrap_or_else(|| {
        scale_up(
            heavy_m.products,
            &field(|m| m.products),
            sel.rest_count,
            u64::MAX,
        )
        .0
    });
    let exact = sel.sampled_rows() as usize == total_rows;
    SampleStats {
        total_tile_rows: total_rows as u32,
        sampled_tile_rows: sel.sampled_rows(),
        products,
        products_exact: exact_products.is_some() || exact,
        est_nnz_c: nnz,
        nnz_lo: if exact { nnz } else { nnz_lo },
        nnz_hi: if exact { nnz } else { nnz_hi },
        est_pairs: pairs,
        est_tiles_c: tiles,
        exact,
    }
}

/// Zero-work stats for a degenerate (empty) product.
fn empty_stats(total_rows: usize) -> SampleStats {
    SampleStats {
        total_tile_rows: total_rows as u32,
        sampled_tile_rows: total_rows as u32,
        products: 0,
        products_exact: true,
        est_nnz_c: 0,
        nnz_lo: 0,
        nnz_hi: 0,
        est_pairs: 0,
        est_tiles_c: 0,
        exact: true,
    }
}

/// Samples the symbolic product `A·B` from CSR operands.
///
/// Pass 1 computes the exact intermediate-product count per tile row of `A`
/// (so `products` is always exact here); the sampled pass then runs the
/// exact row-union symbolic on the selected 16-row blocks and scales
/// nonzeros, matched tile pairs, and output tiles up to the full product.
///
/// Requires `a.ncols == b.nrows`; row indices of `A` outside `B`'s row
/// space would be a shape error upstream.
pub fn sample_csr<T: Scalar>(a: &Csr<T>, b: &Csr<T>, rate: f64, seed: u64) -> SampleStats {
    let total_rows = a.nrows.div_ceil(TILE_DIM);
    if a.nnz() == 0 || b.nnz() == 0 || total_rows == 0 {
        return empty_stats(total_rows);
    }
    // Pass 1: exact products per tile row, O(nnz(A)) lookups into B.
    let mut w = vec![0u64; total_rows];
    for r in 0..a.nrows {
        let (cols, _) = a.row(r);
        let p: u64 = cols.iter().map(|&c| b.row_nnz(c as usize) as u64).sum();
        w[r / TILE_DIM] += p;
    }
    let total_products: u64 = w.iter().sum();
    let sel = select_rows(&w, rate, seed);

    // Measured pass: exact row-union symbolic per selected block. The
    // per-B-tile-row distinct-tile-column counts are memoized because
    // matched-pair counting revisits the same inner tile rows constantly.
    let mut btile_cols: HashMap<u32, u64> = HashMap::new();
    let mut union_scratch: Vec<u32> = Vec::new();
    let mut block_tiles: Vec<u32> = Vec::new();
    let mut a_tiles: Vec<u32> = Vec::new();
    let mut measure = |ti: u32| -> RowMeasure {
        let r0 = ti as usize * TILE_DIM;
        let r1 = (r0 + TILE_DIM).min(a.nrows);
        let mut nnz = 0u64;
        block_tiles.clear();
        a_tiles.clear();
        for r in r0..r1 {
            let (cols, _) = a.row(r);
            union_scratch.clear();
            for &c in cols {
                a_tiles.push(c >> 4);
                union_scratch.extend_from_slice(b.row(c as usize).0);
            }
            union_scratch.sort_unstable();
            union_scratch.dedup();
            nnz += union_scratch.len() as u64;
            block_tiles.extend(union_scratch.iter().map(|&c| c >> 4));
        }
        block_tiles.sort_unstable();
        block_tiles.dedup();
        a_tiles.sort_unstable();
        a_tiles.dedup();
        let pairs: u64 = a_tiles
            .iter()
            .map(|&kt| {
                *btile_cols.entry(kt).or_insert_with(|| {
                    let b0 = (kt as usize) * TILE_DIM;
                    let b1 = (b0 + TILE_DIM).min(b.nrows);
                    let mut tiles: Vec<u32> = (b0..b1)
                        .flat_map(|r| b.row(r).0.iter().map(|&c| c >> 4))
                        .collect();
                    tiles.sort_unstable();
                    tiles.dedup();
                    tiles.len() as u64
                })
            })
            .sum();
        RowMeasure {
            products: w[ti as usize],
            nnz,
            pairs,
            tiles: block_tiles.len() as u64,
        }
    };
    let mut heavy_m = RowMeasure::default();
    for &i in &sel.heavy {
        let m = measure(i);
        heavy_m.products += m.products;
        heavy_m.nnz += m.nnz;
        heavy_m.pairs += m.pairs;
        heavy_m.tiles += m.tiles;
    }
    let picks_m: Vec<(RowMeasure, u32)> =
        sel.picks.iter().map(|&(i, ns)| (measure(i), ns)).collect();
    let nnz_cap = total_products.min((a.nrows as u64).saturating_mul(b.ncols as u64));
    let tiles_cap = (total_rows as u64).saturating_mul(b.ncols.div_ceil(TILE_DIM) as u64);
    assemble(
        total_rows,
        &sel,
        heavy_m,
        &picks_m,
        nnz_cap,
        tiles_cap,
        Some(total_products),
    )
}

/// Samples the symbolic product `A·B` from tiled operands — the path for
/// resident products whose CSR form was never materialized.
///
/// The selection weight is a proportional proxy (`tile nnz × inner tile-row
/// nnz`); the sampled blocks then run the exact mask-OR symbolic of step 2
/// at tile granularity, so `nnz`/`pairs`/`tiles` are exact per sampled row
/// and `products` is itself a scaled estimate (`products_exact` is false
/// unless every row was measured).
pub fn sample_tiled<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    rate: f64,
    seed: u64,
) -> SampleStats {
    let total_rows = a.tile_m;
    if a.nnz() == 0 || b.nnz() == 0 || total_rows == 0 {
        return empty_stats(total_rows);
    }
    let b_row_nnz: Vec<u64> = (0..b.tile_m)
        .map(|k| (b.tile_nnz[b.tile_ptr[k + 1]] - b.tile_nnz[b.tile_ptr[k]]) as u64)
        .collect();
    let mut w = vec![0u64; total_rows];
    for (ti, wi) in w.iter_mut().enumerate() {
        for t in a.tile_row_range(ti) {
            let k = a.tile_colidx[t] as usize;
            if k < b.tile_m {
                *wi = wi.saturating_add(a.tile_nnz_of(t) as u64 * b_row_nnz[k]);
            }
        }
    }
    let sel = select_rows(&w, rate, seed);

    let mut out: HashMap<u32, [u16; TILE_DIM]> = HashMap::new();
    let mut measure = |ti: u32| -> RowMeasure {
        out.clear();
        let mut products = 0u64;
        let mut pairs = 0u64;
        for t in a.tile_row_range(ti as usize) {
            let k = a.tile_colidx[t] as usize;
            if k >= b.tile_m {
                continue;
            }
            let at = a.tile(t);
            // Column occupancy of the A tile (how many rows hit inner
            // element column c) — the per-element product count is then a
            // dot product with B's per-row popcounts.
            let mut colcount = [0u16; TILE_DIM];
            for &m in at.masks {
                let mut m = m;
                while m != 0 {
                    colcount[m.trailing_zeros() as usize] += 1;
                    m &= m - 1;
                }
            }
            for bt in b.tile_row_range(k) {
                pairs += 1;
                let bt_masks = b.tile(bt).masks;
                for c in 0..TILE_DIM {
                    products += colcount[c] as u64 * bt_masks[c].count_ones() as u64;
                }
                let slot = out.entry(b.tile_colidx[bt]).or_insert([0u16; TILE_DIM]);
                for (r, &am) in at.masks.iter().enumerate() {
                    let mut m = am;
                    while m != 0 {
                        slot[r] |= bt_masks[m.trailing_zeros() as usize];
                        m &= m - 1;
                    }
                }
            }
        }
        let nnz: u64 = out
            .values()
            .map(|masks| masks.iter().map(|&m| m.count_ones() as u64).sum::<u64>())
            .sum();
        RowMeasure {
            products,
            nnz,
            pairs,
            tiles: out.len() as u64,
        }
    };
    let mut heavy_m = RowMeasure::default();
    for &i in &sel.heavy {
        let m = measure(i);
        heavy_m.products += m.products;
        heavy_m.nnz += m.nnz;
        heavy_m.pairs += m.pairs;
        heavy_m.tiles += m.tiles;
    }
    let picks_m: Vec<(RowMeasure, u32)> =
        sel.picks.iter().map(|&(i, ns)| (measure(i), ns)).collect();
    let nnz_cap = (a.nrows as u64).saturating_mul(b.ncols as u64);
    let tiles_cap = (total_rows as u64).saturating_mul(b.tile_n as u64);
    assemble(
        total_rows, &sel, heavy_m, &picks_m, nnz_cap, tiles_cap, None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use tsg_runtime::MemTracker;

    fn scatter(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        tsg_gen::random::erdos_renyi(n, n, n * per_row, seed)
    }

    #[test]
    fn full_rate_is_exact_and_matches_the_pipeline() {
        let a = scatter(800, 6, 3);
        let s = sample_csr(&a, &a, 1.0, 42);
        assert!(s.exact);
        assert_eq!(s.nnz_lo, s.est_nnz_c);
        assert_eq!(s.nnz_hi, s.est_nnz_c);
        assert_eq!(s.products * 2, a.spgemm_flops(&a));
        let ta = TileMatrix::from_csr(&a);
        let out = crate::multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        assert_eq!(s.est_nnz_c, out.c.nnz() as u64);
        // The tiled path measures the same structure.
        let st = sample_tiled(&ta, &ta, 1.0, 42);
        assert_eq!(st.est_nnz_c, s.est_nnz_c);
        assert_eq!(st.products, s.products);
        assert_eq!(st.est_tiles_c, s.est_tiles_c);
        assert!(st.exact && st.products_exact);
    }

    #[test]
    fn sampled_estimate_brackets_the_truth_on_uniform_inputs() {
        let a = scatter(4096, 5, 9);
        let full = sample_csr(&a, &a, 1.0, 1);
        let s = sample_csr(&a, &a, DEFAULT_SAMPLE_RATE, 1);
        assert!(!s.exact);
        assert!(s.sampled_tile_rows < s.total_tile_rows);
        // Exact products regardless of sampling (CSR path).
        assert_eq!(s.products, full.products);
        // Uniform scatter: the sampled estimate lands well within 2×.
        assert!(s.est_nnz_c >= full.est_nnz_c / 2 && s.est_nnz_c <= full.est_nnz_c * 2);
        assert!(s.nnz_lo <= s.est_nnz_c && s.est_nnz_c <= s.nnz_hi);
    }

    #[test]
    fn heavy_rows_are_always_measured() {
        // One tile row carries ~90% of the products; uniform sampling at
        // 1/16 would miss it most of the time, the heavy rule never does.
        let w: Vec<u64> = (0..256)
            .map(|i| if i == 97 { 90_000 } else { 40 })
            .collect();
        for seed in 0..32 {
            let sel = select_rows(&w, DEFAULT_SAMPLE_RATE, seed);
            assert!(sel.heavy.contains(&97), "seed {seed}");
        }
    }

    #[test]
    fn selection_is_deterministic_and_seed_sensitive() {
        let w: Vec<u64> = (0..500).map(|i| (i % 17) as u64 + 1).collect();
        let a = select_rows(&w, 0.1, 7);
        let b = select_rows(&w, 0.1, 7);
        assert_eq!(a.picks, b.picks);
        assert_eq!(a.heavy, b.heavy);
        let c = select_rows(&w, 0.1, 8);
        assert_ne!(a.picks, c.picks, "a new seed moves the picks");
    }

    #[test]
    fn empty_operands_are_exact_zeros() {
        let z = Csr::<f64>::zero(64, 64);
        let s = sample_csr(&z, &z, 0.1, 1);
        assert!(s.exact);
        assert_eq!(s.est_nnz_c, 0);
        assert_eq!(s.nnz_hi, 0);
        assert_eq!(s.products, 0);
    }
}
