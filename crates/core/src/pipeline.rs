//! The full TileSpGEMM pipeline: step 1 → allocate → step 2 → allocate →
//! step 3, with the per-step breakdown of Figure 10 and device-memory
//! accounting for Figures 7 and 9.

use crate::convert::{timed_csr_to_tile, ConversionTiming};
use crate::intersect::{resolve_kind, IntersectionKind};
use crate::simd::{self, Kernel};
use crate::step1::tile_structure_spgemm;
use crate::step2::{encode_pairs, matched_pairs_with, symbolic_tile, PairBuffer};
use crate::{Config, Scheduling, SpGemmError};

use rayon::prelude::*;
use tsg_matrix::{Csr, ListBitmaps, Scalar, TileColIndex, TileMatrix, TILE_DIM};
use tsg_runtime::arena::Scratch;
use tsg_runtime::observe::{Counter, NullRecorder, Recorder};
use tsg_runtime::{
    bin_rows_by, split_mut_by_offsets, split_mut_uniform, Bins, Breakdown, MemTracker, ScratchPool,
    Step,
};

/// The result of a TileSpGEMM multiplication — the one result type both the
/// tiled and the CSR entry points return.
#[derive(Debug)]
pub struct Output<T> {
    /// The product in sparse-tile form. May retain step-1 tiles that turned
    /// out empty, exactly as the paper allows.
    pub c: TileMatrix<T>,
    /// Per-step wall times (Figure 10's slices).
    pub breakdown: Breakdown,
    /// Peak tracked device bytes during this multiplication.
    pub peak_bytes: usize,
    /// The matched-pair lists step 2 persisted and step 3 consumed; present
    /// iff [`Config::pair_reuse`] was on. Exposed for tests and ablations.
    pub pair_buffer: Option<PairBuffer>,
    /// CSR → tiled conversion timing, summed over both operands. `Some` iff
    /// this output came from a CSR entry point; the tiled entry points set
    /// `None`. Conversion stays outside [`Output::breakdown`], matching the
    /// paper's timing protocol (which assumes tiled inputs).
    pub conversion: Option<ConversionTiming>,
}

impl<T: Scalar> Output<T> {
    /// The product as CSR, with exact numeric zeros dropped (the tiled form
    /// keeps structurally-predicted entries that cancelled to zero).
    pub fn to_csr(&self) -> Csr<T> {
        self.c.to_csr().drop_numeric_zeros()
    }
}

/// Bucket count for [`crate::Scheduling::Binned`]: keys up to `2^18` get
/// their own power-of-two bucket, larger ones clamp into the last.
const BINNED_BUCKETS: usize = 20;

/// Footprint cap for the bitmap intersection sidecars: when
/// [`ListBitmaps::bytes_for`] over both operands exceeds this, the sidecars
/// are skipped and `Bitmap`/`Adaptive` degrade to the list kernels. The cap
/// bounds the sidecar to a small fraction of any realistic operand set
/// while admitting every matrix in the evaluation suite (webbase-like at
/// scale 14 needs ≈0.4 MB).
const TILE_BITMAP_MAX_BYTES: usize = 8 << 20;

/// [`crate::Scheduling::Auto`] picks `Binned` only at or above this worker
/// count: below it, the bin/permute bookkeeping cannot buy back anything
/// because there is hardly any imbalance to fix.
const AUTO_MIN_THREADS: usize = 4;

/// [`crate::Scheduling::Auto`] picks `Binned` only at or above this tile
/// count: with few tiles the phase is too short for dispatch order to
/// matter.
const AUTO_MIN_TILES: usize = 4096;

/// Resolves [`crate::Scheduling::Auto`] to a concrete strategy from the
/// available parallelism and the output's tile count.
///
/// An explicit `Binned` request on a single worker also resolves to
/// `PerTile`: the dispatch order cannot balance anything when every tile
/// runs on the same thread, so the bin keys (a pass over B's tile-column
/// nnz plus a per-tile work estimate) and the window permutation would be
/// pure overhead. The degradation is observable only in wall time and the
/// bin counters — tile outputs are bitwise identical either way.
fn resolve_scheduling(s: Scheduling, num_tiles: usize) -> Scheduling {
    let threads = rayon::current_num_threads().max(1);
    match s {
        Scheduling::Auto => {
            if threads >= AUTO_MIN_THREADS && num_tiles >= AUTO_MIN_TILES {
                Scheduling::Binned
            } else {
                Scheduling::PerTile
            }
        }
        Scheduling::Binned if threads == 1 => Scheduling::PerTile,
        other => other,
    }
}

/// Stored nonzeros of `A`'s tile row `ti` — O(1) from the cumulative
/// per-tile nnz offsets. Feeds the binned work estimates.
fn tile_row_nnz<T: Scalar>(a: &TileMatrix<T>, ti: usize) -> usize {
    a.tile_nnz[a.tile_ptr[ti + 1]] - a.tile_nnz[a.tile_ptr[ti]]
}

/// Flattens bins heaviest bucket first. The runtime's self-scheduling chunk
/// queue consumes the permutation front to back, so dispatching heavy tiles
/// first approximates longest-processing-time-first scheduling and keeps a
/// giant tail tile from serializing the end of the phase.
fn heavy_first(bins: &Bins) -> Vec<u32> {
    let mut order = Vec::with_capacity(bins.rows.len());
    for b in (0..bins.bucket_count()).rev() {
        order.extend_from_slice(bins.bucket(b));
    }
    order
}

/// Deals a heavy-first sequence round-robin into `ways` buckets and
/// concatenates them. The executor hands out contiguous chunks, so a plain
/// heavy-first order would concentrate every heavy tile into the first chunk
/// and serialize them on one worker; dealing gives each chunk an even share
/// of heavy and light tiles with the heavy ones still leading.
fn deal(order: &[u32], ways: usize) -> Vec<u32> {
    let ways = ways.clamp(1, order.len().max(1));
    let mut out = Vec::with_capacity(order.len());
    for start in 0..ways {
        out.extend(order.iter().skip(start).step_by(ways));
    }
    out
}

/// The dispatch order for [`crate::Scheduling::Binned`]: heaviest bucket
/// first, dealt across as many buckets as the executor makes chunks.
///
/// With a single worker the dispatch order cannot balance anything — every
/// tile runs on the same thread regardless — while the dealt order still
/// destroys the sequential tile locality the per-tile dispatch gets for
/// free. So one worker keeps the natural order; [`resolve_scheduling`]
/// normally short-circuits that case to `PerTile` before the bins are even
/// built, and this branch backstops any caller that builds them anyway.
fn binned_order(bins: &Bins) -> Vec<u32> {
    let threads = rayon::current_num_threads().max(1);
    if threads == 1 {
        return (0..bins.rows.len() as u32).collect();
    }
    deal(&heavy_first(bins), threads * 4)
}

/// Reorders per-tile windows by `order`, a permutation of `0..windows.len()`.
fn permuted<W>(windows: Vec<W>, order: &[u32]) -> Vec<W> {
    debug_assert_eq!(windows.len(), order.len());
    let mut slots: Vec<Option<W>> = windows.into_iter().map(Some).collect();
    order
        .iter()
        .map(|&t| {
            slots[t as usize]
                .take()
                .expect("order must be a permutation")
        })
        .collect()
}

/// Set-intersection lookups a step-2/step-3 intersection pass issues, plus
/// the chosen-kernel histogram `[binary-search, merge, bitmap]`, derived
/// from list lengths alone: binary search probes once per element of the
/// shorter tile list; merge advances at most `|a| + |b|` times; the bitmap
/// kernel touches its fixed word count. The per-tile kernel choice is a
/// pure function of the lengths ([`resolve_kind`]), so the histogram can be
/// replayed here, outside the parallel hot loops — the counters are a
/// deterministic proxy, not a hardware event count.
fn intersection_stats<T: Scalar>(
    a: &TileMatrix<T>,
    b_cols: &TileColIndex,
    c_rowidx: &[u32],
    c_colidx: &[u32],
    kind: IntersectionKind,
    bitmap_words: Option<usize>,
) -> (u64, [u64; 3]) {
    let mut probes = 0u64;
    let mut picks = [0u64; 3];
    for t in 0..c_rowidx.len() {
        let la = a.tile_row_range(c_rowidx[t] as usize).len();
        let lb = b_cols.col(c_colidx[t] as usize).0.len();
        probes += match resolve_kind(kind, la, lb, bitmap_words) {
            IntersectionKind::BinarySearch => {
                picks[0] += 1;
                la.min(lb) as u64
            }
            IntersectionKind::Merge => {
                picks[1] += 1;
                (la + lb) as u64
            }
            IntersectionKind::Bitmap => {
                picks[2] += 1;
                bitmap_words.expect("Bitmap only resolves with sidecars") as u64
            }
            IntersectionKind::Adaptive => unreachable!("resolve_kind never yields Adaptive"),
        };
    }
    (probes, picks)
}

/// Runs `C = A·B` on tiled operands with the paper's three-step algorithm.
///
/// The `tracker` carries the device-memory budget; exceeding it aborts with
/// [`SpGemmError::OutOfMemory`] (the paper's Figure-7 `0.00` bars). Pass
/// [`MemTracker::new()`] for unlimited memory.
///
/// This is the original free-function surface, kept as a thin wrapper over
/// [`multiply_with`] with recording disabled. New code should prefer the
/// [`crate::SpGemm`] context, which owns the `(config, tracker, recorder)`
/// triple and numbers jobs.
pub fn multiply<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    config: &Config,
    tracker: &MemTracker,
) -> Result<Output<T>, SpGemmError> {
    multiply_with(a, b, config, tracker, &NullRecorder, 0)
}

/// [`multiply`] with an explicit recorder and job id: phase spans nest under
/// a `"job"` root span recorded for `job`, and the pipeline's counters
/// ([`Counter::TilesVisited`], matched pairs, intersection probes, the
/// chosen-kernel histogram, accumulator picks, bin occupancy) flow into the
/// recorder.
///
/// All per-tile instrumentation is derived outside the parallel hot loops
/// from state the pipeline already computes, and is skipped entirely when
/// [`Recorder::is_enabled`] is `false` — a [`NullRecorder`] run costs a few
/// virtual calls per multiply, not per tile.
///
/// Worker scratch comes from a throwaway [`ScratchPool`]; long-lived
/// callers (the [`crate::SpGemm`] context, the engine) should hold a pool
/// and call [`multiply_with_pool`] so the arenas stay warm across
/// multiplies.
pub fn multiply_with<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    config: &Config,
    tracker: &MemTracker,
    recorder: &dyn Recorder,
    job: u64,
) -> Result<Output<T>, SpGemmError> {
    let arena = ScratchPool::new();
    multiply_with_pool(a, b, config, tracker, recorder, job, &arena)
}

/// [`multiply_with`] against a caller-owned [`ScratchPool`].
///
/// Steps 2 and 3 check a [`Scratch`] arena out of `arena` once per task
/// chunk; after the first multiply warms the pool, the per-tile hot path
/// performs zero heap allocations (DESIGN.md §11). The pool's total
/// footprint is charged to `tracker` for the duration of the call (so
/// `peak_bytes` covers scratch memory) and credited back at the end —
/// growth observed during the run is reconciled before the peak is read.
#[allow(clippy::too_many_arguments)]
pub fn multiply_with_pool<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    config: &Config,
    tracker: &MemTracker,
    recorder: &dyn Recorder,
    job: u64,
    arena: &ScratchPool,
) -> Result<Output<T>, SpGemmError> {
    if a.ncols != b.nrows {
        return Err(SpGemmError::ShapeMismatch {
            a: (a.nrows, a.ncols),
            b: (b.nrows, b.ncols),
        });
    }
    let mut breakdown = Breakdown::default();
    let peak_start = tracker.peak_bytes();
    let enabled = recorder.is_enabled();
    let root = recorder.span_enter(job, "job");
    // Closes `root` (and reports nothing else) on early error returns.
    let fail = |e: SpGemmError| -> SpGemmError {
        recorder.span_exit(root);
        e
    };

    // Inputs live on the device for the duration of the product.
    let input_bytes = tile_matrix_bytes(a) + tile_matrix_bytes(b);
    if let Err(e) = tracker.on_alloc(input_bytes) {
        return Err(fail(e.into()));
    }

    // ---- Step 1: tile-structure symbolic SpGEMM (Figure 3). ----
    let span = recorder.span_enter(job, "step1");
    let c_pattern = breakdown.timed(Step::Step1, || {
        tile_structure_spgemm(
            a.tile_m,
            &a.tile_ptr,
            &a.tile_colidx,
            &b.tile_ptr,
            &b.tile_colidx,
            b.tile_n,
        )
    });
    recorder.span_exit(span);
    let num_tiles = c_pattern.nnz();

    // ---- Allocation for step 2 (counted like the paper's cudaMalloc). ----
    // B's column-wise tile index (Algorithm 2's tileColPtr_B/tileRowidx_B),
    // C's expanded tile-row indices, and — when the intersection kind wants
    // them and the footprint gate admits them — the bitmap sidecars of A's
    // tile rows and B's tile columns.
    let span = recorder.span_enter(job, "alloc");
    let (b_cols, bitmaps, c_rowidx, mut c_masks, mut c_row_ptr) =
        breakdown.timed(Step::Alloc, || {
            let b_cols = b.col_index();
            let bitmaps: Option<(ListBitmaps, ListBitmaps)> = match config.intersection {
                IntersectionKind::Bitmap | IntersectionKind::Adaptive if num_tiles > 0 => {
                    // Both lists live in the shared universe K = A.tile_n ==
                    // B.tile_m (shapes were checked above).
                    let k = a.tile_n;
                    let est =
                        ListBitmaps::bytes_for(a.tile_m, k) + ListBitmaps::bytes_for(b.tile_n, k);
                    (est <= TILE_BITMAP_MAX_BYTES).then(|| {
                        (
                            ListBitmaps::from_csr(&a.tile_ptr, &a.tile_colidx, k),
                            ListBitmaps::from_csr(&b_cols.colptr, &b_cols.rowidx, k),
                        )
                    })
                }
                _ => None,
            };
            let mut c_rowidx = vec![0u32; num_tiles];
            for ti in 0..c_pattern.rows {
                c_rowidx[c_pattern.ptr[ti]..c_pattern.ptr[ti + 1]].fill(ti as u32);
            }
            let c_masks = vec![0u16; num_tiles * TILE_DIM];
            let c_row_ptr = vec![0u8; num_tiles * TILE_DIM];
            (b_cols, bitmaps, c_rowidx, c_masks, c_row_ptr)
        });
    recorder.span_exit(span);
    let bitmaps_ref = bitmaps.as_ref().map(|(am, bm)| (am, bm));
    let bitmap_words = bitmaps_ref.map(|(am, _)| am.words_per_list());
    let step2_temp_bytes = c_pattern.nnz() * 4
        + b_cols.colptr.len() * 8
        + b_cols.rowidx.len() * 8
        + num_tiles * (4 + TILE_DIM * 3 + 8)
        + bitmaps_ref.map_or(0, |(am, bm)| am.bytes() + bm.bytes())
        + 8;
    if let Err(e) = tracker.on_alloc(step2_temp_bytes) {
        tracker.on_free(input_bytes);
        return Err(fail(e.into()));
    }

    // Reserve one scratch arena per executor chunk (the same sizing the
    // `for_each_init` dispatch below uses) and charge the pool's footprint
    // for the duration of this multiply. A warmed pool re-charges its grown
    // size, so scratch memory shows up in `peak_bytes` every run.
    let arena_slots = rayon::current_num_threads().max(1) * 4;
    let arena_charged = match arena.reserve(arena_slots, tracker) {
        Ok(bytes) => bytes,
        Err(e) => {
            tracker.on_free(input_bytes + step2_temp_bytes);
            return Err(fail(e.into()));
        }
    };
    let scheduling = resolve_scheduling(config.scheduling, num_tiles);

    // Binned dispatch keys want a B-side density term (a matched pair's
    // mask-OR walks the A tile *and* touches the B tile's row masks, and
    // pairing against a dense B tile column is proportionally heavier).
    // One cheap pass over the tile-column index gives the per-column stored
    // nonzeros; per-pair average = b_col_nnz[tj] / lb.
    let b_col_nnz: Vec<usize> = if matches!(scheduling, Scheduling::Binned) {
        (0..b_cols.tile_n)
            .map(|tj| {
                b_cols
                    .col(tj)
                    .1
                    .iter()
                    .map(|&t| b.tile_nnz_of(t as usize))
                    .sum()
            })
            .collect()
    } else {
        Vec::new()
    };

    // Sampled-estimator pre-sizing: when the admission layer measured the
    // product (see `crate::sample`), warm the scratch arenas and the pair
    // staging slots to the predicted per-tile pair count so the hot phases
    // start with capacity instead of growing mid-flight. Allocation only —
    // the output is bit-identical with or without hints.
    // Step 1 already ran, so the exact output-tile count beats the hinted
    // one as the divisor.
    let avg_hint_words = config.est_hints.map_or(0, |h| h.pairs / num_tiles.max(1));
    if avg_hint_words >= 8 {
        let guards: Vec<_> = (0..arena_slots)
            .map(|_| {
                let mut g = arena.checkout();
                g.pos_pairs.reserve(avg_hint_words);
                g.id_pairs.reserve(avg_hint_words);
                g
            })
            .collect();
        drop(guards);
    }

    // ---- Step 2: per-tile symbolic (Algorithm 2). ----
    let mut c_counts = vec![0usize; num_tiles];
    // Matched-pair count per tile: always recorded (one word per tile) — it
    // feeds the Binned step-3 work estimate and the counters.
    let mut pair_counts = vec![0usize; num_tiles];
    // With pair reuse on, step 2 parks each tile's packed pair words here;
    // they are flattened into the compact PairBuffer right after the phase.
    // A sampled estimate pre-sizes the slots to the predicted per-tile pair
    // count, skipping the doubling reallocations of the first few pushes.
    let mut pair_slots: Vec<Vec<u16>> = if config.pair_reuse && avg_hint_words >= 8 {
        (0..num_tiles)
            .map(|_| Vec::with_capacity(avg_hint_words))
            .collect()
    } else {
        vec![Vec::new(); num_tiles]
    };
    let step2_tile = |s: &mut Scratch,
                      t: usize,
                      mask_w: &mut [u16],
                      row_ptr_w: &mut [u8],
                      count: &mut usize,
                      pair_count: &mut usize,
                      slot: &mut Vec<u16>| {
        let ti = c_rowidx[t] as usize;
        let tj = c_pattern.idx[t] as usize;
        matched_pairs_with(
            a,
            &b_cols,
            ti,
            tj,
            config.intersection,
            bitmaps_ref,
            &mut s.pos_pairs,
            &mut s.id_pairs,
        );
        *pair_count = s.id_pairs.len();
        let sym = symbolic_tile(a, b, &s.id_pairs);
        mask_w.copy_from_slice(&sym.masks);
        row_ptr_w.copy_from_slice(&sym.row_ptr);
        *count = sym.nnz;
        if config.pair_reuse {
            // Pack the list positions straight into the tile's slot; step 3
            // decodes them back to flat ids with the same base/id context.
            encode_pairs(&s.pos_pairs, slot);
        }
    };
    // Per-tile work estimate for the binned dispatch, calibrated against
    // measured per-pair cost: the intersection visits ~min(la, lb)
    // candidates, and each matched pair (≤ min(la, lb)) walks one of A's
    // tiles in the row (average nnz = row nnz / la) *and* ORs the matching
    // B tile's row masks (average nnz = column nnz / lb) — the product
    // proxy the sampled estimator measures, replacing the A-only model
    // that ignored B-side density entirely.
    let step2_estimate = |t: usize| {
        let ti = c_rowidx[t] as usize;
        let tj = c_pattern.idx[t] as usize;
        let la = a.tile_row_range(ti).len();
        let lb = b_cols.col(tj).0.len();
        let m = la.min(lb);
        m + m * (tile_row_nnz(a, ti) / la.max(1) + b_col_nnz[tj] / lb.max(1))
    };
    let span = recorder.span_enter(job, "step2");
    breakdown.timed(Step::Step2, || match scheduling {
        Scheduling::PerTile => {
            c_masks
                .par_chunks_mut(TILE_DIM)
                .zip(c_row_ptr.par_chunks_mut(TILE_DIM))
                .zip(c_counts.par_iter_mut())
                .zip(pair_counts.par_iter_mut())
                .zip(pair_slots.par_iter_mut())
                .enumerate()
                .for_each_init(
                    || arena.checkout(),
                    |s, (t, ((((mask_w, row_ptr_w), count), pair_count), slot))| {
                        step2_tile(s, t, mask_w, row_ptr_w, count, pair_count, slot);
                    },
                );
        }
        Scheduling::PerTileRow => {
            let elem_bounds: Vec<usize> = c_pattern.ptr.iter().map(|&t| t * TILE_DIM).collect();
            let masks_rows = split_mut_by_offsets(&mut c_masks, &elem_bounds);
            let rowptr_rows = split_mut_by_offsets(&mut c_row_ptr, &elem_bounds);
            let counts_rows = split_mut_by_offsets(&mut c_counts, &c_pattern.ptr);
            let paircnt_rows = split_mut_by_offsets(&mut pair_counts, &c_pattern.ptr);
            let slots_rows = split_mut_by_offsets(&mut pair_slots, &c_pattern.ptr);
            masks_rows
                .into_par_iter()
                .zip(rowptr_rows)
                .zip(counts_rows)
                .zip(paircnt_rows)
                .zip(slots_rows)
                .enumerate()
                .for_each_init(
                    || arena.checkout(),
                    |s, (ti, ((((masks_r, rowptr_r), counts_r), paircnt_r), slots_r))| {
                        let base = c_pattern.ptr[ti];
                        for (k, count) in counts_r.iter_mut().enumerate() {
                            step2_tile(
                                s,
                                base + k,
                                &mut masks_r[k * TILE_DIM..(k + 1) * TILE_DIM],
                                &mut rowptr_r[k * TILE_DIM..(k + 1) * TILE_DIM],
                                count,
                                &mut paircnt_r[k],
                                &mut slots_r[k],
                            );
                        }
                    },
                );
        }
        Scheduling::Binned => {
            if num_tiles == 0 {
                return;
            }
            let bins = bin_rows_by(num_tiles, BINNED_BUCKETS, step2_estimate);
            if enabled {
                recorder.add(Counter::BinnedTiles, num_tiles as u64);
                recorder.add(Counter::BinsOccupied, bins.occupied_buckets() as u64);
            }
            let order = binned_order(&bins);
            let masks_w = permuted(split_mut_uniform(&mut c_masks, num_tiles), &order);
            let rowptr_w = permuted(split_mut_uniform(&mut c_row_ptr, num_tiles), &order);
            let counts_w = permuted(c_counts.iter_mut().collect(), &order);
            let paircnt_w = permuted(pair_counts.iter_mut().collect(), &order);
            let slots_w = permuted(pair_slots.iter_mut().collect(), &order);
            order
                .par_iter()
                .zip(masks_w)
                .zip(rowptr_w)
                .zip(counts_w)
                .zip(paircnt_w)
                .zip(slots_w)
                .for_each_init(
                    || arena.checkout(),
                    |s, (((((&t, mask_w), row_ptr_w), count), pair_count), slot)| {
                        step2_tile(s, t as usize, mask_w, row_ptr_w, count, pair_count, slot);
                    },
                );
        }
        Scheduling::Auto => unreachable!("Auto resolved before dispatch"),
    });

    recorder.span_exit(span);

    // Prefix-sum the per-tile counts into the tileNnz offsets — the scan
    // the paper ends step 2 with — then allocate C's nonzero arrays.
    let mut c_offsets = vec![0usize; num_tiles + 1];
    let span = recorder.span_enter(job, "scan");
    let nnz_c = breakdown.timed(Step::Step2, || {
        tsg_runtime::par_exclusive_scan_to(&c_counts, &mut c_offsets)
    });
    recorder.span_exit(span);

    // Step-2 counters, all derived from state the phase already produced:
    // one visit per predicted output tile (== step-1 nnz), the matched-pair
    // total, the length-derived probe count, and the chosen-kernel
    // histogram (see `intersection_stats`).
    let probes = if enabled {
        let (probes, picks) = intersection_stats(
            a,
            &b_cols,
            &c_rowidx,
            &c_pattern.idx,
            config.intersection,
            bitmap_words,
        );
        recorder.add(Counter::TilesVisited, num_tiles as u64);
        recorder.add(
            Counter::MatchedPairs,
            pair_counts.iter().map(|&p| p as u64).sum(),
        );
        recorder.add(Counter::IntersectionProbes, probes);
        recorder.add(Counter::IsectBinaryPicks, picks[0]);
        recorder.add(Counter::IsectMergePicks, picks[1]);
        recorder.add(Counter::IsectBitmapPicks, picks[2]);
        probes
    } else {
        0
    };

    // Flatten the per-tile packed words into the compact CSR-shaped buffer
    // step 3 will read. The per-tile staging vectors are host-side scratch;
    // only the compact buffer is tracked as device memory.
    let pair_buffer: Option<PairBuffer> = if config.pair_reuse {
        let span = recorder.span_enter(job, "alloc");
        let res = breakdown.timed(Step::Alloc, || {
            let word_counts: Vec<usize> = pair_slots.iter().map(Vec::len).collect();
            let mut word_offsets = vec![0usize; num_tiles + 1];
            let total_words = tsg_runtime::par_exclusive_scan_to(&word_counts, &mut word_offsets);
            tracker.on_alloc(
                total_words * std::mem::size_of::<u16>()
                    + (num_tiles + 1) * std::mem::size_of::<u32>(),
            )?;
            let mut words = vec![0u16; total_words];
            split_mut_by_offsets(&mut words, &word_offsets)
                .into_par_iter()
                .zip(pair_slots.par_iter())
                .for_each(|(w, slot)| w.copy_from_slice(slot));
            let offsets: Vec<u32> = word_offsets.iter().map(|&o| o as u32).collect();
            Ok::<_, SpGemmError>(PairBuffer { offsets, words })
        });
        recorder.span_exit(span);
        match res {
            Ok(buf) => Some(buf),
            Err(e) => {
                tracker.on_free(input_bytes + step2_temp_bytes + arena_charged);
                return Err(fail(e));
            }
        }
    } else {
        None
    };
    drop(pair_slots);
    let pair_bytes = pair_buffer.as_ref().map_or(0, PairBuffer::bytes);

    let output_bytes = nnz_c * (2 + std::mem::size_of::<T>()) + (num_tiles + 1) * 8;
    let span = recorder.span_enter(job, "alloc");
    let alloc_res = breakdown.timed(Step::Alloc, || {
        tracker.on_alloc(output_bytes)?;
        Ok::<_, SpGemmError>((
            tracker.timed_alloc(|| vec![0u8; nnz_c]),
            tracker.timed_alloc(|| vec![0u8; nnz_c]),
            tracker.timed_alloc(|| vec![T::ZERO; nnz_c]),
        ))
    });
    recorder.span_exit(span);
    let (mut c_row_idx, mut c_col_idx, mut c_vals) = match alloc_res {
        Ok(v) => v,
        Err(e) => {
            tracker.on_free(input_bytes + step2_temp_bytes + pair_bytes + arena_charged);
            return Err(fail(e));
        }
    };

    // ---- Step 3: numeric (Algorithm 3). ----
    // The kernel level and dense-tile threshold are run constants: resolved
    // once (policy, then the `core.simd_dispatch` failpoint, then hardware
    // detection), so the counter replay below re-derives the same choices.
    let simd_level = simd::resolve_level(config.simd);
    let dense_tile_nnz = simd::dense_tile_threshold(config.tnnz_threshold, config.est_hints);
    let step3_tile = |s: &mut Scratch,
                      t: usize,
                      row_idx_w: &mut [u8],
                      col_idx_w: &mut [u8],
                      vals_w: &mut [T]| {
        let masks = &c_masks[t * TILE_DIM..(t + 1) * TILE_DIM];
        let row_ptr = &c_row_ptr[t * TILE_DIM..(t + 1) * TILE_DIM];
        let filled = simd::fill_indices_fast(masks, row_idx_w, col_idx_w, simd_level);
        debug_assert_eq!(filled, vals_w.len());
        let ti = c_rowidx[t] as usize;
        let tj = c_pattern.idx[t] as usize;
        // With pair reuse on, step 2's persisted packed list replaces the
        // second intersection of A's tile row with B's tile column.
        match &pair_buffer {
            Some(buf) => {
                let (_, b_ids) = b_cols.col(tj);
                buf.decode_tile(t, a.tile_ptr[ti] as u32, b_ids, &mut s.id_pairs);
            }
            None => {
                matched_pairs_with(
                    a,
                    &b_cols,
                    ti,
                    tj,
                    config.intersection,
                    bitmaps_ref,
                    &mut s.pos_pairs,
                    &mut s.id_pairs,
                );
            }
        }
        let kernel = simd::select_kernel(
            config.simd,
            simd_level,
            vals_w.len(),
            config.accumulator,
            config.tnnz_threshold,
            dense_tile_nnz,
        );
        simd::run_numeric(
            kernel,
            simd_level,
            a,
            b,
            &s.id_pairs,
            masks,
            row_ptr,
            vals_w,
        );
    };
    let span = recorder.span_enter(job, "step3");
    breakdown.timed(Step::Step3, || match scheduling {
        Scheduling::PerTile => {
            let row_idx_w = split_mut_by_offsets(&mut c_row_idx, &c_offsets);
            let col_idx_w = split_mut_by_offsets(&mut c_col_idx, &c_offsets);
            let vals_w = split_mut_by_offsets(&mut c_vals, &c_offsets);
            row_idx_w
                .into_par_iter()
                .zip(col_idx_w)
                .zip(vals_w)
                .enumerate()
                .for_each_init(
                    || arena.checkout(),
                    |s, (t, ((row_idx_w, col_idx_w), vals_w))| {
                        step3_tile(s, t, row_idx_w, col_idx_w, vals_w);
                    },
                );
        }
        Scheduling::PerTileRow => {
            let row_bounds: Vec<usize> = c_pattern.ptr.iter().map(|&t| c_offsets[t]).collect();
            let row_idx_rows = split_mut_by_offsets(&mut c_row_idx, &row_bounds);
            let col_idx_rows = split_mut_by_offsets(&mut c_col_idx, &row_bounds);
            let vals_rows = split_mut_by_offsets(&mut c_vals, &row_bounds);
            row_idx_rows
                .into_par_iter()
                .zip(col_idx_rows)
                .zip(vals_rows)
                .enumerate()
                .for_each_init(
                    || arena.checkout(),
                    |s, (ti, ((ri_r, ci_r), vals_r))| {
                        let tile_base = c_pattern.ptr[ti];
                        let elem_base = c_offsets[tile_base];
                        for t in tile_base..c_pattern.ptr[ti + 1] {
                            let lo = c_offsets[t] - elem_base;
                            let hi = c_offsets[t + 1] - elem_base;
                            // Split the row window into this tile's slice.
                            step3_tile(
                                s,
                                t,
                                &mut ri_r[lo..hi],
                                &mut ci_r[lo..hi],
                                &mut vals_r[lo..hi],
                            );
                        }
                    },
                );
        }
        Scheduling::Binned => {
            if num_tiles == 0 {
                return;
            }
            // Work estimate from exact, free-to-read step-2 facts: writing
            // the tile's nnz plus, per persisted pair, the walk over one of
            // A's tiles in the row (average nnz = row nnz / la) and the
            // scatter into the matching B tile (average nnz = column nnz /
            // lb) — the same product proxy the step-2 bins use.
            let bins = bin_rows_by(num_tiles, BINNED_BUCKETS, |t| {
                let ti = c_rowidx[t] as usize;
                let tj = c_pattern.idx[t] as usize;
                let la = a.tile_row_range(ti).len();
                let lb = b_cols.col(tj).0.len();
                c_counts[t]
                    + pair_counts[t]
                        * (tile_row_nnz(a, ti) / la.max(1) + b_col_nnz[tj] / lb.max(1)).max(1)
            });
            if enabled {
                recorder.add(Counter::BinnedTiles, num_tiles as u64);
                recorder.add(Counter::BinsOccupied, bins.occupied_buckets() as u64);
            }
            let order = binned_order(&bins);
            let row_idx_w = permuted(split_mut_by_offsets(&mut c_row_idx, &c_offsets), &order);
            let col_idx_w = permuted(split_mut_by_offsets(&mut c_col_idx, &c_offsets), &order);
            let vals_w = permuted(split_mut_by_offsets(&mut c_vals, &c_offsets), &order);
            order
                .par_iter()
                .zip(row_idx_w)
                .zip(col_idx_w)
                .zip(vals_w)
                .for_each_init(
                    || arena.checkout(),
                    |s, (((&t, row_idx_w), col_idx_w), vals_w)| {
                        step3_tile(s, t as usize, row_idx_w, col_idx_w, vals_w);
                    },
                );
        }
        Scheduling::Auto => unreachable!("Auto resolved before dispatch"),
    });
    recorder.span_exit(span);

    // Step-3 counters: the kernel pick per tile re-derives the exact branch
    // `step3_tile` took (same inputs, same pure selector), and a run
    // without pair reuse repeats the step-2 intersections, so the probe
    // count is charged again. `sparse + dense` still sums to the visited
    // tiles; the `simd_*`/`dense_tile` counters histogram which
    // implementation ran each accumulator shape.
    if enabled {
        if pair_buffer.is_none() {
            recorder.add(Counter::IntersectionProbes, probes);
        }
        let (mut sparse, mut dense) = (0u64, 0u64);
        let (mut simd_sparse, mut simd_dense, mut dense_tile) = (0u64, 0u64, 0u64);
        for t in 0..num_tiles {
            let tile_nnz = c_offsets[t + 1] - c_offsets[t];
            match simd::select_kernel(
                config.simd,
                simd_level,
                tile_nnz,
                config.accumulator,
                config.tnnz_threshold,
                dense_tile_nnz,
            ) {
                Kernel::SparseScalar => sparse += 1,
                Kernel::DenseScalar => dense += 1,
                Kernel::SparseSimd => {
                    sparse += 1;
                    simd_sparse += 1;
                }
                Kernel::DenseSimd => {
                    dense += 1;
                    simd_dense += 1;
                }
                Kernel::DenseTile => {
                    // The fast path promotes the *kernel*, not the paper's
                    // accumulator decision: the legacy sparse/dense counters
                    // keep recording the threshold rule so they stay
                    // comparable across SIMD policies.
                    if config
                        .accumulator
                        .use_dense(tile_nnz, config.tnnz_threshold)
                    {
                        dense += 1;
                    } else {
                        sparse += 1;
                    }
                    dense_tile += 1;
                }
            }
        }
        recorder.add(Counter::SparseAccPicks, sparse);
        recorder.add(Counter::DenseAccPicks, dense);
        recorder.add(Counter::SimdSparsePicks, simd_sparse);
        recorder.add(Counter::SimdDensePicks, simd_dense);
        recorder.add(Counter::DenseTilePicks, dense_tile);
    }

    // Assemble the output structure.
    let c = TileMatrix {
        nrows: a.nrows,
        ncols: b.ncols,
        tile_m: a.tile_m,
        tile_n: b.tile_n,
        tile_ptr: c_pattern.ptr,
        tile_colidx: c_pattern.idx,
        tile_nnz: c_offsets,
        row_ptr: c_row_ptr,
        row_idx: c_row_idx,
        col_idx: c_col_idx,
        vals: c_vals,
        masks: c_masks,
    };

    // Reconcile arena growth: the reservation charged the pool's footprint
    // as of step-2 start; any buffer growth during steps 2/3 is charged now
    // so the peak reflects the true scratch high-water mark.
    let arena_total = {
        let grown = arena.bytes().saturating_sub(arena_charged);
        if grown > 0 {
            if let Err(e) = tracker.on_alloc(grown) {
                tracker.on_free(
                    input_bytes + step2_temp_bytes + pair_bytes + output_bytes + arena_charged,
                );
                return Err(fail(e.into()));
            }
        }
        arena_charged + grown
    };
    let peak_bytes = tracker.peak_bytes().max(peak_start);
    // Everything this product allocated is released: inputs, step-2
    // temporaries, the pair buffer, the arena reservation, and the output
    // arrays (handed back to the host). The tracker's current-bytes count
    // returns to its pre-call level — DESIGN.md §5's balanced alloc/free
    // rule. The arenas themselves stay warm in the pool for the next
    // multiply; only the tracker charge is released.
    tracker.on_free(input_bytes + step2_temp_bytes + pair_bytes + output_bytes + arena_total);
    recorder.span_exit(root);

    Ok(Output {
        c,
        breakdown,
        peak_bytes,
        pair_buffer,
        conversion: None,
    })
}

/// Multiplies CSR operands by converting to tiled form, returning the same
/// [`Output`] as [`multiply`] with [`Output::conversion`] filled in.
/// Conversion time stays outside the breakdown, matching the paper's timing
/// protocol (which assumes tiled inputs); use [`Output::to_csr`] to recover
/// a CSR product.
///
/// Kept as a thin wrapper over [`multiply_csr_with`] with recording
/// disabled; prefer [`crate::SpGemm::multiply_csr`] in new code.
pub fn multiply_csr<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    config: &Config,
    tracker: &MemTracker,
) -> Result<Output<T>, SpGemmError> {
    multiply_csr_with(a, b, config, tracker, &NullRecorder, 0)
}

/// [`multiply_csr`] with an explicit recorder and job id. The conversions
/// record under a `"convert"` span of the job, preceding the `"job"` span
/// [`multiply_with`] opens.
pub fn multiply_csr_with<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    config: &Config,
    tracker: &MemTracker,
    recorder: &dyn Recorder,
    job: u64,
) -> Result<Output<T>, SpGemmError> {
    let span = recorder.span_enter(job, "convert");
    let (ta, conv_a) = timed_csr_to_tile(a);
    let (tb, conv_b) = timed_csr_to_tile(b);
    recorder.span_exit(span);
    let mut out = multiply_with(&ta, &tb, config, tracker, recorder, job)?;
    out.conversion = Some(ConversionTiming {
        conversion: conv_a.conversion + conv_b.conversion,
        tiles: conv_a.tiles + conv_b.tiles,
        nnz: conv_a.nnz + conv_b.nnz,
    });
    Ok(out)
}

/// Total bytes of a tile matrix, as tracked on the simulated device.
pub fn tile_matrix_bytes<T: Scalar>(m: &TileMatrix<T>) -> usize {
    use tsg_matrix::Footprint;
    m.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step2::matched_pairs;
    use tsg_matrix::{Coo, Dense};

    fn random_csr(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(
                    r,
                    (next() % n as u64) as u32,
                    ((next() % 9) + 1) as f64 * 0.5,
                );
            }
        }
        coo.to_csr()
    }

    #[test]
    fn multiply_matches_dense_oracle() {
        for (n, per_row, seed) in [(16usize, 3usize, 1u64), (50, 4, 2), (130, 6, 3)] {
            let a = random_csr(n, per_row, seed);
            let b = random_csr(n, per_row, seed + 100);
            let c = multiply_csr(&a, &b, &Config::default(), &MemTracker::new())
                .unwrap()
                .to_csr();
            let expect = Dense::from_csr(&a).matmul(&Dense::from_csr(&b)).to_csr();
            assert!(
                c.approx_eq_ignoring_zeros(&expect, 1e-10),
                "mismatch for n={n}"
            );
        }
    }

    #[test]
    fn output_tile_structure_validates() {
        let a = random_csr(100, 5, 7);
        let ta = TileMatrix::from_csr(&a);
        let out = multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        out.c.validate().unwrap();
        assert!(out.breakdown.total().as_nanos() > 0);
        assert!(out.peak_bytes > 0);
    }

    #[test]
    fn all_config_variants_agree() {
        let a = random_csr(80, 5, 11);
        let reference = multiply_csr(&a, &a, &Config::default(), &MemTracker::new())
            .unwrap()
            .to_csr();
        for intersection in [
            crate::IntersectionKind::BinarySearch,
            crate::IntersectionKind::Merge,
            crate::IntersectionKind::Bitmap,
            crate::IntersectionKind::Adaptive,
        ] {
            for accumulator in [
                crate::AccumulatorKind::Adaptive,
                crate::AccumulatorKind::AlwaysSparse,
                crate::AccumulatorKind::AlwaysDense,
            ] {
                for tnnz_threshold in [0, 64, 192, 256] {
                    let cfg = Config::builder()
                        .tnnz_threshold(tnnz_threshold)
                        .intersection(intersection)
                        .accumulator(accumulator)
                        .build();
                    let c = multiply_csr(&a, &a, &cfg, &MemTracker::new())
                        .unwrap()
                        .to_csr();
                    assert!(
                        c.approx_eq_ignoring_zeros(&reference, 1e-10),
                        "variant {cfg:?} disagrees"
                    );
                }
            }
        }
    }

    #[test]
    fn scheduling_variants_agree_bitwise() {
        use tsg_gen::suite::GenSpec;
        // Skewed R-MAT inputs (a Graph500-parameter one and a webbase-like
        // one) on top of the uniform random matrix: binning and pair reuse
        // must be invisible in the output on every input family.
        let inputs: Vec<(&str, Csr<f64>)> = vec![
            ("uniform-random", random_csr(150, 6, 21)),
            (
                "rmat-skewed",
                GenSpec::Rmat {
                    scale: 11,
                    edges: 18_000,
                    mild: false,
                    seed: 7,
                }
                .build(),
            ),
            (
                "webbase-like",
                GenSpec::Rmat {
                    scale: 12,
                    edges: 30_000,
                    mild: false,
                    seed: 112,
                }
                .build(),
            ),
        ];
        for (name, a) in &inputs {
            let ta = TileMatrix::from_csr(a);
            let reference = multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
            for scheduling in [
                crate::Scheduling::PerTile,
                crate::Scheduling::PerTileRow,
                crate::Scheduling::Binned,
                crate::Scheduling::Auto,
            ] {
                for pair_reuse in [true, false] {
                    let cfg = Config {
                        scheduling,
                        pair_reuse,
                        ..Config::default()
                    };
                    let out = multiply(&ta, &ta, &cfg, &MemTracker::new()).unwrap();
                    assert_eq!(
                        reference.c, out.c,
                        "{name}: {scheduling:?}/pair_reuse={pair_reuse} must agree bitwise"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_buffer_matches_recomputed_pairs() {
        let a = random_csr(120, 5, 29);
        let ta = TileMatrix::from_csr(&a);
        let out = multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        let buf = out.pair_buffer.expect("pair_reuse is on by default");
        assert_eq!(buf.tile_count(), out.c.tile_count());
        let b_cols = ta.col_index();
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        let mut decoded = Vec::new();
        for ti in 0..out.c.tile_m {
            for t in out.c.tile_ptr[ti]..out.c.tile_ptr[ti + 1] {
                let tj = out.c.tile_colidx[t] as usize;
                matched_pairs(
                    &ta,
                    &b_cols,
                    ti,
                    tj,
                    crate::IntersectionKind::BinarySearch,
                    &mut scratch,
                    &mut pairs,
                );
                let (_, b_ids) = b_cols.col(tj);
                buf.decode_tile(t, ta.tile_ptr[ti] as u32, b_ids, &mut decoded);
                assert_eq!(decoded, pairs, "tile {t}");
            }
        }
    }

    #[test]
    fn pair_reuse_off_returns_no_buffer() {
        let a = random_csr(64, 4, 5);
        let ta = TileMatrix::from_csr(&a);
        let cfg = Config {
            pair_reuse: false,
            ..Config::default()
        };
        let out = multiply(&ta, &ta, &cfg, &MemTracker::new()).unwrap();
        assert!(out.pair_buffer.is_none());
    }

    #[test]
    fn tracker_returns_to_zero_after_multiply() {
        let a = random_csr(120, 5, 33);
        let ta = TileMatrix::from_csr(&a);
        for scheduling in [
            crate::Scheduling::PerTile,
            crate::Scheduling::PerTileRow,
            crate::Scheduling::Binned,
            crate::Scheduling::Auto,
        ] {
            for pair_reuse in [true, false] {
                let cfg = Config {
                    scheduling,
                    pair_reuse,
                    ..Config::default()
                };
                let tracker = MemTracker::new();
                let out = multiply(&ta, &ta, &cfg, &tracker).unwrap();
                assert!(out.peak_bytes > 0);
                assert_eq!(
                    tracker.current_bytes(),
                    0,
                    "unbalanced alloc/free for {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn intersection_kinds_agree_bitwise_on_skewed_input() {
        use tsg_gen::suite::GenSpec;
        // All four kinds — including the sidecar-backed bitmap kernel and
        // the adaptive selector — must produce bit-identical tile matrices:
        // every kernel emits pairs in ascending A-position order, so even
        // float accumulation order is the same.
        let a: Csr<f64> = GenSpec::Rmat {
            scale: 11,
            edges: 20_000,
            mild: false,
            seed: 41,
        }
        .build();
        let ta = TileMatrix::from_csr(&a);
        let reference = multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        for intersection in [
            crate::IntersectionKind::BinarySearch,
            crate::IntersectionKind::Merge,
            crate::IntersectionKind::Bitmap,
            crate::IntersectionKind::Adaptive,
        ] {
            for pair_reuse in [true, false] {
                let cfg = Config {
                    intersection,
                    pair_reuse,
                    ..Config::default()
                };
                let out = multiply(&ta, &ta, &cfg, &MemTracker::new()).unwrap();
                assert_eq!(
                    reference.c, out.c,
                    "{intersection:?}/pair_reuse={pair_reuse} must agree bitwise"
                );
            }
        }
    }

    #[test]
    fn shared_arena_pool_is_reused_and_invisible_in_output() {
        let a = random_csr(100, 5, 57);
        let ta = TileMatrix::from_csr(&a);
        let reference = multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        let pool = tsg_runtime::ScratchPool::new();
        let tracker = MemTracker::new();
        let first = multiply_with_pool(
            &ta,
            &ta,
            &Config::default(),
            &tracker,
            &NullRecorder,
            0,
            &pool,
        )
        .unwrap();
        assert_eq!(reference.c, first.c);
        assert_eq!(tracker.current_bytes(), 0, "arena charge must balance");
        let created_after_first = pool.created();
        assert!(created_after_first > 0, "the multiply warmed the pool");
        let warmed_bytes = pool.bytes();
        assert!(warmed_bytes >= created_after_first * tsg_runtime::Scratch::BASE_BYTES);
        // Steady state: a second multiply reuses the warmed arenas and
        // produces the identical result.
        let second = multiply_with_pool(
            &ta,
            &ta,
            &Config::default(),
            &tracker,
            &NullRecorder,
            1,
            &pool,
        )
        .unwrap();
        assert_eq!(reference.c, second.c);
        assert_eq!(pool.created(), created_after_first, "no new arenas");
        assert_eq!(pool.bytes(), warmed_bytes, "no scratch growth in reuse");
        assert_eq!(tracker.current_bytes(), 0);
    }

    #[test]
    fn heavy_first_order_is_a_permutation_heaviest_leading() {
        let keys = [0usize, 3, 100, 2, 7, 0];
        let bins = bin_rows_by(keys.len(), 8, |t| keys[t]);
        let order = heavy_first(&bins);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..keys.len() as u32).collect::<Vec<_>>());
        assert_eq!(order[0], 2, "the heaviest tile must be dispatched first");
    }

    #[test]
    fn dealt_order_stays_a_permutation() {
        let order: Vec<u32> = (0..97).rev().collect();
        for ways in [1usize, 2, 7, 96, 97, 200] {
            let dealt = deal(&order, ways);
            let mut sorted = dealt.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..97).collect::<Vec<_>>(), "ways={ways}");
        }
        // Each bucket leads with the heaviest tile it was dealt.
        let dealt = deal(&order, 4);
        assert_eq!(dealt[0], order[0]);
        assert!(deal(&[], 4).is_empty());
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = TileMatrix::from_csr(&Csr::<f64>::identity(32));
        let b = TileMatrix::from_csr(&Csr::<f64>::zero(48, 48));
        let err = multiply(&a, &b, &Config::default(), &MemTracker::new()).unwrap_err();
        assert!(matches!(err, SpGemmError::ShapeMismatch { .. }));
    }

    #[test]
    fn memory_budget_failure_surfaces_as_oom() {
        let a = random_csr(200, 8, 13);
        let ta = TileMatrix::from_csr(&a);
        let tracker = MemTracker::with_budget(1024); // absurdly small
        let err = multiply(&ta, &ta, &Config::default(), &tracker).unwrap_err();
        assert!(matches!(err, SpGemmError::OutOfMemory(_)));
    }

    #[test]
    fn identity_times_matrix_is_identity_map() {
        let a = random_csr(64, 4, 17);
        let i = Csr::<f64>::identity(64);
        let out = multiply_csr(&i, &a, &Config::default(), &MemTracker::new()).unwrap();
        assert!(out.to_csr().approx_eq_ignoring_zeros(&a, 1e-12));
        assert!(out.conversion.is_some(), "CSR entry point times conversion");
        let c2 = multiply_csr(&a, &i, &Config::default(), &MemTracker::new())
            .unwrap()
            .to_csr();
        assert!(c2.approx_eq_ignoring_zeros(&a, 1e-12));
    }

    #[test]
    fn empty_operands_give_empty_product() {
        let z = TileMatrix::from_csr(&Csr::<f64>::zero(32, 32));
        let out = multiply(&z, &z, &Config::default(), &MemTracker::new()).unwrap();
        assert_eq!(out.c.nnz(), 0);
        assert_eq!(out.c.tile_count(), 0);
    }

    #[test]
    fn step1_overestimate_retains_empty_tiles() {
        // A(0, 16) * B(16, 0): step 1 pairs tile (0,1) of A with tile (1,0)
        // of B, predicting C tile (0,0). The product is 1*1 at (0,0) —
        // nonzero. Now use values that cancel: A has two entries whose
        // products into the same C position cancel exactly.
        let mut coo_a = Coo::new(32, 32);
        coo_a.push(0, 16, 1.0);
        coo_a.push(0, 17, 1.0);
        let mut coo_b = Coo::new(32, 32);
        coo_b.push(16, 0, 1.0);
        coo_b.push(17, 0, -1.0);
        let ta = TileMatrix::from_csr(&coo_a.to_csr());
        let tb = TileMatrix::from_csr(&coo_b.to_csr());
        let out = multiply(&ta, &tb, &Config::default(), &MemTracker::new()).unwrap();
        // The tile exists structurally (mask bit set), with a stored value
        // of exactly zero — numeric cancellation is not removed, matching
        // the paper's "no tile-wise cancellation" rule at the numeric level.
        assert_eq!(out.c.tile_count(), 1);
        assert_eq!(out.c.nnz(), 1);
        assert_eq!(out.c.vals[0], 0.0);
        let csr = out.c.to_csr().drop_numeric_zeros();
        assert_eq!(csr.nnz(), 0);
    }
}
