//! The full TileSpGEMM pipeline: step 1 → allocate → step 2 → allocate →
//! step 3, with the per-step breakdown of Figure 10 and device-memory
//! accounting for Figures 7 and 9.

use crate::intersect::MatchedPair;
use crate::step1::tile_structure_spgemm;
use crate::step2::{matched_pairs, symbolic_tile};
use crate::step3::{fill_indices_from_masks, numeric_tile_dense, numeric_tile_sparse};
use crate::{Config, SpGemmError};
use rayon::prelude::*;
use tsg_matrix::{Csr, Scalar, TileMatrix, TILE_DIM};
use tsg_runtime::{split_mut_by_offsets, Breakdown, MemTracker, Step};

/// The result of a TileSpGEMM multiplication.
#[derive(Debug)]
pub struct Output<T> {
    /// The product in sparse-tile form. May retain step-1 tiles that turned
    /// out empty, exactly as the paper allows.
    pub c: TileMatrix<T>,
    /// Per-step wall times (Figure 10's slices).
    pub breakdown: Breakdown,
    /// Peak tracked device bytes during this multiplication.
    pub peak_bytes: usize,
}

/// Runs `C = A·B` on tiled operands with the paper's three-step algorithm.
///
/// The `tracker` carries the device-memory budget; exceeding it aborts with
/// [`SpGemmError::OutOfMemory`] (the paper's Figure-7 `0.00` bars). Pass
/// [`MemTracker::new()`] for unlimited memory.
pub fn multiply<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    config: &Config,
    tracker: &MemTracker,
) -> Result<Output<T>, SpGemmError> {
    if a.ncols != b.nrows {
        return Err(SpGemmError::ShapeMismatch {
            a: (a.nrows, a.ncols),
            b: (b.nrows, b.ncols),
        });
    }
    let mut breakdown = Breakdown::default();
    let peak_start = tracker.peak_bytes();

    // Inputs live on the device for the duration of the product.
    let input_bytes = tile_matrix_bytes(a) + tile_matrix_bytes(b);
    tracker.on_alloc(input_bytes)?;

    // ---- Step 1: tile-structure symbolic SpGEMM (Figure 3). ----
    let c_pattern = breakdown.timed(Step::Step1, || {
        tile_structure_spgemm(
            a.tile_m,
            &a.tile_ptr,
            &a.tile_colidx,
            &b.tile_ptr,
            &b.tile_colidx,
            b.tile_n,
        )
    });
    let num_tiles = c_pattern.nnz();

    // ---- Allocation for step 2 (counted like the paper's cudaMalloc). ----
    // B's column-wise tile index (Algorithm 2's tileColPtr_B/tileRowidx_B)
    // and C's expanded tile-row indices.
    let (b_cols, c_rowidx, mut c_masks, mut c_row_ptr) = breakdown.timed(Step::Alloc, || {
        let b_cols = b.col_index();
        let mut c_rowidx = vec![0u32; num_tiles];
        for ti in 0..c_pattern.rows {
            c_rowidx[c_pattern.ptr[ti]..c_pattern.ptr[ti + 1]].fill(ti as u32);
        }
        let c_masks = vec![0u16; num_tiles * TILE_DIM];
        let c_row_ptr = vec![0u8; num_tiles * TILE_DIM];
        (b_cols, c_rowidx, c_masks, c_row_ptr)
    });
    tracker.on_alloc(
        c_pattern.nnz() * 4
            + b_cols.colptr.len() * 8
            + b_cols.rowidx.len() * 8
            + num_tiles * (4 + TILE_DIM * 3 + 8)
            + 8,
    )?;

    // ---- Step 2: per-tile symbolic (Algorithm 2). ----
    let mut c_counts = vec![0usize; num_tiles];
    let step2_tile = |scratch: &mut Vec<MatchedPair>,
                      pairs: &mut Vec<(u32, u32)>,
                      t: usize,
                      mask_w: &mut [u16],
                      row_ptr_w: &mut [u8],
                      count: &mut usize| {
        let ti = c_rowidx[t] as usize;
        let tj = c_pattern.idx[t] as usize;
        matched_pairs(a, &b_cols, ti, tj, config.intersection, scratch, pairs);
        let sym = symbolic_tile(a, b, pairs);
        mask_w.copy_from_slice(&sym.masks);
        row_ptr_w.copy_from_slice(&sym.row_ptr);
        *count = sym.nnz;
    };
    breakdown.timed(Step::Step2, || match config.scheduling {
        crate::Scheduling::PerTile => {
            c_masks
                .par_chunks_mut(TILE_DIM)
                .zip(c_row_ptr.par_chunks_mut(TILE_DIM))
                .zip(c_counts.par_iter_mut())
                .enumerate()
                .for_each_init(
                    || (Vec::<MatchedPair>::new(), Vec::<(u32, u32)>::new()),
                    |(scratch, pairs), (t, ((mask_w, row_ptr_w), count))| {
                        step2_tile(scratch, pairs, t, mask_w, row_ptr_w, count);
                    },
                );
        }
        crate::Scheduling::PerTileRow => {
            let elem_bounds: Vec<usize> = c_pattern.ptr.iter().map(|&t| t * TILE_DIM).collect();
            let masks_rows = split_mut_by_offsets(&mut c_masks, &elem_bounds);
            let rowptr_rows = split_mut_by_offsets(&mut c_row_ptr, &elem_bounds);
            let counts_rows = split_mut_by_offsets(&mut c_counts, &c_pattern.ptr);
            masks_rows
                .into_par_iter()
                .zip(rowptr_rows)
                .zip(counts_rows)
                .enumerate()
                .for_each_init(
                    || (Vec::<MatchedPair>::new(), Vec::<(u32, u32)>::new()),
                    |(scratch, pairs), (ti, ((masks_r, rowptr_r), counts_r))| {
                        let base = c_pattern.ptr[ti];
                        for (k, count) in counts_r.iter_mut().enumerate() {
                            step2_tile(
                                scratch,
                                pairs,
                                base + k,
                                &mut masks_r[k * TILE_DIM..(k + 1) * TILE_DIM],
                                &mut rowptr_r[k * TILE_DIM..(k + 1) * TILE_DIM],
                                count,
                            );
                        }
                    },
                );
        }
    });

    // Prefix-sum the per-tile counts into the tileNnz offsets — the scan
    // the paper ends step 2 with — then allocate C's nonzero arrays.
    let mut c_offsets = vec![0usize; num_tiles + 1];
    let nnz_c = breakdown.timed(Step::Step2, || {
        tsg_runtime::exclusive_scan_to(&c_counts, &mut c_offsets)
    });

    let (mut c_row_idx, mut c_col_idx, mut c_vals) = breakdown.timed(Step::Alloc, || {
        tracker.on_alloc(nnz_c * (2 + std::mem::size_of::<T>()) + (num_tiles + 1) * 8)?;
        Ok::<_, SpGemmError>((
            tracker.timed_alloc(|| vec![0u8; nnz_c]),
            tracker.timed_alloc(|| vec![0u8; nnz_c]),
            tracker.timed_alloc(|| vec![T::ZERO; nnz_c]),
        ))
    })?;

    // ---- Step 3: numeric (Algorithm 3). ----
    let step3_tile = |scratch: &mut Vec<MatchedPair>,
                      pairs: &mut Vec<(u32, u32)>,
                      t: usize,
                      row_idx_w: &mut [u8],
                      col_idx_w: &mut [u8],
                      vals_w: &mut [T]| {
        let ti = c_rowidx[t] as usize;
        let tj = c_pattern.idx[t] as usize;
        let masks = &c_masks[t * TILE_DIM..(t + 1) * TILE_DIM];
        let row_ptr = &c_row_ptr[t * TILE_DIM..(t + 1) * TILE_DIM];
        let filled = fill_indices_from_masks(masks, row_idx_w, col_idx_w);
        debug_assert_eq!(filled, vals_w.len());
        matched_pairs(a, &b_cols, ti, tj, config.intersection, scratch, pairs);
        if config
            .accumulator
            .use_dense(vals_w.len(), config.tnnz_threshold)
        {
            numeric_tile_dense(a, b, pairs, masks, vals_w);
        } else {
            numeric_tile_sparse(a, b, pairs, masks, row_ptr, vals_w);
        }
    };
    breakdown.timed(Step::Step3, || match config.scheduling {
        crate::Scheduling::PerTile => {
            let row_idx_w = split_mut_by_offsets(&mut c_row_idx, &c_offsets);
            let col_idx_w = split_mut_by_offsets(&mut c_col_idx, &c_offsets);
            let vals_w = split_mut_by_offsets(&mut c_vals, &c_offsets);
            row_idx_w
                .into_par_iter()
                .zip(col_idx_w)
                .zip(vals_w)
                .enumerate()
                .for_each_init(
                    || (Vec::<MatchedPair>::new(), Vec::<(u32, u32)>::new()),
                    |(scratch, pairs), (t, ((row_idx_w, col_idx_w), vals_w))| {
                        step3_tile(scratch, pairs, t, row_idx_w, col_idx_w, vals_w);
                    },
                );
        }
        crate::Scheduling::PerTileRow => {
            let row_bounds: Vec<usize> =
                c_pattern.ptr.iter().map(|&t| c_offsets[t]).collect();
            let row_idx_rows = split_mut_by_offsets(&mut c_row_idx, &row_bounds);
            let col_idx_rows = split_mut_by_offsets(&mut c_col_idx, &row_bounds);
            let vals_rows = split_mut_by_offsets(&mut c_vals, &row_bounds);
            row_idx_rows
                .into_par_iter()
                .zip(col_idx_rows)
                .zip(vals_rows)
                .enumerate()
                .for_each_init(
                    || (Vec::<MatchedPair>::new(), Vec::<(u32, u32)>::new()),
                    |(scratch, pairs), (ti, ((ri_r, ci_r), vals_r))| {
                        let tile_base = c_pattern.ptr[ti];
                        let elem_base = c_offsets[tile_base];
                        for t in tile_base..c_pattern.ptr[ti + 1] {
                            let lo = c_offsets[t] - elem_base;
                            let hi = c_offsets[t + 1] - elem_base;
                            // Split the row window into this tile's slice.
                            step3_tile(
                                scratch,
                                pairs,
                                t,
                                &mut ri_r[lo..hi],
                                &mut ci_r[lo..hi],
                                &mut vals_r[lo..hi],
                            );
                        }
                    },
                );
        }
    });

    // Assemble the output structure.
    let c = TileMatrix {
        nrows: a.nrows,
        ncols: b.ncols,
        tile_m: a.tile_m,
        tile_n: b.tile_n,
        tile_ptr: c_pattern.ptr,
        tile_colidx: c_pattern.idx,
        tile_nnz: c_offsets,
        row_ptr: c_row_ptr,
        row_idx: c_row_idx,
        col_idx: c_col_idx,
        vals: c_vals,
        masks: c_masks,
    };

    let peak_bytes = tracker.peak_bytes().max(peak_start);
    // Inputs and temporaries are released at the end of the operation.
    tracker.on_free(input_bytes);

    Ok(Output {
        c,
        breakdown,
        peak_bytes,
    })
}

/// Convenience wrapper: multiplies CSR operands by converting to tiled form
/// (conversion excluded from the breakdown, matching the paper's timing
/// protocol, which assumes tiled inputs), returning a CSR product.
pub fn multiply_csr<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    config: &Config,
    tracker: &MemTracker,
) -> Result<(Csr<T>, Breakdown), SpGemmError> {
    let ta = TileMatrix::from_csr(a);
    let tb = TileMatrix::from_csr(b);
    let out = multiply(&ta, &tb, config, tracker)?;
    Ok((out.c.to_csr().drop_numeric_zeros(), out.breakdown))
}

/// Total bytes of a tile matrix, as tracked on the simulated device.
pub fn tile_matrix_bytes<T: Scalar>(m: &TileMatrix<T>) -> usize {
    use tsg_matrix::Footprint;
    m.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::{Coo, Dense};

    fn random_csr(n: usize, per_row: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for _ in 0..per_row {
                coo.push(r, (next() % n as u64) as u32, ((next() % 9) + 1) as f64 * 0.5);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn multiply_matches_dense_oracle() {
        for (n, per_row, seed) in [(16usize, 3usize, 1u64), (50, 4, 2), (130, 6, 3)] {
            let a = random_csr(n, per_row, seed);
            let b = random_csr(n, per_row, seed + 100);
            let (c, _) = multiply_csr(&a, &b, &Config::default(), &MemTracker::new()).unwrap();
            let expect = Dense::from_csr(&a).matmul(&Dense::from_csr(&b)).to_csr();
            assert!(
                c.approx_eq_ignoring_zeros(&expect, 1e-10),
                "mismatch for n={n}"
            );
        }
    }

    #[test]
    fn output_tile_structure_validates() {
        let a = random_csr(100, 5, 7);
        let ta = TileMatrix::from_csr(&a);
        let out = multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        out.c.validate().unwrap();
        assert!(out.breakdown.total().as_nanos() > 0);
        assert!(out.peak_bytes > 0);
    }

    #[test]
    fn all_config_variants_agree() {
        let a = random_csr(80, 5, 11);
        let reference = multiply_csr(&a, &a, &Config::default(), &MemTracker::new())
            .unwrap()
            .0;
        for intersection in [crate::IntersectionKind::BinarySearch, crate::IntersectionKind::Merge]
        {
            for accumulator in [
                crate::AccumulatorKind::Adaptive,
                crate::AccumulatorKind::AlwaysSparse,
                crate::AccumulatorKind::AlwaysDense,
            ] {
                for tnnz_threshold in [0, 64, 192, 256] {
                    let cfg = Config {
                        tnnz_threshold,
                        intersection,
                        accumulator,
                        ..Config::default()
                    };
                    let c = multiply_csr(&a, &a, &cfg, &MemTracker::new()).unwrap().0;
                    assert!(
                        c.approx_eq_ignoring_zeros(&reference, 1e-10),
                        "variant {cfg:?} disagrees"
                    );
                }
            }
        }
    }

    #[test]
    fn scheduling_variants_agree_bitwise() {
        let a = random_csr(150, 6, 21);
        let ta = TileMatrix::from_csr(&a);
        let per_tile = multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        let cfg_rows = Config {
            scheduling: crate::Scheduling::PerTileRow,
            ..Config::default()
        };
        let per_row = multiply(&ta, &ta, &cfg_rows, &MemTracker::new()).unwrap();
        assert_eq!(per_tile.c, per_row.c, "schedulings must agree bitwise");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = TileMatrix::from_csr(&Csr::<f64>::identity(32));
        let b = TileMatrix::from_csr(&Csr::<f64>::zero(48, 48));
        let err = multiply(&a, &b, &Config::default(), &MemTracker::new()).unwrap_err();
        assert!(matches!(err, SpGemmError::ShapeMismatch { .. }));
    }

    #[test]
    fn memory_budget_failure_surfaces_as_oom() {
        let a = random_csr(200, 8, 13);
        let ta = TileMatrix::from_csr(&a);
        let tracker = MemTracker::with_budget(1024); // absurdly small
        let err = multiply(&ta, &ta, &Config::default(), &tracker).unwrap_err();
        assert!(matches!(err, SpGemmError::OutOfMemory(_)));
    }

    #[test]
    fn identity_times_matrix_is_identity_map() {
        let a = random_csr(64, 4, 17);
        let i = Csr::<f64>::identity(64);
        let (c, _) = multiply_csr(&i, &a, &Config::default(), &MemTracker::new()).unwrap();
        assert!(c.approx_eq_ignoring_zeros(&a, 1e-12));
        let (c2, _) = multiply_csr(&a, &i, &Config::default(), &MemTracker::new()).unwrap();
        assert!(c2.approx_eq_ignoring_zeros(&a, 1e-12));
    }

    #[test]
    fn empty_operands_give_empty_product() {
        let z = TileMatrix::from_csr(&Csr::<f64>::zero(32, 32));
        let out = multiply(&z, &z, &Config::default(), &MemTracker::new()).unwrap();
        assert_eq!(out.c.nnz(), 0);
        assert_eq!(out.c.tile_count(), 0);
    }

    #[test]
    fn step1_overestimate_retains_empty_tiles() {
        // A(0, 16) * B(16, 0): step 1 pairs tile (0,1) of A with tile (1,0)
        // of B, predicting C tile (0,0). The product is 1*1 at (0,0) —
        // nonzero. Now use values that cancel: A has two entries whose
        // products into the same C position cancel exactly.
        let mut coo_a = Coo::new(32, 32);
        coo_a.push(0, 16, 1.0);
        coo_a.push(0, 17, 1.0);
        let mut coo_b = Coo::new(32, 32);
        coo_b.push(16, 0, 1.0);
        coo_b.push(17, 0, -1.0);
        let ta = TileMatrix::from_csr(&coo_a.to_csr());
        let tb = TileMatrix::from_csr(&coo_b.to_csr());
        let out = multiply(&ta, &tb, &Config::default(), &MemTracker::new()).unwrap();
        // The tile exists structurally (mask bit set), with a stored value
        // of exactly zero — numeric cancellation is not removed, matching
        // the paper's "no tile-wise cancellation" rule at the numeric level.
        assert_eq!(out.c.tile_count(), 1);
        assert_eq!(out.c.nnz(), 1);
        assert_eq!(out.c.vals[0], 0.0);
        let csr = out.c.to_csr().drop_numeric_zeros();
        assert_eq!(csr.nnz(), 0);
    }
}
