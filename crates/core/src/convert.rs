//! Timed CSR → tiled conversion, for Figure 12.
//!
//! The paper measures the cost of converting a CSR matrix into the tiled
//! structure and shows it stays below roughly ten single SpGEMM runtimes —
//! acceptable because pipelines like AMG reuse the tiled form across many
//! products. This module wraps [`TileMatrix::from_csr`] with the timing the
//! Figure-12 harness reports.

use std::time::Duration;
use tsg_matrix::{Csr, Scalar, TileMatrix};
use tsg_runtime::time;

/// Conversion timing record for one matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConversionTiming {
    /// Wall time of the CSR → tiled conversion.
    pub conversion: Duration,
    /// Number of tiles produced.
    pub tiles: usize,
    /// Nonzeros converted.
    pub nnz: usize,
}

/// Converts and times.
pub fn timed_csr_to_tile<T: Scalar>(csr: &Csr<T>) -> (TileMatrix<T>, ConversionTiming) {
    let (tiled, conversion) = time(|| TileMatrix::from_csr(csr));
    let timing = ConversionTiming {
        conversion,
        tiles: tiled.tile_count(),
        nnz: tiled.nnz(),
    };
    (tiled, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::Coo;

    #[test]
    fn timing_reports_structure_counts() {
        let mut coo = Coo::new(64, 64);
        for i in 0..64u32 {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 17) % 64, 2.0);
        }
        let csr = coo.to_csr();
        let (tiled, timing) = timed_csr_to_tile(&csr);
        assert_eq!(timing.nnz, csr.nnz());
        assert_eq!(timing.tiles, tiled.tile_count());
        assert_eq!(tiled.to_csr(), csr);
    }
}
