#![warn(missing_docs)]

//! # tilespgemm-core — the paper's tiled SpGEMM algorithm
//!
//! Implements `C = A·B` for matrices in the sparse-tile format
//! ([`tsg_matrix::TileMatrix`]), following the three-step structure of
//! §3.3 of *TileSpGEMM: A Tiled Algorithm for Parallel Sparse General
//! Matrix-Matrix Multiplication on GPUs* (PPoPP '22):
//!
//! 1. [`step1`] — a symbolic SpGEMM on the high-level tile layout
//!    `C' = A'·B'` yields the (possibly overestimated) set of non-empty
//!    tiles of `C`;
//! 2. [`step2`] — per tile of `C`: binary-search set intersection of `A`'s
//!    tile row with `B`'s tile column finds the matched tile pairs, and
//!    OR-ing `B`'s row bitmasks through `A`'s nonzeros produces `C`'s tile
//!    masks, local row pointers, and nonzero counts, after which `C` is
//!    allocated;
//! 3. [`step3`] — per tile of `C`: the numeric phase accumulates
//!    intermediate products through an *adaptive* accumulator — a rank-based
//!    sparse accumulator for tiles with ≤ `tnnz` = 192 nonzeros, a dense
//!    256-slot accumulator above.
//!
//! One Rayon task plays the role of the paper's one warp per tile; all
//! per-tile state lives in fixed-size stack buffers, preserving the paper's
//! "no global intermediate space" property. [`pipeline::multiply`] wires the
//! steps together with the per-step breakdown (Figure 10) and device-memory
//! accounting (Figures 7/9) of the evaluation.
//!
//! ```
//! use tsg_matrix::{Csr, TileMatrix};
//! use tilespgemm_core::{multiply, Config};
//! use tsg_runtime::MemTracker;
//!
//! let a = TileMatrix::from_csr(&Csr::<f64>::identity(64));
//! let out = multiply(&a, &a, &Config::default(), &MemTracker::new()).unwrap();
//! assert_eq!(out.c.nnz(), 64);
//! ```

pub mod add;
pub mod context;
pub mod convert;
pub mod intersect;
pub mod masked;
pub mod maskops;
pub mod pipeline;
pub mod sample;
pub mod simd;
pub mod spmv;
pub mod step1;
pub mod step2;
pub mod step3;

pub use add::add;
pub use context::{SpGemm, SpGemmBuilder};
pub use convert::{timed_csr_to_tile, ConversionTiming};
pub use intersect::IntersectionKind;
pub use masked::multiply_masked;
pub use pipeline::{
    multiply, multiply_csr, multiply_csr_with, multiply_with, multiply_with_pool, Output,
};
pub use simd::{SimdLevel, SimdPolicy};
pub use spmv::{spmv, spmv_masked};
pub use step2::PairBuffer;
pub use step3::AccumulatorKind;

/// Tuning knobs of the algorithm. `Config::default()` is the paper's
/// configuration; the other variants exist for the ablation benches.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`Config::default`] or [`Config::builder`], so future knobs are not
/// semver breaks.
///
/// ```
/// use tilespgemm_core::{Config, Scheduling};
/// let cfg = Config::builder()
///     .scheduling(Scheduling::Binned)
///     .pair_reuse(false)
///     .build();
/// assert_eq!(cfg.tnnz_threshold, 192); // unset fields keep the paper values
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Config {
    /// Sparse/dense accumulator switch-over: tiles with more stored nonzeros
    /// than this use the dense accumulator. The paper sets 192 (75% of 256).
    pub tnnz_threshold: usize,
    /// Set-intersection strategy for step 2. The paper fixes binary search
    /// (which it found faster than merging); the default here is
    /// [`IntersectionKind::Adaptive`], which picks binary search, merge, or
    /// the bitmap kernel per tile from list lengths and sidecar density —
    /// a documented departure in the spirit of [`Config::pair_reuse`]. Set
    /// [`IntersectionKind::BinarySearch`] for the paper-faithful kernel.
    pub intersection: IntersectionKind,
    /// Accumulator policy for step 3 (paper: adaptive).
    pub accumulator: AccumulatorKind,
    /// Task granularity for steps 2 and 3 (paper: one warp per tile; the
    /// per-tile-row variant exists to demonstrate the load-imbalance the
    /// paper's issue #1 attributes to row-level decomposition).
    pub scheduling: Scheduling,
    /// Persist the matched-pair lists found by step 2 in a compact CSR-like
    /// buffer and reuse them in step 3, instead of re-running the set
    /// intersection per tile as the paper's kernels do. On by default; turn
    /// off to get the paper-faithful recompute path for ablation benches.
    pub pair_reuse: bool,
    /// Sampled-estimator hints (see [`crate::sample`]) an admission layer
    /// can pass down so the pipeline pre-sizes its buffers to the measured
    /// product instead of growing them on demand. Purely an allocation
    /// hint: the output is bit-identical with or without it.
    pub est_hints: Option<EstHints>,
    /// Step-3 numeric-kernel policy (see [`crate::simd`]): runtime-detected
    /// vector kernels plus the dense-tile fast path under `Auto` (default),
    /// or a pinned path for ablations. Every policy is bit-identical to the
    /// scalar reference — the tsg-check oracle enforces it.
    pub simd: SimdPolicy,
}

/// What a sampled pre-pass predicted about the product — the allocation
/// hints [`Config::est_hints`] carries into the pipeline. All-integer and
/// `Eq` so `Config` stays comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EstHints {
    /// Predicted output nonzeros (band upper edge — sizing, not truth).
    pub nnz_c: usize,
    /// Predicted surviving `(A_ik, B_kj)` tile pairs.
    pub pairs: usize,
    /// Predicted non-empty output tiles.
    pub tiles_c: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            tnnz_threshold: 192,
            intersection: IntersectionKind::Adaptive,
            accumulator: AccumulatorKind::Adaptive,
            scheduling: Scheduling::PerTile,
            pair_reuse: true,
            est_hints: None,
            simd: SimdPolicy::Auto,
        }
    }
}

impl Config {
    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }
}

/// Builder for [`Config`]; unset fields keep the paper defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// Sets the sparse/dense accumulator switch-over (paper: 192).
    pub fn tnnz_threshold(mut self, v: usize) -> Self {
        self.config.tnnz_threshold = v;
        self
    }

    /// Sets the step-2 set-intersection strategy.
    pub fn intersection(mut self, v: IntersectionKind) -> Self {
        self.config.intersection = v;
        self
    }

    /// Sets the step-3 accumulator policy.
    pub fn accumulator(mut self, v: AccumulatorKind) -> Self {
        self.config.accumulator = v;
        self
    }

    /// Sets the task granularity for steps 2 and 3.
    pub fn scheduling(mut self, v: Scheduling) -> Self {
        self.config.scheduling = v;
        self
    }

    /// Enables or disables matched-pair reuse between steps 2 and 3.
    pub fn pair_reuse(mut self, v: bool) -> Self {
        self.config.pair_reuse = v;
        self
    }

    /// Attaches sampled-estimator pre-sizing hints (see [`EstHints`]).
    pub fn est_hints(mut self, v: Option<EstHints>) -> Self {
        self.config.est_hints = v;
        self
    }

    /// Sets the step-3 numeric-kernel policy (see [`SimdPolicy`]).
    pub fn simd(mut self, v: SimdPolicy) -> Self {
        self.config.simd = v;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> Config {
        self.config
    }
}

/// Task granularity for the per-tile phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Scheduling {
    /// One parallel task per output tile — the paper's one-warp-per-tile
    /// mapping, whose bounded work is the load-balancing argument of §1.
    PerTile,
    /// One parallel task per output *tile row* — a coarser, imbalance-prone
    /// decomposition kept for the scheduling ablation bench.
    PerTileRow,
    /// Per-tile tasks dispatched heaviest bucket first: tiles are binned by
    /// a cheap spECK-style work estimate (for step 3: tile nnz plus matched
    /// pairs × average tile density of the A row) and the self-scheduling
    /// chunk queue consumes the heaviest bins first, so giant tail tiles
    /// cannot defeat work stealing.
    Binned,
    /// Picks [`Scheduling::Binned`] when the worker count and tile count
    /// are both large enough for binning's extra pass to pay off, and
    /// [`Scheduling::PerTile`] otherwise (small problems or low
    /// parallelism, where binning is pure overhead).
    Auto,
}

/// Errors surfaced by the SpGEMM pipelines in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpGemmError {
    /// The simulated device memory budget was exceeded — the condition the
    /// paper's Figure 7 reports as a `0.00` bar.
    OutOfMemory(tsg_runtime::tracker::BudgetExceeded),
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Shape of the left operand.
        a: (usize, usize),
        /// Shape of the right operand.
        b: (usize, usize),
    },
}

impl SpGemmError {
    /// A stable machine-readable code for this error, used by service
    /// front ends (the engine's JSON protocol) instead of parsing the
    /// human-oriented `Display` text.
    pub fn code(&self) -> &'static str {
        match self {
            SpGemmError::OutOfMemory(_) => "out_of_memory",
            SpGemmError::ShapeMismatch { .. } => "shape_mismatch",
        }
    }
}

impl std::fmt::Display for SpGemmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpGemmError::OutOfMemory(_) => write!(f, "device memory budget exceeded"),
            SpGemmError::ShapeMismatch { a, b } => {
                write!(f, "cannot multiply {}x{} by {}x{}", a.0, a.1, b.0, b.1)
            }
        }
    }
}

impl std::error::Error for SpGemmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpGemmError::OutOfMemory(e) => Some(e),
            SpGemmError::ShapeMismatch { .. } => None,
        }
    }
}

impl From<tsg_runtime::tracker::BudgetExceeded> for SpGemmError {
    fn from(e: tsg_runtime::tracker::BudgetExceeded) -> Self {
        SpGemmError::OutOfMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_papers() {
        let c = Config::default();
        assert_eq!(c.tnnz_threshold, 192);
        // Two deliberate departures from the paper (DESIGN.md §7, §11):
        // matched pairs found in step 2 are reused in step 3, and the
        // intersection kernel is chosen adaptively per tile. Both are
        // bitwise-invisible in the output.
        assert_eq!(c.intersection, IntersectionKind::Adaptive);
        assert_eq!(c.accumulator, AccumulatorKind::Adaptive);
        assert_eq!(c.scheduling, Scheduling::PerTile);
        assert!(c.pair_reuse);
        // Third bitwise-invisible departure (DESIGN.md §15): the numeric
        // kernels dispatch to runtime-detected SIMD lanes by default.
        assert_eq!(c.simd, SimdPolicy::Auto);
    }

    #[test]
    fn builder_overrides_only_named_fields() {
        let cfg = Config::builder()
            .scheduling(Scheduling::Binned)
            .pair_reuse(false)
            .build();
        assert_eq!(cfg.scheduling, Scheduling::Binned);
        assert!(!cfg.pair_reuse);
        // Everything unset keeps the paper defaults.
        assert_eq!(cfg.tnnz_threshold, 192);
        assert_eq!(cfg.intersection, IntersectionKind::Adaptive);
        assert_eq!(cfg.accumulator, AccumulatorKind::Adaptive);
        assert_eq!(Config::builder().build(), Config::default());
    }

    #[test]
    fn error_display() {
        let e = SpGemmError::ShapeMismatch {
            a: (2, 3),
            b: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn error_codes_and_source_chain() {
        use std::error::Error;
        let shape = SpGemmError::ShapeMismatch {
            a: (2, 3),
            b: (4, 5),
        };
        assert_eq!(shape.code(), "shape_mismatch");
        assert!(shape.source().is_none());

        let inner = tsg_runtime::tracker::BudgetExceeded {
            requested: 64,
            in_use: 100,
            budget: 128,
        };
        let oom = SpGemmError::OutOfMemory(inner.clone());
        assert_eq!(oom.code(), "out_of_memory");
        // The cause is reachable through the standard source() chain, so a
        // front end can serialize it instead of formatting debug strings.
        let cause = oom.source().expect("OutOfMemory carries its cause");
        assert_eq!(cause.to_string(), inner.to_string());
        assert!(cause.to_string().contains("requested 64"));
    }
}
