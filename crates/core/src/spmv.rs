//! Sparse matrix–vector multiplication on the tiled format.
//!
//! The paper's research group developed TileSpMV (IPDPS '21, cited as \[94\])
//! on the same 16×16 sparse-tile structure; a downstream user who keeps
//! matrices tiled for repeated SpGEMMs (the AMG pipeline of §4.6) also needs
//! `y = A·x` without converting back to CSR. This kernel parallelises over
//! tile rows — each task owns a 16-slot accumulator strip covering its tile
//! row, walking the row's tiles left to right.

use rayon::prelude::*;
use tsg_matrix::{Scalar, TileMatrix, TILE_DIM};

/// Computes `y = A·x` on a tiled matrix.
///
/// # Panics
/// Panics if `x.len() != a.ncols`.
pub fn spmv<T: Scalar>(a: &TileMatrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(x.len(), a.ncols, "operand length mismatch");
    let mut y = vec![T::ZERO; a.nrows];
    let chunk = TILE_DIM;
    y.par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(ti, y_strip)| {
            let mut acc = [T::ZERO; TILE_DIM];
            for t in a.tile_row_range(ti) {
                let tile = a.tile(t);
                let col_base = a.tile_colidx[t] as usize * TILE_DIM;
                for (r, c, v) in tile.iter() {
                    acc[r as usize] += v * x[col_base + c as usize];
                }
            }
            y_strip.copy_from_slice(&acc[..y_strip.len()]);
        });
    y
}

/// Computes `y = A·x` using the row bitmasks to skip empty rows quickly —
/// profitable on hypersparse tilings where most tile rows are short.
pub fn spmv_masked<T: Scalar>(a: &TileMatrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(x.len(), a.ncols, "operand length mismatch");
    let mut y = vec![T::ZERO; a.nrows];
    y.par_chunks_mut(TILE_DIM)
        .enumerate()
        .for_each(|(ti, y_strip)| {
            let mut acc = [T::ZERO; TILE_DIM];
            for t in a.tile_row_range(ti) {
                let tile = a.tile(t);
                let col_base = a.tile_colidx[t] as usize * TILE_DIM;
                for (r, slot) in acc.iter_mut().enumerate() {
                    if tile.masks[r] == 0 {
                        continue;
                    }
                    let mut sum = T::ZERO;
                    for k in tile.row_range(r) {
                        sum += tile.vals[k] * x[col_base + tile.col_idx[k] as usize];
                    }
                    *slot += sum;
                }
            }
            y_strip.copy_from_slice(&acc[..y_strip.len()]);
        });
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::{Coo, Csr};

    fn random(n: usize, m: usize, nnz: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, m);
        for _ in 0..nnz {
            coo.push(
                (next() % n as u64) as u32,
                (next() % m as u64) as u32,
                ((next() % 15) as f64) - 7.0,
            );
        }
        coo.to_csr()
    }

    #[test]
    fn matches_csr_spmv() {
        for (n, m, nnz, seed) in [(40usize, 60usize, 300usize, 1u64), (130, 90, 1000, 2)] {
            let a = random(n, m, nnz, seed);
            let tiled = tsg_matrix::TileMatrix::from_csr(&a);
            let x: Vec<f64> = (0..m).map(|i| (i % 7) as f64 - 3.0).collect();
            let want = a.spmv(&x);
            let got = spmv(&tiled, &x);
            let got_masked = spmv_masked(&tiled, &x);
            for (i, &w) in want.iter().enumerate() {
                assert!((w - got[i]).abs() < 1e-10, "row {i}");
                assert!((w - got_masked[i]).abs() < 1e-10, "masked row {i}");
            }
        }
    }

    #[test]
    fn empty_matrix_gives_zero_vector() {
        let a = Csr::<f64>::zero(20, 20);
        let tiled = tsg_matrix::TileMatrix::from_csr(&a);
        assert_eq!(spmv(&tiled, &[1.0; 20]), vec![0.0; 20]);
    }

    #[test]
    fn identity_is_identity_map() {
        let tiled = tsg_matrix::TileMatrix::from_csr(&Csr::<f64>::identity(50));
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(spmv(&tiled, &x), x);
        assert_eq!(spmv_masked(&tiled, &x), x);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_operand_length_panics() {
        let tiled = tsg_matrix::TileMatrix::from_csr(&Csr::<f64>::identity(8));
        spmv(&tiled, &[1.0; 9]);
    }
}
