//! Element-wise addition on the tiled format.
//!
//! AMG pipelines interleave SpGEMMs with sums (`A + σI`, coarse-operator
//! corrections), and the paper's premise is that matrices *stay* tiled
//! between kernels. Tile-level addition is a two-level merge: union the two
//! tile layouts per tile row, then OR the row masks and merge the nonzeros
//! of coinciding tiles — all bounded per-tile state, like the SpGEMM steps.

use rayon::prelude::*;
use tsg_matrix::{Scalar, TileMatrix, TILE_DIM};

/// Computes `C = alpha·A + beta·B` for tiled operands of identical shape.
///
/// Entries cancelling to exact zero are kept as explicit zeros (structural
/// union), mirroring the SpGEMM kernels' no-cancellation rule; use
/// [`TileMatrix::to_csr`] + [`tsg_matrix::Csr::drop_numeric_zeros`] to
/// compact.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add<T: Scalar>(alpha: T, a: &TileMatrix<T>, beta: T, b: &TileMatrix<T>) -> TileMatrix<T> {
    assert_eq!(
        (a.nrows, a.ncols),
        (b.nrows, b.ncols),
        "shape mismatch in tiled add"
    );

    // Pass 1 (parallel over tile rows): union of the tile layouts, plus per
    // output tile the (a_tile, b_tile) sources and the merged nnz.
    struct RowPlan {
        cols: Vec<u32>,
        sources: Vec<(Option<u32>, Option<u32>)>,
        nnz: Vec<u32>,
        masks: Vec<[u16; TILE_DIM]>,
    }
    let plans: Vec<RowPlan> = (0..a.tile_m)
        .into_par_iter()
        .map(|ti| {
            let (ar, br) = (a.tile_row_range(ti), b.tile_row_range(ti));
            let acols = &a.tile_colidx[ar.clone()];
            let bcols = &b.tile_colidx[br.clone()];
            let mut plan = RowPlan {
                cols: Vec::with_capacity(acols.len() + bcols.len()),
                sources: Vec::new(),
                nnz: Vec::new(),
                masks: Vec::new(),
            };
            let (mut p, mut q) = (0usize, 0usize);
            while p < acols.len() || q < bcols.len() {
                let take_a = q >= bcols.len() || (p < acols.len() && acols[p] < bcols[q]);
                let take_b = p >= acols.len() || (q < bcols.len() && bcols[q] < acols[p]);
                let (col, src) = if take_a {
                    let t = (ar.start + p) as u32;
                    p += 1;
                    (acols[p - 1], (Some(t), None))
                } else if take_b {
                    let t = (br.start + q) as u32;
                    q += 1;
                    (bcols[q - 1], (None, Some(t)))
                } else {
                    let (ta, tb) = ((ar.start + p) as u32, (br.start + q) as u32);
                    p += 1;
                    q += 1;
                    (acols[p - 1], (Some(ta), Some(tb)))
                };
                let mut masks = [0u16; TILE_DIM];
                if let (Some(t), _) = src {
                    for (r, m) in masks.iter_mut().enumerate() {
                        *m |= a.tile(t as usize).masks[r];
                    }
                }
                if let (_, Some(t)) = src {
                    for (r, m) in masks.iter_mut().enumerate() {
                        *m |= b.tile(t as usize).masks[r];
                    }
                }
                let nnz: u32 = masks.iter().map(|m| m.count_ones()).sum();
                plan.cols.push(col);
                plan.sources.push(src);
                plan.nnz.push(nnz);
                plan.masks.push(masks);
            }
            plan
        })
        .collect();

    // Assemble the high-level structure.
    let mut tile_ptr = vec![0usize; a.tile_m + 1];
    for (ti, plan) in plans.iter().enumerate() {
        tile_ptr[ti + 1] = tile_ptr[ti] + plan.cols.len();
    }
    let num_tiles = tile_ptr[a.tile_m];
    let mut tile_colidx = vec![0u32; num_tiles];
    let mut tile_nnz = vec![0usize; num_tiles + 1];
    let mut masks = vec![0u16; num_tiles * TILE_DIM];
    {
        let mut t = 0usize;
        for plan in &plans {
            for k in 0..plan.cols.len() {
                tile_colidx[t] = plan.cols[k];
                tile_nnz[t + 1] = plan.nnz[k] as usize;
                masks[t * TILE_DIM..(t + 1) * TILE_DIM].copy_from_slice(&plan.masks[k]);
                t += 1;
            }
        }
    }
    for t in 0..num_tiles {
        tile_nnz[t + 1] += tile_nnz[t];
    }
    let nnz = tile_nnz[num_tiles];

    // Pass 2: fill per-tile arrays (parallel over output tiles).
    let mut row_ptr = vec![0u8; num_tiles * TILE_DIM];
    let mut row_idx = vec![0u8; nnz];
    let mut col_idx = vec![0u8; nnz];
    let mut vals = vec![T::ZERO; nnz];
    let sources_flat: Vec<(Option<u32>, Option<u32>)> = plans
        .iter()
        .flat_map(|p| p.sources.iter().copied())
        .collect();
    {
        let windows = tsg_runtime::split_mut_by_offsets(&mut vals, &tile_nnz);
        let ri_w = tsg_runtime::split_mut_by_offsets(&mut row_idx, &tile_nnz);
        let ci_w = tsg_runtime::split_mut_by_offsets(&mut col_idx, &tile_nnz);
        let rp_w: Vec<&mut [u8]> = row_ptr.chunks_mut(TILE_DIM).collect();
        windows
            .into_par_iter()
            .zip(ri_w)
            .zip(ci_w)
            .zip(rp_w)
            .enumerate()
            .for_each(|(t, (((vals_w, ri_w), ci_w), rp_w))| {
                let tile_masks = &masks[t * TILE_DIM..(t + 1) * TILE_DIM];
                // Indices from the union masks.
                crate::step3::fill_indices_from_masks(tile_masks, ri_w, ci_w);
                let mut k = 0usize;
                for (r, &m) in tile_masks.iter().enumerate() {
                    rp_w[r] = k as u8;
                    k += m.count_ones() as usize;
                }
                // Scatter: for each source tile, add its values at the rank
                // positions of the union masks.
                let mut scatter = |tile: tsg_matrix::TileView<'_, T>, scale: T| {
                    for (r, c, v) in tile.iter() {
                        let m = tile_masks[r as usize];
                        let rank = (m & ((1u16 << c) - 1)).count_ones() as usize;
                        let base = rp_w[r as usize] as usize;
                        vals_w[base + rank] += scale * v;
                    }
                };
                let (sa, sb) = sources_flat[t];
                if let Some(ta) = sa {
                    scatter(a.tile(ta as usize), alpha);
                }
                if let Some(tb) = sb {
                    scatter(b.tile(tb as usize), beta);
                }
            });
    }

    let out = TileMatrix {
        nrows: a.nrows,
        ncols: a.ncols,
        tile_m: a.tile_m,
        tile_n: a.tile_n,
        tile_ptr,
        tile_colidx,
        tile_nnz,
        row_ptr,
        row_idx,
        col_idx,
        vals,
        masks,
    };
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_matrix::{ops, Coo, Csr};

    fn random(n: usize, nnz: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for _ in 0..nnz {
            coo.push(
                (next() % n as u64) as u32,
                (next() % n as u64) as u32,
                ((next() % 9) + 1) as f64 * 0.5,
            );
        }
        coo.to_csr()
    }

    #[test]
    fn matches_csr_add() {
        for seed in [1u64, 5, 9] {
            let a = random(70, 400, seed);
            let b = random(70, 300, seed + 100);
            let ta = TileMatrix::from_csr(&a);
            let tb = TileMatrix::from_csr(&b);
            let got = add(2.0, &ta, -0.5, &tb);
            got.validate().unwrap();
            let want = ops::add(2.0, &a, -0.5, &b);
            assert!(got
                .to_csr()
                .drop_numeric_zeros()
                .approx_eq_ignoring_zeros(&want, 1e-12));
        }
    }

    #[test]
    fn disjoint_patterns_concatenate() {
        let mut ca = Coo::new(32, 32);
        ca.push(0, 0, 1.0);
        let mut cb = Coo::new(32, 32);
        cb.push(20, 20, 2.0);
        let ta = TileMatrix::from_csr(&ca.to_csr());
        let tb = TileMatrix::from_csr(&cb.to_csr());
        let sum = add(1.0, &ta, 1.0, &tb);
        assert_eq!(sum.tile_count(), 2);
        assert_eq!(sum.nnz(), 2);
        let csr = sum.to_csr();
        assert_eq!(csr.get(0, 0), Some(1.0));
        assert_eq!(csr.get(20, 20), Some(2.0));
    }

    #[test]
    fn cancellation_keeps_structural_union() {
        let a = random(40, 200, 3);
        let ta = TileMatrix::from_csr(&a);
        let zero = add(1.0, &ta, -1.0, &ta);
        // Structure preserved, values exactly zero.
        assert_eq!(zero.nnz(), a.nnz());
        assert!(zero.vals.iter().all(|&v| v == 0.0));
        assert_eq!(zero.to_csr().drop_numeric_zeros().nnz(), 0);
    }

    #[test]
    fn shifted_identity_for_amg_smoothing() {
        // A + sigma*I, the AMG smoother construction.
        let a = random(50, 300, 7);
        let i = TileMatrix::from_csr(&Csr::identity(50));
        let ta = TileMatrix::from_csr(&a);
        let shifted = add(1.0, &ta, 4.0, &i);
        let want = ops::add(1.0, &a, 4.0, &Csr::identity(50));
        assert!(shifted
            .to_csr()
            .drop_numeric_zeros()
            .approx_eq_ignoring_zeros(&want, 1e-12));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = TileMatrix::from_csr(&Csr::<f64>::identity(16));
        let b = TileMatrix::from_csr(&Csr::<f64>::identity(32));
        add(1.0, &a, 1.0, &b);
    }
}
