//! Step 3: per-tile numeric phase (§3.3, Algorithm 3).
//!
//! With `C`'s structure fixed by step 2, each task computes its tile's
//! values. Two accumulators, selected adaptively by the tile's nonzero
//! count against the threshold `tnnz` (the paper uses 192 = 75% of 256):
//!
//! * [`sparse accumulator`](numeric_tile_sparse) — for sparse output tiles:
//!   each intermediate product `a(r,c) · b(c,k)` lands directly at its final
//!   position, computed by a *rank* query on the row mask
//!   (`row_ptr[r] + popcount(mask[r] & low_bits(k))`). No 256-slot buffer is
//!   touched, so sparse tiles stay cache-resident.
//! * [`dense accumulator`](numeric_tile_dense) — for near-dense tiles: a
//!   256-slot scratch tile absorbs products at `r*16 + k`, then is
//!   compressed through the mask. Costs a full-tile sweep but each product
//!   is a single indexed add.
//!
//! Both run on the stack; the paper's `atomicAdd` degenerates to plain adds
//! because one task owns each output tile.

use tsg_matrix::{Scalar, TileMatrix, TILE_AREA, TILE_DIM};

/// Accumulator policy for step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumulatorKind {
    /// Sparse for tiles with `nnz <= tnnz`, dense above (paper default).
    Adaptive,
    /// Always use the sparse (rank-indexed) accumulator.
    AlwaysSparse,
    /// Always use the dense 256-slot accumulator.
    AlwaysDense,
}

impl AccumulatorKind {
    /// Resolves the policy for a tile with `nnz` stored nonzeros.
    #[inline]
    pub fn use_dense(self, nnz: usize, tnnz: usize) -> bool {
        match self {
            AccumulatorKind::Adaptive => nnz > tnnz,
            AccumulatorKind::AlwaysSparse => false,
            AccumulatorKind::AlwaysDense => true,
        }
    }
}

/// Fills `row_idx`/`col_idx` for a tile from its row masks, in the
/// `(row, col)` order the format stores. Returns the nonzero count.
pub fn fill_indices_from_masks(masks: &[u16], row_idx: &mut [u8], col_idx: &mut [u8]) -> usize {
    let mut k = 0usize;
    for (r, &m) in masks.iter().enumerate() {
        let next = crate::maskops::decode_mask_cols(m, col_idx, k);
        row_idx[k..next].fill(r as u8);
        k = next;
    }
    k
}

/// Numeric phase with the sparse accumulator: products are scattered
/// straight into the output window via mask-rank addressing.
///
/// `vals` is the tile's output value window (length == tile nnz, zeroed by
/// the caller); `masks`/`row_ptr` are the tile's symbolic structure.
pub fn numeric_tile_sparse<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    row_ptr: &[u8],
    vals: &mut [T],
) {
    for &(a_id, b_id) in pairs {
        let a_tile = a.tile(a_id as usize);
        let b_tile = b.tile(b_id as usize);
        for ((&r, &c), &va) in a_tile
            .row_idx
            .iter()
            .zip(a_tile.col_idx.iter())
            .zip(a_tile.vals.iter())
        {
            let base = row_ptr[r as usize] as usize;
            let mask = masks[r as usize];
            for kb in b_tile.row_range(c as usize) {
                let k = b_tile.col_idx[kb];
                let vb = b_tile.vals[kb];
                // Rank of column k within this row's mask.
                let rank = crate::maskops::rank16(mask, k as u32);
                debug_assert!(mask & (1 << k) != 0, "product outside symbolic mask");
                vals[base + rank] += va * vb;
            }
        }
    }
}

/// Numeric phase with the dense accumulator: a full 256-slot scratch tile,
/// compressed through the mask at the end.
pub fn numeric_tile_dense<T: Scalar>(
    a: &TileMatrix<T>,
    b: &TileMatrix<T>,
    pairs: &[(u32, u32)],
    masks: &[u16],
    vals: &mut [T],
) {
    let mut acc = [T::ZERO; TILE_AREA];
    for &(a_id, b_id) in pairs {
        let a_tile = a.tile(a_id as usize);
        let b_tile = b.tile(b_id as usize);
        for ((&r, &c), &va) in a_tile
            .row_idx
            .iter()
            .zip(a_tile.col_idx.iter())
            .zip(a_tile.vals.iter())
        {
            let row_base = r as usize * TILE_DIM;
            for kb in b_tile.row_range(c as usize) {
                let k = b_tile.col_idx[kb] as usize;
                acc[row_base + k] += va * b_tile.vals[kb];
            }
        }
    }
    // Compress: walk the masks in (row, col) order.
    let mut out = 0usize;
    for (r, &m) in masks.iter().enumerate() {
        let mut bits = m;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            vals[out] = acc[r * TILE_DIM + c];
            bits &= bits - 1;
            out += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step2::symbolic_tile;
    use tsg_matrix::{Coo, Dense};

    fn tiled(entries: &[(u32, u32, f64)]) -> TileMatrix<f64> {
        let mut coo = Coo::new(16, 16);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        TileMatrix::from_csr(&coo.to_csr())
    }

    fn oracle(a: &TileMatrix<f64>, b: &TileMatrix<f64>) -> Dense<f64> {
        Dense::from_csr(&a.to_csr()).matmul(&Dense::from_csr(&b.to_csr()))
    }

    fn run_both(a: &TileMatrix<f64>, b: &TileMatrix<f64>) {
        let pairs = [(0u32, 0u32)];
        let sym = symbolic_tile(a, b, &pairs);
        let expect = oracle(a, b);

        let mut row_idx = vec![0u8; sym.nnz];
        let mut col_idx = vec![0u8; sym.nnz];
        assert_eq!(
            fill_indices_from_masks(&sym.masks, &mut row_idx, &mut col_idx),
            sym.nnz
        );

        for dense_path in [false, true] {
            let mut vals = vec![0.0f64; sym.nnz];
            if dense_path {
                numeric_tile_dense(a, b, &pairs, &sym.masks, &mut vals);
            } else {
                numeric_tile_sparse(a, b, &pairs, &sym.masks, &sym.row_ptr, &mut vals);
            }
            for k in 0..sym.nnz {
                let (r, c) = (row_idx[k] as usize, col_idx[k] as usize);
                assert!(
                    (vals[k] - expect.get(r, c)).abs() < 1e-12,
                    "path dense={dense_path} mismatch at ({r},{c}): {} vs {}",
                    vals[k],
                    expect.get(r, c)
                );
            }
        }
    }

    #[test]
    fn both_accumulators_match_dense_oracle_sparse_tile() {
        let a = tiled(&[(0, 0, 2.0), (0, 2, 3.0), (5, 1, -1.0), (15, 15, 4.0)]);
        let b = tiled(&[(0, 1, 1.5), (2, 1, 2.0), (1, 7, -3.0), (15, 0, 1.0)]);
        run_both(&a, &b);
    }

    #[test]
    fn both_accumulators_match_dense_oracle_full_tile() {
        let all_a: Vec<(u32, u32, f64)> = (0..16u32)
            .flat_map(|r| {
                (0..16u32).map(move |c| (r, c, (r as f64 + 1.0) * 0.25 - c as f64 * 0.125))
            })
            .collect();
        let all_b: Vec<(u32, u32, f64)> = (0..16u32)
            .flat_map(|r| (0..16u32).map(move |c| c as f64 - r as f64 * 0.5 + 1.0))
            .zip(0..256u32)
            .map(|(v, k)| (k / 16, k % 16, v))
            .collect();
        let a = tiled(&all_a);
        let b = tiled(&all_b);
        run_both(&a, &b);
    }

    #[test]
    fn accumulated_products_sum_across_pairs() {
        // Two matched pairs contributing to the same output position must
        // sum. Build 32x32 so two tiles of A's row 0 hit one C tile.
        let mut coo_a = Coo::new(32, 32);
        coo_a.push(0, 0, 1.0); // tile (0,0)
        coo_a.push(0, 16, 2.0); // tile (0,1)
        let a = TileMatrix::from_csr(&coo_a.to_csr());
        let mut coo_b = Coo::new(32, 32);
        coo_b.push(0, 0, 5.0); // tile (0,0): feeds via A(0,0)
        coo_b.push(16, 0, 7.0); // tile (1,0): feeds via A(0,16)
        let b = TileMatrix::from_csr(&coo_b.to_csr());

        let b_cols = b.col_index();
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        crate::step2::matched_pairs(
            &a,
            &b_cols,
            0,
            0,
            crate::IntersectionKind::BinarySearch,
            &mut scratch,
            &mut pairs,
        );
        assert_eq!(pairs.len(), 2);
        let sym = symbolic_tile(&a, &b, &pairs);
        assert_eq!(sym.nnz, 1);
        let mut vals = vec![0.0f64];
        numeric_tile_sparse(&a, &b, &pairs, &sym.masks, &sym.row_ptr, &mut vals);
        assert_eq!(vals[0], 1.0 * 5.0 + 2.0 * 7.0);
        let mut vals_d = vec![0.0f64];
        numeric_tile_dense(&a, &b, &pairs, &sym.masks, &mut vals_d);
        assert_eq!(vals_d[0], 19.0);
    }

    #[test]
    fn adaptive_policy_thresholds() {
        assert!(!AccumulatorKind::Adaptive.use_dense(192, 192));
        assert!(AccumulatorKind::Adaptive.use_dense(193, 192));
        assert!(!AccumulatorKind::AlwaysSparse.use_dense(256, 192));
        assert!(AccumulatorKind::AlwaysDense.use_dense(0, 192));
    }

    #[test]
    fn fill_indices_orders_row_major() {
        let mut masks = [0u16; 16];
        masks[1] = 0b1001; // (1,0), (1,3)
        masks[4] = 0b0010; // (4,1)
        let mut ri = [0u8; 3];
        let mut ci = [0u8; 3];
        assert_eq!(fill_indices_from_masks(&masks, &mut ri, &mut ci), 3);
        assert_eq!(ri, [1, 1, 4]);
        assert_eq!(ci, [0, 3, 1]);
    }
}
