//! The `SpGemm` execution context — the front door of the crate.
//!
//! The free functions [`crate::multiply`] / [`crate::multiply_csr`] take a
//! `(config, tracker)` pair on every call and give observability no seat at
//! the table. The context owns all three concerns — [`Config`], a shared
//! [`MemTracker`], and an `Arc<dyn Recorder>` — so a caller configures once
//! and every product it runs is accounted and (optionally) profiled under a
//! fresh job id:
//!
//! ```
//! use tilespgemm_core::SpGemm;
//! use tsg_matrix::{Csr, TileMatrix};
//!
//! let ctx = SpGemm::new();
//! let a = TileMatrix::from_csr(&Csr::<f64>::identity(64));
//! let out = ctx.multiply(&a, &a).unwrap();
//! assert_eq!(out.c.nnz(), 64);
//! ```
//!
//! Profiled runs attach a [`CollectingRecorder`] through the builder; the
//! tracker reports its byte traffic into the same recorder, so the counter
//! snapshot reconciles with the memory accounting:
//!
//! ```
//! use std::sync::Arc;
//! use tilespgemm_core::{Config, Scheduling, SpGemm};
//! use tsg_matrix::{Csr, TileMatrix};
//! use tsg_runtime::{CollectingRecorder, Counter};
//!
//! let recorder = Arc::new(CollectingRecorder::new());
//! let ctx = SpGemm::builder()
//!     .config(Config::builder().scheduling(Scheduling::Binned).build())
//!     .recorder(recorder.clone())
//!     .build();
//! let a = TileMatrix::from_csr(&Csr::<f64>::identity(64));
//! let out = ctx.multiply(&a, &a).unwrap();
//! let snap = ctx.metrics();
//! assert_eq!(snap.get(Counter::TilesVisited) as usize, out.c.tile_count());
//! assert!(!recorder.span_tree(1).is_empty());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tsg_matrix::{Csr, Scalar, TileMatrix};
use tsg_runtime::observe::{MetricsSnapshot, NullRecorder, Recorder};
use tsg_runtime::{MemTracker, ScratchPool};

#[cfg(doc)]
use tsg_runtime::CollectingRecorder;

use crate::convert::{timed_csr_to_tile, ConversionTiming};
use crate::pipeline::{multiply_with_pool, Output};
use crate::{Config, SpGemmError};

/// An execution context owning the configuration, device-memory accounting,
/// recorder, and reusable scratch arenas that every multiplication it runs
/// shares. The arenas warm up on the first product and make later steady-
/// state step-2/3 execution allocation-free.
///
/// Construct with [`SpGemm::new`] (paper defaults, unlimited budget, no
/// recording) or [`SpGemm::builder`]. Each [`SpGemm::multiply`] /
/// [`SpGemm::multiply_csr`] call runs under a fresh job id (1, 2, …), which
/// names the span tree a recorder collects for it; services that assign
/// their own job ids use [`SpGemm::multiply_as`].
#[derive(Debug)]
pub struct SpGemm {
    config: Config,
    tracker: Arc<MemTracker>,
    recorder: Arc<dyn Recorder>,
    arena: ScratchPool,
    next_job: AtomicU64,
}

impl Default for SpGemm {
    fn default() -> Self {
        Self::new()
    }
}

impl SpGemm {
    /// A context with the paper's default [`Config`], an unlimited-budget
    /// tracker, and the [`NullRecorder`].
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts building a context.
    pub fn builder() -> SpGemmBuilder {
        SpGemmBuilder::default()
    }

    /// The configuration every multiplication uses.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The shared device-memory tracker.
    pub fn tracker(&self) -> &Arc<MemTracker> {
        &self.tracker
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The recorder's current counter totals.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.recorder.snapshot()
    }

    /// High-water mark, in bytes, of the context's reusable scratch arenas
    /// across every multiplication it has run. Scratch stays warm between
    /// multiplies (steady-state step 2/3 execution allocates nothing), so
    /// this reports the arenas' largest combined footprint so far.
    pub fn arena_high_water_bytes(&self) -> usize {
        self.arena.high_water_bytes()
    }

    /// Runs `C = A·B` on tiled operands under the next job id.
    pub fn multiply<T: Scalar>(
        &self,
        a: &TileMatrix<T>,
        b: &TileMatrix<T>,
    ) -> Result<Output<T>, SpGemmError> {
        self.multiply_as(self.next_job(), a, b)
    }

    /// Runs `C = A·B` under a caller-chosen job id (services that already
    /// number their jobs record spans under those numbers).
    pub fn multiply_as<T: Scalar>(
        &self,
        job: u64,
        a: &TileMatrix<T>,
        b: &TileMatrix<T>,
    ) -> Result<Output<T>, SpGemmError> {
        multiply_with_pool(
            a,
            b,
            &self.config,
            &self.tracker,
            &*self.recorder,
            job,
            &self.arena,
        )
    }

    /// Converts CSR operands to tiled form and multiplies, under the next
    /// job id. The returned [`Output`] carries the conversion timing and the
    /// same breakdown/peak/pair-buffer fields as [`SpGemm::multiply`];
    /// [`Output::to_csr`] recovers a CSR product.
    pub fn multiply_csr<T: Scalar>(
        &self,
        a: &Csr<T>,
        b: &Csr<T>,
    ) -> Result<Output<T>, SpGemmError> {
        self.multiply_csr_as(self.next_job(), a, b)
    }

    /// CSR entry point under a caller-chosen job id.
    pub fn multiply_csr_as<T: Scalar>(
        &self,
        job: u64,
        a: &Csr<T>,
        b: &Csr<T>,
    ) -> Result<Output<T>, SpGemmError> {
        let span = self.recorder.span_enter(job, "convert");
        let (ta, conv_a) = timed_csr_to_tile(a);
        let (tb, conv_b) = timed_csr_to_tile(b);
        self.recorder.span_exit(span);
        let mut out = self.multiply_as(job, &ta, &tb)?;
        out.conversion = Some(ConversionTiming {
            conversion: conv_a.conversion + conv_b.conversion,
            tiles: conv_a.tiles + conv_b.tiles,
            nnz: conv_a.nnz + conv_b.nnz,
        });
        Ok(out)
    }

    fn next_job(&self) -> u64 {
        self.next_job.fetch_add(1, Ordering::Relaxed)
    }
}

/// Builder for [`SpGemm`]. Every field is optional; the defaults are the
/// paper configuration with an unlimited budget and no recording.
#[derive(Debug, Default)]
pub struct SpGemmBuilder {
    config: Config,
    tracker: Option<Arc<MemTracker>>,
    budget: Option<usize>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl SpGemmBuilder {
    /// Uses `config` for every multiplication.
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Overrides the SIMD kernel policy on the current config. Convenience
    /// for flipping just the dispatch knob around [`SpGemmBuilder::config`];
    /// every policy produces bit-identical output (see `simd` module docs).
    pub fn simd(mut self, policy: crate::SimdPolicy) -> Self {
        self.config.simd = policy;
        self
    }

    /// Shares an existing tracker (e.g. a device-wide one) instead of
    /// creating a fresh unlimited tracker.
    pub fn tracker(mut self, tracker: Arc<MemTracker>) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Enforces a device-memory budget in bytes. Ignored when an explicit
    /// [`SpGemmBuilder::tracker`] is supplied (set that tracker's budget
    /// instead).
    pub fn budget(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Attaches a recorder. The context also attaches it to the tracker so
    /// byte counters flow into the same snapshot.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the context.
    pub fn build(self) -> SpGemm {
        let tracker = self.tracker.unwrap_or_else(|| {
            Arc::new(MemTracker::with_budget(self.budget.unwrap_or(usize::MAX)))
        });
        let recorder = self.recorder.unwrap_or_else(|| Arc::new(NullRecorder));
        if recorder.is_enabled() {
            tracker.set_recorder(Some(recorder.clone()));
        }
        SpGemm {
            config: self.config,
            tracker,
            recorder,
            arena: ScratchPool::new(),
            next_job: AtomicU64::new(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_runtime::observe::{CollectingRecorder, Counter};

    fn identity_tiled(n: usize) -> TileMatrix<f64> {
        TileMatrix::from_csr(&Csr::<f64>::identity(n))
    }

    #[test]
    fn default_context_matches_free_function() {
        let a = identity_tiled(96);
        let ctx = SpGemm::new();
        let from_ctx = ctx.multiply(&a, &a).unwrap();
        let direct = crate::multiply(&a, &a, &Config::default(), &MemTracker::new()).unwrap();
        assert_eq!(from_ctx.c, direct.c);
        assert!(from_ctx.conversion.is_none());
    }

    #[test]
    fn jobs_get_sequential_ids_and_separate_span_trees() {
        let recorder = Arc::new(CollectingRecorder::new());
        let ctx = SpGemm::builder().recorder(recorder.clone()).build();
        let a = identity_tiled(64);
        ctx.multiply(&a, &a).unwrap();
        ctx.multiply(&a, &a).unwrap();
        assert_eq!(recorder.jobs(), vec![1, 2]);
        for job in [1, 2] {
            let roots = recorder.span_tree(job);
            let root = roots.last().expect("job root span");
            assert_eq!(root.name, "job");
            for phase in ["step1", "step2", "step3", "alloc"] {
                assert!(root.child(phase).is_some(), "job {job} missing {phase}");
            }
        }
    }

    #[test]
    fn budget_flows_into_the_tracker() {
        let ctx = SpGemm::builder().budget(1024).build();
        let a = identity_tiled(256);
        let err = ctx.multiply(&a, &a).unwrap_err();
        assert_eq!(err.code(), "out_of_memory");
        assert_eq!(ctx.tracker().current_bytes(), 0);
    }

    #[test]
    fn tracker_bytes_reach_the_recorder() {
        let recorder = Arc::new(CollectingRecorder::new());
        let ctx = SpGemm::builder().recorder(recorder.clone()).build();
        let a = identity_tiled(64);
        let out = ctx.multiply(&a, &a).unwrap();
        let snap = ctx.metrics();
        assert_eq!(snap.get(Counter::BytesAlloc), snap.get(Counter::BytesFreed));
        assert!(snap.get(Counter::BytesAlloc) as usize >= out.peak_bytes);
    }

    #[test]
    fn context_arena_warms_once_and_reports_high_water() {
        let ctx = SpGemm::new();
        assert_eq!(ctx.arena_high_water_bytes(), 0);
        let a = identity_tiled(128);
        ctx.multiply(&a, &a).unwrap();
        let after_first = ctx.arena_high_water_bytes();
        assert!(after_first > 0, "first multiply warms the pool");
        ctx.multiply(&a, &a).unwrap();
        assert_eq!(
            ctx.arena_high_water_bytes(),
            after_first,
            "steady state adds no scratch"
        );
        assert_eq!(ctx.tracker().current_bytes(), 0);
    }

    #[test]
    fn csr_entry_point_reports_conversion() {
        let ctx = SpGemm::new();
        let a = Csr::<f64>::identity(64);
        let out = ctx.multiply_csr(&a, &a).unwrap();
        let conv = out.conversion.expect("CSR entry point times conversion");
        assert_eq!(conv.nnz, 128, "both operands' nonzeros are converted");
        assert_eq!(out.to_csr(), a);
    }
}
