//! Fault injection for the serving layer (`--features failpoints`).
//!
//! The two serve-side failpoints exercise client-visible refusal paths
//! deterministically: `serve.session_open` makes the scheduler refuse a
//! session as if it were draining, and `serve.backpressure_wait` expires
//! the bounded submission hold immediately so the hint path fires on an
//! otherwise empty queue. Both tests assert the refusal is clean — the
//! same call succeeds the moment the failpoint disarms.

#![cfg(feature = "failpoints")]

use std::sync::Arc;

use tsg_engine::json::{parse, Value};
use tsg_engine::{Engine, EngineConfig};
use tsg_matrix::Csr;
use tsg_runtime::failpoint;
use tsg_serve::{SchedConfig, Scheduler, ServeSession, Submission, SubmitError, SubmitSpec};

fn scheduler() -> Scheduler {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 1,
        ..EngineConfig::default()
    });
    Scheduler::new(Arc::new(engine), SchedConfig::default())
}

#[test]
fn session_open_failpoint_refuses_once_then_recovers() {
    let _x = failpoint::exclusive();
    let sched = scheduler();

    failpoint::arm("serve.session_open", 0, 1);
    assert_eq!(
        sched.open_session("victim", 1.0, None),
        Err(SubmitError::Draining),
        "the armed open must be refused as if draining"
    );
    assert_eq!(failpoint::hits("serve.session_open"), 1);

    // The refusal left no half-opened state: the retry succeeds and the
    // session is fully usable.
    let sid = sched
        .open_session("victim", 1.0, None)
        .expect("disarmed open succeeds");
    let (id, _) = sched.engine().register(Csr::<f64>::identity(32));
    let Submission::Queued(tickets) = sched.submit(sid, vec![SubmitSpec::new(id, id)]).unwrap()
    else {
        panic!("empty queue must accept")
    };
    tickets[0].wait().expect("job on the recovered session");
    assert_eq!(sched.stats().sessions.len(), 1);
}

#[test]
fn session_open_failpoint_maps_to_shutting_down_on_the_wire() {
    let _x = failpoint::exclusive();
    let sched = Arc::new(scheduler());
    let session = ServeSession::new(Arc::clone(&sched));

    failpoint::arm("serve.session_open", 0, 1);
    let (resp, _) = session.handle_line(r#"{"op":"open_session","name":"wire"}"#);
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("shutting_down"),
        "clients see the stable refusal code: {resp}"
    );

    // Disarmed, the same line opens a session.
    let (resp, _) = session.handle_line(r#"{"op":"open_session","name":"wire"}"#);
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert!(v.get("session").and_then(Value::as_u64).is_some());
}

#[test]
fn backpressure_wait_failpoint_forces_a_hint_on_an_empty_queue() {
    let _x = failpoint::exclusive();
    let sched = scheduler();
    let sid = sched.open_session("hinted", 1.0, None).unwrap();
    let (id, _) = sched.engine().register(Csr::<f64>::identity(32));

    // Armed: the bounded hold "expires" immediately, so even an empty
    // session queue answers with a hint instead of admitting.
    failpoint::arm("serve.backpressure_wait", 0, 1);
    let Submission::Backpressure(hint) = sched.submit(sid, vec![SubmitSpec::new(id, id)]).unwrap()
    else {
        panic!("the armed submit must be refused with a hint")
    };
    assert_eq!(hint.queue_position, 0, "nothing is actually queued");
    assert!(
        hint.retry_after.as_millis() >= 1,
        "hints always name a delay"
    );
    let stats = sched.stats();
    assert_eq!(stats.backpressure_hints, 1);
    assert_eq!(stats.sessions[0].hints, 1);

    // The hinted client retries; disarmed, the identical submission queues
    // and completes.
    let Submission::Queued(tickets) = sched.submit(sid, vec![SubmitSpec::new(id, id)]).unwrap()
    else {
        panic!("the retry must be admitted")
    };
    tickets[0].wait().expect("retried job completes");
    assert_eq!(sched.stats().backpressure_hints, 1, "no further hints");
}
