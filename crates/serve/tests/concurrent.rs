//! Two simultaneous TCP clients against one server: results must be
//! bitwise-identical to a serial in-process run (content-hash handles make
//! the comparison exact), nothing may be dropped, and backpressure hints
//! must report a monotone non-increasing queue position to a blocked
//! client.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use tsg_engine::json::{parse, Value};
use tsg_engine::{Engine, EngineConfig, JobSpec};

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tsg-serve"))
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawning tsg-serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server prints its address before exiting")
                .expect("stderr readable");
            if let Some(addr) = line.strip_prefix("tsg-serve: listening on ") {
                break addr.to_string();
            }
        };
        // Keep draining stderr so the server never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    responses: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connecting to tsg-serve");
        let responses = BufReader::new(stream.try_clone().expect("clonable stream"));
        Client { stream, responses }
    }

    fn request(&mut self, line: &str) -> Value {
        writeln!(self.stream, "{line}").expect("request written");
        self.stream.flush().expect("request flushed");
        let mut resp = String::new();
        let n = self.responses.read_line(&mut resp).expect("response read");
        assert!(n > 0, "server closed the connection on {line}");
        parse(&resp).unwrap_or_else(|e| panic!("malformed response {resp:?}: {e}"))
    }

    fn request_ok(&mut self, line: &str) -> Value {
        let v = self.request(line);
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "expected ok response to {line}, got {v}"
        );
        v
    }

    /// Multiplies with `keep`, riding out backpressure hints by resubmitting.
    /// Returns the kept product handle and the hint positions observed.
    fn multiply_kept(&mut self, a: &str, b: &str) -> (String, Vec<u64>) {
        let line = format!(r#"{{"op":"multiply","a":"{a}","b":"{b}","keep":true}}"#);
        let mut positions = Vec::new();
        loop {
            let v = self.request(&line);
            if v.get("ok").and_then(Value::as_bool) == Some(true) {
                let c = v.get("c").and_then(Value::as_str).expect("kept handle");
                return (c.to_string(), positions);
            }
            let code = v
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str);
            assert_eq!(
                code,
                Some("backpressure"),
                "only flow control may refuse: {v}"
            );
            positions.push(
                v.get("queue_position")
                    .and_then(Value::as_u64)
                    .expect("hints carry the queue position"),
            );
            let retry_ms = v
                .get("retry_after_ms")
                .and_then(Value::as_f64)
                .expect("hints carry retry_after_ms");
            assert!(retry_ms >= 1.0);
            std::thread::sleep(Duration::from_millis(retry_ms.min(50.0) as u64));
        }
    }
}

#[test]
fn mid_batch_disconnect_leaves_the_server_healthy() {
    let server = Server::spawn(&[
        "--tcp",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--queue-depth",
        "2",
    ]);

    // Client 1 opens a session, fires an async multiply_many batch, and
    // vanishes without reading a single response — then a second rude
    // client dies halfway through writing a request line.
    {
        let mut c = Client::connect(&server.addr);
        c.request_ok(r#"{"op":"open_session","name":"doomed"}"#);
        let loaded = c.request_ok(r#"{"op":"load","gen":"cluster-00"}"#);
        let m = loaded
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        writeln!(
            c.stream,
            r#"{{"op":"multiply_many","jobs":[{{"a":"{m}","b":"{m}"}},{{"a":"$0","b":"{m}"}}],"async":true}}"#
        )
        .unwrap();
        c.stream.flush().unwrap();
        // Dropped here: the batch is in flight, the response unread.
    }
    {
        let mut c = Client::connect(&server.addr);
        write!(c.stream, r#"{{"op":"multiply_many","jobs":[{{"a":"mdead"#).unwrap();
        c.stream.flush().unwrap();
        // Dropped mid-line, no terminating newline.
    }

    // The server must still be serving, and the orphaned batch must have
    // run to completion rather than wedging the dispatcher.
    let mut probe = Client::connect(&server.addr);
    for _ in 0..200 {
        let stats = probe.request_ok(r#"{"op":"stats"}"#);
        let serve = stats.get("serve").unwrap();
        let done: u64 = serve
            .get("sessions")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|r| r.get("completed").and_then(Value::as_u64).unwrap())
            .sum();
        if done == 2 {
            assert_eq!(stats.get("failed").and_then(Value::as_u64), Some(0));
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("orphaned batch never completed");
}

#[test]
fn two_concurrent_clients_match_the_serial_run_bit_for_bit() {
    // Small queues + one worker manufacture real contention: the clients'
    // bursts overlap, interleave under weighted-fair dispatch, and at least
    // one of them rides through backpressure hints.
    let server = Server::spawn(&[
        "--tcp",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--queue-depth",
        "2",
        "--session-depth",
        "2",
    ]);

    // Serial gold, computed in-process on a fresh engine: the chain of
    // products each client will request. Handles are content hashes, so an
    // equal handle IS a bitwise-identical product.
    let gold = {
        let engine = Engine::new(EngineConfig::default());
        let mut chains = Vec::new();
        for name in ["scatter-00", "cluster-00"] {
            let csr = tsg_gen::suite::by_name(name)
                .expect("known dataset")
                .build();
            let (m, _) = engine.register(csr);
            let r1 = engine.multiply_now(JobSpec::new(m, m)).unwrap();
            let (p1, _) = engine.register_product(Arc::clone(&r1.c));
            let r2 = engine.multiply_now(JobSpec::new(p1, p1)).unwrap();
            let (p2, _) = engine.register_product(Arc::clone(&r2.c));
            let r3 = engine.multiply_now(JobSpec::new(p2, m)).unwrap();
            let (p3, _) = engine.register_product(Arc::clone(&r3.c));
            chains.push(vec![p1.to_string(), p2.to_string(), p3.to_string()]);
        }
        engine.shutdown();
        chains
    };

    let addr = server.addr.clone();
    let worker = |name: &'static str, weight: u64| {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr);
            client.request_ok(r#"{"op":"hello","v":2}"#);
            client.request_ok(&format!(
                r#"{{"op":"open_session","name":"{name}","weight":{weight},"depth":2}}"#
            ));
            let loaded = client.request_ok(&format!(r#"{{"op":"load","gen":"{name}"}}"#));
            let m = loaded
                .get("id")
                .and_then(Value::as_str)
                .unwrap()
                .to_string();
            // The same chain as the gold run: M², (M²)², (M²)²·M — each
            // step's kept handle feeds the next, all under contention.
            let mut handles = Vec::new();
            let mut positions = Vec::new();
            let (p1, h1) = client.multiply_kept(&m, &m);
            let (p2, h2) = client.multiply_kept(&p1, &p1);
            let (p3, h3) = client.multiply_kept(&p2, &m);
            handles.extend([p1, p2, p3]);
            positions.extend([h1, h2, h3]);
            // Async burst on the densest kept product: with session depth 2
            // the queue fills and further submissions are refused with
            // backpressure hints instead of being dropped. Ride the hints,
            // then wait for every job — all of them must complete.
            let p1 = &handles[0];
            let burst = format!(r#"{{"op":"multiply","a":"{p1}","b":"{p1}","async":true}}"#);
            let mut jobs = Vec::new();
            for _ in 0..5 {
                let mut per_submission = Vec::new();
                loop {
                    let v = client.request(&burst);
                    if v.get("ok").and_then(Value::as_bool) == Some(true) {
                        jobs.push(v.get("job").and_then(Value::as_u64).expect("job id"));
                        break;
                    }
                    let code = v
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_str);
                    assert_eq!(code, Some("backpressure"), "only flow control refuses: {v}");
                    per_submission.push(
                        v.get("queue_position")
                            .and_then(Value::as_u64)
                            .expect("hints carry the queue position"),
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
                positions.push(per_submission);
            }
            for job in jobs {
                client.request_ok(&format!(r#"{{"op":"wait","job":{job}}}"#));
            }
            (handles, positions)
        })
    };
    let t1 = worker("scatter-00", 2);
    let t2 = worker("cluster-00", 1);
    let (h1, pos1) = t1.join().expect("client 1");
    let (h2, pos2) = t2.join().expect("client 2");
    // Both clients have their final responses, so every job is complete:
    // read the server-wide stats through a fresh connection.
    let stats = Client::connect(&server.addr).request_ok(r#"{"op":"stats"}"#);

    // Bitwise identity with the serial gold, for both clients.
    assert_eq!(h1, gold[0], "scatter-00 chain diverged from the serial run");
    assert_eq!(h2, gold[1], "cluster-00 chain diverged from the serial run");

    // Hint positions are monotone non-increasing across the retries of one
    // blocked submission: the refused client only ever sees its backlog
    // drain.
    for per_submission in pos1.iter().chain(pos2.iter()) {
        for pair in per_submission.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "queue_position must not grow across retries: {per_submission:?}"
            );
        }
    }

    // Nothing was dropped anywhere: every arrival was admitted (engine) and
    // every session job completed (scheduler).
    assert_eq!(stats.get("shed").and_then(Value::as_u64), Some(0));
    assert_eq!(
        stats.get("submitted").and_then(Value::as_u64),
        stats.get("admitted").and_then(Value::as_u64)
    );
    let serve_stats = stats.get("serve").unwrap();
    assert!(
        serve_stats
            .get("backpressure_hints")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "the burst was sized to overflow a depth-2 session queue: {serve_stats}"
    );
    let sessions = serve_stats.get("sessions").and_then(Value::as_arr).unwrap();
    assert_eq!(sessions.len(), 2);
    for row in sessions {
        assert_eq!(row.get("failed").and_then(Value::as_u64), Some(0));
        assert_eq!(
            row.get("enqueued").and_then(Value::as_u64),
            row.get("completed").and_then(Value::as_u64),
            "every enqueued job completed: {row}"
        );
    }
}
