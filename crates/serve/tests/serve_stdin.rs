//! End-to-end test of the `tsg-serve` binary over its stdin/stdout
//! JSON-lines transport: load, convert, multiply, sessions, batches,
//! stats, evict, shutdown.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use tsg_engine::json::{parse, Value};

struct Serve {
    child: Child,
    responses: BufReader<std::process::ChildStdout>,
}

impl Serve {
    fn spawn(args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tsg-serve"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning tsg-serve");
        let responses = BufReader::new(child.stdout.take().expect("piped stdout"));
        Serve { child, responses }
    }

    /// Sends one request line; returns the parsed response object.
    fn request(&mut self, line: &str) -> Value {
        let stdin = self.child.stdin.as_mut().expect("piped stdin");
        writeln!(stdin, "{line}").expect("request written");
        stdin.flush().expect("request flushed");
        let mut resp = String::new();
        let n = self.responses.read_line(&mut resp).expect("response read");
        assert!(n > 0, "server closed stdout before responding to {line}");
        parse(&resp).unwrap_or_else(|e| panic!("malformed response {resp:?}: {e}"))
    }

    fn request_ok(&mut self, line: &str) -> Value {
        let v = self.request(line);
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "expected ok response to {line}, got {v}"
        );
        v
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn load_convert_multiply_stats_over_stdin() {
    let mut serve = Serve::spawn(&["--workers", "2", "--queue-depth", "8"]);

    let loaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    let id = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    assert_eq!(loaded.get("rows").and_then(Value::as_u64), Some(7500));
    assert!(loaded.get("nnz").and_then(Value::as_u64).unwrap() > 0);

    // Re-loading identical content dedupes to the same id.
    let again = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    assert_eq!(again.get("id").and_then(Value::as_str), Some(id.as_str()));
    assert_eq!(again.get("dedup").and_then(Value::as_bool), Some(true));

    let converted = serve.request_ok(&format!(r#"{{"op":"convert","id":"{id}"}}"#));
    assert_eq!(
        converted.get("cache_hit").and_then(Value::as_bool),
        Some(false)
    );
    assert!(converted.get("tiles").and_then(Value::as_u64).unwrap() > 0);

    // The multiply sees both operands already cached by the convert.
    let product = serve.request_ok(&format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
    assert!(product.get("nnz_c").and_then(Value::as_u64).unwrap() > 0);
    assert_eq!(product.get("cache_hits").and_then(Value::as_u64), Some(2));
    assert_eq!(product.get("conversions").and_then(Value::as_u64), Some(0));

    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("conversions").and_then(Value::as_u64), Some(1));
    assert!(stats.get("cached_bytes").and_then(Value::as_u64).unwrap() > 0);
    // Arrivals are fully accounted: everything submitted was admitted.
    assert_eq!(stats.get("submitted").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("admitted").and_then(Value::as_u64), Some(1));
    // v2 responses extend the same object with the serving layer's view.
    let serve_stats = stats.get("serve").expect("serve member");
    let sessions = serve_stats
        .get("sessions")
        .and_then(Value::as_arr)
        .expect("sessions array");
    assert_eq!(
        sessions.len(),
        1,
        "the multiply opened a session implicitly"
    );
    assert_eq!(
        sessions[0].get("completed").and_then(Value::as_u64),
        Some(1)
    );

    let evicted = serve.request_ok(r#"{"op":"evict"}"#);
    assert_eq!(evicted.get("evicted").and_then(Value::as_u64), Some(1));

    // Errors stay on-protocol: unknown ids produce a typed error object.
    let err = serve.request(r#"{"op":"multiply","a":"mffffffffffffffff","b":"mffffffffffffffff"}"#);
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("unknown_matrix")
    );

    let bye = serve.request(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    let status = serve.child.wait().expect("server exits after shutdown");
    assert!(status.success());
}

#[test]
fn protocol_version_is_stamped_and_gated_over_stdin() {
    let mut serve = Serve::spawn(&[]);

    // Every live generation is accepted, and every response stamps the
    // server's own version (3).
    for v in [1, 2, 3] {
        let hello = serve.request_ok(&format!(r#"{{"op":"hello","v":{v}}}"#));
        assert_eq!(hello.get("v").and_then(Value::as_u64), Some(3));
        assert_eq!(
            hello.get("server").and_then(Value::as_str),
            Some("tsg-serve")
        );
        assert_eq!(hello.get("profile").and_then(Value::as_bool), Some(false));
    }

    // A client speaking a future generation is refused with the stable
    // code — and even the refusal carries the server's version.
    let err = serve.request(r#"{"op":"hello","v":4}"#);
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(err.get("v").and_then(Value::as_u64), Some(3));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("protocol_mismatch")
    );
    // The serve-layer verbs run the same gate.
    let err = serve.request(r#"{"op":"open_session","v":999}"#);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("protocol_mismatch")
    );

    // Version-less requests (protocol 1 clients) keep working.
    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("v").and_then(Value::as_u64), Some(3));
}

#[test]
fn sessions_batches_and_kept_products_over_stdin() {
    let mut serve = Serve::spawn(&["--workers", "2"]);
    let loaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    let id = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let opened = serve.request_ok(r#"{"op":"open_session","name":"etl","weight":2}"#);
    assert!(opened.get("session").and_then(Value::as_u64).unwrap() >= 1);

    // keep:true registers the product and hands back its content handle.
    let kept = serve.request_ok(&format!(
        r#"{{"op":"multiply","a":"{id}","b":"{id}","keep":true}}"#
    ));
    let c = kept.get("c").and_then(Value::as_str).unwrap().to_string();
    assert!(c.starts_with('m'));

    // A dependent batch: entry 1 squares entry 0's product ($0). Equal "c"
    // handles across routes prove bitwise-identical results.
    let batch = serve.request_ok(&format!(
        r#"{{"op":"multiply_many","jobs":[{{"a":"{id}","b":"{id}","keep":true}},{{"a":"$0","b":"$0","keep":true}}]}}"#
    ));
    let results = batch.get("results").and_then(Value::as_arr).unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[0].get("c").and_then(Value::as_str),
        Some(c.as_str())
    );
    let c2 = results[1].get("c").and_then(Value::as_str).unwrap();
    // The chained product is (A²)², reusable as an operand directly.
    let reuse = serve.request_ok(&format!(r#"{{"op":"multiply","a":"{c2}","b":"{id}"}}"#));
    assert!(reuse.get("nnz_c").and_then(Value::as_u64).unwrap() > 0);

    // Async batch: ids come back immediately, wait collects each.
    let queued = serve.request_ok(&format!(
        r#"{{"op":"multiply_many","async":true,"jobs":[{{"a":"{id}","b":"{id}"}},{{"a":"{id}","b":"{id}"}}]}}"#
    ));
    assert_eq!(queued.get("queued").and_then(Value::as_bool), Some(true));
    let jobs: Vec<u64> = queued
        .get("jobs")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|j| j.as_u64().unwrap())
        .collect();
    assert_eq!(jobs.len(), 2);
    for job in jobs {
        assert!(job >= 1 << 32, "serve ids live above the engine's");
        let done = serve.request_ok(&format!(r#"{{"op":"wait","job":{job}}}"#));
        assert_eq!(done.get("job").and_then(Value::as_u64), Some(job));
        assert!(done.get("nnz_c").and_then(Value::as_u64).unwrap() > 0);
    }

    // Malformed batches are refused whole with bad_request.
    let err = serve.request(&format!(
        r#"{{"op":"multiply_many","jobs":[{{"a":"$0","b":"{id}"}}]}}"#
    ));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("bad_request")
    );

    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    let serve_stats = stats.get("serve").unwrap();
    assert_eq!(
        serve_stats.get("batch_jobs").and_then(Value::as_u64),
        Some(4)
    );
    assert!(
        serve_stats
            .get("dispatched")
            .and_then(Value::as_u64)
            .unwrap()
            >= 6
    );
}

#[test]
fn profiled_burst_reports_spans_and_counters_over_stdin() {
    let mut serve = Serve::spawn(&["--profile", "--workers", "2", "--queue-depth", "32"]);
    let loaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    let id = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    // A 20-job burst: every reply carries the per-step breakdown and the
    // job's span tree, whose "job" root nests the pipeline phases.
    for round in 0..20 {
        let m = serve.request_ok(&format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
        assert!(
            m.get("step3_ms").and_then(Value::as_f64).is_some(),
            "round {round} missing breakdown"
        );
        let spans = m.get("spans").and_then(Value::as_arr).expect("spans");
        let job_root = spans
            .iter()
            .find(|n| n.get("name").and_then(Value::as_str) == Some("job"))
            .unwrap_or_else(|| panic!("round {round} has no job root span"));
        let children = job_root.get("children").and_then(Value::as_arr).unwrap();
        for phase in ["step1", "step2", "step3", "alloc"] {
            assert!(
                children
                    .iter()
                    .any(|c| c.get("name").and_then(Value::as_str) == Some(phase)),
                "round {round} missing {phase} span"
            );
        }
    }

    // The aggregated counter snapshot is live through the stats verb…
    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("profile").and_then(Value::as_bool), Some(true));
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(20));
    let counters = stats.get("counters").expect("counters object");
    let tiles = counters
        .get("tiles_visited")
        .and_then(Value::as_u64)
        .unwrap();
    assert!(tiles > 0, "the burst visited tiles");
    assert_eq!(tiles % 20, 0, "20 identical jobs visit identical tile sets");
    assert!(
        counters.get("bytes_alloc").and_then(Value::as_u64).unwrap()
            >= counters.get("bytes_freed").and_then(Value::as_u64).unwrap()
    );
    // Every completed job lands in exactly one estimator-error bucket, so
    // the bucket totals sum to the completions.
    let est_err: u64 = [
        "est_err_le_quarter",
        "est_err_half",
        "est_err_within_2x",
        "est_err_double",
        "est_err_ge_quad",
    ]
    .iter()
    .map(|k| counters.get(k).and_then(Value::as_u64).unwrap())
    .sum();
    assert_eq!(est_err, 20, "estimator error histogram covers every job");
    // Scheduler-side counters flow through the same recorder.
    assert!(
        counters
            .get("sessions_opened")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    assert_eq!(
        counters.get("serve_enqueued").and_then(Value::as_u64),
        Some(20)
    );

    // …and the profile verb dumps every recorded job's span tree.
    let profile = serve.request_ok(r#"{"op":"profile"}"#);
    let jobs = profile.get("jobs").and_then(Value::as_arr).expect("jobs");
    assert_eq!(jobs.len(), 20, "one span tree per burst job");
    let hello = serve.request_ok(r#"{"op":"hello","v":2}"#);
    assert_eq!(hello.get("profile").and_then(Value::as_bool), Some(true));
}

#[test]
fn hostile_input_stays_on_protocol_and_never_kills_the_loop() {
    let mut serve = Serve::spawn(&[]);
    let error_code = |v: &Value| {
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .map(str::to_string)
            .expect("typed error object")
    };

    // Malformed JSON — truncated object, then plain garbage.
    assert_eq!(error_code(&serve.request(r#"{"op":"#)), "bad_request");
    assert_eq!(error_code(&serve.request("!!not json!!")), "bad_request");
    // A valid object with an unknown verb.
    assert_eq!(
        error_code(&serve.request(r#"{"op":"frobnicate"}"#)),
        "bad_request"
    );
    // Missing the "op" member entirely.
    assert_eq!(error_code(&serve.request(r#"{"v":1}"#)), "bad_request");

    // A frame past the 16 MiB limit is refused before parsing.
    let oversized = format!(r#"{{"op":"hello","pad":"{}"}}"#, "x".repeat(16 << 20));
    assert_eq!(error_code(&serve.request(&oversized)), "frame_too_large");

    // Hostile multiply_many shapes: not an array, empty array, junk
    // operands, self/forward refs, refs without a batch. All bad_request,
    // none enqueue anything.
    for line in [
        r#"{"op":"multiply_many","jobs":"zap"}"#,
        r#"{"op":"multiply_many","jobs":[]}"#,
        r#"{"op":"multiply_many","jobs":[{"a":17,"b":true}]}"#,
        r#"{"op":"multiply_many","jobs":[{"a":"not-an-id","b":"$zap"}]}"#,
        r#"{"op":"multiply_many","jobs":[{"a":"$0","b":"$0"}]}"#,
        r#"{"op":"multiply_many","jobs":[{"a":"$5","b":"m0000000000000000"}]}"#,
        r#"{"op":"multiply_many"}"#,
    ] {
        assert_eq!(error_code(&serve.request(line)), "bad_request", "{line}");
    }
    // Waiting on a made-up serve job id is an error, not a hang.
    assert_eq!(
        error_code(&serve.request(r#"{"op":"wait","job":4294967299}"#)),
        "bad_request"
    );
    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    let serve_stats = stats.get("serve").unwrap();
    assert_eq!(
        serve_stats.get("dispatched").and_then(Value::as_u64),
        Some(0)
    );

    // After all of that the very same session still serves normal traffic.
    let loaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    let id = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    // Unload drops the matrix entirely: multiplying or re-unloading it is
    // the stable unknown_matrix error, not a crash.
    let gone = serve.request_ok(&format!(r#"{{"op":"unload","id":"{id}"}}"#));
    assert_eq!(gone.get("unloaded").and_then(Value::as_bool), Some(true));
    let err = serve.request(&format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
    assert_eq!(error_code(&err), "unknown_matrix");
    let err = serve.request(&format!(r#"{{"op":"unload","id":"{id}"}}"#));
    assert_eq!(error_code(&err), "unknown_matrix");

    // Reloading the same content registers fresh (no stale dedup hit) and
    // multiplies fine — the loop survived every hostile frame above.
    let reloaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    assert_eq!(reloaded.get("dedup").and_then(Value::as_bool), Some(false));
    let id2 = reloaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let product = serve.request_ok(&format!(r#"{{"op":"multiply","a":"{id2}","b":"{id2}"}}"#));
    assert!(product.get("nnz_c").and_then(Value::as_u64).unwrap() > 0);

    let bye = serve.request(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    let status = serve.child.wait().expect("server exits after shutdown");
    assert!(status.success());
}

#[test]
fn budget_flag_still_bounds_memory_under_deferred_admission() {
    // 1 MiB budget: fem-00's square can never fit. The scheduler no longer
    // rejects it up front (deferred admission runs it solo once the device
    // is idle), so the mid-flight tracker is what stops it — with the
    // typed out_of_memory error, not a drop.
    let mut serve = Serve::spawn(&["--budget-mb", "1"]);
    let loaded = serve.request_ok(r#"{"op":"load","gen":"fem-00"}"#);
    let id = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let err = serve.request(&format!(r#"{{"op":"multiply","a":"{id}","b":"{id}"}}"#));
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("out_of_memory")
    );
    let stats = serve.request_ok(r#"{"op":"stats"}"#);
    // Nothing rejected, nothing shed: the job was admitted, ran, and the
    // budget stopped it mid-flight.
    assert_eq!(stats.get("rejected").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("shed").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("failed").and_then(Value::as_u64), Some(1));
    assert_eq!(
        stats.get("device_bytes_in_use").and_then(Value::as_u64),
        Some(0)
    );
}
