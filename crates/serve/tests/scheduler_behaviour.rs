//! Scheduler behaviour: weighted-fair interleaving, backpressure instead of
//! shedding, deferred admission, batch dependencies, cancellation, drain.

use std::sync::Arc;
use std::time::Duration;

use tsg_engine::{Engine, EngineConfig, EngineError};
use tsg_gen::suite::GenSpec;
use tsg_matrix::Csr;
use tsg_runtime::Device;
use tsg_serve::{
    Operand, SchedConfig, Scheduler, Submission, SubmitError, SubmitSpec, SERVE_JOB_BASE,
};

fn banded(n: usize, bandwidth: usize, per_row: usize) -> Csr<f64> {
    GenSpec::Banded {
        n,
        bandwidth,
        per_row,
        seed: 3,
    }
    .build()
}

/// A serial-dispatch scheduler: one worker, engine queue depth 1, so the
/// dispatch log is a deterministic total order.
fn serial_scheduler(budget: usize) -> Scheduler {
    let mut device = Device::rtx3090_sim();
    device.mem_budget = budget;
    let engine = Engine::new(EngineConfig {
        device,
        workers: 1,
        queue_depth: 1,
        ..EngineConfig::default()
    });
    Scheduler::new(Arc::new(engine), SchedConfig::default())
}

fn wait_all(tickets: &[tsg_serve::ServeTicket]) {
    for t in tickets {
        t.wait().unwrap();
    }
}

#[test]
fn serve_job_ids_live_in_their_own_id_space() {
    let sched = serial_scheduler(usize::MAX);
    let sid = sched.open_session("ids", 1.0, None).unwrap();
    let (id, _) = sched.engine().register(Csr::<f64>::identity(64));
    let Submission::Queued(tickets) = sched.submit(sid, vec![SubmitSpec::new(id, id)]).unwrap()
    else {
        panic!("empty queue must accept")
    };
    assert!(tickets[0].job >= SERVE_JOB_BASE);
    let done = tickets[0].wait().unwrap();
    assert_eq!(done.report.nnz_c, 64);
    assert!(done.kept.is_none(), "keep was not requested");
}

#[test]
fn equal_weights_interleave_sessions_strictly() {
    let sched = serial_scheduler(usize::MAX);
    let s1 = sched.open_session("one", 1.0, None).unwrap();
    let s2 = sched.open_session("two", 1.0, None).unwrap();
    let (blocker, _) = sched.engine().register(banded(2048, 24, 12));
    let (small, _) = sched.engine().register(Csr::<f64>::identity(64));

    // The blocker occupies the single worker; everything submitted while it
    // runs queues up behind it, and the dispatch order of that backlog is
    // the fairness decision under test.
    let Submission::Queued(head) = sched
        .submit(s1, vec![SubmitSpec::new(blocker, blocker)])
        .unwrap()
    else {
        panic!("empty queue must accept")
    };
    let mut tickets = Vec::new();
    for _ in 0..3 {
        for sid in [s1, s2] {
            match sched
                .submit(sid, vec![SubmitSpec::new(small, small)])
                .unwrap()
            {
                Submission::Queued(t) => tickets.extend(t),
                Submission::Backpressure(_) => panic!("queues are deep enough"),
            }
        }
    }
    wait_all(&head);
    wait_all(&tickets);

    let log = sched.dispatch_log();
    assert_eq!(log.len(), 7);
    assert_eq!(log[0].0, s1, "the blocker dispatched first");
    // Equal weights: the backlog alternates sessions — no run of two.
    for pair in log[1..].windows(2) {
        assert_ne!(pair[0].0, pair[1].0, "dispatch log {log:?}");
    }
}

#[test]
fn weights_bias_the_dispatch_ratio() {
    let sched = serial_scheduler(usize::MAX);
    let s1 = sched.open_session("heavy", 2.0, None).unwrap();
    let s2 = sched.open_session("light", 1.0, None).unwrap();
    let (blocker, _) = sched.engine().register(banded(2048, 24, 12));
    let (small, _) = sched.engine().register(Csr::<f64>::identity(64));

    let Submission::Queued(head) = sched
        .submit(s1, vec![SubmitSpec::new(blocker, blocker)])
        .unwrap()
    else {
        panic!("empty queue must accept")
    };
    let mut tickets = Vec::new();
    for _ in 0..6 {
        for sid in [s1, s2] {
            match sched
                .submit(sid, vec![SubmitSpec::new(small, small)])
                .unwrap()
            {
                Submission::Queued(t) => tickets.extend(t),
                Submission::Backpressure(_) => panic!("queues are deep enough"),
            }
        }
    }
    wait_all(&head);
    wait_all(&tickets);

    // In the first six backlog dispatches, the weight-2 session gets two
    // dispatches for every one of the weight-1 session.
    let log = sched.dispatch_log();
    let first_six = &log[1..7];
    let heavy = first_six.iter().filter(|(sid, _)| *sid == s1).count();
    assert_eq!(heavy, 4, "dispatch log {log:?}");
}

#[test]
fn full_queue_answers_with_a_hint_and_the_retry_succeeds() {
    let mut device = Device::rtx3090_sim();
    device.mem_budget = usize::MAX;
    let engine = Engine::new(EngineConfig {
        device,
        workers: 1,
        queue_depth: 1,
        ..EngineConfig::default()
    });
    let sched = Scheduler::new(
        Arc::new(engine),
        SchedConfig {
            backpressure_wait: Duration::from_millis(5),
            ..SchedConfig::default()
        },
    );
    let sid = sched.open_session("pressured", 1.0, Some(1)).unwrap();
    let (blocker, _) = sched.engine().register(banded(2048, 24, 12));
    let (small, _) = sched.engine().register(Csr::<f64>::identity(64));

    let Submission::Queued(head) = sched
        .submit(sid, vec![SubmitSpec::new(blocker, blocker)])
        .unwrap()
    else {
        panic!("empty queue must accept")
    };
    // Wait until the blocker leaves the session queue for the engine, so
    // the depth-1 queue is empty again.
    while sched.stats().in_flight == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let Submission::Queued(second) = sched
        .submit(sid, vec![SubmitSpec::new(small, small)])
        .unwrap()
    else {
        panic!("the emptied queue must accept one job")
    };
    // The queue (depth 1) is full and the blocker pins the worker: this
    // submission is held briefly, then answered with a hint — not dropped,
    // not an engine queue_full.
    let Submission::Backpressure(hint) = sched
        .submit(sid, vec![SubmitSpec::new(small, small)])
        .unwrap()
    else {
        panic!("a full session queue must answer with backpressure")
    };
    assert_eq!(hint.queue_position, 1);
    assert!(hint.retry_after >= Duration::from_millis(1));
    assert_eq!(sched.stats().backpressure_hints, 1);

    // Resubmitting after the backlog drains succeeds: nothing was lost.
    wait_all(&head);
    wait_all(&second);
    let Submission::Queued(third) = sched
        .submit(sid, vec![SubmitSpec::new(small, small)])
        .unwrap()
    else {
        panic!("the drained queue must accept the retry")
    };
    wait_all(&third);
    assert_eq!(sched.engine().stats().shed, 0, "the engine never sheds");
}

#[test]
fn over_budget_estimate_defers_and_then_completes() {
    // banded-4096's *fallback* estimate over-predicts its real peak ~2.2x:
    // with the budget between them, the seed engine rejects the job up
    // front (estimate_exceeds_budget) — the scheduler instead defers it
    // until the device is idle and runs it solo, where it fits. Sampling is
    // disabled here on purpose: the sampled estimator is accurate enough
    // that this product admits directly, and this test pins the
    // deferred-admission *backstop* — the path a pessimistic (fallback)
    // estimate takes.
    let budget = 4 << 20;
    let mut device = Device::rtx3090_sim();
    device.mem_budget = budget;
    // Engine queue depth 2: the dispatcher is allowed a second in-flight
    // job, so it actually *evaluates* the big head while the small job
    // runs — and parks it on memory instead.
    let engine = Engine::new(EngineConfig {
        device,
        workers: 1,
        queue_depth: 2,
        sample_rate: 0.0,
        ..EngineConfig::default()
    });
    let sched = Scheduler::new(Arc::new(engine), SchedConfig::default());
    let sid = sched.open_session("deferred", 1.0, None).unwrap();
    let (small_m, _) = sched.engine().register(banded(2048, 24, 12));
    let (big_m, _) = sched.engine().register(banded(4096, 16, 8));
    let est = sched.engine().estimate(big_m, big_m).unwrap();
    assert!(
        est.est_bytes > budget,
        "estimate {} must exceed the budget for this test to bite",
        est.est_bytes
    );

    // One batch: the small job dispatches immediately; the big job's
    // estimate exceeds even the whole budget, so while the small job is in
    // flight it must defer (not fail), then run once the device is idle.
    let Submission::Queued(tickets) = sched
        .submit(
            sid,
            vec![
                SubmitSpec::new(small_m, small_m),
                SubmitSpec::new(big_m, big_m),
            ],
        )
        .unwrap()
    else {
        panic!("empty queue must accept")
    };
    let small_done = tickets[0].wait().unwrap();
    let big_done = tickets[1].wait().unwrap();
    assert!(small_done.report.nnz_c > 0);
    assert!(big_done.report.nnz_c > 0);
    assert!(
        big_done.report.peak_bytes <= budget,
        "the real peak {} fits the budget",
        big_done.report.peak_bytes
    );

    let stats = sched.stats();
    assert!(stats.deferred >= 1, "the big job waited for memory");
    let engine_stats = sched.engine().stats();
    assert_eq!(engine_stats.rejected, 0, "no up-front estimate rejection");
    assert_eq!(engine_stats.shed, 0);
    assert_eq!(engine_stats.completed, 2);
}

#[test]
fn batch_refs_chain_products_and_failures_poison_dependents() {
    let sched = serial_scheduler(usize::MAX);
    let sid = sched.open_session("batch", 1.0, None).unwrap();
    let a = GenSpec::Scatter {
        n: 128,
        per_row: 4,
        seed: 5,
    }
    .build();
    let (ia, _) = sched.engine().register(a);

    // Gold: the same chain A², A⁴, A⁸ step by step. Content-hash ids make
    // the comparison exact — equal ids are bitwise-identical products.
    let engine = sched.engine();
    let r1 = engine
        .multiply_now(tsg_engine::JobSpec::new(ia, ia))
        .unwrap();
    let (gold1, _) = engine.register_product(Arc::clone(&r1.c));
    let r2 = engine
        .multiply_now(tsg_engine::JobSpec::new(gold1, gold1))
        .unwrap();
    let (gold2, _) = engine.register_product(Arc::clone(&r2.c));
    let r3 = engine
        .multiply_now(tsg_engine::JobSpec::new(gold2, gold2))
        .unwrap();
    let (gold3, _) = engine.register_product(Arc::clone(&r3.c));

    let mut chain = vec![
        SubmitSpec::new(ia, ia),
        SubmitSpec {
            a: Operand::Ref(0),
            b: Operand::Ref(0),
            ..SubmitSpec::new(ia, ia)
        },
        SubmitSpec {
            a: Operand::Ref(1),
            b: Operand::Ref(1),
            ..SubmitSpec::new(ia, ia)
        },
    ];
    chain[2].keep = true;
    let Submission::Queued(tickets) = sched.submit(sid, chain).unwrap() else {
        panic!("empty queue must accept")
    };
    let d1 = tickets[0].wait().unwrap();
    let d2 = tickets[1].wait().unwrap();
    let d3 = tickets[2].wait().unwrap();
    // Referenced entries register their products implicitly; the last kept
    // explicitly. All three match the gold chain bit for bit.
    assert_eq!(d1.kept, Some(gold1));
    assert_eq!(d2.kept, Some(gold2));
    assert_eq!(d3.kept, Some(gold3));
    assert_eq!(d3.report.nnz_c, r3.nnz_c);

    // A failed entry poisons its dependents with dependency_failed.
    let mut rect = tsg_matrix::Coo::<f64>::new(64, 32);
    rect.push(0, 0, 1.0);
    let (ir, _) = sched.engine().register(rect.to_csr());
    let bad = vec![
        SubmitSpec::new(ir, ir), // 64×32 · 64×32: shape mismatch
        SubmitSpec {
            a: Operand::Ref(0),
            b: Operand::Ref(0),
            ..SubmitSpec::new(ir, ir)
        },
    ];
    let Submission::Queued(tickets) = sched.submit(sid, bad).unwrap() else {
        panic!("empty queue must accept")
    };
    let failed_id = tickets[0].job;
    assert_eq!(tickets[0].wait().unwrap_err().code(), "shape_mismatch");
    match tickets[1].wait().unwrap_err() {
        EngineError::DependencyFailed { dep } => assert_eq!(dep, failed_id),
        other => panic!("expected DependencyFailed, got {other:?}"),
    }
}

#[test]
fn forward_and_self_refs_are_rejected_before_anything_queues() {
    let sched = serial_scheduler(usize::MAX);
    let sid = sched.open_session("refs", 1.0, None).unwrap();
    let (id, _) = sched.engine().register(Csr::<f64>::identity(64));
    for k in [0, 1] {
        // $0 in entry 0 is a self reference; $1 is a forward reference.
        let batch = vec![
            SubmitSpec {
                a: Operand::Ref(k),
                ..SubmitSpec::new(id, id)
            },
            SubmitSpec::new(id, id),
        ];
        let err = sched.submit(sid, batch).unwrap_err();
        assert_eq!(
            err,
            SubmitError::BadRef {
                index: 0,
                reference: k
            }
        );
    }
    assert_eq!(sched.stats().queue_depth, 0, "nothing was enqueued");
    // A batch deeper than the session queue is refused whole.
    let too_big = (0..9).map(|_| SubmitSpec::new(id, id)).collect();
    assert_eq!(
        sched.submit(sid, too_big).unwrap_err(),
        SubmitError::BatchTooLarge { len: 9, depth: 8 }
    );
}

#[test]
fn canceling_a_queued_job_completes_it_as_canceled() {
    let sched = serial_scheduler(usize::MAX);
    let sid = sched.open_session("cancel", 1.0, None).unwrap();
    let (blocker, _) = sched.engine().register(banded(2048, 24, 12));
    let (small, _) = sched.engine().register(Csr::<f64>::identity(64));
    let Submission::Queued(head) = sched
        .submit(sid, vec![SubmitSpec::new(blocker, blocker)])
        .unwrap()
    else {
        panic!("empty queue must accept")
    };
    while sched.stats().in_flight == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let Submission::Queued(queued) = sched
        .submit(sid, vec![SubmitSpec::new(small, small)])
        .unwrap()
    else {
        panic!("queue must accept")
    };
    assert!(sched.cancel(queued[0].job));
    assert_eq!(queued[0].wait().unwrap_err().code(), "canceled");
    assert!(!sched.cancel(queued[0].job), "already gone");
    wait_all(&head);
    let row = &sched.stats().sessions[0];
    assert_eq!(row.canceled, 1);
}

#[test]
fn drain_finishes_in_flight_work_and_fails_the_rest() {
    let sched = serial_scheduler(usize::MAX);
    let sid = sched.open_session("drain", 1.0, None).unwrap();
    let (blocker, _) = sched.engine().register(banded(2048, 24, 12));
    let (small, _) = sched.engine().register(Csr::<f64>::identity(64));
    let Submission::Queued(head) = sched
        .submit(sid, vec![SubmitSpec::new(blocker, blocker)])
        .unwrap()
    else {
        panic!("empty queue must accept")
    };
    while sched.stats().in_flight == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let Submission::Queued(queued) = sched
        .submit(sid, vec![SubmitSpec::new(small, small)])
        .unwrap()
    else {
        panic!("queue must accept")
    };

    // A zero deadline: whatever is queued (not yet dispatched) fails as
    // shutting_down; the in-flight blocker still finishes.
    assert!(!sched.drain(Duration::ZERO));
    assert_eq!(queued[0].wait().unwrap_err().code(), "shutting_down");
    assert_eq!(
        sched
            .submit(sid, vec![SubmitSpec::new(small, small)])
            .unwrap_err(),
        SubmitError::Draining
    );
    assert_eq!(
        sched.open_session("late", 1.0, None).unwrap_err(),
        SubmitError::Draining
    );
    head[0].wait().unwrap();
    assert!(sched.stats().draining);
}

#[test]
fn generous_drain_deadline_completes_everything() {
    let sched = serial_scheduler(usize::MAX);
    let sid = sched.open_session("graceful", 1.0, None).unwrap();
    let (small, _) = sched.engine().register(Csr::<f64>::identity(64));
    let specs = (0..5).map(|_| SubmitSpec::new(small, small)).collect();
    let Submission::Queued(tickets) = sched.submit(sid, specs).unwrap() else {
        panic!("empty queue must accept")
    };
    assert!(sched.shutdown(Duration::from_secs(30)));
    for t in &tickets {
        t.wait().unwrap();
    }
    let row = &sched.stats().sessions[0];
    assert_eq!(row.completed, 5);
    assert_eq!(row.failed, 0);
}
