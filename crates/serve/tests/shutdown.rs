//! Graceful-shutdown coverage: the `shutdown` verb and SIGINT both drain
//! in-flight work (nothing already admitted is abandoned), emit a final
//! stats line on stderr, and exit cleanly.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

use tsg_engine::json::{parse, Value};

fn spawn_server(extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_tsg-serve"))
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning tsg-serve")
}

fn request(child: &mut Child, reader: &mut impl BufRead, line: &str) -> Value {
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "{line}").expect("request written");
    stdin.flush().expect("request flushed");
    let mut resp = String::new();
    assert!(
        reader.read_line(&mut resp).expect("response read") > 0,
        "server closed stdout on {line}"
    );
    parse(&resp).unwrap_or_else(|e| panic!("malformed response {resp:?}: {e}"))
}

fn request_ok(child: &mut Child, reader: &mut impl BufRead, line: &str) -> Value {
    let v = request(child, reader, line);
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "expected ok for {line}, got {v}"
    );
    v
}

/// Loads a generator matrix and queues `jobs` async self-multiplies;
/// returns the serve job ids.
fn queue_burst(child: &mut Child, reader: &mut impl BufRead, jobs: usize) -> Vec<u64> {
    request_ok(child, reader, r#"{"op":"hello","v":2}"#);
    request_ok(
        child,
        reader,
        r#"{"op":"open_session","name":"drain-test","depth":8}"#,
    );
    let loaded = request_ok(child, reader, r#"{"op":"load","gen":"cluster-00"}"#);
    let m = loaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let submit = format!(r#"{{"op":"multiply","a":"{m}","b":"{m}","async":true}}"#);
    (0..jobs)
        .map(|_| {
            request_ok(child, reader, &submit)
                .get("job")
                .and_then(Value::as_u64)
                .expect("job id")
        })
        .collect()
}

fn collect_stderr(child: &mut Child) -> String {
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut err)
        .expect("stderr readable");
    err
}

#[test]
fn shutdown_verb_drains_pending_jobs_and_reports_final_stats() {
    let mut child = spawn_server(&["--workers", "1", "--queue-depth", "2"]);
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let jobs = queue_burst(&mut child, &mut reader, 4);

    // Shutdown with the burst still pending: the server must acknowledge,
    // then finish the admitted jobs before exiting.
    let bye = request(&mut child, &mut reader, r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    drop(child.stdin.take());

    let status = child.wait().expect("server exit status");
    assert!(status.success(), "shutdown exit was {status}");
    let err = collect_stderr(&mut child);
    let stats_line = err
        .lines()
        .find(|l| l.contains("final stats:"))
        .unwrap_or_else(|| panic!("no final stats line in stderr:\n{err}"));
    assert!(
        stats_line.contains(&format!("completed={}", jobs.len()))
            && stats_line.contains("failed=0")
            && stats_line.contains("drained=true"),
        "drain must complete every admitted job: {stats_line}"
    );
}

#[test]
fn sigint_drains_and_exits_cleanly() {
    let mut child = spawn_server(&["--workers", "1", "--queue-depth", "2"]);
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let jobs = queue_burst(&mut child, &mut reader, 3);

    let pid = child.id();
    let killed = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -INT {pid}"))
        .status()
        .expect("running kill");
    assert!(killed.success(), "kill -INT failed");

    let status = child.wait().expect("server exit status");
    assert!(status.success(), "SIGINT exit was {status}");
    let err = collect_stderr(&mut child);
    assert!(
        err.contains("SIGINT — draining"),
        "missing drain banner in stderr:\n{err}"
    );
    let stats_line = err
        .lines()
        .find(|l| l.contains("final stats:"))
        .unwrap_or_else(|| panic!("no final stats line in stderr:\n{err}"));
    assert!(
        stats_line.contains(&format!("completed={}", jobs.len()))
            && stats_line.contains("failed=0")
            && stats_line.contains("drained=true"),
        "SIGINT drain must complete every admitted job: {stats_line}"
    );
}
