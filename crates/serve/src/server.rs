//! Transports for the `tsg-serve` binary: stdin/stdout or TCP, one
//! [`ServeSession`] per connection, one engine and scheduler for all — so
//! every connection shares the matrix registry, the device budget, and the
//! weighted-fair dispatch order.
//!
//! Shutdown is always a *drain*: on SIGINT, stdin EOF, or the `shutdown`
//! verb the server stops accepting work, lets queued and in-flight jobs
//! finish (up to `--drain-ms`), prints a final statistics line to stderr,
//! and exits 0. Nothing in flight is dropped inside the deadline.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tsg_engine::protocol::Control;
use tsg_engine::{Engine, EngineConfig};
use tsg_runtime::Device;

use crate::scheduler::{SchedConfig, Scheduler};
use crate::wire::ServeSession;

/// Everything the binary's command line configures.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// The engine below the scheduler.
    pub engine: EngineConfig,
    /// The scheduler's session/backpressure knobs.
    pub sched: SchedConfig,
    /// Listen address; `None` serves stdin/stdout.
    pub tcp: Option<String>,
    /// Drain deadline for graceful shutdown.
    pub drain: Duration,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            engine: EngineConfig::default(),
            sched: SchedConfig::default(),
            tcp: None,
            drain: Duration::from_secs(10),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("tsg-serve: {msg}");
    eprintln!(
        "usage: tsg-serve [--device 0|1] [--workers N] [--queue-depth N] \
         [--cache-mb N] [--budget-mb N] [--timeout-ms N] [--profile] \
         [--session-depth N] [--drain-ms N] [--tcp ADDR]"
    );
    std::process::exit(2);
}

/// Parses the binary's argument list (without the program name).
pub fn parse_args(argv: impl IntoIterator<Item = String>) -> ServeOpts {
    let mut opts = ServeOpts::default();
    let mut cache_mb: Option<usize> = None;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--device" => {
                opts.engine.device = match value("--device").as_str() {
                    "0" => Device::rtx3090_sim(),
                    "1" => Device::rtx3060_sim(),
                    other => die(&format!("unknown device index {other}")),
                };
            }
            "--workers" => {
                opts.engine.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers wants an integer"));
            }
            "--queue-depth" => {
                opts.engine.queue_depth = value("--queue-depth")
                    .parse()
                    .unwrap_or_else(|_| die("--queue-depth wants an integer"));
            }
            "--cache-mb" => {
                let mb: usize = value("--cache-mb")
                    .parse()
                    .unwrap_or_else(|_| die("--cache-mb wants an integer"));
                cache_mb = Some(mb << 20);
            }
            "--budget-mb" => {
                let mb: usize = value("--budget-mb")
                    .parse()
                    .unwrap_or_else(|_| die("--budget-mb wants an integer"));
                opts.engine.device.mem_budget = mb << 20;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--timeout-ms wants an integer"));
                opts.engine.default_timeout = Some(Duration::from_millis(ms));
            }
            "--session-depth" => {
                opts.sched.session_queue_depth = value("--session-depth")
                    .parse::<usize>()
                    .ok()
                    .filter(|&d| d > 0)
                    .unwrap_or_else(|| die("--session-depth wants a positive integer"));
            }
            "--drain-ms" => {
                let ms: u64 = value("--drain-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--drain-ms wants an integer"));
                opts.drain = Duration::from_millis(ms);
            }
            "--profile" => opts.engine.profile = true,
            "--tcp" => opts.tcp = Some(value("--tcp")),
            "--help" | "-h" => die("serve the tiled SpGEMM engine over JSON lines"),
            other => die(&format!("unknown argument {other}")),
        }
    }
    // The cache defaults to half the (possibly overridden) device budget.
    opts.engine.cache_bytes = cache_mb.unwrap_or(opts.engine.device.mem_budget / 2);
    opts
}

/// Pumps one client: request line in, response line out, until EOF, a write
/// failure, or the `shutdown` verb.
pub fn serve_stream(
    session: &ServeSession,
    input: impl BufRead,
    mut output: impl Write,
) -> Control {
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client hung up
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, control) = session.handle_line(&line);
        if writeln!(output, "{resp}")
            .and_then(|()| output.flush())
            .is_err()
        {
            break;
        }
        if control == Control::Shutdown {
            return Control::Shutdown;
        }
    }
    Control::Continue
}

/// SIGINT flag; the handler only stores, the monitor thread does the work.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    // Minimal signal(2) binding — the workspace builds without libc. The
    // handler stays async-signal-safe (a single atomic store); everything
    // else happens on the monitor thread.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Drains the scheduler, prints the final statistics line, and reports
/// whether the drain met its deadline.
fn graceful_exit(scheduler: &Scheduler, drain: Duration) -> bool {
    let drained = scheduler.shutdown(drain);
    let s = scheduler.stats();
    let (mut completed, mut failed) = (0u64, 0u64);
    for row in &s.sessions {
        completed += row.completed;
        failed += row.failed;
    }
    eprintln!(
        "tsg-serve: final stats: sessions={} dispatched={} completed={completed} \
         failed={failed} backpressure_hints={} deferred={} drained={drained}",
        s.sessions.len(),
        s.dispatched,
        s.backpressure_hints,
        s.deferred,
    );
    drained
}

/// Runs the server to completion. The process exits from inside on SIGINT
/// (after draining); otherwise returns the exit code.
pub fn run(opts: ServeOpts) -> ExitCode {
    let ServeOpts {
        engine: cfg,
        sched,
        tcp,
        drain,
    } = opts;
    eprintln!(
        "tsg-serve: device {} ({} threads, {} MiB budget), {} workers, queue depth {}, \
         cache {} MiB, session depth {}{}",
        cfg.device.name,
        cfg.device.threads,
        cfg.device.mem_budget >> 20,
        cfg.workers,
        cfg.queue_depth,
        cfg.cache_bytes >> 20,
        sched.session_queue_depth,
        if cfg.profile { ", profiling" } else { "" },
    );
    let engine = Arc::new(Engine::new(cfg));
    let scheduler = Arc::new(Scheduler::new(engine, sched));

    // SIGINT: stop accepting, drain in-flight work to the deadline, report,
    // exit 0. std's readers retry EINTR, so a flag check in the read loop
    // would never run — a monitor thread polls the flag instead.
    install_sigint_handler();
    {
        let scheduler = Arc::clone(&scheduler);
        std::thread::Builder::new()
            .name("tsg-serve-signals".into())
            .spawn(move || loop {
                if INTERRUPTED.load(Ordering::SeqCst) {
                    eprintln!("tsg-serve: SIGINT — draining");
                    graceful_exit(&scheduler, drain);
                    std::process::exit(0);
                }
                std::thread::sleep(Duration::from_millis(25));
            })
            .expect("spawning signal monitor");
    }

    match tcp {
        None => {
            let session = ServeSession::new(Arc::clone(&scheduler));
            let stdin = std::io::stdin();
            serve_stream(&session, stdin.lock(), std::io::stdout().lock());
        }
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("tsg-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let local = listener.local_addr().ok();
            eprintln!(
                "tsg-serve: listening on {}",
                local.map_or(addr, |a| a.to_string())
            );
            // A shutdown request from any connection flips the flag, then
            // self-connects so the blocking accept loop observes it.
            let stop = Arc::new(AtomicBool::new(false));
            for stream in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let scheduler = Arc::clone(&scheduler);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let session = ServeSession::new(scheduler);
                    let reader = match stream.try_clone() {
                        Ok(s) => BufReader::new(s),
                        Err(_) => return,
                    };
                    if serve_stream(&session, reader, stream) == Control::Shutdown {
                        stop.store(true, Ordering::Relaxed);
                        if let Some(addr) = local {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                });
            }
        }
    }
    graceful_exit(&scheduler, drain);
    ExitCode::SUCCESS
}
