//! Protocol session verbs (v2 fairness, v3 op expressions) over the
//! engine's JSON-lines protocol.
//!
//! A [`ServeSession`] wraps the engine's [`Session`] and intercepts the
//! verbs that belong to the serving layer; everything else (load, convert,
//! estimate, add, evict, unload, profile, hello…) delegates to the inner
//! session unchanged, so a v1 client keeps working verbatim.
//!
//! Intercepted verbs:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"open_session","name":"etl","weight":2,"depth":8}` | `{"ok":true,"session":1,"weight":2}` |
//! | `{"op":"multiply","a":"m…","b":"m…"[,"keep":true]}` | engine report, plus `"c":"m…"` when kept |
//! | `{"op":"multiply",…,"mask":"m…"}` | masked product `(A·B) ∘ mask` (v3) |
//! | `{"op":"multiply",…}` (queue full) | `{"ok":false,"error":{"code":"backpressure",…},"retry_after_ms":N,"queue_position":P}` |
//! | `{"op":"multiply",…,"async":true}` | `{"ok":true,"job":4294967296,"queued":true}` |
//! | `{"op":"multiply_many","jobs":[{"a":"m…","b":"m…","keep":true},{"a":"$0","b":"$0"}]}` | `{"ok":true,"results":[…]}` |
//! | `{"op":"multiply_many",…,"async":true}` | `{"ok":true,"jobs":[…],"queued":true}` |
//! | `{"op":"chain","ids":["m…","m…","m…"]}` | final link's report plus `"links"` and `"intermediates"` (v3) |
//! | `{"op":"power","a":"m…","k":3}` | as `chain` with `k` copies of `a` (v3) |
//! | `{"op":"wait","job":N}` | serve ids resolve here, engine ids delegate |
//! | `{"op":"cancel","job":N}` | likewise |
//! | `{"op":"stats"}` | the engine object extended with a `"serve"` member |
//! | `{"op":"shutdown"}` | `{"ok":true,"bye":true}`; the transport drains |
//!
//! `multiply` routed through the scheduler never answers `queue_full`: a
//! full session queue holds the submission briefly and then answers with
//! the structured `backpressure` hint above — the client resubmits,
//! nothing is dropped. Batch entries may name an earlier entry's product
//! as `"$k"` (zero-based, strictly backwards); referenced products are
//! registered automatically and the reply carries their `"c"` handles.
//!
//! `chain`/`power` are not forwarded to the engine session's own v3 verbs:
//! the serve layer lowers them onto exactly that `$k` machinery (one
//! linked multiply per link, intermediates registered from their tiled
//! forms with `materialize:false`), so chain links interleave with other
//! sessions' jobs under weighted-fair dispatch instead of holding a worker
//! for the whole expression. A job-shaped verb may carry
//! `"materialize":false` to register its kept product tiled-resident
//! (`multiply` defaults to `true`, `chain`/`power` to `false`).
//!
//! The first scheduler-routed verb on a session that never sent
//! `open_session` opens one implicitly (weight 1, default depth), so
//! single-client scripts need no ceremony.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use tilespgemm_core::{Config, Scheduling};
use tsg_engine::json::{obj, parse, Value};
use tsg_engine::protocol::{
    engine_error_response, error_response, report_response, stats_response, versioned, Control,
    Session, MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use tsg_engine::{Engine, MatrixId};

use crate::scheduler::{
    BackpressureHint, Operand, Scheduler, SchedulerStats, ServeTicket, Submission, SubmitError,
    SubmitSpec, SERVE_JOB_BASE,
};

/// One client's protocol state: the engine session it delegates to, the
/// shared scheduler, its (lazily opened) scheduler session, and the tickets
/// of its `"async"` scheduler jobs.
pub struct ServeSession {
    inner: Session,
    scheduler: Arc<Scheduler>,
    session: Mutex<Option<u64>>,
    tickets: Mutex<HashMap<u64, ServeTicket>>,
}

impl ServeSession {
    /// A session over `scheduler` (and its engine).
    pub fn new(scheduler: Arc<Scheduler>) -> Self {
        ServeSession {
            inner: Session::new(Arc::clone(scheduler.engine())),
            scheduler,
            session: Mutex::new(None),
            tickets: Mutex::new(HashMap::new()),
        }
    }

    /// The shared scheduler.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    fn engine(&self) -> &Arc<Engine> {
        self.scheduler.engine()
    }

    /// Handles one request line — serve verbs here, everything else in the
    /// engine session. Same contract as [`Session::handle_line`].
    pub fn handle_line(&self, line: &str) -> (String, Control) {
        // Oversized frames and unparseable lines take the engine session's
        // hardened path (frame-limit refusal, bad_request) untouched.
        if line.len() > MAX_FRAME_BYTES {
            return self.inner.handle_line(line);
        }
        let Ok(req) = parse(line) else {
            return self.inner.handle_line(line);
        };
        let op = req.get("op").and_then(Value::as_str).unwrap_or("");
        if !matches!(
            op,
            "open_session"
                | "multiply"
                | "multiply_many"
                | "chain"
                | "power"
                | "wait"
                | "cancel"
                | "stats"
                | "shutdown"
        ) {
            return self.inner.handle_line(line);
        }
        // Same version gate as the engine session: a client naming a
        // generation we don't speak gets the stable mismatch code here too.
        if let Some(v) = req.get("v") {
            if !v
                .as_u64()
                .is_some_and(|v| (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v))
            {
                let msg = format!(
                    "server speaks protocol versions \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION} only"
                );
                return (
                    versioned(error_response("protocol_mismatch", &msg, &[])).to_string(),
                    Control::Continue,
                );
            }
        }
        let (value, control) = match op {
            "open_session" => (self.open_session(&req), Control::Continue),
            "multiply" => (self.multiply(&req), Control::Continue),
            "multiply_many" => (self.multiply_many(&req), Control::Continue),
            "chain" => (self.chain(&req), Control::Continue),
            "power" => (self.power(&req), Control::Continue),
            "wait" => match req.get("job").and_then(Value::as_u64) {
                Some(job) if job >= SERVE_JOB_BASE => (self.wait(job), Control::Continue),
                _ => return self.inner.handle_line(line),
            },
            "cancel" => match req.get("job").and_then(Value::as_u64) {
                Some(job) if job >= SERVE_JOB_BASE => (self.cancel(job), Control::Continue),
                _ => return self.inner.handle_line(line),
            },
            "stats" => (self.stats(), Control::Continue),
            "shutdown" => (
                obj([("ok", true.into()), ("bye", true.into())]),
                Control::Shutdown,
            ),
            _ => unreachable!("op list matched above"),
        };
        (versioned(value).to_string(), control)
    }

    fn open_session(&self, req: &Value) -> Value {
        let name = req.get("name").and_then(Value::as_str).unwrap_or("client");
        let weight = req.get("weight").and_then(Value::as_f64).unwrap_or(1.0);
        let depth = req
            .get("depth")
            .and_then(Value::as_u64)
            .map(|d| d.max(1) as usize);
        match self.scheduler.open_session(name, weight, depth) {
            Ok(id) => {
                *self.lock_session() = Some(id);
                obj([
                    ("ok", true.into()),
                    ("session", id.into()),
                    ("weight", weight.into()),
                ])
            }
            Err(e) => submit_error_response(&e),
        }
    }

    /// This client's scheduler session, opening one implicitly on first use.
    fn session_id(&self) -> Result<u64, SubmitError> {
        let mut guard = self.lock_session();
        if let Some(id) = *guard {
            return Ok(id);
        }
        let id = self.scheduler.open_session("client", 1.0, None)?;
        *guard = Some(id);
        Ok(id)
    }

    fn multiply(&self, req: &Value) -> Value {
        let spec = match parse_spec(req) {
            Ok(s) => s,
            Err(msg) => return error_response("bad_request", &msg, &[]),
        };
        if [Some(spec.a), Some(spec.b), spec.mask]
            .into_iter()
            .flatten()
            .any(|op| matches!(op, Operand::Ref(_)))
        {
            return error_response("bad_request", "\"$k\" refs need multiply_many", &[]);
        }
        let session = match self.session_id() {
            Ok(s) => s,
            Err(e) => return submit_error_response(&e),
        };
        let tickets = match self.scheduler.submit(session, vec![spec]) {
            Ok(Submission::Queued(t)) => t,
            Ok(Submission::Backpressure(hint)) => return backpressure_response(&hint),
            Err(e) => return submit_error_response(&e),
        };
        let ticket = tickets.into_iter().next().expect("one ticket per spec");
        if req.get("async").and_then(Value::as_bool) == Some(true) {
            let job = ticket.job;
            self.lock_tickets().insert(job, ticket);
            return obj([
                ("ok", true.into()),
                ("job", job.into()),
                ("queued", true.into()),
            ]);
        }
        self.render(&ticket)
    }

    fn multiply_many(&self, req: &Value) -> Value {
        let Some(jobs) = req.get("jobs").and_then(Value::as_arr) else {
            return error_response("bad_request", "multiply_many needs a \"jobs\" array", &[]);
        };
        if jobs.is_empty() {
            return error_response("bad_request", "\"jobs\" must not be empty", &[]);
        }
        let mut specs = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            match parse_spec(job) {
                Ok(s) => specs.push(s),
                Err(msg) => {
                    let msg = format!("jobs[{i}]: {msg}");
                    return error_response("bad_request", &msg, &[]);
                }
            }
        }
        let session = match self.session_id() {
            Ok(s) => s,
            Err(e) => return submit_error_response(&e),
        };
        let tickets = match self.scheduler.submit(session, specs) {
            Ok(Submission::Queued(t)) => t,
            Ok(Submission::Backpressure(hint)) => return backpressure_response(&hint),
            Err(e) => return submit_error_response(&e),
        };
        if req.get("async").and_then(Value::as_bool) == Some(true) {
            let ids: Vec<Value> = tickets.iter().map(|t| t.job.into()).collect();
            let mut map = self.lock_tickets();
            for t in tickets {
                map.insert(t.job, t);
            }
            return obj([
                ("ok", true.into()),
                ("jobs", Value::Arr(ids)),
                ("queued", true.into()),
            ]);
        }
        // Sync batch: wait for every entry in order. Per-entry failures are
        // rendered in place — one bad entry does not hide its siblings.
        let results: Vec<Value> = tickets.iter().map(|t| self.render(t)).collect();
        obj([("ok", true.into()), ("results", Value::Arr(results))])
    }

    fn chain(&self, req: &Value) -> Value {
        let Some(ids) = req.get("ids").and_then(Value::as_arr) else {
            return error_response("bad_request", "chain needs an \"ids\" array", &[]);
        };
        let mut operands = Vec::with_capacity(ids.len());
        for (i, v) in ids.iter().enumerate() {
            let Some(s) = v.as_str() else {
                return error_response("bad_request", "each chain id must be a string", &[]);
            };
            match operand_from_str(s, "ids") {
                Ok(op) => operands.push(op),
                Err(msg) => {
                    let msg = format!("ids[{i}]: {msg}");
                    return error_response("bad_request", &msg, &[]);
                }
            }
        }
        self.linked_chain(req, operands)
    }

    fn power(&self, req: &Value) -> Value {
        let Some(k) = req.get("k").and_then(Value::as_u64) else {
            return error_response("bad_request", "power needs a numeric \"k\"", &[]);
        };
        let a = match parse_operand(req, "a") {
            Ok(op) => op,
            Err(msg) => return error_response("bad_request", &msg, &[]),
        };
        self.linked_chain(req, vec![a; k as usize])
    }

    /// Lowers `operands[0]·operands[1]·…` into one atomic batch of
    /// `$k`-linked multiply jobs: link `j` multiplies the previous link's
    /// product (a back-reference) by `operands[j+1]`, so the links dispatch
    /// through the same weighted-fair queue as any other batch — a long
    /// chain cannot starve another session. Intermediates register as
    /// *tiled* residents (`materialize: false`), so the chain runs
    /// handle-in/handle-out with zero CSR round-trips; the final link
    /// carries the request's `mask`/`keep`/`materialize`.
    fn linked_chain(&self, req: &Value, operands: Vec<Operand>) -> Value {
        if operands.len() < 2 {
            return error_response("invalid_op", "a chain needs at least two operands", &[]);
        }
        if operands.iter().any(|op| matches!(op, Operand::Ref(_))) {
            return error_response(
                "bad_request",
                "chain ids must be matrix handles, not \"$k\" refs",
                &[],
            );
        }
        let mask = match req.get("mask") {
            Some(_) => match parse_operand(req, "mask") {
                Ok(Operand::Ref(_)) => {
                    return error_response(
                        "bad_request",
                        "a chain mask must be a matrix handle, not a \"$k\" ref",
                        &[],
                    )
                }
                Ok(op) => Some(op),
                Err(msg) => return error_response("bad_request", &msg, &[]),
            },
            None => None,
        };
        let (config, timeout) = match parse_overrides(req) {
            Ok(o) => o,
            Err(msg) => return error_response("bad_request", &msg, &[]),
        };
        let keep = req.get("keep").and_then(Value::as_bool) == Some(true);
        let materialize = req
            .get("materialize")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let last = operands.len() - 2;
        let specs: Vec<SubmitSpec> = (0..operands.len() - 1)
            .map(|j| SubmitSpec {
                a: if j == 0 {
                    operands[0]
                } else {
                    Operand::Ref(j - 1)
                },
                b: operands[j + 1],
                mask: if j == last { mask } else { None },
                config,
                timeout,
                keep: j == last && keep,
                materialize: j == last && materialize,
            })
            .collect();
        let session = match self.session_id() {
            Ok(s) => s,
            Err(e) => return submit_error_response(&e),
        };
        let tickets = match self.scheduler.submit(session, specs) {
            Ok(Submission::Queued(t)) => t,
            Ok(Submission::Backpressure(hint)) => return backpressure_response(&hint),
            Err(e) => return submit_error_response(&e),
        };
        if req.get("async").and_then(Value::as_bool) == Some(true) {
            let ids: Vec<Value> = tickets.iter().map(|t| t.job.into()).collect();
            let mut map = self.lock_tickets();
            for t in tickets {
                map.insert(t.job, t);
            }
            return obj([
                ("ok", true.into()),
                ("jobs", Value::Arr(ids)),
                ("queued", true.into()),
            ]);
        }
        // Sync: wait for every link in order; the reply is the final link's
        // report plus the chain members. A failed link fails its dependents
        // with `dependency_failed`, which the final render then carries.
        let links = tickets.len();
        let mut intermediates = Vec::new();
        for t in &tickets[..links - 1] {
            if let Ok(done) = t.wait() {
                if let Some(id) = done.kept {
                    intermediates.push(Value::Str(id.to_string()));
                }
            }
        }
        let mut v = self.render(&tickets[links - 1]);
        if let Value::Obj(ref mut members) = v {
            let ok = members
                .iter()
                .any(|(k, val)| k == "ok" && matches!(val, Value::Bool(true)));
            if ok {
                members.push(("links".to_string(), (links as u64).into()));
                members.push(("intermediates".to_string(), Value::Arr(intermediates)));
            }
        }
        v
    }

    fn wait(&self, job: u64) -> Value {
        let Some(ticket) = self.lock_tickets().remove(&job) else {
            return error_response("bad_request", "unknown job id for this session", &[]);
        };
        self.render(&ticket)
    }

    fn cancel(&self, job: u64) -> Value {
        let canceled = self.scheduler.cancel(job);
        obj([
            ("ok", true.into()),
            ("job", job.into()),
            ("canceled", canceled.into()),
        ])
    }

    fn stats(&self) -> Value {
        let mut engine_stats = stats_response(self.engine());
        if let Value::Obj(ref mut members) = engine_stats {
            members.push((
                "serve".to_string(),
                serve_stats_json(&self.scheduler.stats()),
            ));
        }
        engine_stats
    }

    /// Renders one finished scheduler job exactly like an engine reply
    /// (same members, plus `"job"` rewritten to the serve-level id and
    /// `"c"` when the product was kept).
    fn render(&self, ticket: &ServeTicket) -> Value {
        match ticket.wait() {
            Ok(done) => {
                let collector = self.engine().collector().map(Arc::as_ref);
                let mut v = report_response(&done.report, collector, done.kept);
                if let Value::Obj(ref mut members) = v {
                    for (k, val) in members.iter_mut() {
                        if k == "job" {
                            *val = ticket.job.into();
                        }
                    }
                }
                v
            }
            Err(e) => engine_error_response(&e),
        }
    }

    fn lock_session(&self) -> MutexGuard<'_, Option<u64>> {
        self.session.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_tickets(&self) -> MutexGuard<'_, HashMap<u64, ServeTicket>> {
        self.tickets.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Parses one multiply spec: operands (`"m…"` ids or `"$k"` batch refs,
/// `"mask"` included) and the engine's scheduling/pair_reuse/timeout/keep/
/// materialize overrides.
fn parse_spec(req: &Value) -> Result<SubmitSpec, String> {
    let a = parse_operand(req, "a")?;
    let b = parse_operand(req, "b")?;
    let mask = match req.get("mask") {
        Some(_) => Some(parse_operand(req, "mask")?),
        None => None,
    };
    let (config, timeout) = parse_overrides(req)?;
    Ok(SubmitSpec {
        a,
        b,
        mask,
        config,
        timeout,
        keep: req.get("keep").and_then(Value::as_bool) == Some(true),
        materialize: req
            .get("materialize")
            .and_then(Value::as_bool)
            .unwrap_or(true),
    })
}

/// The engine overrides shared by every job-shaped verb.
fn parse_overrides(req: &Value) -> Result<(Option<Config>, Option<Duration>), String> {
    let mut config: Option<Config> = None;
    if let Some(s) = req.get("scheduling").and_then(Value::as_str) {
        let scheduling = match s {
            "per-tile" => Scheduling::PerTile,
            "per-tile-row" => Scheduling::PerTileRow,
            "binned" => Scheduling::Binned,
            _ => return Err("unknown scheduling".to_string()),
        };
        config.get_or_insert_with(Config::default).scheduling = scheduling;
    }
    if let Some(p) = req.get("pair_reuse").and_then(Value::as_bool) {
        config.get_or_insert_with(Config::default).pair_reuse = p;
    }
    Ok((
        config,
        req.get("timeout_ms")
            .and_then(Value::as_u64)
            .map(Duration::from_millis),
    ))
}

fn parse_operand(req: &Value, key: &str) -> Result<Operand, String> {
    let s = req
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing operand \"{key}\""))?;
    operand_from_str(s, key)
}

fn operand_from_str(s: &str, what: &str) -> Result<Operand, String> {
    if let Some(rest) = s.strip_prefix('$') {
        let k: usize = rest
            .parse()
            .map_err(|_| format!("operand \"{what}\": malformed batch ref {s:?}"))?;
        return Ok(Operand::Ref(k));
    }
    s.parse::<MatrixId>()
        .map(Operand::Id)
        .map_err(|()| format!("operand \"{what}\": malformed matrix id (want m + 16 hex digits)"))
}

/// The structured flow-control reply: an error envelope (so naive clients
/// treat it as a failure and retry) carrying machine-readable hints at the
/// top level.
fn backpressure_response(hint: &BackpressureHint) -> Value {
    let mut v = error_response(
        "backpressure",
        "session queue is full; hold the work and resubmit after retry_after_ms",
        &[],
    );
    if let Value::Obj(ref mut members) = v {
        members.push((
            "retry_after_ms".to_string(),
            Value::Num(hint.retry_after.as_secs_f64() * 1e3),
        ));
        members.push((
            "queue_position".to_string(),
            (hint.queue_position as u64).into(),
        ));
    }
    v
}

fn submit_error_response(e: &SubmitError) -> Value {
    match e {
        SubmitError::UnknownSession(id) => {
            let msg = format!("session {id} is not open");
            error_response("bad_request", &msg, &[])
        }
        SubmitError::Draining => error_response(
            "shutting_down",
            "the server is draining and accepts no new work",
            &[],
        ),
        SubmitError::BadRef { index, reference } => {
            let msg =
                format!("jobs[{index}]: \"${reference}\" must reference an earlier batch entry");
            error_response("bad_request", &msg, &[])
        }
        SubmitError::BatchTooLarge { len, depth } => {
            let msg = format!("batch of {len} exceeds the session queue depth {depth}");
            error_response("bad_request", &msg, &[])
        }
    }
}

/// The scheduler's statistics as the `stats` verb's `"serve"` member.
pub fn serve_stats_json(s: &SchedulerStats) -> Value {
    let sessions: Vec<Value> = s
        .sessions
        .iter()
        .map(|row| {
            obj([
                ("id", row.id.into()),
                ("name", row.name.as_str().into()),
                ("weight", row.weight.into()),
                ("queued", row.queued.into()),
                ("enqueued", row.enqueued.into()),
                ("completed", row.completed.into()),
                ("failed", row.failed.into()),
                ("canceled", row.canceled.into()),
                ("hints", row.hints.into()),
            ])
        })
        .collect();
    obj([
        ("sessions", Value::Arr(sessions)),
        ("queue_depth", s.queue_depth.into()),
        ("queue_high_water", s.queue_high_water.into()),
        ("wait_ms_mean", Value::Num(s.wait_mean.as_secs_f64() * 1e3)),
        ("wait_samples", s.wait_samples.into()),
        ("backpressure_hints", s.backpressure_hints.into()),
        ("deferred", s.deferred.into()),
        ("batch_jobs", s.batch_jobs.into()),
        ("dispatched", s.dispatched.into()),
        ("in_flight", s.in_flight.into()),
        ("exec_ms_ewma", Value::Num(s.exec_ewma.as_secs_f64() * 1e3)),
        ("draining", s.draining.into()),
    ])
}
