//! Weighted-fair, backpressure-first job scheduler over the resident engine.
//!
//! The engine's own queue sheds: a full queue or an over-budget estimate
//! rejects the submission, and under a burst that is dropped work. This
//! scheduler replaces shedding with *backpressure* and *deferral*:
//!
//! * Every client holds a [session](Scheduler::open_session) with its own
//!   bounded FIFO queue and a fairness weight. A submission that finds the
//!   queue full is briefly held (the connection blocks — natural flow
//!   control) and, if space does not free in time, answered with a
//!   structured [`BackpressureHint`] (`retry_after`, `queue_position`)
//!   instead of an error drop. The client resubmits; nothing is lost.
//! * Dispatch across sessions is weighted-fair queueing over virtual time:
//!   each dispatch advances its session's virtual finish tag by
//!   `1/weight`, and the runnable session with the smallest tag goes next.
//!   A bulk batch in one session therefore cannot starve another session's
//!   interactive jobs — dispatches interleave in weight proportion.
//! * `estimate_exceeds_budget` becomes *deferred admission*: a job whose
//!   predicted footprint does not fit the memory currently free
//!   (`budget − in-flight bytes`) parks at the head of the dispatch order;
//!   completions drain memory and re-evaluate it, and once the device is
//!   idle it dispatches solo (bypassing the engine's static check with
//!   [`JobSpec::admit_over_budget`]) with the mid-flight tracker as the
//!   backstop. Dispatch is memory-ordered: while the fair-queue head is
//!   parked nothing overtakes it, so deferral cannot become starvation.
//! * Batches ([`Scheduler::submit`] with several [`SubmitSpec`]s) may
//!   reference earlier entries' products as operands ([`Operand::Ref`],
//!   `$k` on the wire). Referenced products are registered on completion
//!   ([`Engine::register_product`]) and the dependent job becomes runnable
//!   the moment its operand exists.
//! * Pipeline-stage overlap: after each dispatch the scheduler peeks the
//!   next runnable job and warms its operand conversions on a dedicated
//!   conversion thread ([`Engine::resolve_tiled`] converts outside the
//!   registry lock), so job N+1's CSR→tiled conversion runs while job N
//!   computes.
//!
//! Serve-level job ids live at [`SERVE_JOB_BASE`] and above so they can
//! never collide with the engine's own ticket ids on the shared `wait`
//! verb.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tilespgemm_core::Config;
use tsg_engine::engine::JobTicket;
use tsg_engine::{Engine, EngineError, JobReport, JobSpec, MatrixId, OpSpec};
use tsg_runtime::observe::{Counter, QueueGauge, WaitGauge};

/// Serve-level job ids count up from here (engine ticket ids count up from
/// 1), so the two id spaces never collide on the protocol's `wait` verb.
pub const SERVE_JOB_BASE: u64 = 1 << 32;

/// Scheduler construction parameters.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Default bounded depth of each session's queue (a session may
    /// override it at open time).
    pub session_queue_depth: usize,
    /// How long a submission that finds its queue full is held waiting for
    /// space before it is answered with a [`BackpressureHint`].
    pub backpressure_wait: Duration,
    /// Warm the next runnable job's operand conversions on the conversion
    /// thread while the current job computes.
    pub prefetch: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            session_queue_depth: 8,
            backpressure_wait: Duration::from_millis(25),
            prefetch: true,
        }
    }
}

/// One operand of a scheduled multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A registered matrix.
    Id(MatrixId),
    /// The product of an earlier entry in the same batch (`"$k"` on the
    /// wire). Must point strictly backwards.
    Ref(usize),
}

/// One multiply in a submission (single job or batch entry).
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Left operand.
    pub a: Operand,
    /// Right operand.
    pub b: Operand,
    /// Optional mask operand: the job computes `(A·B) ∘ mask` with the
    /// mask pushed into the pipeline's step 2. Like `a`/`b` it may be a
    /// `$k` back-reference, so a chain's final link can mask by an earlier
    /// entry's product.
    pub mask: Option<Operand>,
    /// Pipeline configuration override; `None` uses the engine's base.
    pub config: Option<Config>,
    /// Total queue-wait deadline (scheduler and engine queues combined).
    pub timeout: Option<Duration>,
    /// Register the product as an operand and report its handle.
    pub keep: bool,
    /// How a registered product (kept or `$k`-referenced) enters the
    /// registry: `true` materializes its CSR (the v2 behaviour, handles
    /// usable everywhere), `false` registers the tiled form as a resident
    /// entry — chain links stay handle-in/handle-out with no CSR
    /// round-trip.
    pub materialize: bool,
}

impl SubmitSpec {
    /// A job multiplying `a · b` with defaults.
    pub fn new(a: MatrixId, b: MatrixId) -> Self {
        SubmitSpec {
            a: Operand::Id(a),
            b: Operand::Id(b),
            mask: None,
            config: None,
            timeout: None,
            keep: false,
            materialize: true,
        }
    }

    /// Every operand the job depends on, mask included.
    fn operands(&self) -> impl Iterator<Item = Operand> + '_ {
        [Some(self.a), Some(self.b), self.mask]
            .into_iter()
            .flatten()
    }
}

/// The engine op for resolved operands: masked multiply when a mask rides
/// along, plain multiply otherwise.
fn op_spec(a: MatrixId, b: MatrixId, mask: Option<MatrixId>) -> OpSpec {
    match mask {
        Some(mask) => OpSpec::MaskedMultiply { a, b, mask },
        None => OpSpec::Multiply { a, b },
    }
}

/// Structured flow-control answer to a submission that could not be queued:
/// nothing was dropped, the client holds its work and resubmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackpressureHint {
    /// Suggested wait before resubmitting, derived from the execution-time
    /// EWMA and the backlog depth.
    pub retry_after: Duration,
    /// Jobs currently ahead in the session's queue. Monotone non-increasing
    /// across retries of a blocked client (its own adds are the ones being
    /// refused), so clients can observe drain progress.
    pub queue_position: usize,
}

/// Why a submission was refused outright (not flow control — the request
/// itself is unserviceable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The session id was never opened (or the scheduler restarted).
    UnknownSession(u64),
    /// The scheduler is draining and accepts no new work.
    Draining,
    /// A batch `$k` reference points at itself or forwards.
    BadRef {
        /// Batch entry holding the bad reference.
        index: usize,
        /// The referenced entry.
        reference: usize,
    },
    /// The batch is larger than the session queue can ever hold.
    BatchTooLarge {
        /// Entries in the rejected batch.
        len: usize,
        /// The session's queue depth.
        depth: usize,
    },
}

/// Outcome of [`Scheduler::submit`].
#[derive(Debug)]
pub enum Submission {
    /// All entries queued, in order; one ticket per entry.
    Queued(Vec<ServeTicket>),
    /// The queue stayed full through the bounded hold: retry later.
    Backpressure(BackpressureHint),
}

/// Completed job payload: the engine's report plus the registered product
/// handle when the job kept it (or a later batch entry referenced it).
#[derive(Debug, Clone)]
pub struct JobDone {
    /// The engine's completion record.
    pub report: JobReport,
    /// Content id the product registered under, when kept.
    pub kept: Option<MatrixId>,
}

/// Terminal state of a scheduled job.
pub type ServeResult = Result<JobDone, EngineError>;

struct STicket {
    result: Mutex<Option<ServeResult>>,
    cv: Condvar,
}

fn complete(ticket: &STicket, result: ServeResult) {
    *ticket.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
    ticket.cv.notify_all();
}

/// Handle to a scheduled job; `wait` blocks for the result.
#[derive(Clone)]
pub struct ServeTicket {
    /// Serve-level job id (≥ [`SERVE_JOB_BASE`]).
    pub job: u64,
    inner: Arc<STicket>,
}

impl std::fmt::Debug for ServeTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTicket")
            .field("job", &self.job)
            .field("done", &self.try_result().is_some())
            .finish()
    }
}

impl ServeTicket {
    /// Blocks until the job completes, returning its result.
    pub fn wait(&self) -> ServeResult {
        let mut guard = self
            .inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = guard.as_ref() {
                return r.clone();
            }
            guard = self
                .inner
                .cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll.
    pub fn try_result(&self) -> Option<ServeResult> {
        self.inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

struct QueuedSJob {
    id: u64,
    spec: SubmitSpec,
    /// Batch id (first job id of the batch) for `$k` resolution.
    batch: Option<u64>,
    batch_index: usize,
    /// Register the product on completion (`keep`, or a later entry
    /// references it).
    register: bool,
    enqueued: Instant,
    /// Set once the job has been counted as deferred, so re-evaluations do
    /// not double-count.
    deferred_marked: bool,
    ticket: Arc<STicket>,
}

struct SessionState {
    name: String,
    weight: f64,
    depth: usize,
    queue: VecDeque<QueuedSJob>,
    /// Weighted-fair virtual finish tag; next dispatch from this session
    /// starts at `max(vtime, vclock)` and finishes `1/weight` later.
    vtime: f64,
    enqueued: u64,
    completed: u64,
    failed: u64,
    canceled: u64,
    hints: u64,
}

/// Per-session statistics row.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Session id.
    pub id: u64,
    /// Client-supplied label.
    pub name: String,
    /// Fairness weight.
    pub weight: f64,
    /// Jobs currently queued (not yet dispatched).
    pub queued: usize,
    /// Jobs accepted into the session queue.
    pub enqueued: u64,
    /// Jobs completed with a product.
    pub completed: u64,
    /// Jobs that failed (including expired deadlines and failed deps).
    pub failed: u64,
    /// Jobs canceled while queued.
    pub canceled: u64,
    /// Backpressure hints issued to this session.
    pub hints: u64,
}

/// Scheduler-level statistics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerStats {
    /// Per-session rows, in open order.
    pub sessions: Vec<SessionStats>,
    /// Jobs currently queued across all sessions.
    pub queue_depth: u64,
    /// High-water queued jobs across all sessions.
    pub queue_high_water: u64,
    /// Mean scheduler queue wait over dispatched jobs.
    pub wait_mean: Duration,
    /// Dispatched jobs the wait mean covers.
    pub wait_samples: u64,
    /// Backpressure hints issued (submissions held then retried — never
    /// dropped).
    pub backpressure_hints: u64,
    /// Jobs that waited at the dispatch head for memory to free.
    pub deferred: u64,
    /// Jobs submitted as part of a multi-entry batch.
    pub batch_jobs: u64,
    /// Jobs handed to the engine so far.
    pub dispatched: u64,
    /// Jobs currently executing (or queued) inside the engine.
    pub in_flight: usize,
    /// Execution-time EWMA feeding `retry_after` hints.
    pub exec_ewma: Duration,
    /// Whether the scheduler is draining.
    pub draining: bool,
}

struct Inner {
    sessions: HashMap<u64, SessionState>,
    session_order: Vec<u64>,
    vclock: f64,
    in_flight: usize,
    /// Sum of the admission estimates of every in-flight job. Admission
    /// gates on `budget − max(reserved, tracked)`: reservations cover the
    /// bytes an admitted job has not allocated *yet* (a sampled estimate is
    /// an upper bound on its tracked peak, so `Σ estimates ≤ budget` keeps
    /// concurrent jobs from growing past the budget mid-flight), while the
    /// tracked term covers allocations that outlive or exceed a reservation.
    reserved_bytes: usize,
    /// Serve job id → engine ticket, for cancellation of dispatched jobs.
    running: HashMap<u64, JobTicket>,
    /// `(batch id, entry index)` → registered product, or the failed job's
    /// id when the entry can never produce one.
    batch_products: HashMap<(u64, usize), Result<MatrixId, u64>>,
    /// `(session, job)` in dispatch order — the fairness audit trail.
    dispatch_log: Vec<(u64, u64)>,
    exec_ewma: Duration,
    deferred: u64,
    hints: u64,
    batch_jobs: u64,
    /// Job admitted solo past the free-memory check: while it runs nothing
    /// else may dispatch (or prefetch), or the combined peaks could blow
    /// the budget mid-flight.
    exclusive_job: Option<u64>,
    draining: bool,
    stopped: bool,
}

struct Shared {
    engine: Arc<Engine>,
    cfg: SchedConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
    queue_gauge: QueueGauge,
    wait_gauge: WaitGauge,
    next_job: AtomicU64,
    next_session: AtomicU64,
    convert_tx: Mutex<Option<Sender<MatrixId>>>,
}

/// The multi-client scheduler. Construction spawns the dispatcher and
/// conversion threads; [`Scheduler::shutdown`] (or drop) drains and joins
/// them.
pub struct Scheduler {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    converter: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Builds a scheduler over `engine` and starts its dispatcher.
    pub fn new(engine: Arc<Engine>, cfg: SchedConfig) -> Self {
        let (tx, rx) = mpsc::channel::<MatrixId>();
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                session_order: Vec::new(),
                vclock: 0.0,
                in_flight: 0,
                reserved_bytes: 0,
                running: HashMap::new(),
                batch_products: HashMap::new(),
                dispatch_log: Vec::new(),
                exec_ewma: Duration::ZERO,
                deferred: 0,
                hints: 0,
                batch_jobs: 0,
                exclusive_job: None,
                draining: false,
                stopped: false,
            }),
            cv: Condvar::new(),
            queue_gauge: QueueGauge::new(),
            wait_gauge: WaitGauge::new(),
            next_job: AtomicU64::new(SERVE_JOB_BASE),
            next_session: AtomicU64::new(1),
            convert_tx: Mutex::new(Some(tx)),
            cfg,
            engine: Arc::clone(&engine),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tsg-serve-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawning dispatcher")
        };
        let converter = {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("tsg-serve-convert".into())
                .spawn(move || {
                    // Warm conversions until the sender side is dropped at
                    // shutdown. Errors (unloaded matrix) are fine — the
                    // dispatch path re-resolves authoritatively.
                    while let Ok(id) = rx.recv() {
                        let _ = engine.resolve_tiled(id);
                    }
                })
                .expect("spawning converter")
        };
        Scheduler {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
            converter: Mutex::new(Some(converter)),
        }
    }

    /// The engine jobs dispatch into.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Opens a session with fairness `weight` (must be finite and positive)
    /// and an optional queue-depth override, returning its id.
    pub fn open_session(
        &self,
        name: &str,
        weight: f64,
        depth: Option<usize>,
    ) -> Result<u64, SubmitError> {
        // Failpoint `serve.session_open`: the scheduler refuses the session
        // as if it were draining, exercising the client-visible refusal
        // path without an actual shutdown.
        #[cfg(feature = "failpoints")]
        if tsg_runtime::failpoint::should_fail("serve.session_open") {
            return Err(SubmitError::Draining);
        }
        let weight = if weight.is_finite() && weight > 0.0 {
            weight
        } else {
            1.0
        };
        let mut inner = self.lock();
        if inner.draining {
            return Err(SubmitError::Draining);
        }
        let id = self
            .shared
            .next_session
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // New sessions start at the current virtual clock, not zero — a
        // late joiner must not replay the virtual time others already
        // consumed.
        let vtime = inner.vclock;
        inner.sessions.insert(
            id,
            SessionState {
                name: name.to_string(),
                weight,
                depth: depth.unwrap_or(self.shared.cfg.session_queue_depth).max(1),
                queue: VecDeque::new(),
                vtime,
                enqueued: 0,
                completed: 0,
                failed: 0,
                canceled: 0,
                hints: 0,
            },
        );
        inner.session_order.push(id);
        self.shared
            .engine
            .recorder()
            .add(Counter::SessionsOpened, 1);
        Ok(id)
    }

    /// Submits one job (`specs.len() == 1`) or an ordered batch. Entries
    /// may reference earlier entries' products ([`Operand::Ref`]). The
    /// whole submission is admitted atomically: either every entry queues
    /// (in order) or none does and the caller gets a [`BackpressureHint`].
    pub fn submit(&self, session: u64, specs: Vec<SubmitSpec>) -> Result<Submission, SubmitError> {
        assert!(!specs.is_empty(), "a submission needs at least one job");
        // Validate references before touching any queue: `$k` must point
        // strictly backwards.
        let mut referenced = vec![false; specs.len()];
        for (i, spec) in specs.iter().enumerate() {
            for op in spec.operands() {
                if let Operand::Ref(k) = op {
                    if k >= i {
                        return Err(SubmitError::BadRef {
                            index: i,
                            reference: k,
                        });
                    }
                    referenced[k] = true;
                }
            }
        }
        let mut inner = self.lock();
        if inner.draining {
            return Err(SubmitError::Draining);
        }
        let depth = match inner.sessions.get(&session) {
            Some(s) => s.depth,
            None => return Err(SubmitError::UnknownSession(session)),
        };
        if specs.len() > depth {
            return Err(SubmitError::BatchTooLarge {
                len: specs.len(),
                depth,
            });
        }
        // Bounded hold: wait for space, then hint. Holding the submission
        // here (the transport blocks with it) is the backpressure — the
        // hint is only the fallback when the backlog outlives the hold.
        // Failpoint `serve.backpressure_wait`: the hold "expires"
        // immediately, forcing the hint path deterministically.
        #[cfg(feature = "failpoints")]
        let skip_hold = tsg_runtime::failpoint::should_fail("serve.backpressure_wait");
        #[cfg(not(feature = "failpoints"))]
        let skip_hold = false;
        let deadline = Instant::now() + self.shared.cfg.backpressure_wait;
        loop {
            let sess = inner.sessions.get(&session).expect("session exists");
            if sess.queue.len() + specs.len() <= depth && !skip_hold {
                break;
            }
            let now = Instant::now();
            if skip_hold || now >= deadline || inner.draining {
                let backlog = sess.queue.len();
                let hint = BackpressureHint {
                    retry_after: retry_after(&inner, self.shared.engine.config(), backlog),
                    queue_position: backlog,
                };
                let sess = inner.sessions.get_mut(&session).expect("session exists");
                sess.hints += 1;
                inner.hints += 1;
                self.shared
                    .engine
                    .recorder()
                    .add(Counter::ServeBackpressureHints, 1);
                return Ok(Submission::Backpressure(hint));
            }
            inner = self
                .shared
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
            if inner.draining {
                return Err(SubmitError::Draining);
            }
        }
        // Space confirmed for the whole submission: enqueue in order.
        let batch = specs.len() > 1;
        let mut batch_id = None;
        let mut tickets = Vec::with_capacity(specs.len());
        let now = Instant::now();
        for (i, spec) in specs.into_iter().enumerate() {
            let id = self
                .shared
                .next_job
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if batch && batch_id.is_none() {
                batch_id = Some(id);
            }
            let ticket = Arc::new(STicket {
                result: Mutex::new(None),
                cv: Condvar::new(),
            });
            tickets.push(ServeTicket {
                job: id,
                inner: Arc::clone(&ticket),
            });
            let register = spec.keep || referenced[i];
            let sess = inner.sessions.get_mut(&session).expect("session exists");
            sess.queue.push_back(QueuedSJob {
                id,
                spec,
                batch: batch_id,
                batch_index: i,
                register,
                enqueued: now,
                deferred_marked: false,
                ticket,
            });
            sess.enqueued += 1;
            self.shared.queue_gauge.add(1);
            self.shared.engine.recorder().add(Counter::ServeEnqueued, 1);
            if batch {
                inner.batch_jobs += 1;
                self.shared
                    .engine
                    .recorder()
                    .add(Counter::ServeBatchJobs, 1);
            }
        }
        drop(inner);
        self.shared.cv.notify_all();
        Ok(Submission::Queued(tickets))
    }

    /// Convenience: submit one job and wait for it, resubmitting through
    /// backpressure hints. Used by tests and the bench harness.
    pub fn multiply_now(&self, session: u64, spec: SubmitSpec) -> Result<ServeResult, SubmitError> {
        loop {
            match self.submit(session, vec![spec.clone()])? {
                Submission::Queued(tickets) => return Ok(tickets[0].wait()),
                Submission::Backpressure(hint) => std::thread::sleep(hint.retry_after),
            }
        }
    }

    /// Cancels a job. Queued jobs complete as `canceled`; a job already
    /// handed to the engine is canceled there (honoured only while it is
    /// still in the engine queue). Returns whether the id was known.
    pub fn cancel(&self, job: u64) -> bool {
        let mut inner = self.lock();
        let sids: Vec<u64> = inner.sessions.keys().copied().collect();
        for sid in sids {
            let sess = inner.sessions.get_mut(&sid).expect("session exists");
            let Some(idx) = sess.queue.iter().position(|j| j.id == job) else {
                continue;
            };
            let j = sess.queue.remove(idx).expect("index in range");
            sess.canceled += 1;
            self.shared.queue_gauge.sub(1);
            if j.register {
                if let Some(b) = j.batch {
                    inner.batch_products.insert((b, j.batch_index), Err(j.id));
                }
            }
            complete(&j.ticket, Err(EngineError::Canceled));
            drop(inner);
            self.shared.cv.notify_all();
            return true;
        }
        if let Some(t) = inner.running.get(&job) {
            t.cancel();
            return true;
        }
        false
    }

    /// Current scheduler statistics.
    pub fn stats(&self) -> SchedulerStats {
        let inner = self.lock();
        let sessions = inner
            .session_order
            .iter()
            .filter_map(|id| inner.sessions.get(id).map(|s| (id, s)))
            .map(|(&id, s)| SessionStats {
                id,
                name: s.name.clone(),
                weight: s.weight,
                queued: s.queue.len(),
                enqueued: s.enqueued,
                completed: s.completed,
                failed: s.failed,
                canceled: s.canceled,
                hints: s.hints,
            })
            .collect();
        SchedulerStats {
            sessions,
            queue_depth: self.shared.queue_gauge.depth(),
            queue_high_water: self.shared.queue_gauge.high_water(),
            wait_mean: self.shared.wait_gauge.mean(),
            wait_samples: self.shared.wait_gauge.samples(),
            backpressure_hints: inner.hints,
            deferred: inner.deferred,
            batch_jobs: inner.batch_jobs,
            dispatched: inner.dispatch_log.len() as u64,
            in_flight: inner.in_flight,
            exec_ewma: inner.exec_ewma,
            draining: inner.draining,
        }
    }

    /// `(session, job)` pairs in dispatch order — the fairness audit trail
    /// tests assert interleaving on.
    pub fn dispatch_log(&self) -> Vec<(u64, u64)> {
        self.lock().dispatch_log.clone()
    }

    /// Stops accepting work and waits up to `deadline` for every queued and
    /// in-flight job to finish. Jobs still queued past the deadline
    /// complete as `shutting_down`. Returns `true` when the drain finished
    /// inside the deadline.
    pub fn drain(&self, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        let mut inner = self.lock();
        inner.draining = true;
        self.shared.cv.notify_all();
        let drained = loop {
            let idle = inner.in_flight == 0 && inner.sessions.values().all(|s| s.queue.is_empty());
            if idle {
                break true;
            }
            let now = Instant::now();
            if now >= end {
                break false;
            }
            inner = self
                .shared
                .cv
                .wait_timeout(inner, end - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        };
        // Past the deadline: fail whatever is still queued (in-flight jobs
        // are not interruptible; their waiters finish on their own).
        let sids: Vec<u64> = inner.session_order.clone();
        for sid in sids {
            let Some(sess) = inner.sessions.get_mut(&sid) else {
                continue;
            };
            let leftovers: Vec<QueuedSJob> = sess.queue.drain(..).collect();
            sess.failed += leftovers.len() as u64;
            for j in leftovers {
                self.shared.queue_gauge.sub(1);
                if j.register {
                    if let Some(b) = j.batch {
                        inner.batch_products.insert((b, j.batch_index), Err(j.id));
                    }
                }
                complete(&j.ticket, Err(EngineError::ShuttingDown));
            }
        }
        inner.stopped = true;
        drop(inner);
        self.shared.cv.notify_all();
        drained
    }

    /// Drains (with `deadline`), joins the scheduler threads, and shuts the
    /// engine down. Idempotent.
    pub fn shutdown(&self, deadline: Duration) -> bool {
        let drained = self.drain(deadline);
        // Closing the channel ends the conversion thread.
        *self
            .shared
            .convert_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        if let Some(h) = self
            .dispatcher
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = h.join();
        }
        if let Some(h) = self
            .converter
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = h.join();
        }
        self.shared.engine.shutdown();
        drained
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(30));
    }
}

/// `retry_after` for a backpressure hint: the backlog's expected service
/// time under the execution EWMA, spread over the engine's workers.
fn retry_after(inner: &Inner, cfg: &tsg_engine::EngineConfig, backlog: usize) -> Duration {
    let ewma = if inner.exec_ewma.is_zero() {
        Duration::from_millis(10)
    } else {
        inner.exec_ewma
    };
    let workers = cfg.workers.max(1) as u32;
    (ewma * backlog.max(1) as u32 / workers).max(Duration::from_millis(1))
}

/// Resolution of one operand at dispatch time.
enum Resolved {
    Ready(MatrixId),
    /// Referenced batch entry has not produced yet.
    Pending,
    /// Referenced batch entry failed; carries the dep's job id.
    Broken(u64),
}

fn resolve_operand(inner: &Inner, job: &QueuedSJob, op: Operand) -> Resolved {
    match op {
        Operand::Id(id) => Resolved::Ready(id),
        Operand::Ref(k) => {
            let Some(batch) = job.batch else {
                return Resolved::Broken(job.id);
            };
            match inner.batch_products.get(&(batch, k)) {
                Some(Ok(id)) => Resolved::Ready(*id),
                Some(Err(dep)) => Resolved::Broken(*dep),
                None => Resolved::Pending,
            }
        }
    }
}

/// What the dispatcher decided while scanning the queues.
enum Scan {
    /// Dispatch this session's head, reserving `est_bytes` of the budget
    /// until it completes; `exclusive` marks a job whose estimate exceeds
    /// the whole budget (the deferred-admission backstop), which must then
    /// run alone.
    Dispatch {
        sid: u64,
        est_bytes: usize,
        exclusive: bool,
    },
    /// Nothing runnable (or the fair head is parked on memory): wait.
    Wait,
}

fn dispatcher_loop(shared: &Arc<Shared>) {
    loop {
        let mut inner = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let (sid, est_bytes, exclusive) = loop {
            if inner.stopped {
                return;
            }
            match scan(shared, &mut inner) {
                Scan::Dispatch {
                    sid,
                    est_bytes,
                    exclusive,
                } => break (sid, est_bytes, exclusive),
                Scan::Wait => {
                    inner = shared
                        .cv
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        dispatch(shared, &mut inner, sid, est_bytes, exclusive);
        drop(inner);
        shared.cv.notify_all();
    }
}

/// One pass over the session queues: fail heads that can never run, then
/// pick the weighted-fair runnable head and check it against free memory.
fn scan(shared: &Arc<Shared>, inner: &mut Inner) -> Scan {
    // The engine never sheds as long as in-flight stays within its queue
    // depth (workers drain the queue faster than it fills from here).
    let max_inflight = shared.engine.config().queue_depth.max(1);
    if inner.in_flight >= max_inflight || inner.exclusive_job.is_some() {
        return Scan::Wait;
    }
    // Terminal heads first: expired deadlines and broken dependencies are
    // completed inline so they never block the fair pick.
    loop {
        let mut doomed: Option<(u64, EngineError)> = None;
        'sessions: for (&sid, sess) in inner.sessions.iter() {
            let Some(head) = sess.queue.front() else {
                continue;
            };
            if head
                .spec
                .timeout
                .is_some_and(|t| head.enqueued.elapsed() > t)
            {
                doomed = Some((sid, EngineError::TimedOut));
                break 'sessions;
            }
            for op in head.spec.operands() {
                if let Resolved::Broken(dep) = resolve_operand(inner, head, op) {
                    doomed = Some((sid, EngineError::DependencyFailed { dep }));
                    break 'sessions;
                }
            }
        }
        let Some((sid, err)) = doomed else { break };
        let sess = inner.sessions.get_mut(&sid).expect("session exists");
        let j = sess.queue.pop_front().expect("head exists");
        sess.failed += 1;
        shared.queue_gauge.sub(1);
        if j.register {
            if let Some(b) = j.batch {
                inner.batch_products.insert((b, j.batch_index), Err(j.id));
            }
        }
        complete(&j.ticket, Err(err));
    }
    // The weighted-fair pick: smallest virtual finish tag among sessions
    // whose head is runnable (dependencies resolved). Ties break by
    // session id for determinism.
    let mut pick: Option<(f64, u64)> = None;
    for (&sid, sess) in inner.sessions.iter() {
        let Some(head) = sess.queue.front() else {
            continue;
        };
        let runnable = head
            .spec
            .operands()
            .all(|op| matches!(resolve_operand(inner, head, op), Resolved::Ready(_)));
        if !runnable {
            continue;
        }
        let tag = sess.vtime.max(inner.vclock);
        let better = match pick {
            None => true,
            Some((best, best_sid)) => tag < best || (tag == best && sid < best_sid),
        };
        if better {
            pick = Some((tag, sid));
        }
    }
    let Some((_, sid)) = pick else {
        return Scan::Wait;
    };
    // Memory-ordered admission: the fair head dispatches only into memory
    // known to be free. While it waits, nothing overtakes it — completions
    // free memory, the queue drains, and once the device is idle the job
    // goes solo (`admit_over_budget`), so deferral cannot starve.
    let head = inner.sessions[&sid].queue.front().expect("head exists");
    let (Resolved::Ready(a), Resolved::Ready(b)) = (
        resolve_operand(inner, head, head.spec.a),
        resolve_operand(inner, head, head.spec.b),
    ) else {
        return Scan::Wait;
    };
    let mask = match head.spec.mask {
        Some(op) => match resolve_operand(inner, head, op) {
            Resolved::Ready(id) => Some(id),
            _ => return Scan::Wait,
        },
        None => None,
    };
    // With sampling enabled (the engine default) this estimate is the
    // band-upper edge of a measured symbolic sample rather than the old
    // constant-compression bound — most products that actually fit are now
    // admitted directly, and deferred admission remains the backstop for
    // the ones whose measured band genuinely exceeds the free budget (or
    // whose estimate fell back to the constant model).
    let est_bytes = match shared.engine.estimate_op(&op_spec(a, b, mask)) {
        Ok(e) => e.est_bytes,
        // Bad operands (unloaded mid-queue) fail at engine submit with the
        // right code; let the dispatch path handle it.
        Err(_) => 0,
    };
    let budget = shared.engine.device().mem_budget;
    // Free memory is the budget minus the larger of (a) the in-flight
    // reservations — admitted estimates whose jobs may not have allocated
    // their peak yet — and (b) the bytes actually tracked right now. With
    // sampled estimates upper-bounding each job's tracked peak, gating on
    // reservations makes concurrent admission safe by construction instead
    // of racing the tracker.
    let committed = inner
        .reserved_bytes
        .max(shared.engine.device_tracker().current_bytes());
    let free = budget.saturating_sub(committed);
    if est_bytes > free && inner.in_flight > 0 {
        // Only an estimate the whole budget cannot hold is *deferred* (the
        // run-solo-once-idle backstop the counter reports); a head merely
        // waiting for reservations to drain is ordinary memory-ordered
        // queuing.
        if est_bytes > budget {
            let head = inner
                .sessions
                .get_mut(&sid)
                .expect("session exists")
                .queue
                .front_mut()
                .expect("head exists");
            if !head.deferred_marked {
                head.deferred_marked = true;
                inner.deferred += 1;
                shared.engine.recorder().add(Counter::ServeDeferred, 1);
            }
        }
        return Scan::Wait;
    }
    // An over-budget estimate only gets here with the device idle
    // (`in_flight == 0`): it runs solo until it completes.
    Scan::Dispatch {
        sid,
        est_bytes,
        exclusive: est_bytes > budget,
    }
}

/// Pops `sid`'s head, advances the fair clock, and hands the job to the
/// engine; a waiter thread collects the result.
fn dispatch(shared: &Arc<Shared>, inner: &mut Inner, sid: u64, est_bytes: usize, exclusive: bool) {
    let sess = inner.sessions.get_mut(&sid).expect("session exists");
    let job = sess.queue.pop_front().expect("head exists");
    let start = sess.vtime.max(inner.vclock);
    sess.vtime = start + 1.0 / sess.weight;
    inner.vclock = start;
    shared.queue_gauge.sub(1);
    shared.wait_gauge.record(job.enqueued.elapsed());
    let (Resolved::Ready(a), Resolved::Ready(b)) = (
        resolve_operand(inner, &job, job.spec.a),
        resolve_operand(inner, &job, job.spec.b),
    ) else {
        unreachable!("scan only dispatches runnable heads")
    };
    let mask = job
        .spec
        .mask
        .map(|op| match resolve_operand(inner, &job, op) {
            Resolved::Ready(id) => id,
            _ => unreachable!("scan only dispatches runnable heads"),
        });
    let mut spec = JobSpec::of(op_spec(a, b, mask));
    spec.config = job.spec.config;
    spec.timeout = job
        .spec
        .timeout
        .map(|t| t.saturating_sub(job.enqueued.elapsed()));
    // The scheduler already admitted the job against *free* memory (or
    // decided it must run solo); the engine's whole-budget check would
    // re-reject est > budget jobs the deferral path exists to serve.
    spec.admit_over_budget = true;
    match shared.engine.submit(spec) {
        Ok(ticket) => {
            inner.in_flight += 1;
            inner.reserved_bytes += est_bytes;
            if exclusive {
                inner.exclusive_job = Some(job.id);
            }
            inner.running.insert(job.id, ticket.clone());
            inner.dispatch_log.push((sid, job.id));
            let shared_w = Arc::clone(shared);
            let register = job.register;
            let materialize = job.spec.materialize;
            let batch = job.batch;
            let batch_index = job.batch_index;
            let sticket = Arc::clone(&job.ticket);
            let job_id = job.id;
            std::thread::Builder::new()
                .name(format!("tsg-serve-wait-{job_id}"))
                .spawn(move || {
                    waiter(
                        &shared_w,
                        sid,
                        job_id,
                        est_bytes,
                        batch,
                        batch_index,
                        register,
                        materialize,
                        &ticket,
                        &sticket,
                    );
                })
                .expect("spawning waiter");
            // Prefetching converts operands on the device — not while an
            // over-budget job needs every byte of it.
            if shared.cfg.prefetch && !exclusive {
                prefetch_next(shared, inner);
            }
        }
        Err(e) => {
            let sess = inner.sessions.get_mut(&sid).expect("session exists");
            sess.failed += 1;
            if job.register {
                if let Some(b) = job.batch {
                    inner
                        .batch_products
                        .insert((b, job.batch_index), Err(job.id));
                }
            }
            complete(&job.ticket, Err(e));
        }
    }
}

/// Warms the next runnable head's operand conversions on the conversion
/// thread, overlapping job N+1's CSR→tiled conversion with job N's compute.
fn prefetch_next(shared: &Arc<Shared>, inner: &Inner) {
    let mut pick: Option<(f64, u64)> = None;
    for (&sid, sess) in inner.sessions.iter() {
        let Some(head) = sess.queue.front() else {
            continue;
        };
        let runnable = [head.spec.a, head.spec.b]
            .into_iter()
            .all(|op| matches!(resolve_operand(inner, head, op), Resolved::Ready(_)));
        if !runnable {
            continue;
        }
        let tag = sess.vtime.max(inner.vclock);
        if pick.is_none_or(|(best, _)| tag < best) {
            pick = Some((tag, sid));
        }
    }
    let Some((_, sid)) = pick else { return };
    let head = inner.sessions[&sid].queue.front().expect("head exists");
    let tx = shared
        .convert_tx
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let Some(tx) = tx.as_ref() else { return };
    for op in head.spec.operands() {
        if let Resolved::Ready(id) = resolve_operand(inner, head, op) {
            let _ = tx.send(id);
        }
    }
}

/// Blocks on the engine ticket, registers kept products, and updates the
/// scheduler's accounting.
#[allow(clippy::too_many_arguments)]
fn waiter(
    shared: &Arc<Shared>,
    sid: u64,
    job_id: u64,
    est_bytes: usize,
    batch: Option<u64>,
    batch_index: usize,
    register: bool,
    materialize: bool,
    ticket: &JobTicket,
    sticket: &STicket,
) {
    let result = ticket.wait();
    // Product registration happens before the scheduler lock: it takes the
    // registry lock internally and must not nest inside `inner`.
    let serve_result: ServeResult = match result {
        Ok(report) => {
            let kept = register.then(|| {
                if materialize {
                    shared.engine.register_product(Arc::clone(&report.c)).0
                } else {
                    shared.engine.register_tiled(Arc::clone(&report.c)).0
                }
            });
            Ok(JobDone { report, kept })
        }
        Err(e) => Err(e),
    };
    let mut inner = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
    inner.in_flight -= 1;
    inner.reserved_bytes = inner.reserved_bytes.saturating_sub(est_bytes);
    if inner.exclusive_job == Some(job_id) {
        inner.exclusive_job = None;
    }
    inner.running.remove(&job_id);
    if register {
        if let Some(b) = batch {
            let entry = match &serve_result {
                Ok(done) => Ok(done.kept.expect("registered products carry their id")),
                Err(_) => Err(job_id),
            };
            inner.batch_products.insert((b, batch_index), entry);
        }
    }
    if let Some(sess) = inner.sessions.get_mut(&sid) {
        match &serve_result {
            Ok(done) => {
                sess.completed += 1;
                // EWMA of execution time feeds retry_after hints.
                let exec = done.report.exec;
                inner.exec_ewma = if inner.exec_ewma.is_zero() {
                    exec
                } else {
                    (inner.exec_ewma * 7 + exec * 3) / 10
                };
            }
            Err(_) => sess.failed += 1,
        }
    }
    drop(inner);
    shared.cv.notify_all();
    complete(sticket, serve_result);
}
