#![warn(missing_docs)]

//! # tsg-serve — concurrent multi-client serving over the resident engine
//!
//! `tsg-engine` serves one client well; this crate serves *many at once*.
//! It layers three pieces over a shared [`tsg_engine::Engine`]:
//!
//! * [`scheduler`] — sessions with bounded fair-share queues, weighted-fair
//!   dispatch, backpressure instead of shedding (a full queue answers with a
//!   structured retry hint, never a drop), deferred admission when the
//!   memory estimate exceeds what is currently free, batched submission
//!   with intra-batch dependencies, and conversion/compute pipeline
//!   overlap.
//! * [`wire`] — the protocol v2 session verbs (`open_session`,
//!   `multiply_many`, scheduler-routed `multiply`, serve-aware
//!   `wait`/`cancel`/`stats`) wrapping the engine's v1 JSON-lines session,
//!   which still handles everything else unchanged.
//! * [`server`] — the `tsg-serve` binary's transports: stdin/stdout or TCP
//!   (one session per connection, one engine for all), with graceful drain
//!   on SIGINT, EOF, or the `shutdown` verb.
//!
//! The protocol and its guarantees are documented in DESIGN.md §12; the
//! engine-level wire format is DESIGN.md §9.

pub mod scheduler;
pub mod server;
pub mod wire;

pub use scheduler::{
    BackpressureHint, JobDone, Operand, SchedConfig, Scheduler, SchedulerStats, ServeResult,
    ServeTicket, SessionStats, Submission, SubmitError, SubmitSpec, SERVE_JOB_BASE,
};
pub use wire::ServeSession;
