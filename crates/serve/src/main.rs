//! `tsg-serve` — concurrent multi-client SpGEMM serving over JSON lines.
//!
//! By default requests are read from stdin and responses written to stdout,
//! one JSON object per line. With `--tcp ADDR` the same protocol is served
//! over TCP, one session per connection, all connections sharing one engine
//! and one weighted-fair scheduler (and therefore one matrix registry, one
//! device budget, and one dispatch order). See `tsg_serve::wire` for the
//! protocol v2 verbs and DESIGN.md §12 for the serving model.
//!
//! ```text
//! tsg-serve [--device 0|1] [--workers N] [--queue-depth N]
//!           [--cache-mb N] [--budget-mb N] [--timeout-ms N] [--profile]
//!           [--session-depth N] [--drain-ms N] [--tcp ADDR]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    tsg_serve::server::run(tsg_serve::server::parse_args(std::env::args().skip(1)))
}
