//! # tsg-bench — the figure/table harness
//!
//! One binary per table/figure of the paper's evaluation (§4). Each binary
//! prints (a) a human-readable table mirroring the paper's rows/series and
//! (b) machine-readable CSV lines prefixed with `csv,` for plotting.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2` | Table 2 (matrix statistics) |
//! | `fig6` | Figure 6 (GFlops vs compression rate, 5 methods × A²/AAᵀ × 2 devices + scalability) |
//! | `fig7` | Figure 7 (A² bars on the 18 representative matrices, failures as 0.00) |
//! | `fig8` | Figure 8 (AAᵀ bars on the 6 asymmetric matrices) |
//! | `fig9` | Figure 9 (peak memory vs completion time) |
//! | `fig10` | Figure 10 (TileSpGEMM runtime breakdown) |
//! | `fig11` | Figure 11 (format space: CSR / CSB-M / CSB-I / tiled) |
//! | `fig12` | Figure 12 (conversion time vs single SpGEMM time) |
//! | `fig13` | Figure 13 (TileSpGEMM vs tSparse, both `f32`) |
//! | `fig14` | Figure 14 (runtime breakdown, tSparse vs TileSpGEMM) |
//! | `all_figures` | everything above, in order |
//!
//! Environment knobs: `TSG_QUICK=1` subsamples the sweeps for smoke runs;
//! `TSG_REPS=n` overrides the repetition count.

pub mod plot;

use std::time::Duration;
use tsg_baselines::{MethodKind, PreparedOperands};
use tsg_gen::DatasetEntry;
use tsg_matrix::Csr;
use tsg_runtime::{run_on, Breakdown, Device, MemTracker};

/// GFlops given the paper's flop count (2 per intermediate product).
pub fn gflops(flops: u64, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    flops as f64 / elapsed.as_secs_f64() / 1e9
}

/// Geometric mean of positive values (zeros/failures excluded).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Least-squares line `y = slope·x + intercept` (the regression lines of
/// Figure 6). Returns `None` with fewer than two points.
pub fn linreg(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some((slope, (sy - slope * sx) / n))
}

/// One measured run of one method on one matrix.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Dataset entry name.
    pub matrix: String,
    /// Method name.
    pub method: &'static str,
    /// `A²` or `AAᵀ`.
    pub op: &'static str,
    /// Device name.
    pub device: String,
    /// Completion time (best of the measured repetitions); `None` if the
    /// method failed (out of device memory).
    pub elapsed: Option<Duration>,
    /// GFlops (0.0 on failure, the paper's convention for its bars).
    pub gflops: f64,
    /// Breakdown of the best run.
    pub breakdown: Breakdown,
    /// Peak tracked device bytes (0 on failure).
    pub peak_bytes: usize,
    /// nnz(C) reported by the method (0 on failure).
    pub nnz_c: usize,
    /// flop count of the product.
    pub flops: u64,
    /// Compression rate (products / nnz(C), from the independent oracle).
    pub compression_rate: f64,
}

/// Repetition count (`TSG_REPS`, default 2: one warm-up inside the timing
/// loop amortises allocator effects; we keep the fastest run, like the
/// paper's best-of-N protocol).
pub fn reps() -> u32 {
    std::env::var("TSG_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Whether the quick (subsampled) mode is on.
pub fn quick() -> bool {
    std::env::var("TSG_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Runs one `(matrix, method, op, device)` cell.
pub fn measure(
    entry_name: &str,
    prep: &PreparedOperands,
    kind: MethodKind,
    op: &'static str,
    device: &Device,
    stats: &tsg_gen::MatrixStats,
) -> Measurement {
    let reps = reps();
    run_on(device, || {
        let mut best: Option<(Duration, Breakdown, usize, usize)> = None;
        let mut failure = false;
        for _ in 0..reps {
            let tracker = MemTracker::with_budget(device.mem_budget);
            let start = std::time::Instant::now();
            match prep.run(kind, &tracker) {
                Ok((breakdown, nnz_c, peak)) => {
                    let elapsed = start.elapsed();
                    if best.as_ref().map(|b| elapsed < b.0).unwrap_or(true) {
                        best = Some((elapsed, breakdown, nnz_c, peak));
                    }
                }
                Err(_) => {
                    failure = true;
                    break;
                }
            }
        }
        match (failure, best) {
            (false, Some((elapsed, breakdown, nnz_c, peak))) => Measurement {
                matrix: entry_name.to_string(),
                method: kind.name(),
                op,
                device: device.name.clone(),
                elapsed: Some(elapsed),
                gflops: gflops(stats.flops, elapsed),
                breakdown,
                peak_bytes: peak,
                nnz_c,
                flops: stats.flops,
                compression_rate: stats.compression_rate,
            },
            _ => Measurement {
                matrix: entry_name.to_string(),
                method: kind.name(),
                op,
                device: device.name.clone(),
                elapsed: None,
                gflops: 0.0,
                breakdown: Breakdown::default(),
                peak_bytes: 0,
                nnz_c: 0,
                flops: stats.flops,
                compression_rate: stats.compression_rate,
            },
        }
    })
}

/// Builds the operands + oracle statistics for one dataset entry and one
/// operation.
pub fn prepare(entry: &DatasetEntry, aat: bool) -> (PreparedOperands, tsg_gen::MatrixStats) {
    let a = entry.build();
    prepare_csr(a, aat)
}

/// Like [`prepare`] but from an existing matrix.
pub fn prepare_csr(a: Csr<f64>, aat: bool) -> (PreparedOperands, tsg_gen::MatrixStats) {
    let prep = if aat {
        PreparedOperands::aat(a)
    } else {
        PreparedOperands::squared(a)
    };
    let stats = tsg_gen::matrix_stats(&prep.a, &prep.b);
    (prep, stats)
}

/// Prints the standard CSV line for a measurement.
pub fn emit_csv(figure: &str, m: &Measurement) {
    println!(
        "csv,{figure},{},{},{},{},{:.4},{:.3},{},{},{:.2}",
        m.matrix,
        m.method,
        m.op,
        m.device,
        m.elapsed.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
        m.gflops,
        m.peak_bytes,
        m.nnz_c,
        m.compression_rate,
    );
}

/// CSV header matching [`emit_csv`].
pub fn csv_header() {
    println!("csv,figure,matrix,method,op,device,time_ms,gflops,peak_bytes,nnz_c,compression_rate");
}

/// Formats a duration in the paper's milliseconds convention.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Section banner for figure binaries.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_basic() {
        assert_eq!(gflops(2_000_000_000, Duration::from_secs(1)), 2.0);
        assert_eq!(gflops(100, Duration::ZERO), 0.0);
    }

    #[test]
    fn geomean_ignores_failures() {
        let g = geomean([2.0, 8.0, 0.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn linreg_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let (slope, intercept) = linreg(&pts).unwrap();
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!(linreg(&[(1.0, 1.0)]).is_none());
        assert!(linreg(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn measurement_pipeline_runs_end_to_end() {
        let a = tsg_gen::random::erdos_renyi(200, 200, 1200, 5);
        let (prep, stats) = prepare_csr(a, false);
        let device = Device::serial();
        for kind in MethodKind::all() {
            let m = measure("er-200", &prep, kind, "A2", &device, &stats);
            assert!(m.elapsed.is_some(), "{} failed", kind.name());
            assert!(m.gflops > 0.0);
            assert_eq!(m.flops, stats.flops);
        }
    }

    #[test]
    fn all_methods_agree_on_nnz_c() {
        let a = tsg_gen::fem::banded(300, 12, 6, 3);
        let (prep, stats) = prepare_csr(a, false);
        let device = Device::serial();
        for kind in MethodKind::all() {
            let m = measure("banded", &prep, kind, "A2", &device, &stats);
            assert_eq!(m.nnz_c, stats.nnz_c, "{} nnz mismatch", kind.name());
        }
    }

    #[test]
    fn aat_preparation_transposes() {
        let a = tsg_gen::stencil::grid_2d_upwind(20, 20);
        let (prep, _) = prepare_csr(a.clone(), true);
        assert_eq!(prep.b, a.transpose());
    }
}
